// Ablation benchmarks for the design choices DESIGN.md calls out: each
// benchmark toggles one mechanism and reports how the headline matching
// statistics move. Run with:
//
//	go test -bench=Ablation -benchmem
package panrucio_test

import (
	"testing"

	"panrucio/internal/coopt"
	"panrucio/internal/core"
	"panrucio/internal/panda"
	"panrucio/internal/records"
	"panrucio/internal/sim"
	"panrucio/internal/workload"
)

// ablationConfig is a reduced 3-day scenario so each ablation run stays
// fast while preserving the matching shape.
func ablationConfig(seed int64) sim.Config {
	cfg := sim.PaperConfig(seed)
	cfg.Days = 3
	return cfg
}

func exactRates(cfg sim.Config) (jobPct, transferPct float64) {
	res := sim.Run(cfg)
	jobs := res.Store.Jobs(res.WindowFrom, res.WindowTo, records.LabelUser)
	r := core.NewMatcher(res.Store).Run(jobs, core.Exact)
	return r.MatchedJobPct(), r.MatchedTransferPct()
}

// BenchmarkAblationBaseline records the default exact-match rates the
// other ablations are compared against.
func BenchmarkAblationBaseline(b *testing.B) {
	var jp, tp float64
	for i := 0; i < b.N; i++ {
		jp, tp = exactRates(ablationConfig(int64(i + 1)))
	}
	b.ReportMetric(jp, "job_pct")
	b.ReportMetric(tp, "transfer_pct")
}

// BenchmarkAblationNoCorruption disables metadata degradation: matching
// rates jump by an order of magnitude, quantifying how much of the paper's
// 0.82 % is a data-quality artifact rather than a matching limitation.
func BenchmarkAblationNoCorruption(b *testing.B) {
	var jp, tp float64
	for i := 0; i < b.N; i++ {
		cfg := ablationConfig(int64(i + 1))
		cfg.Corruption.Disable = true
		jp, tp = exactRates(cfg)
	}
	b.ReportMetric(jp, "job_pct")
	b.ReportMetric(tp, "transfer_pct")
}

// BenchmarkAblationNoBackground removes non-job traffic: the matched
// percentages are unchanged (background events carry no jeditaskid), but
// the event volume and the Fig. 3 diagonal collapse.
func BenchmarkAblationNoBackground(b *testing.B) {
	var events int64
	var tp float64
	for i := 0; i < b.N; i++ {
		cfg := ablationConfig(int64(i + 1))
		cfg.DisableBackground = true
		res := sim.Run(cfg)
		events = res.StoredEvents
		jobs := res.Store.Jobs(res.WindowFrom, res.WindowTo, records.LabelUser)
		tp = core.NewMatcher(res.Store).Run(jobs, core.Exact).MatchedTransferPct()
	}
	b.ReportMetric(float64(events), "events")
	b.ReportMetric(tp, "transfer_pct")
}

// BenchmarkAblationAllSequentialSites forces every site's storage
// front-end to serve one file at a time (Fig. 10's pathology grid-wide):
// staging time inflates and with it the mean queue-transfer fraction.
func BenchmarkAblationAllSequentialSites(b *testing.B) {
	var meanFrac float64
	for i := 0; i < b.N; i++ {
		cfg := ablationConfig(int64(i + 1))
		cfg.Rucio.SequentialSiteFraction = 0.999999
		res := sim.Run(cfg)
		jobs := res.Store.Jobs(res.WindowFrom, res.WindowTo, records.LabelUser)
		r := core.NewMatcher(res.Store).Run(jobs, core.Exact)
		sum, n := 0.0, 0
		for _, m := range r.Matches {
			sum += m.QueueTransferFraction()
			n++
		}
		if n > 0 {
			meanFrac = 100 * sum / float64(n)
		}
	}
	b.ReportMetric(meanFrac, "mean_transfer_pct")
}

// BenchmarkAblationNoDispatchDelay removes the brokerage/pilot latency so
// queuing time is almost pure staging: the transfer-time fractions explode
// toward 100 %, demonstrating why the dispatch delay is load-bearing for
// Fig. 9's shape.
func BenchmarkAblationNoDispatchDelay(b *testing.B) {
	var above75 int
	for i := 0; i < b.N; i++ {
		cfg := ablationConfig(int64(i + 1))
		cfg.Panda.DispatchDelayMean = 1 // effectively zero
		res := sim.Run(cfg)
		jobs := res.Store.Jobs(res.WindowFrom, res.WindowTo, records.LabelUser)
		r := core.NewMatcher(res.Store).Run(jobs, core.Exact)
		above75 = 0
		for _, m := range r.Matches {
			if m.QueueTransferFraction() >= 0.75 {
				above75++
			}
		}
	}
	b.ReportMetric(float64(above75), "jobs_above_75pct")
}

// BenchmarkAblationBrokeragePolicies runs the co-optimization comparison
// under contention and reports the mean-queue-time gap between the paper's
// data-locality heuristic and the joint (shared-awareness) policy.
func BenchmarkAblationBrokeragePolicies(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		cfg := coopt.ContentionConfig(int64(i+1), 2, 0.01)
		cfg.Workload = workload.Config{
			InitialDatasets:  80,
			UserTaskInterval: 300,
			ProdTaskInterval: 1200,
			UserJobsMean:     12,
			ProdJobsMean:     20,
		}
		dl := coopt.Evaluate(cfg, panda.DataLocalityPolicy{})
		jt := coopt.Evaluate(cfg, coopt.JointPolicy{})
		gap = dl.MeanQueueS - jt.MeanQueueS
	}
	b.ReportMetric(gap, "queue_gap_s")
}

// BenchmarkAblationMetadataRepair measures the repair-and-rematch uplift:
// exact-matched jobs gained by applying RM2 site inferences to the store.
func BenchmarkAblationMetadataRepair(b *testing.B) {
	var gain int
	for i := 0; i < b.N; i++ {
		res := sim.Run(ablationConfig(int64(i + 1)))
		jobs := res.Store.Jobs(res.WindowFrom, res.WindowTo, records.LabelUser)
		up, _ := core.MeasureUplift(res.Store, res.Grid, jobs, core.Exact)
		gain = up.JobGain
	}
	b.ReportMetric(float64(gain), "exact_jobs_gained")
}

// BenchmarkAblationParallelMatcher compares the serial matcher against the
// sharded parallel one on the same store (the paper's scalability note).
func BenchmarkAblationParallelMatcher(b *testing.B) {
	res := sim.Run(ablationConfig(1))
	jobs := res.Store.Jobs(res.WindowFrom, res.WindowTo, records.LabelUser)
	m := core.NewMatcher(res.Store)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.RunParallel(jobs, core.RM2, 0)
	}
	b.ReportMetric(float64(len(jobs)), "jobs")
}

// BenchmarkAblationSerialMatcher is the serial counterpart.
func BenchmarkAblationSerialMatcher(b *testing.B) {
	res := sim.Run(ablationConfig(1))
	jobs := res.Store.Jobs(res.WindowFrom, res.WindowTo, records.LabelUser)
	m := core.NewMatcher(res.Store)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Run(jobs, core.RM2)
	}
	b.ReportMetric(float64(len(jobs)), "jobs")
}
