// The benchmark harness: one benchmark per table and figure of the paper's
// evaluation (DESIGN.md E1-E13). Each benchmark measures the analysis step
// that regenerates the artifact over a shared paper-scale simulation run
// and reports the headline quantity as a custom metric, so
// `go test -bench=. -benchmem` doubles as the reproduction log.
package panrucio_test

import (
	"runtime"
	"sync"
	"testing"

	"panrucio/internal/analysis"
	"panrucio/internal/core"
	"panrucio/internal/experiments"
	"panrucio/internal/sim"
	"panrucio/internal/sweep"
)

// newMatcher builds a fresh matcher over the suite's store, so matching
// passes are measured from cold indices each iteration.
func newMatcher(s *experiments.Suite) *core.Matcher {
	return core.NewMatcher(s.Result.Store)
}

var (
	suiteOnce sync.Once
	suite     *experiments.Suite
)

// sharedSuite builds the paper-scale run once; the simulation itself is
// benchmarked separately in BenchmarkSimulation.
func sharedSuite() *experiments.Suite {
	suiteOnce.Do(func() { suite = experiments.Run(sim.PaperConfig(1)) })
	return suite
}

// BenchmarkSimulation measures the full 8-day grid simulation plus the
// three matching passes (the substrate cost underneath every experiment).
// Beyond throughput it reports the two memory scoreboards of the store:
// live_B/event is the retained heap per stored transfer event once the run
// is frozen (the metric that decides whether paper-scale fits on one
// machine), alloc_B/event the total allocation churn per event.
func BenchmarkSimulation(b *testing.B) {
	b.ReportAllocs()
	var events, liveB, allocB float64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		runtime.GC()
		var m0 runtime.MemStats
		runtime.ReadMemStats(&m0)
		b.StartTimer()
		s := experiments.Run(sim.PaperConfig(int64(i + 1)))
		b.StopTimer()
		runtime.GC()
		var m1 runtime.MemStats
		runtime.ReadMemStats(&m1)
		events += float64(s.Result.StoredEvents)
		liveB += float64(m1.HeapAlloc) - float64(m0.HeapAlloc)
		allocB += float64(m1.TotalAlloc - m0.TotalAlloc)
		runtime.KeepAlive(s)
		b.StartTimer()
	}
	b.StopTimer()
	b.ReportMetric(events/float64(b.N), "events")
	b.ReportMetric(events/b.Elapsed().Seconds(), "events/sec")
	b.ReportMetric(liveB/events, "live_B/event")
	b.ReportMetric(allocB/events, "alloc_B/event")
}

// BenchmarkFig2VolumeGrowth regenerates the cumulative managed-volume
// curve (E1). Metric: final-year volume in PB (paper: ~1000).
func BenchmarkFig2VolumeGrowth(b *testing.B) {
	var final float64
	for i := 0; i < b.N; i++ {
		pts := analysis.VolumeGrowth(analysis.GrowthConfig{})
		final = pts[len(pts)-1].TotalPB
	}
	b.ReportMetric(final, "PB_2024")
}

// BenchmarkFig3Heatmap regenerates the site-to-site transfer matrix (E2).
// Metric: local (diagonal) volume fraction in percent (paper: 77).
func BenchmarkFig3Heatmap(b *testing.B) {
	s := sharedSuite()
	b.ResetTimer()
	var local float64
	for i := 0; i < b.N; i++ {
		h := analysis.BuildHeatmap(s.Result.Store, s.Result.Grid, s.Result.WindowFrom, s.Result.WindowTo)
		local = 100 * h.LocalFraction()
	}
	b.ReportMetric(local, "local_pct")
}

// BenchmarkTable1ActivityBreakdown regenerates the exact-match activity
// table (E3). Metric: total matched percentage (paper: 1.92).
func BenchmarkTable1ActivityBreakdown(b *testing.B) {
	s := sharedSuite()
	b.ResetTimer()
	var matched, total int
	for i := 0; i < b.N; i++ {
		matched, total = 0, 0
		for _, row := range analysis.ActivityBreakdown(s.Result.Store, s.Cmp.Exact) {
			matched += row.Matched
			total += row.Total
		}
	}
	if total > 0 {
		b.ReportMetric(100*float64(matched)/float64(total), "matched_pct")
	}
}

// BenchmarkTable2aTransferCounts runs the three matching passes and
// reports the RM2 matched-transfer percentage (E4; paper: 3.82).
func BenchmarkTable2aTransferCounts(b *testing.B) {
	s := sharedSuite()
	b.ResetTimer()
	var pct float64
	for i := 0; i < b.N; i++ {
		cmp := analysis.CompareMethods(newMatcher(s), s.Jobs)
		pct = cmp.RM2.MatchedTransferPct()
	}
	b.ReportMetric(pct, "rm2_pct")
}

// BenchmarkTable2bJobCounts runs the matching passes and reports the RM2
// matched-job percentage (E5; paper: 1.71).
func BenchmarkTable2bJobCounts(b *testing.B) {
	s := sharedSuite()
	b.ResetTimer()
	var pct float64
	for i := 0; i < b.N; i++ {
		cmp := analysis.CompareMethods(newMatcher(s), s.Jobs)
		pct = cmp.RM2.MatchedJobPct()
	}
	b.ReportMetric(pct, "rm2_jobs_pct")
}

// BenchmarkFig5TopLocalJobs extracts the top local-transfer jobs (E6).
// Metric: population size (paper plots 40).
func BenchmarkFig5TopLocalJobs(b *testing.B) {
	s := sharedSuite()
	b.ResetTimer()
	var n int
	for i := 0; i < b.N; i++ {
		n = len(s.Fig5())
	}
	b.ReportMetric(float64(n), "jobs")
}

// BenchmarkFig6TopRemoteJobs extracts the top remote-transfer jobs (E7).
func BenchmarkFig6TopRemoteJobs(b *testing.B) {
	s := sharedSuite()
	b.ResetTimer()
	var n int
	for i := 0; i < b.N; i++ {
		n = len(s.Fig6())
	}
	b.ReportMetric(float64(n), "jobs")
}

// BenchmarkFig7RemoteBandwidth bins matched-transfer bandwidth on the top
// remote connections (E8). Metric: number of panels (paper: 6).
func BenchmarkFig7RemoteBandwidth(b *testing.B) {
	s := sharedSuite()
	b.ResetTimer()
	var n int
	for i := 0; i < b.N; i++ {
		n = len(s.Fig7())
	}
	b.ReportMetric(float64(n), "panels")
}

// BenchmarkFig8LocalBandwidth bins matched-transfer bandwidth at the top
// local sites (E9).
func BenchmarkFig8LocalBandwidth(b *testing.B) {
	s := sharedSuite()
	b.ResetTimer()
	var n int
	for i := 0; i < b.N; i++ {
		n = len(s.Fig8())
	}
	b.ReportMetric(float64(n), "panels")
}

// BenchmarkFig9ThresholdCurves builds the status-vs-threshold curves
// (E10). Metric: jobs above the 75% threshold (paper: 72 of 7,907).
func BenchmarkFig9ThresholdCurves(b *testing.B) {
	s := sharedSuite()
	b.ResetTimer()
	var extreme int
	for i := 0; i < b.N; i++ {
		extreme = s.Fig9().AboveThreshold(75)
	}
	b.ReportMetric(float64(extreme), "jobs_above_75pct")
}

// BenchmarkFig10CaseLongTransfer locates the long-transfer success case
// (E11). Metric: the case's transfer-time percentage (paper: 83).
func BenchmarkFig10CaseLongTransfer(b *testing.B) {
	s := sharedSuite()
	b.ResetTimer()
	var pct float64
	for i := 0; i < b.N; i++ {
		if cs := s.Fig10(); cs != nil {
			pct = 100 * cs.Match.QueueTransferFraction()
		}
	}
	b.ReportMetric(pct, "transfer_pct")
}

// BenchmarkFig11CaseFailedJob locates the failed spanning-transfer case
// (E12). Metric: 1 when found.
func BenchmarkFig11CaseFailedJob(b *testing.B) {
	s := sharedSuite()
	b.ResetTimer()
	found := 0.0
	for i := 0; i < b.N; i++ {
		if cs := s.Fig11(); cs != nil && cs.SpansQueueAndWall {
			found = 1
		}
	}
	b.ReportMetric(found, "found")
}

// BenchmarkSweep runs the E14 robustness grid (six quick scenarios,
// corruption ramped 0%→50%) through the sweep engine at full fan-out and
// reports sustained scenario throughput. Metric: scenarios/sec.
func BenchmarkSweep(b *testing.B) {
	scenarios := sweep.CorruptionRamp(sim.QuickConfig(1), sweep.DefaultRampRates())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := sweep.Run(scenarios, sweep.Options{Workers: runtime.GOMAXPROCS(0)})
		if len(rep.Outcomes) != len(scenarios) {
			b.Fatal("sweep dropped scenarios")
		}
	}
	b.ReportMetric(float64(b.N*len(scenarios))/b.Elapsed().Seconds(), "scenarios/sec")
}

// BenchmarkFig12RM2Redundant locates the RM2 redundant-transfer case and
// its site inference (E13). Metric: redundant groups in the case.
func BenchmarkFig12RM2Redundant(b *testing.B) {
	s := sharedSuite()
	b.ResetTimer()
	var groups int
	for i := 0; i < b.N; i++ {
		if cs := s.Fig12(); cs != nil {
			groups = len(cs.Redundant)
		}
	}
	b.ReportMetric(float64(groups), "redundant_groups")
}
