// Command analyze runs the simulation and regenerates a selected table or
// figure from the paper, printing its data rows (and CSV with -csv).
//
// Usage:
//
//	analyze [-seed N] [-days N] [-quick] [-csv] [-workers N] -exp <id>
//
// where <id> is one of: summary, fig2, fig3, table1, table2a, table2b,
// fig5, fig6, fig7, fig8, fig9, fig10, fig11, fig12, checks, all — plus
// the extension studies: anomaly (automated anomaly scan), repair
// (metadata-repair uplift), coopt (brokerage-policy comparison), e14
// (the corruption-robustness sweep; cmd/sweep is the full front end), and
// e15 (at-rest tamper detection through segment commitments, plus the
// online detect-and-repair loop).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"panrucio/internal/analysis"
	"panrucio/internal/anomaly"
	"panrucio/internal/coopt"
	"panrucio/internal/core"
	"panrucio/internal/experiments"
	"panrucio/internal/report"
	"panrucio/internal/sim"
)

type options struct {
	seed    int64
	days    int
	quick   bool
	csv     bool
	exp     string
	workers int
}

// experimentIDs enumerates the valid -exp values, so a typo fails at flag
// parsing instead of after the simulation has run.
var experimentIDs = map[string]bool{
	"summary": true, "fig2": true, "fig3": true, "table1": true,
	"table2a": true, "table2b": true, "fig5": true, "fig6": true,
	"fig7": true, "fig8": true, "fig9": true, "fig10": true,
	"fig11": true, "fig12": true, "anomaly": true, "repair": true,
	"coopt": true, "e14": true, "e15": true, "checks": true, "all": true,
}

// validExperiments lists the -exp ids in usage/error order.
func validExperiments() string {
	ids := make([]string, 0, len(experimentIDs))
	for id := range experimentIDs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return strings.Join(ids, ", ")
}

// parseFlags parses the command line into options; kept separate from main
// so flag handling is testable without running a simulation.
func parseFlags(args []string) (*options, error) {
	o := &options{}
	fs := flag.NewFlagSet("analyze", flag.ContinueOnError)
	fs.Int64Var(&o.seed, "seed", 1, "simulation seed")
	fs.IntVar(&o.days, "days", 8, "study-window length in days")
	fs.BoolVar(&o.quick, "quick", false, "use the reduced quick scenario")
	fs.BoolVar(&o.csv, "csv", false, "emit CSV instead of aligned tables where applicable")
	fs.StringVar(&o.exp, "exp", "all", "experiment id: "+validExperiments())
	fs.IntVar(&o.workers, "workers", 0, "matcher worker goroutines (0 = all cores, 1 = serial); for -exp e14, concurrent sweep scenarios")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if !experimentIDs[o.exp] {
		return nil, fmt.Errorf("unknown experiment %q (want one of: %s)", o.exp, validExperiments())
	}
	if o.days <= 0 {
		return nil, fmt.Errorf("-days must be positive, got %d", o.days)
	}
	if o.workers < 0 {
		return nil, fmt.Errorf("-workers must be non-negative, got %d", o.workers)
	}
	if o.exp == "e14" || o.exp == "e15" {
		// E14/E15 run canned quick-scale sweep grids, not the single-suite
		// pipeline: reject flags they would silently ignore.
		var rejected []string
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "days", "quick", "csv":
				rejected = append(rejected, "-"+f.Name)
			}
		})
		if len(rejected) > 0 {
			return nil, fmt.Errorf("%s not supported with -exp %s (the sweep fixes its own scenarios; use cmd/sweep for more control)",
				strings.Join(rejected, ", "), o.exp)
		}
	}
	return o, nil
}

// config builds the scenario the options select.
func (o *options) config() sim.Config {
	cfg := sim.PaperConfig(o.seed)
	if o.quick {
		cfg = sim.QuickConfig(o.seed)
	}
	cfg.Days = o.days
	return cfg
}

func main() {
	o, err := parseFlags(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "analyze:", err)
		os.Exit(2)
	}
	if o.exp == "e14" {
		// E14 is a multi-scenario experiment: it runs its own sweep grid
		// (cmd/sweep is the richer front end), not the single-suite pipeline.
		fmt.Print(experiments.RobustnessSweep(o.seed, o.workers).Markdown())
		return
	}
	if o.exp == "e15" {
		// E15 pairs the per-channel detection sweep with one online
		// detect-and-repair run.
		fmt.Print(experiments.DetectionSweep(o.seed, o.workers).Markdown())
		fmt.Println(experiments.OnlineVerify(o.seed).Table().Render())
		return
	}
	s := experiments.RunWorkers(o.config(), o.workers)

	emit := func(t *report.Table) {
		if o.csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Println(t.Render())
		}
	}
	emitCase := func(cs *analysis.CaseStudy, withSummary bool) {
		if cs == nil {
			fmt.Println("(case study not present for this seed; try another)")
			return
		}
		emit(cs.TimelineTable())
		if withSummary {
			emit(cs.TransferSummaryTable())
		}
	}

	switch o.exp {
	case "summary":
		emit(s.SummaryTable())
	case "fig2":
		emit(analysis.GrowthReport(s.Fig2()))
	case "fig3":
		emit(s.Fig3().Report(8))
	case "table1":
		emit(analysis.ActivityTable(s.Table1()))
	case "table2a":
		emit(s.Cmp.TransferCountTable())
	case "table2b":
		emit(s.Cmp.JobCountTable())
	case "fig5":
		emit(analysis.TopJobsTable("Fig. 5 — top local-transfer jobs", s.Fig5()))
	case "fig6":
		emit(analysis.TopJobsTable("Fig. 6 — top remote-transfer jobs", s.Fig6()))
	case "fig7":
		fmt.Println(report.RenderSeries("Fig. 7 — remote connection bandwidth", 72, s.Fig7()))
	case "fig8":
		fmt.Println(report.RenderSeries("Fig. 8 — local site bandwidth", 72, s.Fig8()))
	case "fig9":
		emit(s.Fig9().Table())
	case "fig10":
		emitCase(s.Fig10(), false)
	case "fig11":
		emitCase(s.Fig11(), false)
	case "fig12":
		emitCase(s.Fig12(), true)
	case "anomaly":
		rep := anomaly.NewScanner(s.Result.Grid).Scan(s.Cmp.RM2)
		emit(rep.Table(10))
	case "repair":
		up, st := core.MeasureUplift(s.Result.Store, s.Result.Grid, s.Jobs, core.Exact)
		t := &report.Table{
			Title:   "Metadata repair uplift (RM2 inference -> exact re-match)",
			Columns: []string{"metric", "value"},
		}
		t.AddRow("labels repaired", fmt.Sprintf("%d (%d duplicate-evidence, %d site-condition)",
			st.LabelsRepaired, st.ByDuplicate, st.BySiteCondition))
		t.AddRow("exact matched jobs", fmt.Sprintf("%d -> %d (+%d)",
			up.Before.MatchedJobs, up.After.MatchedJobs, up.JobGain))
		t.AddRow("exact matched transfers", fmt.Sprintf("%d -> %d (+%d)",
			up.Before.MatchedTransfers, up.After.MatchedTransfers, up.TransferGain))
		emit(t)
	case "coopt":
		cc := coopt.ContentionConfig(o.seed, 2, 0.01)
		emit(coopt.Table(coopt.Compare(cc, coopt.DefaultPolicies())))
	case "checks":
		for _, line := range s.ShapeChecks() {
			fmt.Println(line)
		}
	case "all":
		fmt.Print(s.RenderAll())
		for _, line := range s.ShapeChecks() {
			fmt.Println(line)
		}
	default:
		// Unreachable: parseFlags validated o.exp against experimentIDs.
		fmt.Fprintf(os.Stderr, "analyze: unhandled experiment %q\n", o.exp)
		os.Exit(2)
	}
}
