// Command analyze runs the simulation and regenerates a selected table or
// figure from the paper, printing its data rows (and CSV with -csv).
//
// Usage:
//
//	analyze [-seed N] [-days N] [-quick] [-csv] [-workers N] -exp <id>
//
// where <id> is one of: summary, fig2, fig3, table1, table2a, table2b,
// fig5, fig6, fig7, fig8, fig9, fig10, fig11, fig12, checks, all — plus
// the extension studies: anomaly (automated anomaly scan), repair
// (metadata-repair uplift), coopt (brokerage-policy comparison).
package main

import (
	"flag"
	"fmt"
	"os"

	"panrucio/internal/analysis"
	"panrucio/internal/anomaly"
	"panrucio/internal/coopt"
	"panrucio/internal/core"
	"panrucio/internal/experiments"
	"panrucio/internal/report"
	"panrucio/internal/sim"
)

func main() {
	seed := flag.Int64("seed", 1, "simulation seed")
	days := flag.Int("days", 8, "study-window length in days")
	quick := flag.Bool("quick", false, "use the reduced quick scenario")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables where applicable")
	exp := flag.String("exp", "all", "experiment id (summary, fig2..fig12, table1, table2a, table2b, checks, all)")
	workers := flag.Int("workers", 0, "matcher worker goroutines (0 = all cores, 1 = serial)")
	flag.Parse()

	cfg := sim.PaperConfig(*seed)
	if *quick {
		cfg = sim.QuickConfig(*seed)
	}
	cfg.Days = *days
	s := experiments.RunWorkers(cfg, *workers)

	emit := func(t *report.Table) {
		if *csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Println(t.Render())
		}
	}
	emitCase := func(cs *analysis.CaseStudy, withSummary bool) {
		if cs == nil {
			fmt.Println("(case study not present for this seed; try another)")
			return
		}
		emit(cs.TimelineTable())
		if withSummary {
			emit(cs.TransferSummaryTable())
		}
	}

	switch *exp {
	case "summary":
		emit(s.SummaryTable())
	case "fig2":
		emit(analysis.GrowthReport(s.Fig2()))
	case "fig3":
		emit(s.Fig3().Report(8))
	case "table1":
		emit(analysis.ActivityTable(s.Table1()))
	case "table2a":
		emit(s.Cmp.TransferCountTable())
	case "table2b":
		emit(s.Cmp.JobCountTable())
	case "fig5":
		emit(analysis.TopJobsTable("Fig. 5 — top local-transfer jobs", s.Fig5()))
	case "fig6":
		emit(analysis.TopJobsTable("Fig. 6 — top remote-transfer jobs", s.Fig6()))
	case "fig7":
		fmt.Println(report.RenderSeries("Fig. 7 — remote connection bandwidth", 72, s.Fig7()))
	case "fig8":
		fmt.Println(report.RenderSeries("Fig. 8 — local site bandwidth", 72, s.Fig8()))
	case "fig9":
		emit(s.Fig9().Table())
	case "fig10":
		emitCase(s.Fig10(), false)
	case "fig11":
		emitCase(s.Fig11(), false)
	case "fig12":
		emitCase(s.Fig12(), true)
	case "anomaly":
		rep := anomaly.NewScanner(s.Result.Grid).Scan(s.Cmp.RM2)
		emit(rep.Table(10))
	case "repair":
		up, st := core.MeasureUplift(s.Result.Store, s.Result.Grid, s.Jobs, core.Exact)
		t := &report.Table{
			Title:   "Metadata repair uplift (RM2 inference -> exact re-match)",
			Columns: []string{"metric", "value"},
		}
		t.AddRow("labels repaired", fmt.Sprintf("%d (%d duplicate-evidence, %d site-condition)",
			st.LabelsRepaired, st.ByDuplicate, st.BySiteCondition))
		t.AddRow("exact matched jobs", fmt.Sprintf("%d -> %d (+%d)",
			up.Before.MatchedJobs, up.After.MatchedJobs, up.JobGain))
		t.AddRow("exact matched transfers", fmt.Sprintf("%d -> %d (+%d)",
			up.Before.MatchedTransfers, up.After.MatchedTransfers, up.TransferGain))
		emit(t)
	case "coopt":
		cc := coopt.ContentionConfig(*seed, 2, 0.01)
		emit(coopt.Table(coopt.Compare(cc, coopt.DefaultPolicies())))
	case "checks":
		for _, line := range s.ShapeChecks() {
			fmt.Println(line)
		}
	case "all":
		fmt.Print(s.RenderAll())
		for _, line := range s.ShapeChecks() {
			fmt.Println(line)
		}
	default:
		fmt.Fprintf(os.Stderr, "analyze: unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
}
