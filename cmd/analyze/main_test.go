package main

import "testing"

func TestParseFlagsDefaults(t *testing.T) {
	o, err := parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	if o.seed != 1 || o.days != 8 || o.quick || o.csv || o.exp != "all" || o.workers != 0 {
		t.Errorf("unexpected defaults: %+v", o)
	}
}

func TestParseFlagsAcceptsEveryExperimentID(t *testing.T) {
	for id := range experimentIDs {
		if _, err := parseFlags([]string{"-exp", id}); err != nil {
			t.Errorf("-exp %s rejected: %v", id, err)
		}
	}
}

func TestParseFlagsRejectsBadValues(t *testing.T) {
	for _, args := range [][]string{
		{"-exp", "fig99"},
		{"-exp", ""},
		{"-days", "0"},
		{"-workers", "x"},
		{"-workers", "-2"},
		{"-nope"},
	} {
		if _, err := parseFlags(args); err == nil {
			t.Errorf("args %v accepted, want error", args)
		}
	}
}

func TestE14RejectsFlagsItWouldIgnore(t *testing.T) {
	for _, args := range [][]string{
		{"-exp", "e14", "-days", "4"},
		{"-exp", "e14", "-quick"},
		{"-exp", "e14", "-csv"},
	} {
		if _, err := parseFlags(args); err == nil {
			t.Errorf("args %v accepted, but e14 would silently ignore them", args)
		}
	}
	// -seed and -workers are honored by the sweep and must stay accepted.
	if _, err := parseFlags([]string{"-exp", "e14", "-seed", "3", "-workers", "2"}); err != nil {
		t.Errorf("e14 with -seed/-workers rejected: %v", err)
	}
}

func TestQuickFlagSelectsQuickScenario(t *testing.T) {
	o, err := parseFlags([]string{"-quick", "-seed", "3", "-days", "2"})
	if err != nil {
		t.Fatal(err)
	}
	cfg := o.config()
	if cfg.Seed != 3 || cfg.Days != 2 {
		t.Errorf("config lost the overrides: %+v", cfg)
	}
	if cfg.Workload.InitialDatasets == 0 {
		t.Error("-quick did not select the reduced scenario")
	}
}
