// Command gridsim runs the simulated ATLAS grid (PanDA + Rucio + network +
// workload + background traffic) over a study window and prints a run
// summary: record counts, corruption statistics, and byte volumes. Use it
// to sanity-check a scenario before analyzing it with cmd/analyze or
// reproducing the paper with cmd/repro.
//
// Usage:
//
//	gridsim [-seed N] [-days N] [-warmup N] [-quick] [-no-background]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"panrucio/internal/records"
	"panrucio/internal/sim"
	"panrucio/internal/stats"
)

func main() {
	seed := flag.Int64("seed", 1, "simulation seed")
	days := flag.Int("days", 8, "study-window length in days")
	warmup := flag.Int("warmup", 0, "warmup days before the window")
	quick := flag.Bool("quick", false, "use the reduced quick scenario")
	noBg := flag.Bool("no-background", false, "disable background data-management traffic")
	flag.Parse()

	cfg := sim.PaperConfig(*seed)
	if *quick {
		cfg = sim.QuickConfig(*seed)
	}
	cfg.Days = *days
	cfg.WarmupDays = *warmup
	cfg.DisableBackground = *noBg

	start := time.Now()
	res := sim.Run(cfg)
	elapsed := time.Since(start)

	fmt.Printf("simulated %d day(s) (seed %d) in %v\n", cfg.Days, cfg.Seed, elapsed.Round(time.Millisecond))
	fmt.Printf("window: %s .. %s\n", res.WindowFrom, res.WindowTo)
	fmt.Printf("tasks submitted:      %10d\n", res.SubmittedTasks)
	fmt.Printf("jobs submitted:       %10d\n", res.SubmittedJobs)
	fmt.Printf("jobs finished/failed: %10d / %d\n", res.FinishedJobs, res.FailedJobs)
	fmt.Printf("transfer events:      %10d emitted, %d stored\n", res.EmittedEvents, res.StoredEvents)
	fmt.Printf("  with jeditaskid:    %10d\n", res.Store.TransfersWithTaskID())
	fmt.Printf("bytes moved:          %12s\n", stats.FormatBytes(float64(res.MovedBytes)))

	users := res.Store.Jobs(res.WindowFrom, res.WindowTo, records.LabelUser)
	fmt.Printf("user jobs in window:  %10d\n", len(users))

	c := res.Corruption
	fmt.Printf("corruption: seen=%d dropped=%d taskid-lost=%d join-broken=%d unknown-site=%d garbled=%d size-jitter=%d\n",
		c.Seen, c.Dropped, c.TaskIDLost, c.JoinBroken, c.SiteUnknowns, c.SiteGarbled, c.SizeJittered)

	if res.StoredEvents == 0 {
		fmt.Fprintln(os.Stderr, "gridsim: no events stored — scenario misconfigured")
		os.Exit(1)
	}
}
