// Command loadgen replays a mixed read workload against a running serve
// instance and reports latency percentiles, throughput, and error rate.
//
// Usage:
//
//	loadgen [-url http://host:port] [-seconds X] [-workers N] [-ramp X]
//	        [-seed N] [-mix meta=2,experiments=6,job=4,...] [-ids N]
//	        [-wait X] [-max-error-rate X] [-format text|json] [-scrape]
//
// The request schedule is deterministic for a given -seed, -workers, and
// -mix: each worker draws its endpoint sequence and id choices from its
// own seeded generator, so two runs against equivalent servers issue the
// same requests in the same per-worker order (how many complete depends
// on -seconds and server speed). Workers ramp up linearly over -ramp
// seconds, then hold peak concurrency.
//
// Metrics: p50/p95/p99 are nearest-rank percentiles over all successful
// request latencies, qps counts successful requests over the measurement
// window, and error_pct counts non-2xx responses and transport failures.
// -format text appends a Go-benchmark-formatted line so runs can be
// recorded alongside the bench/BENCH_*.txt artifacts; -format json emits
// one machine-readable object. The exit status is 1 when error_pct
// exceeds -max-error-rate (the CI smoke gate runs with 0).
//
// -scrape fetches the server's GET /metrics after the run and folds the
// server-side result-cache hit ratio into the report, pairing the
// client-observed latencies with what the server saw.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

type options struct {
	url          string
	seconds      float64
	workers      int
	ramp         float64
	seed         int64
	mix          string
	ids          int
	wait         float64
	maxErrorRate float64
	format       string
	scrape       bool
}

// endpointNames is the closed set of -mix keys, each one request shape
// against the serve API.
var endpointNames = []string{"meta", "layout", "experiments", "job", "match", "task", "pandaids", "sweep"}

const defaultMix = "meta=2,layout=1,experiments=6,job=4,match=4,task=2,pandaids=1,sweep=0"

// parseFlags parses the command line into options, validating everything
// up front so bad invocations fail before any traffic is sent.
func parseFlags(args []string) (*options, error) {
	o := &options{}
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	fs.StringVar(&o.url, "url", "http://127.0.0.1:8080", "base URL of the serve instance")
	fs.Float64Var(&o.seconds, "seconds", 5, "measurement window in seconds")
	fs.IntVar(&o.workers, "workers", 8, "peak concurrent request workers")
	fs.Float64Var(&o.ramp, "ramp", 0, "seconds over which workers ramp from 1 to peak (0 = all at once)")
	fs.Int64Var(&o.seed, "seed", 1, "schedule seed (fixes each worker's request sequence)")
	fs.StringVar(&o.mix, "mix", defaultMix, "endpoint weights, name=weight comma-separated")
	fs.IntVar(&o.ids, "ids", 64, "pandaids sampled for the lookup endpoints")
	fs.Float64Var(&o.wait, "wait", 10, "seconds to wait for the server to become ready")
	fs.Float64Var(&o.maxErrorRate, "max-error-rate", 100, "fail (exit 1) if error_pct exceeds this")
	fs.StringVar(&o.format, "format", "text", "report format: text or json")
	fs.BoolVar(&o.scrape, "scrape", false, "fetch /metrics after the run and report the server-side cache hit ratio")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if o.seconds <= 0 {
		return nil, fmt.Errorf("-seconds must be > 0, got %g", o.seconds)
	}
	if o.workers < 1 {
		return nil, fmt.Errorf("-workers must be >= 1, got %d", o.workers)
	}
	if o.ramp < 0 {
		return nil, fmt.Errorf("-ramp must be >= 0, got %g", o.ramp)
	}
	if o.ids < 1 {
		return nil, fmt.Errorf("-ids must be >= 1, got %d", o.ids)
	}
	if o.wait < 0 {
		return nil, fmt.Errorf("-wait must be >= 0, got %g", o.wait)
	}
	if o.maxErrorRate < 0 {
		return nil, fmt.Errorf("-max-error-rate must be >= 0, got %g", o.maxErrorRate)
	}
	if o.format != "text" && o.format != "json" {
		return nil, fmt.Errorf("unknown format %q (want text or json)", o.format)
	}
	if _, err := parseMix(o.mix); err != nil {
		return nil, err
	}
	return o, nil
}

// parseMix parses "name=weight,..." into per-endpoint weights, rejecting
// unknown names, malformed pairs, and all-zero mixes.
func parseMix(s string) (map[string]int, error) {
	known := make(map[string]bool, len(endpointNames))
	for _, n := range endpointNames {
		known[n] = true
	}
	w := map[string]int{}
	total := 0
	for _, pair := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok {
			return nil, fmt.Errorf("bad -mix entry %q (want name=weight)", pair)
		}
		if !known[name] {
			return nil, fmt.Errorf("unknown -mix endpoint %q (want one of %s)",
				name, strings.Join(endpointNames, ", "))
		}
		n, err := strconv.Atoi(val)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("bad -mix weight %q for %s", val, name)
		}
		w[name] = n
		total += n
	}
	if total == 0 {
		return nil, fmt.Errorf("-mix %q has no positive weight", s)
	}
	return w, nil
}

// schedule is the deterministic per-worker request plan: a weighted
// endpoint table plus the id samples the lookup endpoints draw from.
type schedule struct {
	table       []string // one entry per weight unit; rng indexes it
	pandaIDs    []int64
	jediTaskIDs []int64
	experiments []string
}

// pick returns the next request's method and path for a worker's rng.
func (sc *schedule) pick(rng *rand.Rand) (method, path string) {
	switch ep := sc.table[rng.Intn(len(sc.table))]; ep {
	case "meta":
		return http.MethodGet, "/api/meta"
	case "layout":
		return http.MethodGet, "/api/meta/layout"
	case "experiments":
		return http.MethodGet, "/api/experiments/" + sc.experiments[rng.Intn(len(sc.experiments))]
	case "job":
		return http.MethodGet, fmt.Sprintf("/api/job?panda=%d", sc.pandaIDs[rng.Intn(len(sc.pandaIDs))])
	case "match":
		methods := [...]string{"exact", "rm1", "rm2"}
		return http.MethodGet, fmt.Sprintf("/api/match?panda=%d&method=%s",
			sc.pandaIDs[rng.Intn(len(sc.pandaIDs))], methods[rng.Intn(len(methods))])
	case "task":
		return http.MethodGet, fmt.Sprintf("/api/task?jedi=%d&limit=64",
			sc.jediTaskIDs[rng.Intn(len(sc.jediTaskIDs))])
	case "pandaids":
		return http.MethodGet, "/api/pandaids?limit=32"
	default: // sweep
		return http.MethodPost, "/api/sweep?grid=robustness&scenarios=1&seed=3"
	}
}

// metrics is the aggregate report. Latency fields are microseconds.
type metrics struct {
	Requests int     `json:"requests"`
	Errors   int     `json:"errors"`
	ErrorPct float64 `json:"error_pct"`
	Seconds  float64 `json:"seconds"`
	QPS      float64 `json:"qps"`
	P50us    float64 `json:"p50_us"`
	P95us    float64 `json:"p95_us"`
	P99us    float64 `json:"p99_us"`
	Maxus    float64 `json:"max_us"`
	Workers  int     `json:"workers"`

	// Server-side counters folded in by -scrape (absent otherwise). The
	// hits/misses are deltas over this run: the /metrics counters are
	// process-lifetime totals, so a pre-run scrape anchors the baseline.
	// Each delta is clamped at zero — a server restart between the two
	// scrapes resets the counters, and a negative "hits this run" is
	// garbage, not data. A failed scrape degrades to ScrapeWarning: the
	// load metrics are still valid and still reported.
	Scraped           bool    `json:"scraped,omitempty"`
	ServerCacheHits   int64   `json:"server_cache_hits,omitempty"`
	ServerCacheMisses int64   `json:"server_cache_misses,omitempty"`
	ServerCacheHitPct float64 `json:"server_cache_hit_pct,omitempty"`
	ScrapeWarning     string  `json:"scrape_warning,omitempty"`
}

// percentile is the nearest-rank percentile of a sorted latency slice.
func percentile(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return float64(sorted[i].Microseconds())
}

// get issues one request, drains the body, and reports success and
// latency.
func get(client *http.Client, base, method, path string) (time.Duration, bool) {
	req, err := http.NewRequest(method, base+path, nil)
	if err != nil {
		return 0, false
	}
	t0 := time.Now()
	resp, err := client.Do(req)
	lat := time.Since(t0)
	if err != nil {
		return lat, false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return lat, resp.StatusCode >= 200 && resp.StatusCode < 300
}

// waitReady polls /healthz until the server answers.
func waitReady(client *http.Client, base string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := client.Get(base + "/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server at %s not ready after %v", base, timeout)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// buildSchedule samples ids from the server and materializes the weighted
// endpoint table.
func buildSchedule(client *http.Client, o *options) (*schedule, error) {
	weights, err := parseMix(o.mix)
	if err != nil {
		return nil, err
	}
	sc := &schedule{}
	for _, name := range endpointNames { // fixed order keeps the table deterministic
		for i := 0; i < weights[name]; i++ {
			sc.table = append(sc.table, name)
		}
	}

	fetch := func(path string, v any) error {
		resp, err := client.Get(o.url + path)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
		return json.NewDecoder(resp.Body).Decode(v)
	}
	var ids struct {
		PandaIDs []int64 `json:"pandaids"`
	}
	if err := fetch(fmt.Sprintf("/api/pandaids?limit=%d", o.ids), &ids); err != nil {
		return nil, err
	}
	if len(ids.PandaIDs) == 0 {
		return nil, fmt.Errorf("server returned no pandaids; nothing to look up")
	}
	sc.pandaIDs = ids.PandaIDs
	var exps struct {
		Experiments []string `json:"experiments"`
	}
	if err := fetch("/api/experiments", &exps); err != nil {
		return nil, err
	}
	sc.experiments = exps.Experiments

	// Resolve a few jedi task ids through the job endpoint for the task
	// lookups.
	for i := 0; i < len(sc.pandaIDs) && len(sc.jediTaskIDs) < 8; i++ {
		var jv struct {
			Job struct{ JediTaskID int64 }
		}
		if err := fetch(fmt.Sprintf("/api/job?panda=%d", sc.pandaIDs[i]), &jv); err != nil {
			return nil, err
		}
		sc.jediTaskIDs = append(sc.jediTaskIDs, jv.Job.JediTaskID)
	}
	return sc, nil
}

// scrapeCounters fetches /metrics and extracts the values of the named
// unlabeled counters from the Prometheus text body.
func scrapeCounters(client *http.Client, base string, names ...string) (map[string]int64, error) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics: status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return parseCounters(string(body), names...)
}

// parseCounters pulls `name value` sample lines out of a Prometheus text
// body. Only the requested unlabeled samples are returned; a requested
// name that is absent is an error (the server should always export its
// cache counters).
func parseCounters(body string, names ...string) (map[string]int64, error) {
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	out := make(map[string]int64, len(names))
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok || !want[name] {
			continue
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return nil, fmt.Errorf("bad sample line %q: %v", line, err)
		}
		out[name] = int64(f)
	}
	for _, n := range names {
		if _, ok := out[n]; !ok {
			return nil, fmt.Errorf("/metrics has no sample for %s", n)
		}
	}
	return out, nil
}

var cacheCounterNames = []string{"serve_cache_hits_total", "serve_cache_misses_total"}

// counterDelta is the run-scoped delta of one scraped counter, clamped at
// zero: a counter can only shrink if the server restarted mid-run, and a
// negative delta would poison the hit-ratio arithmetic below.
func counterDelta(after, before map[string]int64, name string) int64 {
	if d := after[name] - before[name]; d > 0 {
		return d
	}
	return 0
}

// foldScrape folds the before/after counter scrapes into the report.
func foldScrape(m *metrics, before, after map[string]int64) {
	m.Scraped = true
	m.ServerCacheHits = counterDelta(after, before, "serve_cache_hits_total")
	m.ServerCacheMisses = counterDelta(after, before, "serve_cache_misses_total")
	if total := m.ServerCacheHits + m.ServerCacheMisses; total > 0 {
		m.ServerCacheHitPct = 100 * float64(m.ServerCacheHits) / float64(total)
	}
}

// run executes the load and aggregates the metrics.
func run(o *options) (*metrics, error) {
	client := &http.Client{Timeout: 60 * time.Second}
	if err := waitReady(client, o.url, time.Duration(o.wait*float64(time.Second))); err != nil {
		return nil, err
	}
	sc, err := buildSchedule(client, o)
	if err != nil {
		return nil, err
	}

	// Anchor the server-side counters before any load: /metrics exports
	// process-lifetime totals, and the report wants this run's deltas. A
	// failed scrape must not abort the run — the load metrics are the
	// primary product — so it degrades to a warning in the report.
	var before map[string]int64
	var scrapeWarn string
	if o.scrape {
		if before, err = scrapeCounters(client, o.url, cacheCounterNames...); err != nil {
			scrapeWarn = "pre-run scrape failed: " + err.Error()
		}
	}

	type result struct {
		lats []time.Duration
		errs int
	}
	results := make([]result, o.workers)
	deadline := time.Now().Add(time.Duration(o.seconds * float64(time.Second)))
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < o.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Linear concurrency ramp: worker w joins after its share of
			// the ramp window.
			if o.ramp > 0 {
				time.Sleep(time.Duration(o.ramp * float64(w) / float64(o.workers) * float64(time.Second)))
			}
			rng := rand.New(rand.NewSource(o.seed*1_000_003 + int64(w)))
			for time.Now().Before(deadline) {
				method, path := sc.pick(rng)
				lat, ok := get(client, o.url, method, path)
				if ok {
					results[w].lats = append(results[w].lats, lat)
				} else {
					results[w].errs++
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	var all []time.Duration
	errs := 0
	for _, r := range results {
		all = append(all, r.lats...)
		errs += r.errs
	}
	sort.Slice(all, func(i, k int) bool { return all[i] < all[k] })
	m := &metrics{
		Requests: len(all) + errs,
		Errors:   errs,
		Seconds:  elapsed,
		QPS:      float64(len(all)) / elapsed,
		P50us:    percentile(all, 0.50),
		P95us:    percentile(all, 0.95),
		P99us:    percentile(all, 0.99),
		Workers:  o.workers,
	}
	if m.Requests > 0 {
		m.ErrorPct = 100 * float64(errs) / float64(m.Requests)
	}
	if n := len(all); n > 0 {
		m.Maxus = float64(all[n-1].Microseconds())
	}
	if o.scrape && scrapeWarn == "" {
		if after, err := scrapeCounters(client, o.url, cacheCounterNames...); err != nil {
			scrapeWarn = "post-run scrape failed: " + err.Error()
		} else {
			foldScrape(m, before, after)
		}
	}
	m.ScrapeWarning = scrapeWarn
	return m, nil
}

// render writes the report in the selected format.
func render(w io.Writer, o *options, m *metrics) error {
	if o.format == "json" {
		b, err := json.Marshal(m)
		if err != nil {
			return err
		}
		_, err = fmt.Fprintf(w, "%s\n", b)
		return err
	}
	fmt.Fprintf(w, "loadgen: %d requests in %.2fs (%d workers), %d errors (%.2f%%)\n",
		m.Requests, m.Seconds, m.Workers, m.Errors, m.ErrorPct)
	fmt.Fprintf(w, "loadgen: qps %.1f  p50 %.0fus  p95 %.0fus  p99 %.0fus  max %.0fus\n",
		m.QPS, m.P50us, m.P95us, m.P99us, m.Maxus)
	if m.Scraped {
		fmt.Fprintf(w, "loadgen: server cache %d hits / %d misses (%.1f%% hit)\n",
			m.ServerCacheHits, m.ServerCacheMisses, m.ServerCacheHitPct)
	}
	if m.ScrapeWarning != "" {
		fmt.Fprintf(w, "loadgen: warning: %s\n", m.ScrapeWarning)
	}
	// A benchmark-formatted line so a run can be pasted next to the
	// bench/BENCH_*.txt artifacts.
	nsop := 0.0
	if m.Requests > 0 {
		nsop = m.Seconds * 1e9 / float64(m.Requests)
	}
	_, err := fmt.Fprintf(w, "BenchmarkLoadgen\t%8d\t%12.0f ns/op\t%10.1f qps\t%10.0f p50_us\t%10.0f p95_us\t%10.0f p99_us\t%8.2f error_pct\n",
		m.Requests, nsop, m.QPS, m.P50us, m.P95us, m.P99us, m.ErrorPct)
	return err
}

func main() {
	o, err := parseFlags(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(2)
	}
	m, err := run(o)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
	if err := render(os.Stdout, o, m); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
	if m.ErrorPct > o.maxErrorRate {
		fmt.Fprintf(os.Stderr, "loadgen: error rate %.2f%% exceeds -max-error-rate %g\n",
			m.ErrorPct, o.maxErrorRate)
		os.Exit(1)
	}
}
