package main

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"panrucio/internal/serve"
	"panrucio/internal/sim"
)

func TestParseFlagsRejectsBadValues(t *testing.T) {
	cases := [][]string{
		{"-seconds", "0"},
		{"-seconds", "-1"},
		{"-workers", "0"},
		{"-ramp", "-1"},
		{"-ids", "0"},
		{"-wait", "-1"},
		{"-max-error-rate", "-1"},
		{"-format", "xml"},
		{"-mix", "bogus=1"},
		{"-mix", "meta"},
		{"-mix", "meta=0,job=0"},
		{"-mix", "meta=x"},
		{"-mix", "meta=-1"},
		{"-nosuch"},
	}
	for _, args := range cases {
		if _, err := parseFlags(args); err == nil {
			t.Errorf("parseFlags(%v) accepted, want error", args)
		}
	}
}

func TestParseMix(t *testing.T) {
	w, err := parseMix("meta=2, job=1,sweep=0")
	if err != nil {
		t.Fatal(err)
	}
	if w["meta"] != 2 || w["job"] != 1 || w["sweep"] != 0 {
		t.Fatalf("weights = %v", w)
	}
	if _, err := parseMix(defaultMix); err != nil {
		t.Fatalf("default mix rejected: %v", err)
	}
}

func TestPercentile(t *testing.T) {
	lats := make([]time.Duration, 100)
	for i := range lats {
		lats[i] = time.Duration(i+1) * time.Millisecond
	}
	if p := percentile(lats, 0.50); p != 50_000 {
		t.Errorf("p50 = %g, want 50000us", p)
	}
	if p := percentile(lats, 0.99); p != 99_000 {
		t.Errorf("p99 = %g, want 99000us", p)
	}
	if p := percentile(nil, 0.5); p != 0 {
		t.Errorf("empty p50 = %g", p)
	}
}

// TestScheduleDeterministic pins the deterministic-schedule contract: the
// same seed draws the same request sequence.
func TestScheduleDeterministic(t *testing.T) {
	sc := &schedule{
		table:       []string{"meta", "job", "match", "task", "experiments", "pandaids"},
		pandaIDs:    []int64{10, 20, 30},
		jediTaskIDs: []int64{7, 8},
		experiments: []string{"summary", "rates"},
	}
	draw := func(seed int64) []string {
		rng := rand.New(rand.NewSource(seed))
		var seq []string
		for i := 0; i < 50; i++ {
			m, p := sc.pick(rng)
			seq = append(seq, m+" "+p)
		}
		return seq
	}
	a, b := draw(42), draw(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sequence diverged at %d: %s vs %s", i, a[i], b[i])
		}
	}
	if c := draw(43); strings.Join(a, "\n") == strings.Join(c, "\n") {
		t.Fatal("different seeds produced identical 50-request sequences")
	}
}

// TestParseCounters pins the /metrics parser: comments and labeled
// samples are skipped, float-formatted values round to integers, and a
// missing requested counter is an error.
func TestParseCounters(t *testing.T) {
	body := strings.Join([]string{
		"# HELP serve_cache_hits_total result-cache hits",
		"# TYPE serve_cache_hits_total counter",
		"serve_cache_hits_total 42",
		"serve_cache_misses_total 1e+06",
		`serve_request_seconds_bucket{endpoint="job",le="+Inf"} 9`,
		"other_metric 7",
		"",
	}, "\n")
	got, err := parseCounters(body, "serve_cache_hits_total", "serve_cache_misses_total")
	if err != nil {
		t.Fatal(err)
	}
	if got["serve_cache_hits_total"] != 42 || got["serve_cache_misses_total"] != 1_000_000 {
		t.Fatalf("parsed = %v", got)
	}
	if _, err := parseCounters(body, "serve_cache_hits_total", "absent_total"); err == nil {
		t.Error("missing counter accepted, want error")
	}
	if _, err := parseCounters("serve_cache_hits_total notanumber",
		"serve_cache_hits_total"); err == nil {
		t.Error("malformed value accepted, want error")
	}
}

// TestRunAgainstServe is the end-to-end smoke: a short burst against an
// in-process frozen server must complete with zero errors and well-formed
// metrics in both formats. -scrape folds the server-side cache ratio in.
func TestRunAgainstServe(t *testing.T) {
	ts := httptest.NewServer(serve.NewFrozen(sim.Run(sim.QuickConfig(11)), serve.Options{}))
	defer ts.Close()

	o, err := parseFlags([]string{
		"-url", ts.URL, "-seconds", "0.3", "-workers", "4",
		"-mix", "meta=2,experiments=4,job=3,match=3,task=1,pandaids=1",
		"-ids", "16", "-format", "json", "-scrape",
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := run(o)
	if err != nil {
		t.Fatal(err)
	}
	if m.Errors != 0 {
		t.Fatalf("errors = %d (%.2f%%), want 0", m.Errors, m.ErrorPct)
	}
	if m.Requests == 0 || m.QPS <= 0 || m.P50us <= 0 || m.P99us < m.P50us {
		t.Fatalf("degenerate metrics: %+v", m)
	}
	if !m.Scraped {
		t.Fatal("-scrape did not mark the report")
	}
	if m.ServerCacheHits+m.ServerCacheMisses == 0 {
		t.Error("-scrape saw no cache traffic despite the load")
	}

	var buf bytes.Buffer
	if err := render(&buf, o, m); err != nil {
		t.Fatal(err)
	}
	var decoded metrics
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("json output not parseable: %v\n%s", err, buf.String())
	}
	if decoded.Requests != m.Requests {
		t.Fatalf("round-trip mismatch: %+v vs %+v", decoded, m)
	}

	buf.Reset()
	o.format = "text"
	if err := render(&buf, o, m); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "BenchmarkLoadgen") ||
		!strings.Contains(buf.String(), "p99_us") {
		t.Fatalf("text output missing benchmark line:\n%s", buf.String())
	}
}

// TestFoldScrapeClampsNegativeDeltas pins the restart-reset regression: a
// server restart between the anchor scrape and the post-run scrape resets
// the process-lifetime counters, so the raw delta goes negative. The
// report must clamp it to zero, not print a negative hit count.
func TestFoldScrapeClampsNegativeDeltas(t *testing.T) {
	m := &metrics{}
	foldScrape(m,
		map[string]int64{"serve_cache_hits_total": 500, "serve_cache_misses_total": 100},
		map[string]int64{"serve_cache_hits_total": 3, "serve_cache_misses_total": 250})
	if !m.Scraped {
		t.Fatal("foldScrape did not mark the report")
	}
	if m.ServerCacheHits != 0 {
		t.Errorf("hits delta = %d, want clamped 0 (counters went 500 -> 3)", m.ServerCacheHits)
	}
	if m.ServerCacheMisses != 150 {
		t.Errorf("misses delta = %d, want 150", m.ServerCacheMisses)
	}
	if m.ServerCacheHitPct != 0 {
		t.Errorf("hit pct = %g, want 0 with zero hits", m.ServerCacheHitPct)
	}

	// Both reset: no traffic at all, and the pct must not divide by zero.
	m = &metrics{}
	foldScrape(m,
		map[string]int64{"serve_cache_hits_total": 9, "serve_cache_misses_total": 9},
		map[string]int64{"serve_cache_hits_total": 1, "serve_cache_misses_total": 2})
	if m.ServerCacheHits != 0 || m.ServerCacheMisses != 0 || m.ServerCacheHitPct != 0 {
		t.Errorf("full reset: %+v, want all zeros", m)
	}
}

// TestScrapeFailureDegradesToWarning pins the scrape-failure regression:
// when /metrics is unreachable, -scrape must not discard the whole load
// report — the metrics come back with a warning instead.
func TestScrapeFailureDegradesToWarning(t *testing.T) {
	// A serve mux without the /metrics route: every API path works, the
	// scrape 404s.
	srv := serve.NewFrozen(sim.Run(sim.QuickConfig(11)), serve.Options{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/metrics" {
			http.Error(w, "no metrics here", http.StatusServiceUnavailable)
			return
		}
		srv.ServeHTTP(w, r)
	}))
	defer ts.Close()

	o, err := parseFlags([]string{
		"-url", ts.URL, "-seconds", "0.2", "-workers", "2",
		"-ids", "8", "-format", "json", "-scrape",
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := run(o)
	if err != nil {
		t.Fatalf("scrape failure aborted the run: %v", err)
	}
	if m.Requests == 0 {
		t.Fatal("no load metrics despite the run completing")
	}
	if m.Scraped {
		t.Error("report marked scraped despite /metrics failing")
	}
	if m.ScrapeWarning == "" {
		t.Error("no scrape warning in the report")
	}

	var buf bytes.Buffer
	o.format = "text"
	if err := render(&buf, o, m); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "warning:") {
		t.Errorf("text report missing the scrape warning:\n%s", buf.String())
	}
}
