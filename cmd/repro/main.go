// Command repro reproduces the paper's full evaluation in one run: it
// simulates the study window, applies the exact/RM1/RM2 matching
// framework, regenerates every table and figure (DESIGN.md E1-E13), and
// finishes with the qualitative shape checks comparing this run against
// the paper's reported results. Exit status is non-zero if any shape check
// fails.
//
// Usage:
//
//	repro [-seed N] [-days N] [-workers N] [-scale F] [-shards N]
//	      [-segment-rows N] [-trace FILE] [-trace-every HOURS]
//
// -scale multiplies the scenario's event volume: the default scenario is
// calibrated to roughly 1/20 of the paper's production week, so -scale 20
// is a paper-scale (1x) run and -scale 200 the 10x stress case. At scaled
// volumes the shape checks still apply — the scenario's proportions are
// scale-free. -shards sets the metastore shard count and -segment-rows
// the per-shard segment-seal threshold (0 = default); neither ever
// changes output.
//
// -trace writes a JSONL run trace: one "checkpoint" event per
// -trace-every virtual hours with ingest progress and throughput, plus a
// final "run" span. Tracing observes the run through the same checkpoint
// seam the live server uses and never changes any output.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"panrucio/internal/experiments"
	"panrucio/internal/obs"
	"panrucio/internal/sim"
	"panrucio/internal/simtime"
)

type options struct {
	seed        int64
	days        int
	workers     int
	scale       float64
	shards      int
	segmentRows int
	trace       string
	traceEvery  float64
}

// parseFlags parses the command line into options; kept separate from main
// so flag handling is testable without spawning the paper-scale run.
func parseFlags(args []string) (*options, error) {
	o := &options{}
	fs := flag.NewFlagSet("repro", flag.ContinueOnError)
	fs.Int64Var(&o.seed, "seed", 1, "simulation seed")
	fs.IntVar(&o.days, "days", 8, "study-window length in days (paper: 8)")
	fs.IntVar(&o.workers, "workers", 0, "matcher worker goroutines (0 = all cores, 1 = serial)")
	fs.Float64Var(&o.scale, "scale", 1, "event-volume multiplier (20 = paper scale, 200 = 10x)")
	fs.IntVar(&o.shards, "shards", 0, "metastore shard count (0 = default)")
	fs.IntVar(&o.segmentRows, "segment-rows", 0, "metastore per-shard segment-seal threshold (0 = default)")
	fs.StringVar(&o.trace, "trace", "", "write a JSONL run trace to this file")
	fs.Float64Var(&o.traceEvery, "trace-every", 6, "virtual hours between trace checkpoints (with -trace)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if o.days <= 0 {
		return nil, fmt.Errorf("-days must be positive, got %d", o.days)
	}
	if o.workers < 0 {
		return nil, fmt.Errorf("-workers must be non-negative, got %d", o.workers)
	}
	if o.scale < 0 {
		return nil, fmt.Errorf("-scale must be non-negative, got %g", o.scale)
	}
	if o.shards < 0 {
		return nil, fmt.Errorf("-shards must be non-negative, got %d", o.shards)
	}
	if o.segmentRows < 0 {
		return nil, fmt.Errorf("-segment-rows must be non-negative, got %d", o.segmentRows)
	}
	if o.traceEvery <= 0 {
		return nil, fmt.Errorf("-trace-every must be > 0, got %g", o.traceEvery)
	}
	return o, nil
}

// runSuite executes the simulation + matching, traced or not. The traced
// path runs the identical engine through the observer seam, so the suite —
// and all rendered output — is byte-identical with and without -trace.
func runSuite(o *options) (*experiments.Suite, error) {
	cfg := o.config()
	if o.trace == "" {
		return experiments.RunWorkers(cfg, o.workers), nil
	}
	f, err := os.Create(o.trace)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	tr := obs.NewTrace(f)
	every := simtime.VTime(o.traceEvery * float64(simtime.Hour))
	t0 := time.Now()
	res := sim.RunWithObserver(cfg, every, sim.TraceObserver(tr, "checkpoint"))
	tr.Span("run", int64(res.WindowTo), time.Since(t0), map[string]any{
		"seed": o.seed, "days": o.days, "scale": o.scale,
		"stored_events": res.Store.TransferCount(),
	})
	return experiments.Build(res, o.workers), nil
}

// config builds the scenario the options select.
func (o *options) config() sim.Config {
	cfg := sim.PaperConfig(o.seed)
	cfg.Days = o.days
	cfg.Scale = o.scale
	cfg.Shards = o.shards
	cfg.SegmentRows = o.segmentRows
	return cfg
}

func main() {
	o, err := parseFlags(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(2)
	}

	if o.scale > 0 && o.scale != 1 {
		fmt.Printf("panrucio repro: %d-day window, seed %d, scale %gx\n", o.days, o.seed, o.scale)
	} else {
		fmt.Printf("panrucio repro: %d-day window, seed %d\n", o.days, o.seed)
	}
	start := time.Now()
	s, err := runSuite(o)
	if err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}
	fmt.Printf("simulation + matching (%d worker(s)) completed in %v\n\n",
		s.Workers, time.Since(start).Round(time.Millisecond))

	fmt.Print(s.RenderAll())

	fmt.Println("== shape checks vs. paper ==")
	failures := 0
	for _, line := range s.ShapeChecks() {
		fmt.Println(line)
		if strings.HasPrefix(line, "[FAIL]") {
			failures++
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "repro: %d shape check(s) failed\n", failures)
		os.Exit(1)
	}
}
