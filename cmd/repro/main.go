// Command repro reproduces the paper's full evaluation in one run: it
// simulates the study window, applies the exact/RM1/RM2 matching
// framework, regenerates every table and figure (DESIGN.md E1-E13), and
// finishes with the qualitative shape checks comparing this run against
// the paper's reported results. Exit status is non-zero if any shape check
// fails.
//
// Usage:
//
//	repro [-seed N] [-days N] [-workers N] [-scale F] [-shards N]
//	      [-segment-rows N]
//
// -scale multiplies the scenario's event volume: the default scenario is
// calibrated to roughly 1/20 of the paper's production week, so -scale 20
// is a paper-scale (1x) run and -scale 200 the 10x stress case. At scaled
// volumes the shape checks still apply — the scenario's proportions are
// scale-free. -shards sets the metastore shard count and -segment-rows
// the per-shard segment-seal threshold (0 = default); neither ever
// changes output.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"panrucio/internal/experiments"
	"panrucio/internal/sim"
)

type options struct {
	seed        int64
	days        int
	workers     int
	scale       float64
	shards      int
	segmentRows int
}

// parseFlags parses the command line into options; kept separate from main
// so flag handling is testable without spawning the paper-scale run.
func parseFlags(args []string) (*options, error) {
	o := &options{}
	fs := flag.NewFlagSet("repro", flag.ContinueOnError)
	fs.Int64Var(&o.seed, "seed", 1, "simulation seed")
	fs.IntVar(&o.days, "days", 8, "study-window length in days (paper: 8)")
	fs.IntVar(&o.workers, "workers", 0, "matcher worker goroutines (0 = all cores, 1 = serial)")
	fs.Float64Var(&o.scale, "scale", 1, "event-volume multiplier (20 = paper scale, 200 = 10x)")
	fs.IntVar(&o.shards, "shards", 0, "metastore shard count (0 = default)")
	fs.IntVar(&o.segmentRows, "segment-rows", 0, "metastore per-shard segment-seal threshold (0 = default)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if o.days <= 0 {
		return nil, fmt.Errorf("-days must be positive, got %d", o.days)
	}
	if o.workers < 0 {
		return nil, fmt.Errorf("-workers must be non-negative, got %d", o.workers)
	}
	if o.scale < 0 {
		return nil, fmt.Errorf("-scale must be non-negative, got %g", o.scale)
	}
	if o.shards < 0 {
		return nil, fmt.Errorf("-shards must be non-negative, got %d", o.shards)
	}
	if o.segmentRows < 0 {
		return nil, fmt.Errorf("-segment-rows must be non-negative, got %d", o.segmentRows)
	}
	return o, nil
}

// config builds the scenario the options select.
func (o *options) config() sim.Config {
	cfg := sim.PaperConfig(o.seed)
	cfg.Days = o.days
	cfg.Scale = o.scale
	cfg.Shards = o.shards
	cfg.SegmentRows = o.segmentRows
	return cfg
}

func main() {
	o, err := parseFlags(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(2)
	}

	if o.scale > 0 && o.scale != 1 {
		fmt.Printf("panrucio repro: %d-day window, seed %d, scale %gx\n", o.days, o.seed, o.scale)
	} else {
		fmt.Printf("panrucio repro: %d-day window, seed %d\n", o.days, o.seed)
	}
	start := time.Now()
	s := experiments.RunWorkers(o.config(), o.workers)
	fmt.Printf("simulation + matching (%d worker(s)) completed in %v\n\n",
		s.Workers, time.Since(start).Round(time.Millisecond))

	fmt.Print(s.RenderAll())

	fmt.Println("== shape checks vs. paper ==")
	failures := 0
	for _, line := range s.ShapeChecks() {
		fmt.Println(line)
		if strings.HasPrefix(line, "[FAIL]") {
			failures++
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "repro: %d shape check(s) failed\n", failures)
		os.Exit(1)
	}
}
