// Command repro reproduces the paper's full evaluation in one run: it
// simulates the study window, applies the exact/RM1/RM2 matching
// framework, regenerates every table and figure (DESIGN.md E1-E13), and
// finishes with the qualitative shape checks comparing this run against
// the paper's reported results. Exit status is non-zero if any shape check
// fails.
//
// Usage:
//
//	repro [-seed N] [-days N] [-workers N]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"panrucio/internal/experiments"
	"panrucio/internal/sim"
)

func main() {
	seed := flag.Int64("seed", 1, "simulation seed")
	days := flag.Int("days", 8, "study-window length in days (paper: 8)")
	workers := flag.Int("workers", 0, "matcher worker goroutines (0 = all cores, 1 = serial)")
	flag.Parse()

	cfg := sim.PaperConfig(*seed)
	cfg.Days = *days

	fmt.Printf("panrucio repro: %d-day window, seed %d\n", *days, *seed)
	start := time.Now()
	s := experiments.RunWorkers(cfg, *workers)
	fmt.Printf("simulation + matching (%d worker(s)) completed in %v\n\n",
		s.Workers, time.Since(start).Round(time.Millisecond))

	fmt.Print(s.RenderAll())

	fmt.Println("== shape checks vs. paper ==")
	failures := 0
	for _, line := range s.ShapeChecks() {
		fmt.Println(line)
		if strings.HasPrefix(line, "[FAIL]") {
			failures++
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "repro: %d shape check(s) failed\n", failures)
		os.Exit(1)
	}
}
