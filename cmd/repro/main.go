// Command repro reproduces the paper's full evaluation in one run: it
// simulates the study window, applies the exact/RM1/RM2 matching
// framework, regenerates every table and figure (DESIGN.md E1-E13), and
// finishes with the qualitative shape checks comparing this run against
// the paper's reported results. Exit status is non-zero if any shape check
// fails.
//
// Usage:
//
//	repro [-seed N] [-days N] [-workers N]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"panrucio/internal/experiments"
	"panrucio/internal/sim"
)

type options struct {
	seed    int64
	days    int
	workers int
}

// parseFlags parses the command line into options; kept separate from main
// so flag handling is testable without spawning the paper-scale run.
func parseFlags(args []string) (*options, error) {
	o := &options{}
	fs := flag.NewFlagSet("repro", flag.ContinueOnError)
	fs.Int64Var(&o.seed, "seed", 1, "simulation seed")
	fs.IntVar(&o.days, "days", 8, "study-window length in days (paper: 8)")
	fs.IntVar(&o.workers, "workers", 0, "matcher worker goroutines (0 = all cores, 1 = serial)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if o.days <= 0 {
		return nil, fmt.Errorf("-days must be positive, got %d", o.days)
	}
	return o, nil
}

// config builds the scenario the options select.
func (o *options) config() sim.Config {
	cfg := sim.PaperConfig(o.seed)
	cfg.Days = o.days
	return cfg
}

func main() {
	o, err := parseFlags(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(2)
	}

	fmt.Printf("panrucio repro: %d-day window, seed %d\n", o.days, o.seed)
	start := time.Now()
	s := experiments.RunWorkers(o.config(), o.workers)
	fmt.Printf("simulation + matching (%d worker(s)) completed in %v\n\n",
		s.Workers, time.Since(start).Round(time.Millisecond))

	fmt.Print(s.RenderAll())

	fmt.Println("== shape checks vs. paper ==")
	failures := 0
	for _, line := range s.ShapeChecks() {
		fmt.Println(line)
		if strings.HasPrefix(line, "[FAIL]") {
			failures++
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "repro: %d shape check(s) failed\n", failures)
		os.Exit(1)
	}
}
