package main

import "testing"

func TestParseFlagsDefaults(t *testing.T) {
	o, err := parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	if o.seed != 1 || o.days != 8 || o.workers != 0 || o.scale != 1 || o.shards != 0 ||
		o.segmentRows != 0 {
		t.Errorf("unexpected defaults: %+v", o)
	}
	cfg := o.config()
	if cfg.Seed != 1 || cfg.Days != 8 {
		t.Errorf("config did not carry the options: %+v", cfg)
	}
	if cfg.Scale != 1 || cfg.Shards != 0 || cfg.SegmentRows != 0 {
		t.Errorf("default scale/shards/segment-rows should be neutral: %+v", cfg)
	}
}

func TestParseFlagsOverrides(t *testing.T) {
	o, err := parseFlags([]string{"-seed", "7", "-days", "3", "-workers", "4", "-scale", "20",
		"-shards", "4", "-segment-rows", "4096"})
	if err != nil {
		t.Fatal(err)
	}
	if o.seed != 7 || o.days != 3 || o.workers != 4 || o.scale != 20 || o.shards != 4 ||
		o.segmentRows != 4096 {
		t.Errorf("overrides lost: %+v", o)
	}
	if cfg := o.config(); cfg.Seed != 7 || cfg.Days != 3 || cfg.Scale != 20 || cfg.Shards != 4 ||
		cfg.SegmentRows != 4096 {
		t.Errorf("config did not carry the overrides: %+v", cfg)
	}
}

func TestParseFlagsRejectsBadValues(t *testing.T) {
	for _, args := range [][]string{
		{"-days", "0"},
		{"-days", "-2"},
		{"-seed", "x"},
		{"-scale", "-1"},
		{"-workers", "-1"},
		{"-shards", "-2"},
		{"-segment-rows", "-1"},
		{"-unknown"},
	} {
		if _, err := parseFlags(args); err == nil {
			t.Errorf("args %v accepted, want error", args)
		}
	}
}
