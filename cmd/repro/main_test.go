package main

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestParseFlagsDefaults(t *testing.T) {
	o, err := parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	if o.seed != 1 || o.days != 8 || o.workers != 0 || o.scale != 1 || o.shards != 0 ||
		o.segmentRows != 0 {
		t.Errorf("unexpected defaults: %+v", o)
	}
	cfg := o.config()
	if cfg.Seed != 1 || cfg.Days != 8 {
		t.Errorf("config did not carry the options: %+v", cfg)
	}
	if cfg.Scale != 1 || cfg.Shards != 0 || cfg.SegmentRows != 0 {
		t.Errorf("default scale/shards/segment-rows should be neutral: %+v", cfg)
	}
}

func TestParseFlagsOverrides(t *testing.T) {
	o, err := parseFlags([]string{"-seed", "7", "-days", "3", "-workers", "4", "-scale", "20",
		"-shards", "4", "-segment-rows", "4096"})
	if err != nil {
		t.Fatal(err)
	}
	if o.seed != 7 || o.days != 3 || o.workers != 4 || o.scale != 20 || o.shards != 4 ||
		o.segmentRows != 4096 {
		t.Errorf("overrides lost: %+v", o)
	}
	if cfg := o.config(); cfg.Seed != 7 || cfg.Days != 3 || cfg.Scale != 20 || cfg.Shards != 4 ||
		cfg.SegmentRows != 4096 {
		t.Errorf("config did not carry the overrides: %+v", cfg)
	}
}

func TestParseFlagsRejectsBadValues(t *testing.T) {
	for _, args := range [][]string{
		{"-days", "0"},
		{"-days", "-2"},
		{"-seed", "x"},
		{"-scale", "-1"},
		{"-workers", "-1"},
		{"-shards", "-2"},
		{"-segment-rows", "-1"},
		{"-trace-every", "0"},
		{"-trace-every", "-3"},
		{"-unknown"},
	} {
		if _, err := parseFlags(args); err == nil {
			t.Errorf("args %v accepted, want error", args)
		}
	}
}

// TestRunSuiteTrace runs a tiny traced scenario and checks the JSONL
// trace is well-formed and that tracing does not change the rendered
// output.
func TestRunSuiteTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	traced, err := parseFlags([]string{"-days", "1", "-scale", "0.05", "-workers", "1",
		"-trace", path, "-trace-every", "6"})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := parseFlags([]string{"-days", "1", "-scale", "0.05", "-workers", "1"})
	if err != nil {
		t.Fatal(err)
	}

	st, err := runSuite(traced)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := runSuite(plain)
	if err != nil {
		t.Fatal(err)
	}
	if st.RenderAll() != sp.RenderAll() {
		t.Error("tracing changed the rendered output")
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var checkpoints, spans int
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var rec struct {
			Type   string         `json:"type"`
			Name   string         `json:"name"`
			VTSecs int64          `json:"vt_secs"`
			Fields map[string]any `json:"fields"`
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad trace line %q: %v", sc.Text(), err)
		}
		switch {
		case rec.Type == "event" && rec.Name == "checkpoint":
			checkpoints++
			if _, ok := rec.Fields["transfers"]; !ok {
				t.Errorf("checkpoint missing transfers field: %v", rec.Fields)
			}
		case rec.Type == "span" && rec.Name == "run":
			spans++
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	// 1 virtual day at 6-hour checkpoints: at least 2 interior checkpoints.
	if checkpoints < 2 || spans != 1 {
		t.Errorf("trace had %d checkpoints and %d run spans", checkpoints, spans)
	}
}
