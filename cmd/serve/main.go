// Command serve runs the query-serving front end: it simulates a scenario
// (or ingests one live) and serves the paper's experiment analyses, match
// lookups, store statistics, and sweep launches over HTTP/JSON.
//
// Usage:
//
//	serve [-addr host:port] [-seed N] [-days N] [-quick] [-scale X]
//	      [-shards N] [-segment-rows N] [-match-workers N] [-cache N]
//	      [-live] [-every HOURS] [-sweep-cap N] [-pprof]
//
// By default the scenario runs to completion first and the server answers
// over the frozen store. With -live the scenario ingests in the background
// and the server opens a read window at every -every hours of virtual
// time, answering queries over the records ingested so far.
//
// GET /metrics exposes the process metrics in Prometheus text format;
// -pprof additionally mounts net/http/pprof under /debug/pprof/.
//
// The bound address is printed to stderr (use -addr :0 for an ephemeral
// port). SIGINT/SIGTERM shut the listener down gracefully, draining
// in-flight requests.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"panrucio/internal/serve"
	"panrucio/internal/sim"
	"panrucio/internal/simtime"
)

type options struct {
	addr         string
	seed         int64
	days         int
	quick        bool
	scale        float64
	shards       int
	segmentRows  int
	matchWorkers int
	cache        int
	live         bool
	everyHours   float64
	sweepCap     int
	pprof        bool
}

// parseFlags parses the command line into options, validating ranges up
// front so bad invocations fail before any simulation starts.
func parseFlags(args []string) (*options, error) {
	o := &options{}
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	fs.StringVar(&o.addr, "addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
	fs.Int64Var(&o.seed, "seed", 1, "simulation seed")
	fs.IntVar(&o.days, "days", 0, "study-window length in days (0 = scenario default)")
	fs.BoolVar(&o.quick, "quick", false, "serve the quick 2-day scenario instead of the paper window")
	fs.Float64Var(&o.scale, "scale", 0, "event-volume multiplier (0 or 1 = calibrated default)")
	fs.IntVar(&o.shards, "shards", 0, "metastore shards (0 = default); responses are byte-identical for any value")
	fs.IntVar(&o.segmentRows, "segment-rows", 0, "metastore per-shard segment-seal threshold (0 = default)")
	fs.IntVar(&o.matchWorkers, "match-workers", 0, "matcher goroutines per analysis (0 = all cores)")
	fs.IntVar(&o.cache, "cache", 0, "result-cache entries (0 = default 256)")
	fs.BoolVar(&o.live, "live", false, "serve while the scenario ingests (read windows at every -every hours)")
	fs.Float64Var(&o.everyHours, "every", 6, "virtual hours between live read windows (with -live)")
	fs.IntVar(&o.sweepCap, "sweep-cap", 0, "max scenarios one /api/sweep launch may run (0 = default 16)")
	fs.BoolVar(&o.pprof, "pprof", false, "expose net/http/pprof under /debug/pprof/")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if o.days < 0 {
		return nil, fmt.Errorf("-days must be >= 0, got %d", o.days)
	}
	if o.quick && o.days != 0 {
		return nil, errors.New("-quick and -days are mutually exclusive")
	}
	if o.scale < 0 {
		return nil, fmt.Errorf("-scale must be >= 0, got %g", o.scale)
	}
	if o.shards < 0 {
		return nil, fmt.Errorf("-shards must be >= 0, got %d", o.shards)
	}
	if o.segmentRows < 0 {
		return nil, fmt.Errorf("-segment-rows must be >= 0, got %d", o.segmentRows)
	}
	if o.matchWorkers < 0 {
		return nil, fmt.Errorf("-match-workers must be >= 0, got %d", o.matchWorkers)
	}
	if o.cache < 0 {
		return nil, fmt.Errorf("-cache must be >= 0, got %d", o.cache)
	}
	if o.sweepCap < 0 {
		return nil, fmt.Errorf("-sweep-cap must be >= 0, got %d", o.sweepCap)
	}
	// -every is validated unconditionally (not just with -live): a bad
	// value should fail up front, not lie dormant until -live is added.
	if o.everyHours <= 0 {
		return nil, fmt.Errorf("-every must be > 0, got %g", o.everyHours)
	}
	return o, nil
}

// config builds the scenario the server runs.
func config(o *options) sim.Config {
	var cfg sim.Config
	if o.quick {
		cfg = sim.QuickConfig(o.seed)
	} else {
		cfg = sim.Config{Seed: o.seed, Days: o.days}
	}
	cfg.Scale = o.scale
	cfg.Shards = o.shards
	cfg.SegmentRows = o.segmentRows
	return cfg
}

// build constructs the server: a frozen one after running the scenario to
// completion, or a live one ingesting in the background.
func build(o *options) *serve.Server {
	cfg := config(o)
	opt := serve.Options{
		MatchWorkers:     o.matchWorkers,
		CacheEntries:     o.cache,
		SweepScenarioCap: o.sweepCap,
	}
	if o.live {
		every := simtime.VTime(o.everyHours * float64(simtime.Hour))
		return serve.NewLive(cfg, every, opt)
	}
	return serve.NewFrozen(sim.Run(cfg), opt)
}

// handler wraps the server with the optional pprof routes. The profiling
// endpoints live on the outer mux, so they answer even while the serving
// store is mid-ingest with no open read window — exactly when a profile is
// most wanted.
func handler(o *options, s *serve.Server) http.Handler {
	if !o.pprof {
		return s
	}
	mux := http.NewServeMux()
	mux.Handle("/", s)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func main() {
	o, err := parseFlags(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(2)
	}
	start := time.Now()
	s := build(o)
	if !o.live {
		fmt.Fprintf(os.Stderr, "serve: scenario ready in %v\n", time.Since(start).Round(time.Millisecond))
	}

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "serve: listening on http://%s (digest %s)\n", ln.Addr(), s.Digest())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	srv := &http.Server{Handler: handler(o, s)}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	select {
	case err := <-done:
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintln(os.Stderr, "serve: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
}
