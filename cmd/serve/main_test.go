package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestParseFlagsDefaults(t *testing.T) {
	o, err := parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	if o.addr != "127.0.0.1:8080" || o.seed != 1 || o.live || o.quick {
		t.Fatalf("unexpected defaults: %+v", o)
	}
	if o.everyHours != 6 {
		t.Fatalf("every = %g, want 6", o.everyHours)
	}
}

func TestParseFlagsRejectsBadValues(t *testing.T) {
	cases := [][]string{
		{"-days", "-1"},
		{"-quick", "-days", "3"},
		{"-scale", "-0.5"},
		{"-shards", "-1"},
		{"-segment-rows", "-8"},
		{"-match-workers", "-2"},
		{"-cache", "-1"},
		{"-sweep-cap", "-1"},
		{"-live", "-every", "0"},
		{"-live", "-every", "-2"},
		{"-every", "0"},  // rejected even without -live
		{"-every", "-2"}, // rejected even without -live
		{"-nosuch"},
	}
	for _, args := range cases {
		if _, err := parseFlags(args); err == nil {
			t.Errorf("parseFlags(%v) accepted, want error", args)
		}
	}
}

func TestParseFlagsAccepts(t *testing.T) {
	o, err := parseFlags([]string{
		"-addr", ":0", "-quick", "-seed", "7", "-shards", "8",
		"-segment-rows", "64", "-live", "-every", "12", "-cache", "32",
		"-pprof",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !o.pprof {
		t.Fatal("pprof flag not set")
	}
	cfg := config(o)
	if cfg.Seed != 7 || cfg.Days != 2 || cfg.Shards != 8 || cfg.SegmentRows != 64 {
		t.Fatalf("config = %+v", cfg)
	}
}

// TestBuildQuickFrozenServes is the command-level smoke: the built server
// answers over a real listener, including the metrics and pprof routes.
func TestBuildQuickFrozenServes(t *testing.T) {
	o, err := parseFlags([]string{"-quick", "-shards", "2", "-pprof"})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(handler(o, build(o)))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	resp2, err := http.Get(ts.URL + "/api/meta")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK ||
		!strings.Contains(resp2.Header.Get("Content-Type"), "application/json") {
		t.Fatalf("meta = %d %s", resp2.StatusCode, resp2.Header.Get("Content-Type"))
	}

	resp3, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp3.Body)
	resp3.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp3.StatusCode != http.StatusOK ||
		!strings.Contains(resp3.Header.Get("Content-Type"), "version=0.0.4") {
		t.Fatalf("metrics = %d %s", resp3.StatusCode, resp3.Header.Get("Content-Type"))
	}
	for _, want := range []string{
		"# TYPE serve_request_seconds histogram",
		"serve_cache_hits_total",
		"serve_requests_total",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	resp4, err := http.Get(ts.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp4.Body.Close()
	if resp4.StatusCode != http.StatusOK {
		t.Fatalf("pprof cmdline = %d", resp4.StatusCode)
	}
}

// TestHandlerWithoutPprof checks the default: no profiling routes.
func TestHandlerWithoutPprof(t *testing.T) {
	o, err := parseFlags([]string{"-quick", "-shards", "2"})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(handler(o, build(o)))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof without -pprof = %d, want 404", resp.StatusCode)
	}
}
