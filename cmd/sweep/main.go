// Command sweep runs a grid of simulation scenarios concurrently and
// prints one aggregate report: per-scenario Exact/RM1/RM2 match rates
// (the E4/E5 tables across the grid), shape-check pass/fail counts, and
// the match-rate curves. The report is byte-identical for any -workers
// value; timing goes to stderr so stdout stays deterministic.
//
// Usage:
//
//	sweep [-grid robustness|seeds|mix] [-seed N] [-scenarios N]
//	      [-workers N] [-match-workers N] [-shards N] [-segment-rows N]
//	      [-format markdown|json] [-trace FILE] [-trace-every HOURS]
//
// The canned grids are quick-scale (2-day scenarios): "robustness" is the
// E14 corruption ramp, "seeds" an 8-way seed fan-out, "mix" the workload
// mix crossed with background-traffic intensity, and "verify" the E15
// integrity grid — per-channel ingest corruption (tolerance) paired with
// the same channel's at-rest tamper of sealed segments (detection).
//
// -trace writes a JSONL run trace: per-scenario checkpoint events (named
// by scenario id, so concurrent workers' records stay attributable) and
// one span per scenario. Tracing never changes the report.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"panrucio/internal/obs"
	"panrucio/internal/sim"
	"panrucio/internal/simtime"
	"panrucio/internal/sweep"
)

type options struct {
	seed         int64
	grid         string
	scenarios    int
	workers      int
	matchWorkers int
	shards       int
	segmentRows  int
	format       string
	trace        string
	traceEvery   float64
}

// parseFlags parses the command line into options, validating the grid and
// format names so bad invocations fail before any simulation starts.
func parseFlags(args []string) (*options, error) {
	o := &options{}
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	fs.Int64Var(&o.seed, "seed", 1, "base simulation seed")
	fs.StringVar(&o.grid, "grid", "robustness", "canned grid: robustness (E14 corruption ramp), seeds, mix, verify (E15 tamper detection)")
	fs.IntVar(&o.scenarios, "scenarios", 0, "run only the first N scenarios of the grid (0 = all)")
	fs.IntVar(&o.workers, "workers", 0, "concurrent scenarios (0 = all cores, 1 = serial)")
	fs.IntVar(&o.matchWorkers, "match-workers", 1, "matcher goroutines per scenario (0 = all cores)")
	fs.IntVar(&o.shards, "shards", 0, "metastore shards per worker store (0 = default)")
	fs.IntVar(&o.segmentRows, "segment-rows", 0, "metastore per-shard segment-seal threshold (0 = default)")
	fs.StringVar(&o.format, "format", "markdown", "report format: markdown or json")
	fs.StringVar(&o.trace, "trace", "", "write a JSONL run trace to this file")
	fs.Float64Var(&o.traceEvery, "trace-every", 6, "virtual hours between trace checkpoints (with -trace)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	switch o.grid {
	case "robustness", "seeds", "mix", "verify":
	default:
		return nil, fmt.Errorf("unknown grid %q (want robustness, seeds, mix, or verify)", o.grid)
	}
	switch o.format {
	case "markdown", "json":
	default:
		return nil, fmt.Errorf("unknown format %q (want markdown or json)", o.format)
	}
	if o.scenarios < 0 {
		return nil, fmt.Errorf("-scenarios must be >= 0, got %d", o.scenarios)
	}
	if o.workers < 0 {
		return nil, fmt.Errorf("-workers must be >= 0, got %d", o.workers)
	}
	if o.matchWorkers < 0 {
		return nil, fmt.Errorf("-match-workers must be >= 0, got %d", o.matchWorkers)
	}
	if o.shards < 0 {
		return nil, fmt.Errorf("-shards must be >= 0, got %d", o.shards)
	}
	if o.segmentRows < 0 {
		return nil, fmt.Errorf("-segment-rows must be >= 0, got %d", o.segmentRows)
	}
	if o.traceEvery <= 0 {
		return nil, fmt.Errorf("-trace-every must be > 0, got %g", o.traceEvery)
	}
	return o, nil
}

// buildGrid materializes the selected canned grid, truncated to the first
// -scenarios entries.
func buildGrid(o *options) []sweep.Scenario {
	base := sim.QuickConfig(o.seed)
	var scenarios []sweep.Scenario
	switch o.grid {
	case "robustness":
		scenarios = sweep.CorruptionRamp(base, sweep.DefaultRampRates())
	case "seeds":
		scenarios = sweep.SeedFanOut(base, 8)
	case "mix":
		scenarios = sweep.MixGrid(base)
	case "verify":
		scenarios = sweep.VerifyGrid(base, sweep.DefaultVerifyProb)
	}
	if o.scenarios > 0 && o.scenarios < len(scenarios) {
		scenarios = scenarios[:o.scenarios]
	}
	return scenarios
}

// run executes the sweep and renders the report — the deterministic part
// of the command, shared with the byte-identical-output test. The trace
// (if any) goes to a side file, so stdout stays deterministic.
func run(o *options) (string, error) {
	opt := sweep.Options{
		Workers:      o.workers,
		MatchWorkers: o.matchWorkers,
		Shards:       o.shards,
		SegmentRows:  o.segmentRows,
	}
	if o.trace != "" {
		f, err := os.Create(o.trace)
		if err != nil {
			return "", err
		}
		defer f.Close()
		opt.Trace = obs.NewTrace(f)
		opt.TraceEvery = simtime.VTime(o.traceEvery * float64(simtime.Hour))
	}
	rep := sweep.Run(buildGrid(o), opt)
	if o.format == "json" {
		return rep.JSON(), nil
	}
	return rep.Markdown(), nil
}

func main() {
	o, err := parseFlags(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(2)
	}
	n := len(buildGrid(o))
	start := time.Now()
	out, err := run(o)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
	elapsed := time.Since(start)
	fmt.Print(out)
	fmt.Fprintf(os.Stderr, "sweep: %d scenario(s) in %v (%.2f scenarios/sec)\n",
		n, elapsed.Round(time.Millisecond), float64(n)/elapsed.Seconds())
}
