package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseFlagsDefaults(t *testing.T) {
	o, err := parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	if o.grid != "robustness" || o.format != "markdown" || o.seed != 1 ||
		o.scenarios != 0 || o.workers != 0 || o.matchWorkers != 1 || o.shards != 0 {
		t.Errorf("unexpected defaults: %+v", o)
	}
}

func TestParseFlagsRejectsBadValues(t *testing.T) {
	for _, args := range [][]string{
		{"-grid", "nope"},
		{"-format", "xml"},
		{"-scenarios", "-3"},
		{"-workers", "-1"},
		{"-match-workers", "-4"},
		{"-shards", "-1"},
		{"-segment-rows", "-1"},
		{"-trace-every", "0"},
		{"-trace-every", "-1"},
		{"-bogus"},
	} {
		if _, err := parseFlags(args); err == nil {
			t.Errorf("args %v accepted, want error", args)
		}
	}
}

func TestBuildGridSelectionAndTruncation(t *testing.T) {
	o, err := parseFlags([]string{"-grid", "mix", "-scenarios", "4", "-seed", "9"})
	if err != nil {
		t.Fatal(err)
	}
	grid := buildGrid(o)
	if len(grid) != 4 {
		t.Fatalf("-scenarios 4 gave %d scenarios", len(grid))
	}
	for _, sc := range grid {
		if sc.Config.Seed != 9 {
			t.Errorf("scenario %s lost the base seed: %d", sc.ID, sc.Config.Seed)
		}
	}
	o, _ = parseFlags([]string{"-grid", "seeds"})
	if got := len(buildGrid(o)); got != 8 {
		t.Errorf("seeds grid has %d scenarios, want 8", got)
	}
}

// Acceptance: sweep output is byte-identical for -workers 1 and -workers 8
// on the same scenario grid, in both formats, for any shard count crossed
// with any segment size.
func TestOutputByteIdenticalAcrossWorkers(t *testing.T) {
	for _, format := range []string{"markdown", "json"} {
		args := []string{"-scenarios", "2", "-format", format}
		serial, err := parseFlags(append(args, "-workers", "1"))
		if err != nil {
			t.Fatal(err)
		}
		a, err := run(serial)
		if err != nil {
			t.Fatal(err)
		}
		for _, extra := range [][]string{
			{"-workers", "8", "-match-workers", "4", "-shards", "2"},
			{"-workers", "8", "-shards", "8", "-segment-rows", "512"},
			{"-workers", "2", "-shards", "1", "-segment-rows", "4096"},
		} {
			parallel, err := parseFlags(append(args, extra...))
			if err != nil {
				t.Fatal(err)
			}
			b, err := run(parallel)
			if err != nil {
				t.Fatal(err)
			}
			if a != b {
				t.Errorf("%s output diverged between -workers 1 and %v", format, extra)
			}
		}
		if format == "markdown" && !strings.Contains(a, "Scenario sweep — 2 scenario(s)") {
			t.Errorf("markdown header missing:\n%s", a)
		}
	}
}

// TestTraceSideFileDoesNotChangeReport runs a tiny traced sweep with
// concurrent workers: the report matches the untraced run and the trace
// file holds well-formed JSONL with per-scenario records.
func TestTraceSideFileDoesNotChangeReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	args := []string{"-scenarios", "2", "-format", "json"}
	plain, err := parseFlags(args)
	if err != nil {
		t.Fatal(err)
	}
	traced, err := parseFlags(append(args, "-workers", "2", "-trace", path, "-trace-every", "12"))
	if err != nil {
		t.Fatal(err)
	}
	a, err := run(plain)
	if err != nil {
		t.Fatal(err)
	}
	b, err := run(traced)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("tracing changed the report")
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]int{}
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var rec struct {
			Type string `json:"type"`
			Name string `json:"name"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad trace line %q: %v", line, err)
		}
		if rec.Type == "span" {
			names[rec.Name]++
		}
	}
	if len(names) != 2 {
		t.Errorf("want one span per scenario (2), got %v", names)
	}
}
