package main

import (
	"strings"
	"testing"
)

func TestParseFlagsDefaults(t *testing.T) {
	o, err := parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	if o.grid != "robustness" || o.format != "markdown" || o.seed != 1 ||
		o.scenarios != 0 || o.workers != 0 || o.matchWorkers != 1 || o.shards != 0 {
		t.Errorf("unexpected defaults: %+v", o)
	}
}

func TestParseFlagsRejectsBadValues(t *testing.T) {
	for _, args := range [][]string{
		{"-grid", "nope"},
		{"-format", "xml"},
		{"-scenarios", "-3"},
		{"-workers", "-1"},
		{"-match-workers", "-4"},
		{"-shards", "-1"},
		{"-segment-rows", "-1"},
		{"-bogus"},
	} {
		if _, err := parseFlags(args); err == nil {
			t.Errorf("args %v accepted, want error", args)
		}
	}
}

func TestBuildGridSelectionAndTruncation(t *testing.T) {
	o, err := parseFlags([]string{"-grid", "mix", "-scenarios", "4", "-seed", "9"})
	if err != nil {
		t.Fatal(err)
	}
	grid := buildGrid(o)
	if len(grid) != 4 {
		t.Fatalf("-scenarios 4 gave %d scenarios", len(grid))
	}
	for _, sc := range grid {
		if sc.Config.Seed != 9 {
			t.Errorf("scenario %s lost the base seed: %d", sc.ID, sc.Config.Seed)
		}
	}
	o, _ = parseFlags([]string{"-grid", "seeds"})
	if got := len(buildGrid(o)); got != 8 {
		t.Errorf("seeds grid has %d scenarios, want 8", got)
	}
}

// Acceptance: sweep output is byte-identical for -workers 1 and -workers 8
// on the same scenario grid, in both formats, for any shard count crossed
// with any segment size.
func TestOutputByteIdenticalAcrossWorkers(t *testing.T) {
	for _, format := range []string{"markdown", "json"} {
		args := []string{"-scenarios", "2", "-format", format}
		serial, err := parseFlags(append(args, "-workers", "1"))
		if err != nil {
			t.Fatal(err)
		}
		a := run(serial)
		for _, extra := range [][]string{
			{"-workers", "8", "-match-workers", "4", "-shards", "2"},
			{"-workers", "8", "-shards", "8", "-segment-rows", "512"},
			{"-workers", "2", "-shards", "1", "-segment-rows", "4096"},
		} {
			parallel, err := parseFlags(append(args, extra...))
			if err != nil {
				t.Fatal(err)
			}
			if b := run(parallel); a != b {
				t.Errorf("%s output diverged between -workers 1 and %v", format, extra)
			}
		}
		if format == "markdown" && !strings.Contains(a, "Scenario sweep — 2 scenario(s)") {
			t.Errorf("markdown header missing:\n%s", a)
		}
	}
}
