// Package panrucio is a from-scratch Go reproduction of "Data Management
// System Analysis for Distributed Computing Workloads" (Hsu et al., SC
// Workshops '25, DOI 10.1145/3731599.3767370): a discrete-event simulation
// of the ATLAS distributed computing stack (the PanDA workload manager,
// the Rucio data-management system, the WLCG network) plus a faithful
// implementation of the paper's job-to-transfer metadata-matching
// framework (exact Algorithm 1 and the relaxed RM1/RM2 strategies) and
// the analyses that regenerate every table and figure of the evaluation.
//
// The root package holds only documentation and the benchmark harness
// (bench_test.go); the implementation lives under internal/ (see DESIGN.md
// for the system inventory) and the runnable entry points under cmd/ and
// examples/.
package panrucio
