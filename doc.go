// Package panrucio is a from-scratch Go reproduction of "Data Management
// System Analysis for Distributed Computing Workloads" (Hsu et al., SC
// Workshops '25, DOI 10.1145/3731599.3767370): a discrete-event simulation
// of the ATLAS distributed computing stack (the PanDA workload manager,
// the Rucio data-management system, the WLCG network) plus a faithful
// implementation of the paper's job-to-transfer metadata-matching
// framework (exact Algorithm 1 and the relaxed RM1/RM2 strategies), the
// analyses that regenerate every table and figure of the evaluation
// (E1–E13), and the scenario-sweep engine (internal/sweep, E14) that runs
// grids of scenario variations concurrently for robustness and scale
// studies.
//
// The root package holds only documentation and test harnesses: the
// per-experiment benchmark suite (bench_test.go, see BENCHMARKS.md), the
// ablation benchmarks (ablation_test.go), and the paper-scale acceptance
// test (repro_test.go). The implementation lives under internal/ — every
// package there carries a doc.go describing its role, invariants, and
// entry points; DESIGN.md holds the system inventory. Runnable entry
// points are under cmd/ (repro, analyze, sweep, gridsim) and examples/
// (see examples/README.md).
//
// Repo-wide invariant: every run is a pure function of its sim.Config,
// seed included, and parallelism never changes results — the matcher is
// sharded and the sweep engine pooled, both with deterministic, worker-
// count-independent output.
package panrucio
