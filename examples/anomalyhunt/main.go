// Anomalyhunt: the paper's Section 5.3/5.4 workflow as a program. It
// simulates the grid, exact-matches jobs to transfers, then hunts the
// anomaly classes the paper reports: jobs whose queuing time is dominated
// by staging (Figs. 5-6), the failure/transfer-time correlation (Fig. 9),
// and the three case-study patterns (Figs. 10-12).
package main

import (
	"fmt"

	"panrucio/internal/analysis"
	"panrucio/internal/core"
	"panrucio/internal/experiments"
	"panrucio/internal/sim"
)

func main() {
	s := experiments.Run(sim.PaperConfig(7))
	fmt.Printf("matched %d jobs exactly (%.2f%%)\n\n",
		s.Cmp.Exact.MatchedJobs, s.Cmp.Exact.MatchedJobPct())

	// Staging-dominated jobs, split by locality class.
	local := s.Fig5()
	remote := s.Fig6()
	fmt.Println(analysis.TopJobsTable("local-transfer jobs with >=10% staging time", local).Render())
	fmt.Println(analysis.TopJobsTable("remote-transfer jobs with >=10% staging time", remote).Render())
	fmt.Printf("failure rate among extreme local jobs:  %.0f%%\n", 100*analysis.FailedFraction(local))
	fmt.Printf("failure rate among extreme remote jobs: %.0f%%\n\n", 100*analysis.FailedFraction(remote))

	// The failure / transfer-time correlation.
	tc := s.Fig9()
	fmt.Println(tc.Table().Render())
	fmt.Printf("jobs above the 75%% transfer-time threshold: %d (the paper finds these skew failed)\n\n",
		tc.AboveThreshold(75))

	// Case studies.
	if cs := s.Fig10(); cs != nil {
		fmt.Println(cs.TimelineTable().Render())
		fmt.Printf("-> bandwidth under-utilization: sequential=%v, throughput spread %.1fx\n\n",
			cs.Sequential, cs.ThroughputSpread)
	}
	if cs := s.Fig11(); cs != nil {
		fmt.Println(cs.TimelineTable().Render())
		fmt.Println("-> transfer spans queuing and execution; plausible failure driver")
		fmt.Println()
	}
	if cs := s.Fig12(); cs != nil {
		fmt.Println(cs.TimelineTable().Render())
		var dup int
		for _, g := range core.FindRedundant(&cs.Match) {
			dup += len(g.Events) - 1
		}
		fmt.Printf("-> %d redundant transfer(s) — avoidable data movement\n", dup)
	}
}
