// Coopt: the co-optimization study the paper's conclusion calls for. Four
// brokerage policies run the identical contended workload: the paper's
// data-locality heuristic, a queue-aware variant, a joint policy in which
// PanDA and Rucio share performance awareness, and a naive random
// baseline. The output shows the Section 3.1 trade-off: strict locality
// minimizes network traffic but concentrates load; the shared-awareness
// policies cut queuing time by accepting some remote movement.
package main

import (
	"fmt"

	"panrucio/internal/coopt"
	"panrucio/internal/workload"
)

func main() {
	cfg := coopt.ContentionConfig(11, 2, 0.01) // 2 days, 1% of grid CPU
	cfg.Workload = workload.Config{
		InitialDatasets:  120,
		UserTaskInterval: 240,
		ProdTaskInterval: 900,
		UserJobsMean:     14,
		ProdJobsMean:     25,
	}

	fmt.Println("running the same workload under four brokerage policies...")
	outcomes := coopt.Compare(cfg, coopt.DefaultPolicies())
	fmt.Println(coopt.Table(outcomes).Render())

	ranked := coopt.Rank(outcomes)
	best, worst := ranked[0], ranked[len(ranked)-1]
	fmt.Printf("best scheduling: %s (mean queue %.0fs)\n", best.Policy, best.MeanQueueS)
	fmt.Printf("worst scheduling: %s (mean queue %.0fs)\n", worst.Policy, worst.MeanQueueS)

	var dl, jt coopt.Outcome
	for _, o := range outcomes {
		switch o.Policy {
		case "data-locality":
			dl = o
		case "joint":
			jt = o
		}
	}
	fmt.Printf("\nthe trade-off: joint brokerage cuts mean queue time %.0fs -> %.0fs (%.0f%%)\n",
		dl.MeanQueueS, jt.MeanQueueS, 100*(dl.MeanQueueS-jt.MeanQueueS)/dl.MeanQueueS)
	fmt.Printf("at the cost of remote download volume %.1f%% -> %.1f%% of bytes moved\n",
		100*dl.RemoteFraction(), 100*jt.RemoteFraction())
}
