// Heatmap: reproduce the paper's Section 3.2 motivation analysis — the
// spatially imbalanced site-to-site transfer matrix (Fig. 3) and the
// unsteady per-connection bandwidth behaviour (Figs. 7-8) — directly from
// the raw transfer-event stream, without any job matching.
package main

import (
	"fmt"

	"panrucio/internal/analysis"
	"panrucio/internal/report"
	"panrucio/internal/sim"
	"panrucio/internal/simtime"
	"panrucio/internal/stats"
)

func main() {
	res := sim.Run(sim.PaperConfig(3))

	// Fig. 3: the transfer matrix and its imbalance statistics.
	h := analysis.BuildHeatmap(res.Store, res.Grid, res.WindowFrom, res.WindowTo)
	fmt.Println(h.Report(8).Render())
	fmt.Printf("imbalance: mean cell / geometric-mean cell = %.0fx (paper: ~70x)\n\n",
		h.MeanCell/h.GeoMeanCell)

	// Figs. 7-8: bandwidth over time on the busiest remote links and local
	// sites, binned at 5-minute resolution from the raw events.
	events := res.Store.Transfers(res.WindowFrom, res.WindowTo)
	for _, local := range []bool{false, true} {
		title := "remote connections"
		if local {
			title = "local sites"
		}
		var series []*report.Series
		for _, r := range analysis.TopRoutes(events, local, 6) {
			s := analysis.BandwidthSeries(analysis.RouteEvents(events, r),
				res.WindowFrom, res.WindowTo, 5*simtime.Minute)
			s.Name = r.String()
			series = append(series, s)
			fmt.Printf("%-40s peak %-12s fluctuation %.1fx\n", r,
				stats.FormatRate(s.MaxY()), analysis.FluctuationRatio(s))
		}
		fmt.Println()
		fmt.Println(report.RenderSeries("bandwidth at top "+title, 72, series))
	}
}
