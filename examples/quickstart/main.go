// Quickstart: simulate two days of the grid, link PanDA jobs to Rucio
// transfer events with the exact and relaxed matching strategies, and
// print the Table 2 comparison. This is the smallest end-to-end use of the
// public pipeline: sim.Run -> metastore -> core.Matcher -> analysis tables.
package main

import (
	"fmt"

	"panrucio/internal/analysis"
	"panrucio/internal/core"
	"panrucio/internal/records"
	"panrucio/internal/sim"
)

func main() {
	// 1. Simulate a reduced two-day scenario (deterministic for the seed).
	res := sim.Run(sim.QuickConfig(42))
	fmt.Printf("simulated window %s .. %s\n", res.WindowFrom, res.WindowTo)
	fmt.Printf("stored %d transfer events (%d with jeditaskid), %d job records\n\n",
		res.Store.TransferCount(), res.Store.TransfersWithTaskID(), res.Store.JobCount())

	// 2. Query the user jobs completed in the window (the paper's job set).
	jobs := res.Store.Jobs(res.WindowFrom, res.WindowTo, records.LabelUser)
	fmt.Printf("user jobs completed in window: %d\n\n", len(jobs))

	// 3. Run the three matching strategies and print the Table 2 pair.
	matcher := core.NewMatcher(res.Store)
	cmp := analysis.CompareMethods(matcher, jobs)
	fmt.Println(cmp.TransferCountTable().Render())
	fmt.Println(cmp.JobCountTable().Render())

	// 4. Inspect one match in detail.
	if len(cmp.Exact.Matches) > 0 {
		m := cmp.Exact.Matches[0]
		fmt.Printf("example match: job %d at %s linked to %d transfer(s), "+
			"transfer time = %.1f%% of queuing time\n",
			m.Job.PandaID, m.Job.ComputingSite, len(m.Transfers),
			100*m.QueueTransferFraction())
	}
}
