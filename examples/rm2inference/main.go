// Rm2inference: demonstrate the paper's Section 5.4 insight that relaxed
// matching is not just about coverage — RM2 matches let broken metadata be
// repaired. The program counts UNKNOWN/invalid endpoint labels among
// RM2-matched transfers, reconstructs them from duplicate evidence or the
// site condition, and estimates the avoidable bytes behind redundant
// transfers — the co-optimization opportunity the paper argues for.
package main

import (
	"fmt"

	"panrucio/internal/core"
	"panrucio/internal/experiments"
	"panrucio/internal/sim"
	"panrucio/internal/stats"
)

func main() {
	s := experiments.Run(sim.PaperConfig(5))
	rm2 := s.Cmp.RM2
	fmt.Printf("RM2 matched %d jobs / %d transfers (exact: %d / %d)\n\n",
		rm2.MatchedJobs, rm2.MatchedTransfers,
		s.Cmp.Exact.MatchedJobs, s.Cmp.Exact.MatchedTransfers)

	var broken, inferred, byDuplicate, bySiteCond int
	var redundantBytes int64
	redundantJobs := 0
	for i := range rm2.Matches {
		m := &rm2.Matches[i]
		for _, ev := range m.Transfers {
			if _, ok := s.Result.Grid.Site(ev.SourceSite); !ok {
				broken++
			} else if _, ok := s.Result.Grid.Site(ev.DestinationSite); !ok {
				broken++
			}
		}
		infs := core.InferUnknownSites(m, s.Result.Grid)
		inferred += len(infs)
		for _, inf := range infs {
			switch inf.Evidence {
			case "duplicate":
				byDuplicate++
			default:
				bySiteCond++
			}
		}
		groups := core.FindRedundant(m)
		if len(groups) > 0 {
			redundantJobs++
			for _, g := range groups {
				for _, ev := range g.Events[1:] { // every copy beyond the first is avoidable
					redundantBytes += ev.FileSize
				}
			}
		}
	}

	fmt.Printf("matched transfers with missing/invalid endpoint labels: %d\n", broken)
	fmt.Printf("labels reconstructed:                                   %d\n", inferred)
	fmt.Printf("  via duplicate-pair evidence (Table 3 pattern):        %d\n", byDuplicate)
	fmt.Printf("  via the site condition:                               %d\n", bySiteCond)
	fmt.Printf("jobs with redundant transfers:                          %d\n", redundantJobs)
	fmt.Printf("avoidable redundant volume:                             %s\n",
		stats.FormatBytes(float64(redundantBytes)))
	fmt.Println("\nEach reconstructed label converts an uncertain RM2 match toward an exact one;")
	fmt.Println("each redundant group is data movement a PanDA-Rucio co-design could skip.")
}
