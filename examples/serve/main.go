// Serve: stand up the query-serving front end over a live scenario and
// query it while it ingests — the "analysis as a service" direction of
// the paper's scalability discussion. The scenario runs in the
// background; every 12 virtual hours the server opens a read window and
// this program asks the mid-run store for its record counts and match
// rates, then prints the final frozen answer plus the cache's hit
// counters. Deterministic: the checkpoint sequence and every body are
// fixed by the seed.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"

	"panrucio/internal/serve"
	"panrucio/internal/sim"
	"panrucio/internal/simtime"
)

func get(url string) []byte {
	resp, err := http.Get(url)
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		panic(err)
	}
	return b
}

func main() {
	// 1. Start the quick scenario live, with a read window every 12
	// virtual hours, and put a real HTTP listener in front of it.
	s := serve.NewLive(sim.QuickConfig(42), 12*simtime.Hour, serve.Options{})
	ts := httptest.NewServer(s)
	defer ts.Close()
	fmt.Printf("serving digest %s\n\n", s.Digest())

	// 2. Watch the store grow across two mid-run windows. Requests issued
	// between windows block until the next checkpoint opens one.
	var meta struct {
		Epoch     uint64 `json:"epoch"`
		Jobs      int    `json:"jobs"`
		Transfers int    `json:"transfers"`
		Final     bool   `json:"final"`
	}
	for i := 0; i < 2; i++ {
		json.Unmarshal(get(ts.URL+"/api/meta"), &meta)
		fmt.Printf("epoch %d: %d jobs, %d transfers (final=%v)\n",
			meta.Epoch, meta.Jobs, meta.Transfers, meta.Final)
	}

	// 3. Wait for the run to finish and ask for the match-rate analysis
	// twice: the first request computes it, the second is a cache hit.
	<-s.Done()
	var body struct {
		Epoch uint64 `json:"epoch"`
		Rates []struct {
			Method      string  `json:"method"`
			TransferPct float64 `json:"transfer_pct"`
			JobPct      float64 `json:"job_pct"`
		} `json:"rates"`
	}
	json.Unmarshal(get(ts.URL+"/api/experiments/rates"), &body)
	get(ts.URL + "/api/experiments/rates")
	json.Unmarshal(get(ts.URL+"/api/meta"), &meta)
	fmt.Printf("\nfinal epoch %d: %d jobs, %d transfers\n", meta.Epoch, meta.Jobs, meta.Transfers)
	for _, r := range body.Rates {
		fmt.Printf("  %-6s matched %5.2f%% of transfers, %5.2f%% of jobs\n",
			r.Method, r.TransferPct, r.JobPct)
	}

	// 4. The repeated analysis was served from the epoch-keyed cache.
	st := s.CacheStats()
	fmt.Printf("\ncache: %d entries, %d hits, %d misses\n", st.Entries, st.Hits, st.Misses)
}
