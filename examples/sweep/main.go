// Sweep: build a two-axis scenario grid (workload mix × background
// intensity), run it concurrently through the sweep engine, and print the
// aggregate markdown report plus one derived curve. Shows the three
// layers of internal/sweep: grid construction (Expand / canned axes), the
// bounded worker pool with store reuse, and the deterministic report.
package main

import (
	"fmt"

	"panrucio/internal/sim"
	"panrucio/internal/sweep"
)

func main() {
	// 1. A grid is a cross product of axes over a base config. Quick base
	//    (2 simulated days) keeps the example fast; the same axes work on
	//    sim.PaperConfig.
	base := sim.QuickConfig(1)
	scenarios := sweep.Expand(base, sweep.WorkloadMixAxis(), sweep.BackgroundAxis(0, 1))
	fmt.Printf("grid: %d scenarios\n", len(scenarios))
	for _, sc := range scenarios {
		fmt.Printf("  %s\n", sc.ID)
	}
	fmt.Println()

	// 2. Run them over a bounded worker pool. The report is byte-identical
	//    for any worker count — each outcome lands at its scenario's index.
	rep := sweep.Run(scenarios, sweep.Options{Workers: 4})
	fmt.Print(rep.Markdown())

	// 3. Outcomes are plain values, so deriving custom views is ordinary
	//    slice code: here, how the task mix and background traffic move the
	//    event volume and the exact-matched share (background events carry
	//    no jeditaskid, but their network contention shifts transfer timing
	//    and with it the match set).
	fmt.Println("\nexact matched transfers per scenario:")
	for _, o := range rep.Outcomes {
		fmt.Printf("  %-24s %4d of %5d events (%.2f%% of task-carrying)\n",
			o.ID, o.Exact.MatchedTransfers, o.StoredEvents, o.Exact.TransferPct)
	}
}
