module panrucio

go 1.24
