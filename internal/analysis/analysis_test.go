package analysis

import (
	"math"
	"strings"
	"testing"

	"panrucio/internal/core"
	"panrucio/internal/metastore"
	"panrucio/internal/records"
	"panrucio/internal/report"
	"panrucio/internal/simtime"
	"panrucio/internal/topology"
)

func mkEvent(id int64, src, dst string, size int64, start, end simtime.VTime) *records.TransferEvent {
	return &records.TransferEvent{
		EventID: id, LFN: "f", SourceSite: src, DestinationSite: dst,
		FileSize: size, StartedAt: start, EndedAt: end,
		ThroughputBps: float64(size) / math.Max(1, float64(end-start)),
	}
}

func TestHeatmapAccumulation(t *testing.T) {
	grid := topology.Default(topology.DefaultSpec{})
	store := metastore.New()
	store.PutTransfer(mkEvent(1, "CERN-PROD", "CERN-PROD", 100, 10, 20))
	store.PutTransfer(mkEvent(2, "CERN-PROD", "BNL-ATLAS", 50, 10, 20))
	store.PutTransfer(mkEvent(3, "CERN-PROD", topology.UnknownSite, 25, 10, 20))
	store.PutTransfer(mkEvent(4, "CERN-PROD", "BNL-ATLAS", 7, 9999, 10000)) // outside window

	h := BuildHeatmap(store, grid, 0, 1000)
	if h.TotalBytes != 175 {
		t.Errorf("TotalBytes = %g", h.TotalBytes)
	}
	if h.LocalBytes != 100 {
		t.Errorf("LocalBytes = %g", h.LocalBytes)
	}
	if h.UnknownBytes != 25 {
		t.Errorf("UnknownBytes = %g", h.UnknownBytes)
	}
	if got := h.LocalFraction(); math.Abs(got-100.0/175) > 1e-9 {
		t.Errorf("LocalFraction = %g", got)
	}
	top := h.TopCells(2)
	if len(top) != 2 || top[0].Bytes != 100 || !top[0].Local {
		t.Errorf("TopCells = %+v", top)
	}
	if h.ActiveSites() != 2 {
		t.Errorf("ActiveSites = %d", h.ActiveSites())
	}
	// Mean over all cells; geomean over the three positive ones.
	n := float64(grid.NumAxes() * grid.NumAxes())
	if math.Abs(h.MeanCell-175/n) > 1e-9 {
		t.Errorf("MeanCell = %g", h.MeanCell)
	}
	want := math.Pow(100*50*25, 1.0/3)
	if math.Abs(h.GeoMeanCell-want) > 1e-6 {
		t.Errorf("GeoMeanCell = %g, want %g", h.GeoMeanCell, want)
	}
	if !strings.Contains(h.Report(3).Render(), "Fig. 3") {
		t.Error("report title missing")
	}
}

func TestVolumeGrowthShape(t *testing.T) {
	pts := VolumeGrowth(GrowthConfig{})
	if len(pts) != 16 {
		t.Fatalf("years = %d, want 2009..2024", len(pts))
	}
	// Monotone growth (deletion never exceeds ingest at these defaults).
	for i := 1; i < len(pts); i++ {
		if pts[i].TotalPB <= pts[i-1].TotalPB {
			t.Errorf("volume shrank in %d", pts[i].Year)
		}
	}
	byYear := map[int]float64{}
	for _, p := range pts {
		byYear[p.Year] = p.TotalPB
	}
	// Paper calibration points: ~1 EB in mid-2024, and more than double
	// the 2018 volume.
	if byYear[2024] < 800 || byYear[2024] > 1300 {
		t.Errorf("2024 volume %.0f PB, want ~1000", byYear[2024])
	}
	if byYear[2024] < 2*byYear[2018] {
		t.Errorf("2024 (%.0f) should more than double 2018 (%.0f)", byYear[2024], byYear[2018])
	}
	// Shutdown years grow slower than neighbouring run years.
	if pts[5].IngestPB <= pts[4].IngestPB*0.3 { // 2014 vs 2013 both shutdown
		t.Logf("shutdown ingest: %v %v", pts[4], pts[5])
	}
	s := GrowthSeries(pts)
	if len(s.Points) != len(pts) || s.MaxY() != byYear[2024] {
		t.Error("series conversion wrong")
	}
	if !strings.Contains(GrowthReport(pts).Render(), "2024") {
		t.Error("report missing final year")
	}
}

// buildMatchedStore fabricates a store with two matched jobs for table and
// case tests.
func buildMatchedStore() (*metastore.Store, []*records.JobRecord) {
	store := metastore.New()
	add := func(panda, jedi int64, site string, status records.JobStatus, taskSt records.TaskStatus,
		create, start, end simtime.VTime, evs []*records.TransferEvent, sizes []int64) {
		var inBytes int64
		for i, size := range sizes {
			lfn := evs[i].LFN
			store.PutFile(&records.FileRecord{
				PandaID: panda, JediTaskID: jedi, LFN: lfn, Scope: "s",
				Dataset: "d", ProdDBlock: "d", FileSize: size, Kind: records.FileInput,
			})
			inBytes += size
		}
		store.PutJob(&records.JobRecord{
			PandaID: panda, JediTaskID: jedi, ComputingSite: site, Label: records.LabelUser,
			CreationTime: create, StartTime: start, EndTime: end,
			Status: status, TaskStatus: taskSt, NInputFileBytes: inBytes,
		})
		for _, ev := range evs {
			ev.JediTaskID = jedi
			ev.Scope, ev.Dataset, ev.ProdDBlock = "s", "d", "d"
			ev.IsDownload = true
			ev.Activity = records.AnalysisDownload
			store.PutTransfer(ev)
		}
	}
	// Job 1: finished, local, 2 sequential transfers filling 80% of queue.
	add(101, 11, "CERN-PROD", records.JobFinished, records.TaskDone,
		0, 1000, 3000,
		[]*records.TransferEvent{
			func() *records.TransferEvent {
				e := mkEvent(1, "CERN-PROD", "CERN-PROD", 60, 100, 500)
				e.LFN = "a"
				return e
			}(),
			func() *records.TransferEvent {
				e := mkEvent(2, "CERN-PROD", "CERN-PROD", 40, 500, 900)
				e.LFN = "b"
				return e
			}(),
		}, []int64{60, 40})
	// Job 2: failed, remote transfer spanning start.
	add(102, 12, "SIGNET", records.JobFailed, records.TaskFailed,
		0, 1000, 4000,
		[]*records.TransferEvent{
			func() *records.TransferEvent {
				e := mkEvent(3, "NDGF-T1", "SIGNET", 100, 200, 2500)
				e.LFN = "c"
				return e
			}(),
		}, []int64{100})
	jobs := store.Jobs(0, 100000, records.LabelUser)
	return store, jobs
}

func TestActivityBreakdownAndTables(t *testing.T) {
	store, jobs := buildMatchedStore()
	m := core.NewMatcher(store)
	cmp := CompareMethods(m, jobs)
	if cmp.Exact.MatchedJobs != 2 {
		t.Fatalf("exact matched %d jobs", cmp.Exact.MatchedJobs)
	}
	rows := ActivityBreakdown(store, cmp.Exact)
	if len(rows) != len(records.JobActivities) {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Activity != records.AnalysisDownload || rows[0].Matched != 3 || rows[0].Total != 3 {
		t.Errorf("download row = %+v", rows[0])
	}
	if rows[0].Pct() != 100 {
		t.Errorf("pct = %g", rows[0].Pct())
	}
	if (ActivityRow{}).Pct() != 0 {
		t.Error("zero-total pct should be 0")
	}
	out := ActivityTable(rows).Render()
	if !strings.Contains(out, "Analysis Download") || !strings.Contains(out, "Total") {
		t.Errorf("table: %s", out)
	}
	ta := cmp.TransferCountTable().Render()
	if !strings.Contains(ta, "Exact") || !strings.Contains(ta, "RM2") {
		t.Errorf("table 2a: %s", ta)
	}
	tb := cmp.JobCountTable().Render()
	if !strings.Contains(tb, "Jobs all local") {
		t.Errorf("table 2b: %s", tb)
	}
}

func TestTopJobsSelection(t *testing.T) {
	store, jobs := buildMatchedStore()
	res := core.NewMatcher(store).Run(jobs, core.Exact)

	local := TopJobs(res, core.AllLocal, 0.10, 40)
	if len(local) != 1 || local[0].PandaID != 101 {
		t.Fatalf("local top jobs = %+v", local)
	}
	if local[0].TransferPct < 79 || local[0].TransferPct > 81 {
		t.Errorf("transfer pct = %g, want ~80", local[0].TransferPct)
	}
	if local[0].StatusLabel() != "D,D" {
		t.Errorf("label = %q", local[0].StatusLabel())
	}
	remote := TopJobs(res, core.AllRemote, 0.10, 40)
	if len(remote) != 1 || remote[0].PandaID != 102 {
		t.Fatalf("remote top jobs = %+v", remote)
	}
	if remote[0].StatusLabel() != "F,F" {
		t.Errorf("label = %q", remote[0].StatusLabel())
	}
	if FailedFraction(remote) != 1 || FailedFraction(local) != 0 {
		t.Error("FailedFraction wrong")
	}
	if FailedFraction(nil) != 0 {
		t.Error("FailedFraction(nil) != 0")
	}
	// High threshold excludes everything.
	if got := TopJobs(res, core.AllLocal, 0.99, 40); len(got) != 0 {
		t.Errorf("threshold filter failed: %+v", got)
	}
	if !strings.Contains(TopJobsTable("Fig. 5", local).Render(), "101") {
		t.Error("table missing job")
	}
}

func TestBandwidthSeriesConservesBytes(t *testing.T) {
	evs := []*records.TransferEvent{
		mkEvent(1, "A", "B", 1000, 0, 100),
		mkEvent(2, "A", "B", 500, 50, 150),
	}
	s := BandwidthSeries(evs, 0, 200, 10)
	if len(s.Points) != 20 {
		t.Fatalf("points = %d", len(s.Points))
	}
	// Integrating rate over buckets recovers total bytes.
	total := 0.0
	for _, p := range s.Points {
		total += p.Y * 10
	}
	if math.Abs(total-1500) > 1e-6 {
		t.Errorf("integrated bytes = %g, want 1500", total)
	}
	// Overlap bucket (50-100) carries both rates.
	if s.Points[6].Y <= s.Points[0].Y {
		t.Error("overlapping interval should have higher rate")
	}
	// Degenerate cases.
	if got := BandwidthSeries(nil, 10, 10, 5); len(got.Points) != 0 {
		t.Error("empty window should have no points")
	}
	inst := []*records.TransferEvent{mkEvent(3, "A", "B", 77, 42, 42)}
	s2 := BandwidthSeries(inst, 0, 100, 10)
	total = 0
	for _, p := range s2.Points {
		total += p.Y * 10
	}
	if math.Abs(total-77) > 1e-6 {
		t.Errorf("instantaneous event lost bytes: %g", total)
	}
}

func TestTopRoutesAndFigure(t *testing.T) {
	store := metastore.New()
	store.PutTransfer(mkEvent(1, "A", "A", 1000, 0, 10))
	store.PutTransfer(mkEvent(2, "A", "B", 500, 0, 10))
	store.PutTransfer(mkEvent(3, "B", "A", 200, 0, 10))
	store.PutTransfer(mkEvent(4, "UNKNOWN", "B", 900, 0, 10))
	evs := store.Transfers(0, 0)

	locals := TopRoutes(evs, true, 5)
	if len(locals) != 1 || locals[0] != (Route{"A", "A"}) {
		t.Errorf("local routes = %v", locals)
	}
	remotes := TopRoutes(evs, false, 5)
	if len(remotes) != 2 || remotes[0] != (Route{"A", "B"}) {
		t.Errorf("remote routes = %v (UNKNOWN must be excluded)", remotes)
	}
	if got := RouteEvents(evs, Route{"A", "B"}); len(got) != 1 {
		t.Errorf("RouteEvents = %d", len(got))
	}
	figs := BandwidthFigure(store, false, 2, 0, 100, 10)
	if len(figs) != 2 || figs[0].Name != "A -> B" {
		t.Errorf("figure series = %+v", figs)
	}
	loc := BandwidthFigure(store, true, 2, 0, 100, 10)
	if len(loc) != 1 || !strings.Contains(loc[0].Name, "local @ A") {
		t.Errorf("local figure = %+v", loc)
	}
	if r := (Route{"A", "A"}); !r.Local() || r.String() != "A -> A" {
		t.Error("route helpers wrong")
	}
}

func TestFluctuationRatio(t *testing.T) {
	s := &report.Series{Points: []report.Point{{X: 0, Y: 10}, {X: 1, Y: 10}, {X: 2, Y: 10}}}
	if got := FluctuationRatio(s); math.Abs(got-1) > 1e-9 {
		t.Errorf("steady ratio = %g", got)
	}
	spiky := &report.Series{Points: []report.Point{{X: 0, Y: 1}, {X: 1, Y: 9}, {X: 2, Y: 0}}}
	if got := FluctuationRatio(spiky); math.Abs(got-1.8) > 1e-9 {
		t.Errorf("spiky ratio = %g", got)
	}
	if FluctuationRatio(&report.Series{}) != 0 {
		t.Error("empty series ratio != 0")
	}
}

func TestThresholdCurves(t *testing.T) {
	store, jobs := buildMatchedStore()
	res := core.NewMatcher(store).Run(jobs, core.Exact)
	tc := BuildThresholdCurves(res, nil)
	if tc.Totals[JobOKTaskOK] != 1 || tc.Totals[JobFailTaskFail] != 1 {
		t.Fatalf("totals = %v", tc.Totals)
	}
	// Job 101 sits at 80%: below 90 only. Job 102 at 80% too
	// (transfer covers 200..1000 of a 1000s queue).
	if tc.AboveThreshold(75) != 2 {
		t.Errorf("above 75%% = %d", tc.AboveThreshold(75))
	}
	if tc.AboveThreshold(90) != 0 {
		t.Errorf("above 90%% = %d", tc.AboveThreshold(90))
	}
	if tc.AboveThreshold(33) != 2 { // not a configured threshold
		t.Errorf("unknown threshold should count all: %d", tc.AboveThreshold(33))
	}
	if tc.SuccessCount() != 1 {
		t.Errorf("successes = %d", tc.SuccessCount())
	}
	// Monotone non-decreasing curves.
	for c := 0; c < 4; c++ {
		for i := 1; i < len(tc.Thresholds); i++ {
			if tc.Counts[c][i] < tc.Counts[c][i-1] {
				t.Fatalf("combo %d curve not monotone", c)
			}
		}
	}
	if !strings.Contains(tc.Table().Render(), "total") {
		t.Error("table missing totals")
	}
	s := tc.Series(JobOKTaskOK)
	if len(s.Points) != len(tc.Thresholds) {
		t.Error("series length wrong")
	}
	for c := 0; c < 4; c++ {
		if StatusCombo(c).String() == "combo(?)" {
			t.Error("combo string missing")
		}
	}
}

func TestCaseStudies(t *testing.T) {
	grid := topology.Default(topology.DefaultSpec{})
	store, jobs := buildMatchedStore()
	m := core.NewMatcher(store)
	exact := m.Run(jobs, core.Exact)

	long := FindLongTransferCase(exact, grid, 0.1)
	if long == nil || long.Match.Job.PandaID != 101 {
		t.Fatalf("long case = %+v", long)
	}
	if !long.Sequential {
		t.Error("job 101's transfers are sequential")
	}
	if long.SpansQueueAndWall {
		t.Error("job 101 does not span queue+wall")
	}
	if long.ThroughputSpread < 1 {
		t.Error("throughput spread missing")
	}
	if FindLongTransferCase(exact, grid, 0.99) != nil {
		t.Error("min fraction filter ignored")
	}

	failed := FindFailedSpanningCase(exact, grid)
	if failed == nil || failed.Match.Job.PandaID != 102 {
		t.Fatalf("failed case = %+v", failed)
	}
	if !failed.SpansQueueAndWall {
		t.Error("spanning flag not set")
	}
	tl := failed.TimelineTable().Render()
	if !strings.Contains(tl, "queuing") || !strings.Contains(tl, "transfer 0") {
		t.Errorf("timeline: %s", tl)
	}

	// RM2 redundant case: duplicate events, one with UNKNOWN destination.
	store2 := metastore.New()
	store2.PutJob(&records.JobRecord{
		PandaID: 201, JediTaskID: 21, ComputingSite: "CERN-PROD", Label: records.LabelUser,
		CreationTime: 1000, StartTime: 2300, EndTime: 4000,
		Status: records.JobFinished, TaskStatus: records.TaskDone, NInputFileBytes: 100,
	})
	store2.PutFile(&records.FileRecord{
		PandaID: 201, JediTaskID: 21, LFN: "x", Scope: "s", Dataset: "d",
		ProdDBlock: "d", FileSize: 100, Kind: records.FileInput,
	})
	early := mkEvent(10, "CERN-PROD", topology.UnknownSite, 100, 500, 600)
	late := mkEvent(11, "CERN-PROD", "CERN-PROD", 100, 2200, 2290)
	for _, ev := range []*records.TransferEvent{early, late} {
		ev.LFN, ev.Scope, ev.Dataset, ev.ProdDBlock = "x", "s", "d", "d"
		ev.JediTaskID = 21
		ev.IsDownload = true
		ev.Activity = records.AnalysisDownload
		store2.PutTransfer(ev)
	}
	rm2 := core.NewMatcher(store2).Run(store2.Jobs(0, 100000, records.LabelUser), core.RM2)
	cs := FindRM2RedundantCase(rm2, grid)
	if cs == nil {
		t.Fatal("RM2 redundant case not found")
	}
	if len(cs.Redundant) != 1 || len(cs.Inferences) == 0 {
		t.Fatalf("case = %+v", cs)
	}
	if cs.Inferences[0].InferredSite != "CERN-PROD" || cs.Inferences[0].Evidence != "duplicate" {
		t.Errorf("inference = %+v", cs.Inferences[0])
	}
	sum := cs.TransferSummaryTable().Render()
	if !strings.Contains(sum, "UNKNOWN") || !strings.Contains(sum, "inferred destination") {
		t.Errorf("summary: %s", sum)
	}
	// The exact method sees only the intact duplicate: the UNKNOWN copy is
	// filtered by the site condition, so the redundancy is invisible to it
	// — only RM2 exposes the duplicate pair (paper Section 5.4).
	exact2 := core.NewMatcher(store2).Run(store2.Jobs(0, 100000, records.LabelUser), core.Exact)
	if exact2.MatchedJobs != 1 || exact2.MatchedTransfers != 1 {
		t.Fatalf("exact on redundant case: jobs=%d transfers=%d", exact2.MatchedJobs, exact2.MatchedTransfers)
	}
	if got := core.FindRedundant(&exact2.Matches[0]); got != nil {
		t.Error("exact view should not expose the redundancy")
	}
}

func TestVolumeGrowthCustomConfig(t *testing.T) {
	pts := VolumeGrowth(GrowthConfig{StartYear: 2015, EndYear: 2018, BaseIngestPB: 10, RunGrowth: 2, ShutdownFactor: 0.5, DeletionFraction: 0.0001})
	if len(pts) != 4 {
		t.Fatalf("years = %d", len(pts))
	}
	// All four are Run-2 data-taking years: ingest doubles yearly.
	for i := 1; i < len(pts); i++ {
		ratio := pts[i].IngestPB / pts[i-1].IngestPB
		if ratio < 1.99 || ratio > 2.01 {
			t.Errorf("ingest ratio %g in %d", ratio, pts[i].Year)
		}
	}
}
