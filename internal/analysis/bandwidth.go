package analysis

import (
	"fmt"
	"sort"
	"strings"

	"panrucio/internal/metastore"
	"panrucio/internal/records"
	"panrucio/internal/report"
	"panrucio/internal/simtime"
)

// Route is a directed site pair.
type Route struct{ Src, Dst string }

func (r Route) String() string { return r.Src + " -> " + r.Dst }

// Local reports whether the route is intra-site.
func (r Route) Local() bool { return r.Src == r.Dst }

// BandwidthSeries bins the byte flow of the given events into fixed-width
// buckets over [from, to), spreading each transfer's bytes uniformly across
// its active interval — the paper's accumulated-bandwidth-usage measure for
// Figs. 7 and 8. Y values are bytes/second.
func BandwidthSeries(events []*records.TransferEvent, from, to, bucket simtime.VTime) *report.Series {
	if bucket <= 0 {
		bucket = 60
	}
	if to <= from {
		return &report.Series{XLabel: "time (s)", YLabel: "bytes/sec"}
	}
	n := int((to - from + bucket - 1) / bucket)
	bins := make([]float64, n)
	for _, ev := range events {
		a, b := ev.StartedAt, ev.EndedAt
		if b <= a {
			// Instantaneous event: attribute everything to its bucket.
			b = a + 1
		}
		rate := float64(ev.FileSize) / float64(b-a)
		if a < from {
			a = from
		}
		if b > to {
			b = to
		}
		for t := a; t < b; {
			bi := int((t - from) / bucket)
			if bi < 0 || bi >= n {
				break
			}
			bucketEnd := from + simtime.VTime(bi+1)*bucket
			seg := bucketEnd - t
			if b-t < seg {
				seg = b - t
			}
			bins[bi] += rate * float64(seg)
			t += seg
		}
	}
	s := &report.Series{XLabel: "time (s)", YLabel: "bytes/sec"}
	for i, v := range bins {
		s.Points = append(s.Points, report.Point{
			X: float64(from) + float64(i)*float64(bucket),
			Y: v / float64(bucket),
		})
	}
	return s
}

// RouteEvents selects the events flowing on one route.
func RouteEvents(events []*records.TransferEvent, r Route) []*records.TransferEvent {
	var out []*records.TransferEvent
	for _, ev := range events {
		if ev.SourceSite == r.Src && ev.DestinationSite == r.Dst {
			out = append(out, ev)
		}
	}
	return out
}

// TopRoutes ranks routes by total bytes, filtered to local or remote.
// Routes with an UNKNOWN or invalid-looking endpoint label are skipped
// (they are not plottable connections).
func TopRoutes(events []*records.TransferEvent, local bool, k int) []Route {
	type agg struct {
		r Route
		b float64
	}
	bad := func(site string) bool {
		return site == "UNKNOWN" || strings.ContainsAny(site, ":/")
	}
	sums := map[Route]float64{}
	for _, ev := range events {
		if bad(ev.SourceSite) || bad(ev.DestinationSite) {
			continue
		}
		r := Route{ev.SourceSite, ev.DestinationSite}
		if r.Local() != local {
			continue
		}
		sums[r] += float64(ev.FileSize)
	}
	var all []agg
	for r, b := range sums {
		all = append(all, agg{r, b})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].b != all[j].b {
			return all[i].b > all[j].b
		}
		return all[i].r.String() < all[j].r.String()
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]Route, 0, k)
	for _, a := range all[:k] {
		out = append(out, a.r)
	}
	return out
}

// BandwidthFigure builds the Fig. 7 (remote) or Fig. 8 (local) panels: the
// top-k routes of the requested locality with their binned bandwidth
// series. The window is resolved against the metastore's StartedAt index
// (a binary-search range slice), not a scan of the event log.
func BandwidthFigure(store *metastore.Store, local bool, k int, from, to, bucket simtime.VTime) []*report.Series {
	events := store.Transfers(from, to)
	routes := TopRoutes(events, local, k)
	var out []*report.Series
	for _, r := range routes {
		s := BandwidthSeries(RouteEvents(events, r), from, to, bucket)
		s.Name = r.String()
		if r.Local() {
			s.Name = fmt.Sprintf("local @ %s", r.Src)
		}
		out = append(out, s)
	}
	return out
}

// FluctuationRatio is max/mean over the positive samples of a series — a
// scalar summary of how unsteady a connection is (the paper's qualitative
// claim for Figs. 7-8 is that rates fluctuate heavily at short timescales).
func FluctuationRatio(s *report.Series) float64 {
	sum, n, max := 0.0, 0, 0.0
	for _, p := range s.Points {
		if p.Y > 0 {
			sum += p.Y
			n++
			if p.Y > max {
				max = p.Y
			}
		}
	}
	if n == 0 || sum == 0 {
		return 0
	}
	return max / (sum / float64(n))
}
