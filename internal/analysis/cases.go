package analysis

import (
	"fmt"
	"sort"

	"panrucio/internal/core"
	"panrucio/internal/records"
	"panrucio/internal/report"
	"panrucio/internal/stats"
	"panrucio/internal/topology"
)

// CaseStudy is one of the Section 5.4 case studies: a single matched job
// with its transfer timeline and derived observations.
type CaseStudy struct {
	Kind  string // "long-transfer", "failed-spanning", "rm2-redundant"
	Match core.Match

	// ThroughputSpread is max/min throughput across the matched transfers
	// (Fig. 10 reports ~17.7x between the fastest and slowest).
	ThroughputSpread float64
	// Sequential reports that no two transfers overlapped in time.
	Sequential bool
	// SpansQueueAndWall reports a transfer crossing the job's start time
	// (Fig. 11).
	SpansQueueAndWall bool
	// Redundant holds duplicate-transfer groups (Fig. 12).
	Redundant []core.RedundantGroup
	// Inferences holds reconstructed site labels (Table 3 narrative).
	Inferences []core.Inference
}

func buildCase(kind string, m core.Match, grid *topology.Grid) *CaseStudy {
	cs := &CaseStudy{Kind: kind, Match: m}
	minT, maxT := 0.0, 0.0
	for i, ev := range m.Transfers {
		if ev.ThroughputBps <= 0 {
			continue
		}
		if i == 0 || ev.ThroughputBps < minT {
			minT = ev.ThroughputBps
		}
		if ev.ThroughputBps > maxT {
			maxT = ev.ThroughputBps
		}
	}
	if minT > 0 {
		cs.ThroughputSpread = maxT / minT
	}
	cs.Sequential = sequential(m.Transfers)
	for _, ev := range m.Transfers {
		if ev.StartedAt < m.Job.StartTime && ev.EndedAt > m.Job.StartTime {
			cs.SpansQueueAndWall = true
		}
	}
	cs.Redundant = core.FindRedundant(&m)
	cs.Inferences = core.InferUnknownSites(&m, grid)
	return cs
}

func sequential(evs []*records.TransferEvent) bool {
	if len(evs) < 2 {
		return true
	}
	s := append([]*records.TransferEvent(nil), evs...)
	sort.Slice(s, func(i, j int) bool { return s[i].StartedAt < s[j].StartedAt })
	for i := 1; i < len(s); i++ {
		if s[i].StartedAt < s[i-1].EndedAt {
			return false
		}
	}
	return true
}

// FindLongTransferCase selects the Fig. 10 case: a *successful* job with
// all-local transfers whose queue-transfer fraction is the highest in the
// result (the paper's exemplar sits at 83 %). Returns nil when no job
// qualifies above minFraction.
func FindLongTransferCase(res *core.Result, grid *topology.Grid, minFraction float64) *CaseStudy {
	var best *core.Match
	bestFrac := minFraction
	for i := range res.Matches {
		m := &res.Matches[i]
		if m.Job.Status != records.JobFinished || m.Class() != core.AllLocal {
			continue
		}
		if len(m.Transfers) < 2 {
			continue
		}
		if f := m.QueueTransferFraction(); f >= bestFrac {
			best, bestFrac = m, f
		}
	}
	if best == nil {
		return nil
	}
	return buildCase("long-transfer", *best, grid)
}

// FindFailedSpanningCase selects the Fig. 11 case: a *failed* job with a
// matched transfer spanning its queue and wall phases. Among candidates the
// one with the largest lifetime fraction spent transferring wins.
func FindFailedSpanningCase(res *core.Result, grid *topology.Grid) *CaseStudy {
	var best *core.Match
	bestScore := 0.0
	for i := range res.Matches {
		m := &res.Matches[i]
		if m.Job.Status != records.JobFailed {
			continue
		}
		spans := false
		var transfer float64
		for _, ev := range m.Transfers {
			if ev.StartedAt < m.Job.StartTime && ev.EndedAt > m.Job.StartTime {
				spans = true
			}
			transfer += ev.Duration().Seconds()
		}
		if !spans || m.Job.Lifetime() <= 0 {
			continue
		}
		score := transfer / m.Job.Lifetime().Seconds()
		if score > bestScore {
			best, bestScore = m, score
		}
	}
	if best == nil {
		return nil
	}
	return buildCase("failed-spanning", *best, grid)
}

// FindRM2RedundantCase selects the Fig. 12 / Table 3 case: an RM2-matched
// job with duplicate transfers of the same files where at least one copy
// lost its site label, so the label is reconstructible. rm2 must be an RM2
// result.
func FindRM2RedundantCase(rm2 *core.Result, grid *topology.Grid) *CaseStudy {
	var best *CaseStudy
	for i := range rm2.Matches {
		m := rm2.Matches[i]
		groups := core.FindRedundant(&m)
		if len(groups) == 0 {
			continue
		}
		infs := core.InferUnknownSites(&m, grid)
		hasDup := false
		for _, inf := range infs {
			if inf.Evidence == "duplicate" {
				hasDup = true
			}
		}
		if !hasDup {
			continue
		}
		cs := buildCase("rm2-redundant", m, grid)
		if best == nil || len(cs.Redundant) > len(best.Redundant) {
			best = cs
		}
	}
	return best
}

// TimelineTable renders the case's job phases and transfer intervals
// (Figs. 10-12 as data rows).
func (cs *CaseStudy) TimelineTable() *report.Table {
	j := cs.Match.Job
	t := &report.Table{
		Title: fmt.Sprintf("Case %s — pandaid %d (%s, task %s) at %s",
			cs.Kind, j.PandaID, j.Status, j.TaskStatus, j.ComputingSite),
		Columns: []string{"item", "start", "end", "detail"},
	}
	t.AddRow("queuing", j.CreationTime.String(), j.StartTime.String(),
		fmt.Sprintf("%ds", j.QueueTime()))
	t.AddRow("execution", j.StartTime.String(), j.EndTime.String(),
		fmt.Sprintf("%ds", j.WallTime()))
	evs := append([]*records.TransferEvent(nil), cs.Match.Transfers...)
	sort.Slice(evs, func(a, b int) bool { return evs[a].StartedAt < evs[b].StartedAt })
	for i, ev := range evs {
		t.AddRow(fmt.Sprintf("transfer %d", i),
			ev.StartedAt.String(), ev.EndedAt.String(),
			fmt.Sprintf("%s %s->%s @ %s", stats.FormatBytes(float64(ev.FileSize)),
				ev.SourceSite, ev.DestinationSite, stats.FormatRate(ev.ThroughputBps)))
	}
	if cs.ThroughputSpread > 0 {
		t.AddRow("throughput spread", "", "", fmt.Sprintf("%.1fx", cs.ThroughputSpread))
	}
	t.AddRow("sequential transfers", "", "", fmt.Sprintf("%v", cs.Sequential))
	if cs.SpansQueueAndWall {
		t.AddRow("spans queue+wall", "", "", "true")
	}
	if j.ErrorCode != 0 {
		t.AddRow("error", "", "", fmt.Sprintf("%d: %s", j.ErrorCode, j.ErrorMessage))
	}
	return t
}

// TransferSummaryTable renders the Table 3 field-by-field transfer summary
// of the case's transfers.
func (cs *CaseStudy) TransferSummaryTable() *report.Table {
	t := &report.Table{
		Title:   fmt.Sprintf("Table 3 — transfer summary for pandaid %d", cs.Match.Job.PandaID),
		Columns: []string{"Field"},
	}
	evs := append([]*records.TransferEvent(nil), cs.Match.Transfers...)
	sort.Slice(evs, func(a, b int) bool { return evs[a].StartedAt < evs[b].StartedAt })
	for i := range evs {
		t.Columns = append(t.Columns, fmt.Sprintf("Transfer %d", i))
	}
	row := func(name string, f func(*records.TransferEvent) string) {
		cells := []string{name}
		for _, ev := range evs {
			cells = append(cells, f(ev))
		}
		t.AddRow(cells...)
	}
	row("Source Site", func(ev *records.TransferEvent) string { return ev.SourceSite })
	row("Destination Site", func(ev *records.TransferEvent) string { return ev.DestinationSite })
	row("File Size (Byte)", func(ev *records.TransferEvent) string { return fmt.Sprintf("%d", ev.FileSize) })
	row("Activity", func(ev *records.TransferEvent) string { return string(ev.Activity) })
	row("Throughput (Byte/s)", func(ev *records.TransferEvent) string { return fmt.Sprintf("%.1f", ev.ThroughputBps) })
	for _, inf := range cs.Inferences {
		t.AddRow(fmt.Sprintf("inferred %s", inf.Field), inf.InferredSite,
			fmt.Sprintf("evidence: %s", inf.Evidence))
	}
	return t
}
