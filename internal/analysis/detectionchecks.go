package analysis

import "fmt"

// DetectionChecks evaluates the E15 integrity-detection claims for one
// scenario from plain value data (no store or report pointers, for the
// same reason ShapeChecks avoids them: sweep outcomes outlive their
// scenario's store). The claims mirror the commitment design's guarantees:
//
//   - detection-complete: every tampered sealed row produced a row-tamper
//     violation (100% detection — the hash covers every committed field,
//     so any actual change must miss its committed hash);
//   - truncation-detected: every rolled-back segment produced a truncation
//     violation (the committed count survives the rollback);
//   - no-false-positives: the pre-tamper audit of the same store was clean
//     (detection without precision would make the repair loop fire on
//     healthy data).
//
// A scenario with nothing tampered (the clean control) asserts only the
// false-positive claim; the two detection claims degenerate to 0 == 0.
func DetectionChecks(tamperedRows, detectedRows, truncatedSegs, truncDetected int, cleanBefore bool) []Check {
	return []Check{
		{
			Name:   "detection-complete",
			OK:     detectedRows == tamperedRows,
			Detail: fmt.Sprintf("%d/%d tampered rows detected", detectedRows, tamperedRows),
		},
		{
			Name:   "truncation-detected",
			OK:     truncDetected == truncatedSegs,
			Detail: fmt.Sprintf("%d/%d truncated segments detected", truncDetected, truncatedSegs),
		},
		{
			Name:   "no-false-positives",
			OK:     cleanBefore,
			Detail: fmt.Sprintf("pre-tamper audit clean=%v", cleanBefore),
		},
	}
}
