// Package analysis turns the metastore and matching results into the
// paper's tables and figures. Each experiment has one entry point
// returning structured data plus a report rendering: VolumeGrowth (E1),
// BuildHeatmap (E2), ActivityBreakdown (E3), MethodComparison's tables
// (E4/E5), TopJobs (E6/E7), BandwidthSeries with TopRoutes (E8/E9),
// BuildThresholdCurves (E10), and the Find*Case studies (E11–E13).
// CompareMethods / CompareMethodsParallel run the three matching passes,
// and ShapeChecks evaluates the paper's qualitative claims on any run —
// the same checks cmd/repro gates on and the sweep engine scores per
// scenario.
//
// Invariants: every function here is a pure, deterministic function of a
// frozen metastore and a matching result — no RNG, no wall clock, no
// mutation of the store. Windowed computations use the store's sorted
// time indices (built by Freeze), and Table 1's denominators come from
// ingest-time counters rather than event-log scans, so the analyses stay
// cheap enough to run per sweep scenario.
package analysis
