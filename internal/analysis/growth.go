package analysis

import (
	"fmt"

	"panrucio/internal/report"
	"panrucio/internal/stats"
)

// GrowthConfig parameterizes the Fig. 2 cumulative-volume model: yearly
// ingest follows the LHC run schedule (data-taking years ingest at the
// detector+derivation rate, shutdown years only reprocess), deletion
// campaigns reclaim a fraction of the resident volume each year, and the
// per-year ingest rate grows with accelerator luminosity.
type GrowthConfig struct {
	StartYear, EndYear int
	// BaseIngestPB is the first data-taking year's ingest (default 16 PB —
	// 2010-scale ATLAS).
	BaseIngestPB float64
	// RunGrowth multiplies the ingest rate per data-taking year within a
	// run period as luminosity ramps (default 1.38).
	RunGrowth float64
	// ShutdownFactor scales ingest during long-shutdown years (simulation
	// and reprocessing continue; default 0.45).
	ShutdownFactor float64
	// DeletionFraction of the resident volume reclaimed yearly (default 0.06).
	DeletionFraction float64
}

func (c *GrowthConfig) fill() {
	if c.StartYear == 0 {
		c.StartYear = 2009
	}
	if c.EndYear == 0 {
		c.EndYear = 2024
	}
	if c.BaseIngestPB == 0 {
		c.BaseIngestPB = 16
	}
	if c.RunGrowth == 0 {
		c.RunGrowth = 1.38
	}
	if c.ShutdownFactor == 0 {
		c.ShutdownFactor = 0.45
	}
	if c.DeletionFraction == 0 {
		c.DeletionFraction = 0.06
	}
}

// dataTaking reports whether the LHC took collision data in a year
// (Run 1: 2010-2012, Run 2: 2015-2018, Run 3: 2022-).
func dataTaking(year int) bool {
	switch {
	case year >= 2010 && year <= 2012:
		return true
	case year >= 2015 && year <= 2018:
		return true
	case year >= 2022:
		return true
	}
	return false
}

// GrowthPoint is one year of the Fig. 2 curve.
type GrowthPoint struct {
	Year     int
	IngestPB float64
	TotalPB  float64
}

// VolumeGrowth reproduces Fig. 2: the cumulative ATLAS volume managed by
// Rucio, year by year. With default parameters the curve passes ~0.45 EB
// around 2018 and ~1 EB in mid-2024, the paper's two calibration points.
func VolumeGrowth(cfg GrowthConfig) []GrowthPoint {
	cfg.fill()
	var out []GrowthPoint
	total := 0.0
	rate := cfg.BaseIngestPB
	for year := cfg.StartYear; year <= cfg.EndYear; year++ {
		ingest := 0.0
		switch {
		case year < 2010:
			ingest = cfg.BaseIngestPB * 0.25 // commissioning
		case dataTaking(year):
			ingest = rate
			rate *= cfg.RunGrowth
		default:
			ingest = rate * cfg.ShutdownFactor
		}
		total = total*(1-cfg.DeletionFraction) + ingest
		out = append(out, GrowthPoint{Year: year, IngestPB: ingest, TotalPB: total})
	}
	return out
}

// GrowthSeries converts the curve to a report series (x = year, y = PB).
func GrowthSeries(points []GrowthPoint) *report.Series {
	s := &report.Series{Name: "managed volume", XLabel: "year", YLabel: "PB"}
	for _, p := range points {
		s.Points = append(s.Points, report.Point{X: float64(p.Year), Y: p.TotalPB})
	}
	return s
}

// GrowthReport renders the Fig. 2 table.
func GrowthReport(points []GrowthPoint) *report.Table {
	t := &report.Table{
		Title:   "Fig. 2 — cumulative ATLAS volume managed by Rucio",
		Columns: []string{"year", "ingest", "total managed"},
	}
	for _, p := range points {
		t.AddRow(fmt.Sprintf("%d", p.Year),
			stats.FormatBytes(p.IngestPB*1e15),
			stats.FormatBytes(p.TotalPB*1e15))
	}
	return t
}
