package analysis

import (
	"fmt"
	"sort"

	"panrucio/internal/metastore"
	"panrucio/internal/report"
	"panrucio/internal/simtime"
	"panrucio/internal/stats"
	"panrucio/internal/topology"
)

// Heatmap is the Fig. 3 site×site transfer matrix: Cell[i][j] holds the
// total bytes moved from site axis i to site axis j over the window (axis
// order is the grid's, with UNKNOWN last).
type Heatmap struct {
	Grid   *topology.Grid
	Labels []string
	Cells  [][]float64

	TotalBytes   float64
	LocalBytes   float64 // diagonal sum
	UnknownBytes float64 // any cell on the UNKNOWN row or column
	MeanCell     float64 // arithmetic mean over all site pairs
	GeoMeanCell  float64 // geometric mean over positive cells
}

// HeatmapCellStat is one outlier cell.
type HeatmapCellStat struct {
	Src, Dst string
	Bytes    float64
	Local    bool
}

// BuildHeatmap accumulates transfer volume per directed site pair within
// [from, to). It reads the raw event stream — like the paper's Fig. 3, it
// does not require matching — through the metastore's StartedAt index, so
// narrow windows only touch the events they contain.
func BuildHeatmap(store *metastore.Store, grid *topology.Grid, from, to simtime.VTime) *Heatmap {
	n := grid.NumAxes()
	h := &Heatmap{Grid: grid, Cells: make([][]float64, n)}
	for i := range h.Cells {
		h.Cells[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		h.Labels = append(h.Labels, grid.AxisLabel(i))
	}
	for _, ev := range store.Transfers(from, to) {
		i := grid.SiteIndex(ev.SourceSite)
		j := grid.SiteIndex(ev.DestinationSite)
		b := float64(ev.FileSize)
		h.Cells[i][j] += b
		h.TotalBytes += b
		if i == j {
			h.LocalBytes += b
		}
		if i == n-1 || j == n-1 {
			h.UnknownBytes += b
		}
	}
	var flat []float64
	for i := range h.Cells {
		flat = append(flat, h.Cells[i]...)
	}
	h.MeanCell = stats.Mean(flat)
	h.GeoMeanCell = stats.GeoMean(flat)
	return h
}

// LocalFraction is diagonal volume over total (paper: 737.85/957.98 PB).
func (h *Heatmap) LocalFraction() float64 {
	if h.TotalBytes == 0 {
		return 0
	}
	return h.LocalBytes / h.TotalBytes
}

// TopCells returns the k largest cells in descending volume order.
func (h *Heatmap) TopCells(k int) []HeatmapCellStat {
	var all []HeatmapCellStat
	for i := range h.Cells {
		for j, b := range h.Cells[i] {
			if b > 0 {
				all = append(all, HeatmapCellStat{
					Src: h.Labels[i], Dst: h.Labels[j], Bytes: b, Local: i == j,
				})
			}
		}
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].Bytes != all[b].Bytes {
			return all[a].Bytes > all[b].Bytes
		}
		return all[a].Src+all[a].Dst < all[b].Src+all[b].Dst
	})
	if k > len(all) {
		k = len(all)
	}
	return all[:k]
}

// ActiveSites counts sites (excluding UNKNOWN) that appear in at least one
// transfer (the paper's "111 sites recorded file transfers").
func (h *Heatmap) ActiveSites() int {
	n := len(h.Labels)
	active := 0
	for i := 0; i < n-1; i++ {
		seen := false
		for j := 0; j < n; j++ {
			if h.Cells[i][j] > 0 || h.Cells[j][i] > 0 {
				seen = true
				break
			}
		}
		if seen {
			active++
		}
	}
	return active
}

// Report renders the Fig. 3 summary statistics and top outlier cells.
func (h *Heatmap) Report(topK int) *report.Table {
	t := &report.Table{
		Title:   "Fig. 3 — site-to-site transfer volume",
		Columns: []string{"metric", "value"},
	}
	t.AddRow("total volume", stats.FormatBytes(h.TotalBytes))
	t.AddRow("local (diagonal) volume", stats.FormatBytes(h.LocalBytes))
	t.AddRow("local fraction", fmt.Sprintf("%.1f%%", 100*h.LocalFraction()))
	t.AddRow("unknown row/col volume", stats.FormatBytes(h.UnknownBytes))
	t.AddRow("mean cell", stats.FormatBytes(h.MeanCell))
	t.AddRow("geometric mean cell", stats.FormatBytes(h.GeoMeanCell))
	t.AddRow("active sites", fmt.Sprintf("%d", h.ActiveSites()))
	for i, c := range h.TopCells(topK) {
		kind := "remote"
		if c.Local {
			kind = "local"
		}
		t.AddRow(fmt.Sprintf("outlier %d (%s)", i+1, kind),
			fmt.Sprintf("%s -> %s: %s", c.Src, c.Dst, stats.FormatBytes(c.Bytes)))
	}
	return t
}
