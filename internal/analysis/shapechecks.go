package analysis

import (
	"fmt"

	"panrucio/internal/metastore"
	"panrucio/internal/records"
	"panrucio/internal/simtime"
	"panrucio/internal/stats"
	"panrucio/internal/topology"
)

// Check is one qualitative claim of the paper evaluated against a run. The
// struct is value data (no store or grid pointers), so sweep outcomes can
// retain checks after their scenario's store has been reset and reused.
type Check struct {
	Name   string `json:"name"`
	OK     bool   `json:"ok"`
	Detail string `json:"detail"`
}

// String renders the check in the "[PASS] name — detail" form printed by
// cmd/repro.
func (c Check) String() string {
	status := "PASS"
	if !c.OK {
		status = "FAIL"
	}
	return fmt.Sprintf("[%s] %s — %s", status, c.Name, c.Detail)
}

// ShapeChecks verifies the paper's qualitative claims against one run:
// monotone Exact <= RM1 <= RM2 match counts, exact matches mostly local,
// RM2 unlocking remote transfers, the Table 1 activity split, heatmap
// local dominance and imbalance, rare extreme transfer-time jobs, the
// managed-volume curve, the three case studies, and the grid scale. All
// pass for the default paper-scale seeds; sweep scenarios deliberately
// push some of them into FAIL (that is the robustness signal E14 reports).
//
// The window [from, to) must be the run's study window; cmp must be the
// three matching passes over that window's user jobs.
func ShapeChecks(store *metastore.Store, grid *topology.Grid, from, to simtime.VTime, cmp *MethodComparison) []Check {
	var out []Check
	check := func(name string, ok bool, detail string) {
		out = append(out, Check{Name: name, OK: ok, Detail: detail})
	}
	e, r1, r2 := cmp.Exact, cmp.RM1, cmp.RM2

	check("monotone transfers", e.MatchedTransfers <= r1.MatchedTransfers && r1.MatchedTransfers <= r2.MatchedTransfers,
		fmt.Sprintf("%d <= %d <= %d", e.MatchedTransfers, r1.MatchedTransfers, r2.MatchedTransfers))
	check("monotone jobs", e.MatchedJobs <= r1.MatchedJobs && r1.MatchedJobs <= r2.MatchedJobs,
		fmt.Sprintf("%d <= %d <= %d", e.MatchedJobs, r1.MatchedJobs, r2.MatchedJobs))
	localFrac := 0.0
	if e.MatchedTransfers > 0 {
		localFrac = float64(e.LocalTransfers) / float64(e.MatchedTransfers)
	}
	check("exact mostly local", localFrac >= 0.8,
		fmt.Sprintf("local fraction %.2f (paper 0.94)", localFrac))
	check("RM2 unlocks remote", r2.RemoteTransfers > 3*r1.RemoteTransfers,
		fmt.Sprintf("remote %d -> %d", r1.RemoteTransfers, r2.RemoteTransfers))

	rows := ActivityBreakdown(store, e)
	var up, prodUp, prodDown ActivityRow
	for _, row := range rows {
		switch row.Activity {
		case records.AnalysisUpload:
			up = row
		case records.ProductionUp:
			prodUp = row
		case records.ProductionDown:
			prodDown = row
		}
	}
	check("analysis upload high match", up.Pct() >= 70,
		fmt.Sprintf("%.1f%% (paper 95.4%%)", up.Pct()))
	check("production rows zero", prodUp.Matched == 0 && prodDown.Matched == 0,
		fmt.Sprintf("%d/%d matched", prodUp.Matched, prodDown.Matched))

	h := BuildHeatmap(store, grid, from, to)
	check("heatmap local dominance", h.LocalFraction() >= 0.5,
		fmt.Sprintf("local %.1f%% of %s (paper 77%% of 957.98 PB)",
			100*h.LocalFraction(), stats.FormatBytes(h.TotalBytes)))
	check("heatmap imbalance", h.MeanCell > 10*h.GeoMeanCell,
		fmt.Sprintf("mean %s vs geomean %s (paper 77.75 TB vs 1.11 TB)",
			stats.FormatBytes(h.MeanCell), stats.FormatBytes(h.GeoMeanCell)))

	tc := BuildThresholdCurves(e, nil)
	extreme := tc.AboveThreshold(75)
	total := 0
	for c := 0; c < 4; c++ {
		total += tc.Totals[c]
	}
	check("extreme transfer-time jobs rare", total > 0 && extreme*20 < total,
		fmt.Sprintf("%d of %d above 75%% (paper 72 of 7,907)", extreme, total))

	growth := VolumeGrowth(GrowthConfig{})
	final := growth[len(growth)-1].TotalPB
	check("volume ~1 EB by 2024", final >= 800 && final <= 1300,
		fmt.Sprintf("%.0f PB", final))

	check("fig10 case found", FindLongTransferCase(e, grid, 0.10) != nil, "long-transfer success case")
	check("fig11 case found", FindFailedSpanningCase(e, grid) != nil, "failed job spanning queue+wall")
	check("fig12 case found", FindRM2RedundantCase(r2, grid) != nil, "RM2 redundant transfers with inferable site")

	check("grid scale", len(grid.Sites()) >= 110, fmt.Sprintf("%d sites (paper ~111 active)", len(grid.Sites())))
	return out
}
