package analysis

import (
	"fmt"

	"panrucio/internal/core"
	"panrucio/internal/metastore"
	"panrucio/internal/records"
	"panrucio/internal/report"
)

// ActivityRow is one row of Table 1: matched vs. total transfers for one
// activity, among transfers carrying a jeditaskid.
type ActivityRow struct {
	Activity records.Activity
	Matched  int
	Total    int
}

// Pct is the matched percentage for the row.
func (r ActivityRow) Pct() float64 {
	if r.Total == 0 {
		return 0
	}
	return 100 * float64(r.Matched) / float64(r.Total)
}

// ActivityBreakdown computes Table 1 from an exact-matching result: the
// per-activity split of matched transfers against all task-carrying
// transfers in the store. The denominators come from the metastore's
// ingest-time activity counters rather than a scan of the event log.
func ActivityBreakdown(store *metastore.Store, res *core.Result) []ActivityRow {
	matched := map[records.Activity]int{}
	seen := map[int64]bool{}
	for _, m := range res.Matches {
		for _, ev := range m.Transfers {
			if !seen[ev.EventID] {
				seen[ev.EventID] = true
				matched[ev.Activity]++
			}
		}
	}
	total := store.TaskTransfersByActivity()
	var rows []ActivityRow
	for _, a := range records.JobActivities {
		rows = append(rows, ActivityRow{Activity: a, Matched: matched[a], Total: total[a]})
	}
	return rows
}

// ActivityTable renders Table 1.
func ActivityTable(rows []ActivityRow) *report.Table {
	t := &report.Table{
		Title:   "Table 1 — breakdown of exact matched transfers",
		Columns: []string{"Transfer activity type", "Matched count", "Total count", "Percentage"},
	}
	var m, tot int
	for _, r := range rows {
		t.AddRow(string(r.Activity), fmt.Sprintf("%d", r.Matched),
			fmt.Sprintf("%d", r.Total), fmt.Sprintf("%.2f%%", r.Pct()))
		m += r.Matched
		tot += r.Total
	}
	pct := 0.0
	if tot > 0 {
		pct = 100 * float64(m) / float64(tot)
	}
	t.AddRow("Total", fmt.Sprintf("%d", m), fmt.Sprintf("%d", tot), fmt.Sprintf("%.2f%%", pct))
	return t
}

// MethodComparison bundles the three matching passes (Tables 2a and 2b).
type MethodComparison struct {
	Exact, RM1, RM2 *core.Result
}

// CompareMethods runs all three strategies over the same job set.
func CompareMethods(m *core.Matcher, jobs []*records.JobRecord) *MethodComparison {
	return CompareMethodsParallel(m, jobs, 1)
}

// CompareMethodsParallel is CompareMethods with each pass sharded across
// workers (<= 0 selects GOMAXPROCS; 1 runs inline).
func CompareMethodsParallel(m *core.Matcher, jobs []*records.JobRecord, workers int) *MethodComparison {
	return &MethodComparison{
		Exact: m.RunParallel(jobs, core.Exact, workers),
		RM1:   m.RunParallel(jobs, core.RM1, workers),
		RM2:   m.RunParallel(jobs, core.RM2, workers),
	}
}

// MethodRates is the value-only summary of one matching pass: the E4/E5
// numbers with no record or store pointers, so it can be cached, compared,
// and marshaled long after the store that produced it has moved on or been
// reset. This is the cache-keyable shape the serving layer stores per
// (config digest, store epoch).
type MethodRates struct {
	Method           string  `json:"method"`
	MatchedTransfers int     `json:"matched_transfers"`
	MatchedJobs      int     `json:"matched_jobs"`
	LocalTransfers   int     `json:"local_transfers"`
	RemoteTransfers  int     `json:"remote_transfers"`
	JobsAllLocal     int     `json:"jobs_all_local"`
	JobsAllRemote    int     `json:"jobs_all_remote"`
	JobsMixed        int     `json:"jobs_mixed"`
	TransferPct      float64 `json:"transfer_pct"`
	JobPct           float64 `json:"job_pct"`
}

// Rates flattens one matching pass to its value-only summary.
func Rates(r *core.Result) MethodRates {
	return MethodRates{
		Method:           r.Method.String(),
		MatchedTransfers: r.MatchedTransfers,
		MatchedJobs:      r.MatchedJobs,
		LocalTransfers:   r.LocalTransfers,
		RemoteTransfers:  r.RemoteTransfers,
		JobsAllLocal:     r.JobsAllLocal,
		JobsAllRemote:    r.JobsAllRemote,
		JobsMixed:        r.JobsMixed,
		TransferPct:      r.MatchedTransferPct(),
		JobPct:           r.MatchedJobPct(),
	}
}

// Summary flattens all three passes, in Exact/RM1/RM2 order.
func (c *MethodComparison) Summary() []MethodRates {
	return []MethodRates{Rates(c.Exact), Rates(c.RM1), Rates(c.RM2)}
}

// TransferCountTable renders Table 2a: matched transfer counts by method.
func (c *MethodComparison) TransferCountTable() *report.Table {
	t := &report.Table{
		Title:   "Table 2a — matched transfers count",
		Columns: []string{"Matching method", "Local transfer", "Remote transfer", "Total transfer", "Total matched %"},
	}
	for _, r := range []*core.Result{c.Exact, c.RM1, c.RM2} {
		t.AddRow(r.Method.String(),
			fmt.Sprintf("%d", r.LocalTransfers),
			fmt.Sprintf("%d", r.RemoteTransfers),
			fmt.Sprintf("%d", r.MatchedTransfers),
			fmt.Sprintf("%.2f%%", r.MatchedTransferPct()))
	}
	return t
}

// JobCountTable renders Table 2b: matched job counts by method.
func (c *MethodComparison) JobCountTable() *report.Table {
	t := &report.Table{
		Title:   "Table 2b — matched job count",
		Columns: []string{"Matching method", "Jobs all local", "Jobs all remote", "Jobs mixed", "Total jobs", "Total matched %"},
	}
	for _, r := range []*core.Result{c.Exact, c.RM1, c.RM2} {
		t.AddRow(r.Method.String(),
			fmt.Sprintf("%d", r.JobsAllLocal),
			fmt.Sprintf("%d", r.JobsAllRemote),
			fmt.Sprintf("%d", r.JobsMixed),
			fmt.Sprintf("%d", r.MatchedJobs),
			fmt.Sprintf("%.2f%%", r.MatchedJobPct()))
	}
	return t
}
