package analysis

import (
	"fmt"
	"sort"

	"panrucio/internal/core"
	"panrucio/internal/records"
	"panrucio/internal/report"
)

// StatusCombo is one of Fig. 9's four job/task outcome combinations.
type StatusCombo int

// The four combinations, in the paper's legend order.
const (
	JobOKTaskOK StatusCombo = iota
	JobFailTaskOK
	JobOKTaskFail
	JobFailTaskFail
)

func (s StatusCombo) String() string {
	switch s {
	case JobOKTaskOK:
		return "job finished / task done"
	case JobFailTaskOK:
		return "job failed / task done"
	case JobOKTaskFail:
		return "job finished / task failed"
	case JobFailTaskFail:
		return "job failed / task failed"
	}
	return "combo(?)"
}

func comboOf(j *records.JobRecord) StatusCombo {
	jobOK := j.Status == records.JobFinished
	taskOK := j.TaskStatus == records.TaskDone
	switch {
	case jobOK && taskOK:
		return JobOKTaskOK
	case !jobOK && taskOK:
		return JobFailTaskOK
	case jobOK && !taskOK:
		return JobOKTaskFail
	default:
		return JobFailTaskFail
	}
}

// DefaultThresholds are Fig. 9's x-axis percentages.
var DefaultThresholds = []float64{1, 2, 5, 10, 15, 20, 25, 30, 40, 50, 60, 75, 90}

// ThresholdCurves is the Fig. 9 dataset: for each status combination, the
// cumulative count of matched jobs whose transfer-time percentage is below
// each threshold, plus the combination totals. Percentages are kept as
// sorted indices so every threshold query is a binary search rather than a
// rescan of the match set.
type ThresholdCurves struct {
	Thresholds []float64
	// Counts[combo][i] = jobs of that combo with transfer-time % < Thresholds[i].
	Counts [4][]int
	Totals [4]int

	// pcts holds every matched job's transfer-time percentage in ascending
	// order so AboveThreshold works for arbitrary cut-offs.
	pcts []float64
}

// BuildThresholdCurves computes Fig. 9 from an exact-matching result: one
// pass to collect per-combo percentages, one sort per combo, and a binary
// search per configured threshold.
func BuildThresholdCurves(res *core.Result, thresholds []float64) *ThresholdCurves {
	if len(thresholds) == 0 {
		thresholds = DefaultThresholds
	}
	tc := &ThresholdCurves{Thresholds: thresholds}
	var byCombo [4][]float64
	for _, m := range res.Matches {
		combo := comboOf(m.Job)
		pct := 100 * m.QueueTransferFraction()
		byCombo[combo] = append(byCombo[combo], pct)
		tc.pcts = append(tc.pcts, pct)
	}
	sort.Float64s(tc.pcts)
	for c := range byCombo {
		sort.Float64s(byCombo[c])
		tc.Totals[c] = len(byCombo[c])
		tc.Counts[c] = make([]int, len(thresholds))
		for i, th := range thresholds {
			// First index with pct >= th is also the count of pcts < th.
			tc.Counts[c][i] = sort.SearchFloat64s(byCombo[c], th)
		}
	}
	return tc
}

// AboveThreshold counts matched jobs (all combos) with transfer-time
// percentage >= th — the paper's "72 jobs above 75 %" observation. Any
// cut-off works, not just configured thresholds; each query is one binary
// search over the sorted percentages.
func (tc *ThresholdCurves) AboveThreshold(th float64) int {
	return len(tc.pcts) - sort.SearchFloat64s(tc.pcts, th)
}

// SuccessCount is the number of matched jobs that finished (both combos
// with a finished job).
func (tc *ThresholdCurves) SuccessCount() int {
	return tc.Totals[JobOKTaskOK] + tc.Totals[JobOKTaskFail]
}

// Table renders the Fig. 9 counts.
func (tc *ThresholdCurves) Table() *report.Table {
	t := &report.Table{
		Title:   "Fig. 9 — job counts below transfer-time percentage thresholds",
		Columns: []string{"threshold"},
	}
	for c := 0; c < 4; c++ {
		t.Columns = append(t.Columns, StatusCombo(c).String())
	}
	for i, th := range tc.Thresholds {
		row := []string{fmt.Sprintf("< %.0f%%", th)}
		for c := 0; c < 4; c++ {
			row = append(row, fmt.Sprintf("%d", tc.Counts[c][i]))
		}
		t.AddRow(row...)
	}
	row := []string{"total"}
	for c := 0; c < 4; c++ {
		row = append(row, fmt.Sprintf("%d", tc.Totals[c]))
	}
	t.AddRow(row...)
	return t
}

// Series converts one combo's curve into a report series.
func (tc *ThresholdCurves) Series(combo StatusCombo) *report.Series {
	s := &report.Series{Name: combo.String(), XLabel: "threshold %", YLabel: "jobs"}
	for i, th := range tc.Thresholds {
		s.Points = append(s.Points, report.Point{X: th, Y: float64(tc.Counts[combo][i])})
	}
	return s
}
