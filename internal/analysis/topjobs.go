package analysis

import (
	"fmt"
	"sort"

	"panrucio/internal/core"
	"panrucio/internal/records"
	"panrucio/internal/report"
	"panrucio/internal/simtime"
	"panrucio/internal/stats"
)

// TopJob is one bar of Fig. 5 / Fig. 6: a matched job with its
// queuing-time breakdown and transferred volume.
type TopJob struct {
	PandaID       int64
	JobStatus     records.JobStatus
	TaskStatus    records.TaskStatus
	QueueTime     simtime.VTime
	TransferTime  simtime.VTime
	TransferPct   float64
	TransferBytes int64
	NumTransfers  int
}

// StatusLabel renders the paper's "task/job" two-letter label ("D" done,
// "F" failed), e.g. "D,F" for a failed job inside a successful task.
func (j TopJob) StatusLabel() string {
	l := func(ok bool) string {
		if ok {
			return "D"
		}
		return "F"
	}
	return l(j.TaskStatus == records.TaskDone) + "," + l(j.JobStatus == records.JobFinished)
}

// TopJobs extracts the Fig. 5 (class == AllLocal) or Fig. 6 (class ==
// AllRemote) population: matched jobs of the given locality class whose
// transfer time exceeds minFraction of their queuing time, ranked by
// queuing time, truncated to k.
func TopJobs(res *core.Result, class core.TransferClass, minFraction float64, k int) []TopJob {
	var out []TopJob
	for _, m := range res.Matches {
		if m.Class() != class {
			continue
		}
		frac := m.QueueTransferFraction()
		if frac < minFraction {
			continue
		}
		out = append(out, TopJob{
			PandaID:       m.Job.PandaID,
			JobStatus:     m.Job.Status,
			TaskStatus:    m.Job.TaskStatus,
			QueueTime:     m.Job.QueueTime(),
			TransferTime:  m.QueueTransferTime(),
			TransferPct:   100 * frac,
			TransferBytes: m.TotalBytes(),
			NumTransfers:  len(m.Transfers),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].QueueTime != out[j].QueueTime {
			return out[i].QueueTime > out[j].QueueTime
		}
		return out[i].PandaID < out[j].PandaID
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// TopJobsTable renders the Fig. 5/6 data rows.
func TopJobsTable(title string, jobs []TopJob) *report.Table {
	t := &report.Table{
		Title: title,
		Columns: []string{"pandaid", "task,job", "queue time (s)", "transfer time (s)",
			"transfer %", "transferred", "events"},
	}
	for _, j := range jobs {
		t.AddRow(fmt.Sprintf("%d", j.PandaID), j.StatusLabel(),
			fmt.Sprintf("%d", j.QueueTime), fmt.Sprintf("%d", j.TransferTime),
			fmt.Sprintf("%.1f%%", j.TransferPct),
			stats.FormatBytes(float64(j.TransferBytes)),
			fmt.Sprintf("%d", j.NumTransfers))
	}
	return t
}

// FailedFraction reports the share of failed jobs in a top-jobs population
// (the paper observes failures concentrate among extreme transfer-time
// jobs).
func FailedFraction(jobs []TopJob) float64 {
	if len(jobs) == 0 {
		return 0
	}
	failed := 0
	for _, j := range jobs {
		if j.JobStatus == records.JobFailed {
			failed++
		}
	}
	return float64(failed) / float64(len(jobs))
}
