package anomaly

import (
	"fmt"
	"sort"

	"panrucio/internal/core"
	"panrucio/internal/records"
	"panrucio/internal/report"
	"panrucio/internal/stats"
	"panrucio/internal/topology"
)

// Kind classifies a finding.
type Kind string

// Anomaly kinds, one per pathology the paper documents.
const (
	// ExcessiveTransferTime: transfer time above a threshold fraction of
	// queuing time (Fig. 9's >75 % population).
	ExcessiveTransferTime Kind = "excessive-transfer-time"
	// RedundantTransfer: the same file moved more than once for one job
	// (Fig. 12).
	RedundantTransfer Kind = "redundant-transfer"
	// SpanningTransfer: a transfer crossing from queue into wall time
	// (Fig. 11).
	SpanningTransfer Kind = "spanning-transfer"
	// SequentialStaging: multi-file stage-in with no overlap — bandwidth
	// under-utilization (Fig. 10).
	SequentialStaging Kind = "sequential-staging"
	// ThroughputDisparity: matched transfers of one job differing by a
	// large throughput factor (Fig. 10's 17.7x, Fig. 11's >20x).
	ThroughputDisparity Kind = "throughput-disparity"
	// MetadataLoss: matched transfers with UNKNOWN or invalid endpoint
	// labels (Table 3).
	MetadataLoss Kind = "metadata-loss"
)

// Finding is one detected anomaly on one job.
type Finding struct {
	Kind    Kind
	PandaID int64
	// Severity is a unitless score in (0, ∞); 1.0 marks the detection
	// threshold, larger is worse. Findings are ranked by it.
	Severity float64
	Detail   string
}

// Detector inspects one matched job.
type Detector interface {
	Name() string
	Detect(m *core.Match) []Finding
}

// ThresholdDetector flags jobs whose queue-transfer fraction exceeds
// Fraction (default 0.75, the paper's extreme-population cut).
type ThresholdDetector struct {
	Fraction float64
}

// Name implements Detector.
func (d ThresholdDetector) Name() string { return "transfer-time-threshold" }

// Detect implements Detector.
func (d ThresholdDetector) Detect(m *core.Match) []Finding {
	th := d.Fraction
	if th == 0 {
		th = 0.75
	}
	frac := m.QueueTransferFraction()
	if frac < th {
		return nil
	}
	return []Finding{{
		Kind:     ExcessiveTransferTime,
		PandaID:  m.Job.PandaID,
		Severity: frac / th,
		Detail: fmt.Sprintf("transfer time %.1f%% of queuing time (threshold %.0f%%)",
			100*frac, 100*th),
	}}
}

// RedundancyDetector flags duplicate transfers of the same file.
type RedundancyDetector struct{}

// Name implements Detector.
func (RedundancyDetector) Name() string { return "redundancy" }

// Detect implements Detector.
func (RedundancyDetector) Detect(m *core.Match) []Finding {
	groups := core.FindRedundant(m)
	if len(groups) == 0 {
		return nil
	}
	var wasted int64
	dup := 0
	for _, g := range groups {
		for _, ev := range g.Events[1:] {
			wasted += ev.FileSize
			dup++
		}
	}
	return []Finding{{
		Kind:     RedundantTransfer,
		PandaID:  m.Job.PandaID,
		Severity: float64(dup),
		Detail: fmt.Sprintf("%d duplicate transfer(s), %s avoidable",
			dup, stats.FormatBytes(float64(wasted))),
	}}
}

// SpanDetector flags transfers crossing the job's execution start.
type SpanDetector struct{}

// Name implements Detector.
func (SpanDetector) Name() string { return "queue-wall-span" }

// Detect implements Detector.
func (SpanDetector) Detect(m *core.Match) []Finding {
	var out []Finding
	for _, ev := range m.Transfers {
		if ev.StartedAt < m.Job.StartTime && ev.EndedAt > m.Job.StartTime {
			overrun := (ev.EndedAt - m.Job.StartTime).Seconds()
			wall := m.Job.WallTime().Seconds()
			sev := 1.0
			if wall > 0 {
				sev = 1 + overrun/wall
			}
			out = append(out, Finding{
				Kind:     SpanningTransfer,
				PandaID:  m.Job.PandaID,
				Severity: sev,
				Detail: fmt.Sprintf("transfer of %s overran execution start by %.0fs",
					stats.FormatBytes(float64(ev.FileSize)), overrun),
			})
		}
	}
	return out
}

// SequentialDetector flags multi-file stage-ins with zero overlap, the
// bandwidth-under-utilization signature of Fig. 10.
type SequentialDetector struct {
	// MinFiles is the smallest set considered (default 3).
	MinFiles int
}

// Name implements Detector.
func (SequentialDetector) Name() string { return "sequential-staging" }

// Detect implements Detector.
func (d SequentialDetector) Detect(m *core.Match) []Finding {
	min := d.MinFiles
	if min == 0 {
		min = 3
	}
	downloads := make([]*records.TransferEvent, 0, len(m.Transfers))
	for _, ev := range m.Transfers {
		if ev.IsDownload {
			downloads = append(downloads, ev)
		}
	}
	if len(downloads) < min {
		return nil
	}
	sort.Slice(downloads, func(i, j int) bool { return downloads[i].StartedAt < downloads[j].StartedAt })
	for i := 1; i < len(downloads); i++ {
		if downloads[i].StartedAt < downloads[i-1].EndedAt {
			return nil // overlap: staging is (at least partly) parallel
		}
	}
	return []Finding{{
		Kind:     SequentialStaging,
		PandaID:  m.Job.PandaID,
		Severity: float64(len(downloads)) / float64(min),
		Detail:   fmt.Sprintf("%d files staged strictly one at a time", len(downloads)),
	}}
}

// DisparityDetector flags jobs whose transfers span a large throughput
// ratio (default 10x).
type DisparityDetector struct {
	MinRatio float64
}

// Name implements Detector.
func (DisparityDetector) Name() string { return "throughput-disparity" }

// Detect implements Detector.
func (d DisparityDetector) Detect(m *core.Match) []Finding {
	min := d.MinRatio
	if min == 0 {
		min = 10
	}
	lo, hi := 0.0, 0.0
	for _, ev := range m.Transfers {
		if ev.ThroughputBps <= 0 {
			continue
		}
		if lo == 0 || ev.ThroughputBps < lo {
			lo = ev.ThroughputBps
		}
		if ev.ThroughputBps > hi {
			hi = ev.ThroughputBps
		}
	}
	if lo == 0 || hi/lo < min {
		return nil
	}
	return []Finding{{
		Kind:     ThroughputDisparity,
		PandaID:  m.Job.PandaID,
		Severity: hi / lo / min,
		Detail: fmt.Sprintf("throughput spread %.1fx (%s .. %s)",
			hi/lo, stats.FormatRate(lo), stats.FormatRate(hi)),
	}}
}

// MetadataDetector flags matched transfers with unresolvable endpoint
// labels, annotating how many are repairable by inference.
type MetadataDetector struct {
	Grid *topology.Grid
}

// Name implements Detector.
func (MetadataDetector) Name() string { return "metadata-loss" }

// Detect implements Detector.
func (d MetadataDetector) Detect(m *core.Match) []Finding {
	if d.Grid == nil {
		return nil
	}
	broken := 0
	for _, ev := range m.Transfers {
		_, srcOK := d.Grid.Site(ev.SourceSite)
		_, dstOK := d.Grid.Site(ev.DestinationSite)
		if !srcOK || !dstOK {
			broken++
		}
	}
	if broken == 0 {
		return nil
	}
	repairable := len(core.InferUnknownSites(m, d.Grid))
	return []Finding{{
		Kind:     MetadataLoss,
		PandaID:  m.Job.PandaID,
		Severity: float64(broken),
		Detail: fmt.Sprintf("%d transfer(s) with lost endpoint labels, %d repairable",
			broken, repairable),
	}}
}

// Scanner runs a detector set over a matching result.
type Scanner struct {
	detectors []Detector
}

// NewScanner builds a scanner; with no detectors it installs the default
// set (all six, with paper-calibrated thresholds).
func NewScanner(grid *topology.Grid, detectors ...Detector) *Scanner {
	if len(detectors) == 0 {
		detectors = []Detector{
			ThresholdDetector{},
			RedundancyDetector{},
			SpanDetector{},
			SequentialDetector{},
			DisparityDetector{},
			MetadataDetector{Grid: grid},
		}
	}
	return &Scanner{detectors: detectors}
}

// Report is the outcome of one scan.
type Report struct {
	JobsScanned int
	Findings    []Finding
}

// Scan inspects every match and returns findings sorted by severity
// (descending), ties broken by pandaid for determinism.
func (s *Scanner) Scan(res *core.Result) *Report {
	r := &Report{JobsScanned: len(res.Matches)}
	for i := range res.Matches {
		m := &res.Matches[i]
		for _, d := range s.detectors {
			r.Findings = append(r.Findings, d.Detect(m)...)
		}
	}
	sort.Slice(r.Findings, func(a, b int) bool {
		if r.Findings[a].Severity != r.Findings[b].Severity {
			return r.Findings[a].Severity > r.Findings[b].Severity
		}
		if r.Findings[a].PandaID != r.Findings[b].PandaID {
			return r.Findings[a].PandaID < r.Findings[b].PandaID
		}
		return r.Findings[a].Kind < r.Findings[b].Kind
	})
	return r
}

// CountByKind tallies findings per anomaly kind.
func (r *Report) CountByKind() map[Kind]int {
	out := map[Kind]int{}
	for _, f := range r.Findings {
		out[f.Kind]++
	}
	return out
}

// AffectedJobs counts distinct jobs with at least one finding.
func (r *Report) AffectedJobs() int {
	seen := map[int64]bool{}
	for _, f := range r.Findings {
		seen[f.PandaID] = true
	}
	return len(seen)
}

// Top returns the k highest-severity findings.
func (r *Report) Top(k int) []Finding {
	if k > len(r.Findings) {
		k = len(r.Findings)
	}
	return r.Findings[:k]
}

// Table renders the scan summary plus the top findings.
func (r *Report) Table(topK int) *report.Table {
	t := &report.Table{
		Title:   "Automated anomaly scan",
		Columns: []string{"item", "value"},
	}
	t.AddRow("jobs scanned", fmt.Sprintf("%d", r.JobsScanned))
	t.AddRow("findings", fmt.Sprintf("%d", len(r.Findings)))
	t.AddRow("affected jobs", fmt.Sprintf("%d", r.AffectedJobs()))
	kinds := r.CountByKind()
	var keys []string
	for k := range kinds {
		keys = append(keys, string(k))
	}
	sort.Strings(keys)
	for _, k := range keys {
		t.AddRow("  "+k, fmt.Sprintf("%d", kinds[Kind(k)]))
	}
	for i, f := range r.Top(topK) {
		t.AddRow(fmt.Sprintf("top %d [%s]", i+1, f.Kind),
			fmt.Sprintf("job %d (sev %.2f): %s", f.PandaID, f.Severity, f.Detail))
	}
	return t
}
