package anomaly

import (
	"strings"
	"testing"

	"panrucio/internal/core"
	"panrucio/internal/records"
	"panrucio/internal/sim"
	"panrucio/internal/simtime"
	"panrucio/internal/topology"
)

// match fabricates a matched job for detector unit tests.
func match(queue, wall simtime.VTime, evs ...*records.TransferEvent) *core.Match {
	return &core.Match{
		Job: &records.JobRecord{
			PandaID: 100, CreationTime: 0, StartTime: queue, EndTime: queue + wall,
			Status: records.JobFinished, TaskStatus: records.TaskDone,
		},
		Transfers: evs,
	}
}

func ev(lfn string, size int64, start, end simtime.VTime) *records.TransferEvent {
	return &records.TransferEvent{
		LFN: lfn, FileSize: size, StartedAt: start, EndedAt: end,
		SourceSite: "CERN-PROD", DestinationSite: "CERN-PROD",
		IsDownload: true, ThroughputBps: float64(size) / float64(end-start),
	}
}

func TestThresholdDetector(t *testing.T) {
	d := ThresholdDetector{}
	// 80% of a 1000s queue: above the default 0.75 cut.
	hot := match(1000, 2000, ev("a", 1e9, 0, 800))
	got := d.Detect(hot)
	if len(got) != 1 || got[0].Kind != ExcessiveTransferTime {
		t.Fatalf("findings = %+v", got)
	}
	if got[0].Severity < 1 {
		t.Error("severity below threshold mark")
	}
	cold := match(1000, 2000, ev("a", 1e9, 0, 100))
	if d.Detect(cold) != nil {
		t.Error("10% job flagged at default threshold")
	}
	strict := ThresholdDetector{Fraction: 0.05}
	if strict.Detect(cold) == nil {
		t.Error("custom threshold ignored")
	}
}

func TestRedundancyDetector(t *testing.T) {
	d := RedundancyDetector{}
	m := match(1000, 2000,
		ev("a", 5e9, 0, 100),
		ev("a", 5e9, 200, 300), // duplicate of a
		ev("b", 1e9, 0, 50),
	)
	got := d.Detect(m)
	if len(got) != 1 || got[0].Kind != RedundantTransfer {
		t.Fatalf("findings = %+v", got)
	}
	if !strings.Contains(got[0].Detail, "5.00 GB") {
		t.Errorf("wasted volume missing from detail: %s", got[0].Detail)
	}
	if d.Detect(match(1000, 2000, ev("a", 1e9, 0, 100))) != nil {
		t.Error("false redundancy")
	}
}

func TestSpanDetector(t *testing.T) {
	d := SpanDetector{}
	m := match(1000, 1000, ev("a", 1e9, 500, 1600)) // crosses start=1000
	got := d.Detect(m)
	if len(got) != 1 || got[0].Kind != SpanningTransfer {
		t.Fatalf("findings = %+v", got)
	}
	if got[0].Severity <= 1 {
		t.Error("overrun severity should exceed 1")
	}
	if d.Detect(match(1000, 1000, ev("a", 1e9, 0, 900))) != nil {
		t.Error("non-spanning transfer flagged")
	}
}

func TestSequentialDetector(t *testing.T) {
	d := SequentialDetector{}
	seq := match(1000, 1000,
		ev("a", 1e9, 0, 100), ev("b", 1e9, 100, 250), ev("c", 1e9, 250, 400))
	got := d.Detect(seq)
	if len(got) != 1 || got[0].Kind != SequentialStaging {
		t.Fatalf("findings = %+v", got)
	}
	par := match(1000, 1000,
		ev("a", 1e9, 0, 100), ev("b", 1e9, 50, 250), ev("c", 1e9, 250, 400))
	if d.Detect(par) != nil {
		t.Error("overlapping staging flagged as sequential")
	}
	two := match(1000, 1000, ev("a", 1e9, 0, 100), ev("b", 1e9, 100, 200))
	if d.Detect(two) != nil {
		t.Error("below MinFiles flagged")
	}
	// Uploads do not count toward staging.
	up := ev("u", 1e9, 400, 500)
	up.IsDownload, up.IsUpload = false, true
	mixed := match(1000, 1000, ev("a", 1e9, 0, 100), ev("b", 1e9, 100, 200), up)
	if d.Detect(mixed) != nil {
		t.Error("upload counted as staging file")
	}
}

func TestDisparityDetector(t *testing.T) {
	d := DisparityDetector{}
	m := match(1000, 1000,
		ev("a", 20e9, 0, 10), // 2 GB/s
		ev("b", 1e9, 10, 20)) // 100 MB/s -> 20x spread
	got := d.Detect(m)
	if len(got) != 1 || got[0].Kind != ThroughputDisparity {
		t.Fatalf("findings = %+v", got)
	}
	even := match(1000, 1000, ev("a", 1e9, 0, 10), ev("b", 1e9, 10, 20))
	if d.Detect(even) != nil {
		t.Error("uniform throughput flagged")
	}
}

func TestMetadataDetector(t *testing.T) {
	grid := topology.Default(topology.DefaultSpec{})
	d := MetadataDetector{Grid: grid}
	bad := ev("a", 1e9, 0, 100)
	bad.DestinationSite = topology.UnknownSite
	good := ev("a", 1e9, 200, 300)
	m := match(1000, 1000, bad, good)
	got := d.Detect(m)
	if len(got) != 1 || got[0].Kind != MetadataLoss {
		t.Fatalf("findings = %+v", got)
	}
	if !strings.Contains(got[0].Detail, "1 repairable") {
		t.Errorf("repairability missing: %s", got[0].Detail)
	}
	if d.Detect(match(1000, 1000, good)) != nil {
		t.Error("intact metadata flagged")
	}
	if (MetadataDetector{}).Detect(m) != nil {
		t.Error("nil-grid detector should be inert")
	}
}

func TestScannerAggregation(t *testing.T) {
	grid := topology.Default(topology.DefaultSpec{})
	res := &core.Result{}
	// One clean job and one triple-anomalous job.
	res.Matches = append(res.Matches, *match(1000, 1000, ev("ok", 1e9, 0, 20)))
	hotEv1 := ev("a", 5e9, 0, 500)
	hotEv2 := ev("a", 5e9, 600, 990)
	hot := match(1000, 1000, hotEv1, hotEv2)
	hot.Job.PandaID = 200
	res.Matches = append(res.Matches, *hot)

	rep := NewScanner(grid).Scan(res)
	if rep.JobsScanned != 2 {
		t.Errorf("scanned = %d", rep.JobsScanned)
	}
	kinds := rep.CountByKind()
	if kinds[ExcessiveTransferTime] != 1 || kinds[RedundantTransfer] != 1 {
		t.Errorf("kinds = %v", kinds)
	}
	if rep.AffectedJobs() != 1 {
		t.Errorf("affected = %d, want only job 200", rep.AffectedJobs())
	}
	// Sorted by severity descending.
	for i := 1; i < len(rep.Findings); i++ {
		if rep.Findings[i].Severity > rep.Findings[i-1].Severity {
			t.Fatal("findings not sorted by severity")
		}
	}
	tbl := rep.Table(3).Render()
	for _, needle := range []string{"jobs scanned", "affected jobs", "top 1"} {
		if !strings.Contains(tbl, needle) {
			t.Errorf("table missing %q", needle)
		}
	}
	if got := rep.Top(1000); len(got) != len(rep.Findings) {
		t.Error("Top over-capped")
	}
}

// End-to-end: the scanner finds every anomaly class the simulation plants.
func TestScanOnSimulatedRun(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale run skipped in -short mode")
	}
	res := sim.Run(sim.PaperConfig(1))
	jobs := res.Store.Jobs(res.WindowFrom, res.WindowTo, records.LabelUser)
	rm2 := core.NewMatcher(res.Store).Run(jobs, core.RM2)
	rep := NewScanner(res.Grid).Scan(rm2)
	if len(rep.Findings) == 0 {
		t.Fatal("no findings on the default run")
	}
	kinds := rep.CountByKind()
	for _, k := range []Kind{ExcessiveTransferTime, RedundantTransfer, SpanningTransfer, SequentialStaging, MetadataLoss} {
		if kinds[k] == 0 {
			t.Errorf("no %s findings on the default run", k)
		}
	}
	// Determinism.
	rep2 := NewScanner(res.Grid).Scan(rm2)
	if len(rep2.Findings) != len(rep.Findings) {
		t.Error("scan not deterministic")
	}
}
