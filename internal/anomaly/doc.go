// Package anomaly automates the detection the paper performs manually in
// Section 5.4 and calls for in its conclusion ("future efforts should
// focus on automating anomaly detection based on transfer-time
// thresholds"). Detectors consume matched jobs (core.Match) and emit
// typed, severity-scored findings; a scan aggregates them into an
// operator-facing report.
//
// Entry point: NewScanner(grid).Scan(result) over a matching result —
// usually the RM2 pass, whose relaxed site condition surfaces the
// UNKNOWN-endpoint and redundant-transfer pathologies the detectors
// score. Scans are deterministic: findings derive only from the matches
// and the grid, and are reported in a stable order, so the same run
// always yields the same report.
package anomaly
