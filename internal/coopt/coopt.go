package coopt

import (
	"fmt"
	"sort"

	"panrucio/internal/panda"
	"panrucio/internal/records"
	"panrucio/internal/report"
	"panrucio/internal/sim"
	"panrucio/internal/simtime"
	"panrucio/internal/stats"
	"panrucio/internal/topology"
)

// QueueAwarePolicy balances load first: it still prefers sites holding the
// input, but walks away from a data site whose expected backlog wait
// exceeds MaxWaitFactor times the estimated payload duration, picking the
// least-loaded adequate site instead. This is "PanDA learns Rucio can move
// the data" — it trades network traffic for queue time.
type QueueAwarePolicy struct {
	// MeanWallSeconds estimates payload duration for wait scoring
	// (default 5400, the workload's log-normal median).
	MeanWallSeconds float64
	// MaxWaitFactor is the backlog-wait budget in payload units (default 0.5).
	MaxWaitFactor float64
}

func (p QueueAwarePolicy) defaults() QueueAwarePolicy {
	if p.MeanWallSeconds == 0 {
		p.MeanWallSeconds = 5400
	}
	if p.MaxWaitFactor == 0 {
		p.MaxWaitFactor = 0.5
	}
	return p
}

// Name implements panda.BrokerPolicy.
func (QueueAwarePolicy) Name() string { return "queue-aware" }

// expectedWait estimates the backlog drain time at a site in seconds.
func expectedWait(s *panda.System, site string, meanWall float64) float64 {
	slots := s.SiteSlots(site)
	if slots <= 0 {
		return 1e18
	}
	pending := float64(s.SiteBacklog(site))
	return pending * meanWall / float64(slots)
}

// Choose implements panda.BrokerPolicy.
func (p QueueAwarePolicy) Choose(j *panda.Job, s *panda.System, rng *simtime.RNG) string {
	p = p.defaults()
	// First preference: the best data site within the wait budget.
	bestData, bestBytes := "", int64(0)
	for _, site := range s.SiteNames() {
		bytes := s.InputBytesAt(j, site)
		if bytes > bestBytes && expectedWait(s, site, p.MeanWallSeconds) <= p.MaxWaitFactor*p.MeanWallSeconds {
			bestData, bestBytes = site, bytes
		}
	}
	if bestData != "" {
		return bestData
	}
	// Every data site is congested: least expected wait wins, ties broken
	// by capacity then name for determinism.
	best, bestWait := "", 1e18
	for _, site := range s.SiteNames() {
		if s.SiteSlots(site) == 0 {
			continue
		}
		w := expectedWait(s, site, p.MeanWallSeconds)
		if w < bestWait || (w == bestWait && s.SiteSlots(site) > s.SiteSlots(best)) {
			best, bestWait = site, w
		}
	}
	if best == "" {
		names := s.SiteNames()
		return names[rng.Intn(len(names))]
	}
	return best
}

// JointPolicy is the shared-performance-awareness broker: for each
// candidate site it estimates end-to-end readiness time as expected
// backlog wait plus expected stage-in time (missing input bytes over the
// site's nominal inbound rate), and picks the minimum. It models exactly
// the information exchange the paper says PanDA and Rucio lack today.
type JointPolicy struct {
	// MeanWallSeconds estimates payload duration for wait scoring
	// (default 5400).
	MeanWallSeconds float64
	// StreamBps is the per-transfer throughput estimate used for staging
	// cost (default 250e6, just under the storage-door cap).
	StreamBps float64
}

func (p JointPolicy) defaults() JointPolicy {
	if p.MeanWallSeconds == 0 {
		p.MeanWallSeconds = 5400
	}
	if p.StreamBps == 0 {
		p.StreamBps = 250e6
	}
	return p
}

// Name implements panda.BrokerPolicy.
func (JointPolicy) Name() string { return "joint" }

// Choose implements panda.BrokerPolicy.
func (p JointPolicy) Choose(j *panda.Job, s *panda.System, rng *simtime.RNG) string {
	p = p.defaults()
	var totalBytes int64
	for _, f := range j.Inputs {
		totalBytes += f.Size
	}
	best, bestCost := "", 1e18
	for _, site := range s.SiteNames() {
		if s.SiteSlots(site) == 0 {
			continue
		}
		wait := expectedWait(s, site, p.MeanWallSeconds)
		missing := totalBytes - s.InputBytesAt(j, site)
		if missing < 0 {
			missing = 0
		}
		// Effective staging rate: per-stream estimate bounded by the
		// narrowest plausible WAN path into the site.
		rate := p.StreamBps
		if siteInfo, ok := s.Grid().Site(site); ok {
			wan := siteInfo.WANGbps * 1e9 / 8
			if wan < rate {
				rate = wan
			}
		}
		cost := wait + float64(missing)/rate
		if cost < bestCost || (cost == bestCost && site < best) {
			best, bestCost = site, cost
		}
	}
	if best == "" {
		names := s.SiteNames()
		return names[rng.Intn(len(names))]
	}
	return best
}

// RandomPolicy is the naive baseline: CPU-weighted random placement with
// no data awareness at all.
type RandomPolicy struct{}

// Name implements panda.BrokerPolicy.
func (RandomPolicy) Name() string { return "random-cpu" }

// Choose implements panda.BrokerPolicy.
func (RandomPolicy) Choose(j *panda.Job, s *panda.System, rng *simtime.RNG) string {
	names := s.SiteNames()
	weights := make([]float64, len(names))
	for i, n := range names {
		weights[i] = float64(s.SiteSlots(n))
	}
	return names[rng.Choice(weights)]
}

// Outcome summarizes one policy's end-to-end behaviour over a run.
type Outcome struct {
	Policy string

	Jobs        int
	MeanQueueS  float64
	P95QueueS   float64
	FailureRate float64

	// Download movement (job-correlated events only).
	LocalBytes  int64
	RemoteBytes int64
}

// RemoteFraction is remote download volume over total download volume.
func (o Outcome) RemoteFraction() float64 {
	total := o.LocalBytes + o.RemoteBytes
	if total == 0 {
		return 0
	}
	return float64(o.RemoteBytes) / float64(total)
}

// ContentionConfig builds the policy-comparison scenario: the paper-scale
// workload on a grid scaled down to a small fraction of its CPU, so data
// hot spots saturate and brokerage choices matter. Corruption and
// background traffic are disabled — the comparison measures scheduling,
// not metadata quality.
func ContentionConfig(seed int64, days int, cpuScale float64) sim.Config {
	cfg := sim.PaperConfig(seed)
	cfg.Days = days
	cfg.CPUScale = cpuScale
	cfg.Corruption.Disable = true
	cfg.DisableBackground = true
	return cfg
}

// Evaluate runs one policy over the scenario and collects its outcome.
func Evaluate(cfg sim.Config, policy panda.BrokerPolicy) Outcome {
	cfg.Panda.Broker = policy
	res := sim.Run(cfg)
	jobs := res.Store.Jobs(res.WindowFrom, res.WindowTo, "")
	out := Outcome{Policy: policy.Name(), Jobs: len(jobs)}
	var queues []float64
	failed := 0
	for _, j := range jobs {
		queues = append(queues, j.QueueTime().Seconds())
		if j.Status == records.JobFailed {
			failed++
		}
	}
	out.MeanQueueS = stats.Mean(queues)
	out.P95QueueS = stats.Percentile(queues, 95)
	if len(jobs) > 0 {
		out.FailureRate = float64(failed) / float64(len(jobs))
	}
	for _, ev := range res.Store.Transfers(0, 0) {
		if !ev.IsDownload || !ev.HasTaskID() {
			continue
		}
		if ev.IsLocal() {
			out.LocalBytes += ev.FileSize
		} else {
			out.RemoteBytes += ev.FileSize
		}
	}
	return out
}

// Compare evaluates every policy on the identical scenario (same seed,
// same workload arrivals) and returns outcomes in the given order.
func Compare(cfg sim.Config, policies []panda.BrokerPolicy) []Outcome {
	out := make([]Outcome, 0, len(policies))
	for _, p := range policies {
		out = append(out, Evaluate(cfg, p))
	}
	return out
}

// DefaultPolicies is the standard comparison set: the paper's production
// heuristic, the two co-optimization candidates, and the naive baseline.
func DefaultPolicies() []panda.BrokerPolicy {
	return []panda.BrokerPolicy{
		panda.DataLocalityPolicy{},
		QueueAwarePolicy{},
		JointPolicy{},
		RandomPolicy{},
	}
}

// Table renders the comparison.
func Table(outcomes []Outcome) *report.Table {
	t := &report.Table{
		Title: "Brokerage policy comparison (co-optimization study)",
		Columns: []string{"policy", "jobs", "mean queue", "p95 queue",
			"failure rate", "remote volume", "remote fraction"},
	}
	for _, o := range outcomes {
		t.AddRow(o.Policy,
			fmt.Sprintf("%d", o.Jobs),
			fmt.Sprintf("%.0fs", o.MeanQueueS),
			fmt.Sprintf("%.0fs", o.P95QueueS),
			fmt.Sprintf("%.1f%%", 100*o.FailureRate),
			stats.FormatBytes(float64(o.RemoteBytes)),
			fmt.Sprintf("%.1f%%", 100*o.RemoteFraction()))
	}
	return t
}

// Rank orders outcomes by mean queue time (best scheduling first); it does
// not mutate the input.
func Rank(outcomes []Outcome) []Outcome {
	s := append([]Outcome(nil), outcomes...)
	sort.Slice(s, func(i, j int) bool { return s[i].MeanQueueS < s[j].MeanQueueS })
	return s
}

// Guard against accidental interface drift.
var (
	_ panda.BrokerPolicy = QueueAwarePolicy{}
	_ panda.BrokerPolicy = JointPolicy{}
	_ panda.BrokerPolicy = RandomPolicy{}
	_ panda.BrokerPolicy = panda.DataLocalityPolicy{}
	_                    = topology.Tier0 // documents the topology dependency of JointPolicy
)
