package coopt

import (
	"strings"
	"testing"

	"panrucio/internal/panda"
	"panrucio/internal/sim"
	"panrucio/internal/workload"
)

// contended returns a small, heavily contended scenario for fast tests.
func contended(seed int64) sim.Config {
	cfg := ContentionConfig(seed, 2, 0.01)
	cfg.Workload = workload.Config{
		InitialDatasets:  80,
		UserTaskInterval: 300,
		ProdTaskInterval: 1200,
		UserJobsMean:     12,
		ProdJobsMean:     20,
	}
	return cfg
}

func TestContentionConfigShape(t *testing.T) {
	cfg := ContentionConfig(3, 4, 0.02)
	if !cfg.Corruption.Disable || !cfg.DisableBackground {
		t.Error("contention scenario must disable corruption and background")
	}
	if cfg.CPUScale != 0.02 || cfg.Days != 4 || cfg.Seed != 3 {
		t.Errorf("config = %+v", cfg)
	}
}

func TestPolicyNamesDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range DefaultPolicies() {
		if p.Name() == "" || seen[p.Name()] {
			t.Fatalf("duplicate/empty policy name %q", p.Name())
		}
		seen[p.Name()] = true
	}
	if len(seen) != 4 {
		t.Errorf("expected 4 policies, got %d", len(seen))
	}
}

func TestEvaluateProducesOutcome(t *testing.T) {
	o := Evaluate(contended(1), panda.DataLocalityPolicy{})
	if o.Policy != "data-locality" {
		t.Errorf("policy label %q", o.Policy)
	}
	if o.Jobs == 0 {
		t.Fatal("no jobs completed")
	}
	if o.MeanQueueS <= 0 || o.P95QueueS < o.MeanQueueS {
		t.Errorf("queue stats implausible: mean=%.0f p95=%.0f", o.MeanQueueS, o.P95QueueS)
	}
	if o.LocalBytes == 0 {
		t.Error("no local download volume under data locality")
	}
}

func TestTradeoffShape(t *testing.T) {
	// The paper's Section 3.1 tension, reproduced: under contention the
	// data-locality policy minimizes remote movement; the queue-aware and
	// joint policies shift work away from hot data sites, moving more
	// bytes; the random baseline moves the most.
	cfg := contended(2)
	outcomes := Compare(cfg, DefaultPolicies())
	byName := map[string]Outcome{}
	for _, o := range outcomes {
		byName[o.Policy] = o
	}
	dl := byName["data-locality"]
	qa := byName["queue-aware"]
	jt := byName["joint"]
	rnd := byName["random-cpu"]

	if dl.RemoteFraction() > qa.RemoteFraction() {
		t.Errorf("data locality (%.2f) should move less remote data than queue-aware (%.2f)",
			dl.RemoteFraction(), qa.RemoteFraction())
	}
	if dl.RemoteFraction() > rnd.RemoteFraction() {
		t.Errorf("data locality (%.2f) should move less remote data than random (%.2f)",
			dl.RemoteFraction(), rnd.RemoteFraction())
	}
	// Load-aware policies must beat strict locality on queue time under
	// contention (the paper's "assigning jobs to remote sites may result
	// in shorter overall queuing times").
	if qa.MeanQueueS >= dl.MeanQueueS {
		t.Errorf("queue-aware mean queue %.0fs should beat data locality %.0fs under contention",
			qa.MeanQueueS, dl.MeanQueueS)
	}
	if jt.MeanQueueS >= dl.MeanQueueS {
		t.Errorf("joint mean queue %.0fs should beat data locality %.0fs under contention",
			jt.MeanQueueS, dl.MeanQueueS)
	}
}

func TestRankOrdersByQueue(t *testing.T) {
	in := []Outcome{{Policy: "a", MeanQueueS: 30}, {Policy: "b", MeanQueueS: 10}, {Policy: "c", MeanQueueS: 20}}
	got := Rank(in)
	if got[0].Policy != "b" || got[1].Policy != "c" || got[2].Policy != "a" {
		t.Errorf("rank order = %v", got)
	}
	if in[0].Policy != "a" {
		t.Error("Rank mutated its input")
	}
}

func TestOutcomeRemoteFraction(t *testing.T) {
	o := Outcome{LocalBytes: 75, RemoteBytes: 25}
	if o.RemoteFraction() != 0.25 {
		t.Errorf("fraction = %g", o.RemoteFraction())
	}
	if (Outcome{}).RemoteFraction() != 0 {
		t.Error("zero-volume fraction should be 0")
	}
}

func TestTableRender(t *testing.T) {
	out := Table([]Outcome{{Policy: "x", Jobs: 5, MeanQueueS: 10, P95QueueS: 20, FailureRate: 0.5, RemoteBytes: 1e9}})
	s := out.Render()
	for _, needle := range []string{"policy", "x", "50.0%", "1.00 GB"} {
		if !strings.Contains(s, needle) {
			t.Errorf("table missing %q:\n%s", needle, s)
		}
	}
}

func TestDeterministicComparison(t *testing.T) {
	a := Evaluate(contended(5), QueueAwarePolicy{})
	b := Evaluate(contended(5), QueueAwarePolicy{})
	if a != b {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}
