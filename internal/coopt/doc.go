// Package coopt implements the co-optimization strategies the paper's
// conclusion calls for: brokerage policies in which PanDA and Rucio share
// performance awareness instead of optimizing independently. Section 3.1
// frames the tension — "minimizing input data movement reduces network
// traffic but can overload compute resources at a single site" — and
// Section 5.3 shows that strict data locality is not always optimal.
//
// Three alternatives to panda.DataLocalityPolicy are provided, plus an
// A/B experiment harness that runs identical workloads under each policy
// and reports the end-to-end trade-off (queue time vs. remote data
// movement). Entry points: ContentionConfig builds a scaled-down scenario
// in which brokerage choices matter, Evaluate runs one policy, Compare
// runs DefaultPolicies side by side, and Table renders the comparison.
// Every policy evaluation is a fresh deterministic simulation of the same
// seed, so the A/B gap is attributable to the policy alone.
package coopt
