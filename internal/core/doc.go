// Package core implements the paper's primary contribution: the
// fine-grained metadata-matching framework that links PanDA jobs to Rucio
// file-transfer events at file granularity, despite transfer events
// carrying no job identifier.
//
// Three strategies are provided, mirroring Section 4:
//
//   - Exact (Algorithm 1): joins the job's JEDI file rows to transfer
//     events on (lfn, scope, dataset, proddblock, file_size), then filters
//     the candidate set by transfer-start-before-job-end, the
//     download/upload site condition, and the whole-set size-sum condition
//     (Σ file_size == ninputfilebytes ∨ noutputfilebytes).
//   - RM1: drops the file-size checking criterion. The paper motivates this
//     with two cases — valid subsets without an exact sum, and sizes not
//     recorded precisely to the byte; we therefore relax file_size both in
//     the per-file join and in the aggregate check (see DESIGN.md).
//   - RM2: additionally drops the computing-site condition, recovering
//     transfers whose source or destination was recorded as UNKNOWN or with
//     an invalid name.
//
// Entry points: NewMatcher over a metastore, then MatchJob for one job or
// Run / RunParallel for a job set; RepairStore and MeasureUplift apply RM2
// site inferences and quantify the exact-match uplift. The matcher probes
// the store's per-job join entries, which the segmented store answers at
// any point mid-run — MatchJob needs no Freeze and is the query surface of
// the sim.RunWithObserver checkpoints. Run and RunParallel still freeze the
// store up front: their worker goroutines require the read-only frozen
// state, which is what makes sharding by job safe.
//
// Determinism invariant: Run and RunParallel are one streaming pipeline
// whose aggregate is order-insensitive and whose Matches are sorted by
// pandaid (input position breaking ties), so results are identical for any
// worker count, byte for byte. The historical nested-loop matcher survives
// as the unexported matchJobReference, the oracle of the randomized
// equivalence tests and the baseline of the MatchRun benchmarks.
package core
