package core

import (
	"fmt"
	"math/rand"
	"testing"

	"panrucio/internal/metastore"
	"panrucio/internal/records"
	"panrucio/internal/simtime"
	"panrucio/internal/topology"
)

// fuzzStore fabricates a store with adversarial metadata: join keys shared
// across jobs and tasks, duplicate file rows inside one job, size jitter,
// unknown endpoints, late starts, wrong datasets, and noise events — the
// collisions the composite index must resolve exactly like the nested
// loop.
func fuzzStore(r *rand.Rand) (*metastore.Store, []*records.JobRecord) {
	store := metastore.New()
	sites := []string{"CERN-PROD", "BNL-ATLAS", "FZK-LCG2", topology.UnknownSite}
	scopes := []string{"data25", "mc23", "user.a"}
	datasets := []string{"ds0", "ds1", "ds2"}
	lfnPool := 12 // small pool so keys collide across rows and tasks

	var jobs []*records.JobRecord
	eventID := int64(1)
	for task := int64(1); task <= int64(1+r.Intn(4)); task++ {
		nJobs := 1 + r.Intn(5)
		for jn := 0; jn < nJobs; jn++ {
			site := sites[r.Intn(len(sites)-1)] // jobs never run at UNKNOWN
			j := &records.JobRecord{
				PandaID:       task*1000 + int64(jn),
				JediTaskID:    task,
				ComputingSite: site,
				Label:         records.LabelUser,
				CreationTime:  1000,
				StartTime:     simtime.VTime(2000 + r.Intn(2000)),
				EndTime:       simtime.VTime(8000 + r.Intn(4000)),
				Status:        records.JobFinished,
				TaskStatus:    records.TaskDone,
			}
			var inBytes int64
			nFiles := 1 + r.Intn(6)
			for fn := 0; fn < nFiles; fn++ {
				f := &records.FileRecord{
					PandaID:    j.PandaID,
					JediTaskID: task,
					LFN:        fmt.Sprintf("f%02d", r.Intn(lfnPool)),
					Scope:      scopes[r.Intn(len(scopes))],
					Dataset:    datasets[r.Intn(len(datasets))],
					ProdDBlock: datasets[r.Intn(len(datasets))],
					FileSize:   int64(1e9 + r.Intn(5)*1e8),
					Kind:       records.FileInput,
				}
				inBytes += f.FileSize
				store.PutFile(f)
				if r.Intn(4) == 0 { // duplicate row, same join key
					dup := *f
					store.PutFile(&dup)
				}
				for e := 0; e < r.Intn(3); e++ {
					ev := &records.TransferEvent{
						EventID:         eventID,
						LFN:             f.LFN,
						Scope:           f.Scope,
						Dataset:         f.Dataset,
						ProdDBlock:      f.ProdDBlock,
						FileSize:        f.FileSize,
						SourceSite:      sites[r.Intn(len(sites))],
						DestinationSite: site,
						Activity:        records.AnalysisDownload,
						IsDownload:      true,
						JediTaskID:      task,
						StartedAt:       simtime.VTime(1500 + r.Intn(12000)),
					}
					ev.EndedAt = ev.StartedAt + simtime.VTime(50+r.Intn(500))
					eventID++
					switch r.Intn(6) {
					case 0:
						ev.FileSize += int64(1 + r.Intn(20)) // jitter
					case 1:
						ev.DestinationSite = topology.UnknownSite
					case 2:
						ev.Dataset = "ds_broken"
					case 3:
						ev.JediTaskID = task + 100 // wrong task
					case 4:
						ev.IsDownload = false
						ev.IsUpload = true
						ev.SourceSite = site
					}
					store.PutTransfer(ev)
				}
			}
			if r.Intn(3) > 0 {
				j.NInputFileBytes = inBytes
			} else {
				j.NInputFileBytes = int64(r.Intn(int(2e10)))
			}
			store.PutJob(j)
			jobs = append(jobs, j)
		}
	}
	// Noise: task-carrying events no file row points at.
	for n := 0; n < r.Intn(10); n++ {
		store.PutTransfer(&records.TransferEvent{
			EventID: eventID, LFN: fmt.Sprintf("noise%d", n), Scope: "noise",
			Dataset: "noise", ProdDBlock: "noise", FileSize: 1,
			JediTaskID: int64(1 + r.Intn(5)), StartedAt: 2000, EndedAt: 2100,
			SourceSite: sites[0], DestinationSite: sites[1],
			Activity: records.AnalysisDownload, IsDownload: true,
		})
		eventID++
	}
	return store, jobs
}

func sameEvents(t *testing.T, label string, got, want []*records.TransferEvent) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d events, reference has %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i].EventID != want[i].EventID {
			t.Fatalf("%s: event %d is %d, reference has %d", label, i, got[i].EventID, want[i].EventID)
		}
	}
}

func sameResult(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if got.Method != want.Method || got.TotalJobs != want.TotalJobs ||
		got.TotalTransfers != want.TotalTransfers ||
		got.TransfersWithTaskID != want.TransfersWithTaskID ||
		got.MatchedJobs != want.MatchedJobs ||
		got.MatchedTransfers != want.MatchedTransfers ||
		got.LocalTransfers != want.LocalTransfers ||
		got.RemoteTransfers != want.RemoteTransfers ||
		got.JobsAllLocal != want.JobsAllLocal ||
		got.JobsAllRemote != want.JobsAllRemote ||
		got.JobsMixed != want.JobsMixed {
		t.Fatalf("%s: result counters diverge:\n got  %+v\n want %+v", label, got, want)
	}
	if len(got.Matches) != len(want.Matches) {
		t.Fatalf("%s: %d matches, reference has %d", label, len(got.Matches), len(want.Matches))
	}
	for i := range got.Matches {
		if got.Matches[i].Job.PandaID != want.Matches[i].Job.PandaID {
			t.Fatalf("%s: match %d is job %d, reference has %d",
				label, i, got.Matches[i].Job.PandaID, want.Matches[i].Job.PandaID)
		}
		sameEvents(t, fmt.Sprintf("%s match %d", label, i), got.Matches[i].Transfers, want.Matches[i].Transfers)
	}
}

// TestIndexedMatcherEquivalence fuzzes stores and asserts the indexed
// MatchJob and the Run/RunParallel pipeline (workers 1 and 4) reproduce
// the nested-loop reference exactly, per job and in aggregate.
func TestIndexedMatcherEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 60; seed++ {
		r := rand.New(rand.NewSource(seed))
		store, jobs := fuzzStore(r)
		m := NewMatcher(store)
		for _, method := range []Method{Exact, RM1, RM2} {
			for _, j := range jobs {
				sameEvents(t, fmt.Sprintf("seed %d %v job %d", seed, method, j.PandaID),
					m.MatchJob(j, method), m.matchJobReference(j, method))
			}
			ref := m.runReference(jobs, method)
			sameResult(t, fmt.Sprintf("seed %d %v Run", seed, method), m.Run(jobs, method), ref)
			for _, workers := range []int{1, 4} {
				sameResult(t, fmt.Sprintf("seed %d %v RunParallel(%d)", seed, method, workers),
					m.RunParallel(jobs, method, workers), ref)
			}
		}
	}
}

// TestDuplicatePandaIDDeterministicOrder: the store legally retains
// duplicate-pandaid job rows, and the pipeline must order their matches by
// input position, identically for every worker count.
func TestDuplicatePandaIDDeterministicOrder(t *testing.T) {
	store := metastore.New()
	var jobs []*records.JobRecord
	for i := 0; i < 6; i++ {
		j := &records.JobRecord{
			PandaID: 1, JediTaskID: 7, ComputingSite: "CERN-PROD",
			Label: records.LabelUser, CreationTime: 1000, StartTime: 2000, EndTime: 5000,
		}
		store.PutJob(j)
		store.PutFile(&records.FileRecord{
			PandaID: 1, JediTaskID: 7, LFN: "in0", Scope: "data25",
			Dataset: "ds", ProdDBlock: "ds", FileSize: 3e9, Kind: records.FileInput,
		})
		jobs = append(jobs, j)
	}
	store.PutTransfer(&records.TransferEvent{
		EventID: 100, LFN: "in0", Scope: "data25", Dataset: "ds", ProdDBlock: "ds",
		FileSize: 3e9, SourceSite: "CERN-PROD", DestinationSite: "CERN-PROD",
		Activity: records.AnalysisDownload, IsDownload: true,
		JediTaskID: 7, StartedAt: 1100, EndedAt: 1300,
	})
	m := NewMatcher(store)
	want := m.Run(jobs, RM1)
	if want.MatchedJobs != 6 {
		t.Fatalf("MatchedJobs = %d, want all 6 duplicate rows", want.MatchedJobs)
	}
	for trial := 0; trial < 20; trial++ {
		got := m.RunParallel(jobs, RM1, 4)
		for i := range got.Matches {
			if got.Matches[i].Job != want.Matches[i].Job {
				t.Fatalf("trial %d: match %d is a different duplicate row than serial Run's", trial, i)
			}
		}
	}
}

// TestDuplicateFileRowKeptOnce is the regression test for the historical
// duplicate-append bug: a transfer matched by two identical file rows was
// appended twice, doubling the Exact size sum (3e9+3e9 != 3e9) and
// spuriously unmatching the job.
func TestDuplicateFileRowKeptOnce(t *testing.T) {
	store := metastore.New()
	j := &records.JobRecord{
		PandaID: 1, JediTaskID: 7, ComputingSite: "CERN-PROD",
		Label: records.LabelUser, CreationTime: 1000, StartTime: 2000, EndTime: 5000,
		NInputFileBytes: 3e9,
	}
	store.PutJob(j)
	row := &records.FileRecord{
		PandaID: 1, JediTaskID: 7, LFN: "in0", Scope: "data25",
		Dataset: "ds", ProdDBlock: "ds", FileSize: 3e9, Kind: records.FileInput,
	}
	store.PutFile(row)
	dup := *row
	store.PutFile(&dup) // at-least-once ingestion duplicated the row
	store.PutTransfer(&records.TransferEvent{
		EventID: 100, LFN: "in0", Scope: "data25", Dataset: "ds", ProdDBlock: "ds",
		FileSize: 3e9, SourceSite: "CERN-PROD", DestinationSite: "CERN-PROD",
		Activity: records.AnalysisDownload, IsDownload: true,
		JediTaskID: 7, StartedAt: 1100, EndedAt: 1300,
	})
	m := NewMatcher(store)
	for _, method := range []Method{Exact, RM1, RM2} {
		got := m.MatchJob(j, method)
		if len(got) != 1 {
			t.Errorf("%v matched %d events through a duplicated file row, want exactly 1", method, len(got))
		}
	}
}
