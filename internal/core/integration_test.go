package core

import (
	"testing"

	"panrucio/internal/records"
	"panrucio/internal/sim"
)

// TestMonotonicityOnSimulatedData is the central invariant of Section 4:
// every job matched by Exact is matched by RM1, and every RM1 match is an
// RM2 match; matched counts are monotone Exact <= RM1 <= RM2 (Table 2).
func TestMonotonicityOnSimulatedData(t *testing.T) {
	res := sim.Run(sim.QuickConfig(11))
	jobs := res.Store.Jobs(res.WindowFrom, res.WindowTo, records.LabelUser)
	if len(jobs) == 0 {
		t.Fatal("no user jobs")
	}
	m := NewMatcher(res.Store)

	exact := m.Run(jobs, Exact)
	rm1 := m.Run(jobs, RM1)
	rm2 := m.Run(jobs, RM2)

	if !(exact.MatchedJobs <= rm1.MatchedJobs && rm1.MatchedJobs <= rm2.MatchedJobs) {
		t.Errorf("job monotonicity violated: %d / %d / %d",
			exact.MatchedJobs, rm1.MatchedJobs, rm2.MatchedJobs)
	}
	if !(exact.MatchedTransfers <= rm1.MatchedTransfers && rm1.MatchedTransfers <= rm2.MatchedTransfers) {
		t.Errorf("transfer monotonicity violated: %d / %d / %d",
			exact.MatchedTransfers, rm1.MatchedTransfers, rm2.MatchedTransfers)
	}
	if exact.MatchedJobs == 0 {
		t.Error("exact matched nothing — corruption too aggressive for the scenario")
	}

	// Per-job set inclusion: exact set ⊆ RM1 set ⊆ RM2 set.
	rm1Jobs := make(map[int64]bool, rm1.MatchedJobs)
	for _, match := range rm1.Matches {
		rm1Jobs[match.Job.PandaID] = true
	}
	rm2Jobs := make(map[int64]bool, rm2.MatchedJobs)
	for _, match := range rm2.Matches {
		rm2Jobs[match.Job.PandaID] = true
	}
	for _, match := range exact.Matches {
		if !rm1Jobs[match.Job.PandaID] {
			t.Fatalf("job %d exact-matched but not RM1-matched", match.Job.PandaID)
		}
	}
	for id := range rm1Jobs {
		if !rm2Jobs[id] {
			t.Fatalf("job %d RM1-matched but not RM2-matched", id)
		}
	}
}

// TestPaperShapeOnSimulatedData checks the qualitative Table 2 shape:
// exact matches are dominated by local transfers, and RM2 unlocks a
// substantial remote population.
func TestPaperShapeOnSimulatedData(t *testing.T) {
	res := sim.Run(sim.QuickConfig(12))
	jobs := res.Store.Jobs(res.WindowFrom, res.WindowTo, records.LabelUser)
	m := NewMatcher(res.Store)

	exact := m.Run(jobs, Exact)
	rm2 := m.Run(jobs, RM2)

	if exact.MatchedTransfers == 0 {
		t.Skip("no exact matches in quick scenario for this seed")
	}
	localFrac := float64(exact.LocalTransfers) / float64(exact.MatchedTransfers)
	if localFrac < 0.60 {
		t.Errorf("exact local fraction %.2f, want >= 0.60 (paper: 0.94)", localFrac)
	}
	if rm2.RemoteTransfers <= exact.RemoteTransfers {
		t.Errorf("RM2 remote (%d) should exceed exact remote (%d)",
			rm2.RemoteTransfers, exact.RemoteTransfers)
	}
	// RM2 introduces the mixed class that exact cannot have under the
	// strict site condition when all matched transfers share the job site.
	if rm2.JobsAllRemote+rm2.JobsMixed == 0 {
		t.Error("RM2 found no remote or mixed jobs")
	}
}

// TestProductionJobsExcludedFromUserQuery reproduces Table 1's zero rows:
// production transfers carry jeditaskids, but the user-job query set cannot
// match them.
func TestProductionJobsExcludedFromUserQuery(t *testing.T) {
	res := sim.Run(sim.QuickConfig(13))
	userJobs := res.Store.Jobs(res.WindowFrom, res.WindowTo, records.LabelUser)
	m := NewMatcher(res.Store)
	rm2 := m.Run(userJobs, RM2)
	for _, match := range rm2.Matches {
		for _, ev := range match.Transfers {
			if ev.Activity == records.ProductionUp || ev.Activity == records.ProductionDown {
				t.Fatalf("user-job query matched production transfer %d", ev.EventID)
			}
		}
	}
}
