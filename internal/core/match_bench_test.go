package core

import (
	"fmt"
	"runtime"
	"testing"

	"panrucio/internal/metastore"
	"panrucio/internal/records"
	"panrucio/internal/simtime"
)

// reportBytesPerEvent converts the pass's allocation churn into bytes per
// stored transfer event, the same memory axis BenchmarkSimulation reports,
// so matcher-side regressions are visible next to store-side wins. Call
// measureAllocs after ResetTimer and pass its result here after the loop.
func measureAllocs() uint64 {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return m.TotalAlloc
}

func reportBytesPerEvent(b *testing.B, before uint64, store *metastore.Store) {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	b.ReportMetric(float64(m.TotalAlloc-before)/float64(b.N)/float64(store.TransferCount()), "B/event")
}

// benchStore builds a store shaped like the paper's workload: tasks whose
// candidate transfer lists grow with jobs-per-task × files-per-job, so the
// nested loop pays O(files × candidates) per job while the index pays
// O(files).
func benchStore(tasks, jobsPerTask, filesPerJob int) (*metastore.Store, []*records.JobRecord) {
	store := metastore.New()
	var jobs []*records.JobRecord
	eventID := int64(1)
	for t := 1; t <= tasks; t++ {
		for jn := 0; jn < jobsPerTask; jn++ {
			j := &records.JobRecord{
				PandaID: int64(t*10000 + jn), JediTaskID: int64(t),
				ComputingSite: "CERN-PROD", Label: records.LabelUser,
				CreationTime: 1000, StartTime: 2000, EndTime: 9000,
				Status: records.JobFinished, TaskStatus: records.TaskDone,
			}
			var inBytes int64
			for fn := 0; fn < filesPerJob; fn++ {
				f := &records.FileRecord{
					PandaID: j.PandaID, JediTaskID: j.JediTaskID,
					LFN:   fmt.Sprintf("t%d.j%d.f%d", t, jn, fn),
					Scope: "data25", Dataset: fmt.Sprintf("ds%d", t), ProdDBlock: fmt.Sprintf("ds%d", t),
					FileSize: int64(1e9 + fn), Kind: records.FileInput,
				}
				inBytes += f.FileSize
				store.PutFile(f)
				store.PutTransfer(&records.TransferEvent{
					EventID: eventID, LFN: f.LFN, Scope: f.Scope,
					Dataset: f.Dataset, ProdDBlock: f.ProdDBlock, FileSize: f.FileSize,
					SourceSite: "CERN-PROD", DestinationSite: "CERN-PROD",
					Activity: records.AnalysisDownload, IsDownload: true,
					JediTaskID: j.JediTaskID,
					StartedAt:  simtime.VTime(1200 + fn*10), EndedAt: simtime.VTime(1300 + fn*10),
				})
				eventID++
			}
			j.NInputFileBytes = inBytes
			store.PutJob(j)
			jobs = append(jobs, j)
		}
	}
	store.Freeze()
	return store, jobs
}

// BenchmarkMatchRunIndexed is the indexed fast path over a 50-task,
// 40-jobs-per-task, 8-files-per-job store (2,000 jobs, 16,000 events;
// candidate lists of 320 events per task).
func BenchmarkMatchRunIndexed(b *testing.B) {
	store, jobs := benchStore(50, 40, 8)
	m := NewMatcher(store)
	b.ReportAllocs()
	b.ResetTimer()
	before := measureAllocs()
	var matched int
	for i := 0; i < b.N; i++ {
		matched = m.Run(jobs, Exact).MatchedJobs
	}
	reportBytesPerEvent(b, before, store)
	b.ReportMetric(float64(matched), "matched_jobs")
}

// BenchmarkMatchRunReference is the same pass through the retained
// nested-loop oracle — the before side of the speedup recorded in
// CHANGES.md.
func BenchmarkMatchRunReference(b *testing.B) {
	store, jobs := benchStore(50, 40, 8)
	m := NewMatcher(store)
	b.ReportAllocs()
	b.ResetTimer()
	before := measureAllocs()
	var matched int
	for i := 0; i < b.N; i++ {
		matched = m.runReference(jobs, Exact).MatchedJobs
	}
	reportBytesPerEvent(b, before, store)
	b.ReportMetric(float64(matched), "matched_jobs")
}

// BenchmarkMatchRunParallel measures the sharded pipeline at 4 workers on
// the indexed path.
func BenchmarkMatchRunParallel(b *testing.B) {
	store, jobs := benchStore(50, 40, 8)
	m := NewMatcher(store)
	b.ReportAllocs()
	b.ResetTimer()
	before := measureAllocs()
	var matched int
	for i := 0; i < b.N; i++ {
		matched = m.RunParallel(jobs, Exact, 4).MatchedJobs
	}
	reportBytesPerEvent(b, before, store)
	b.ReportMetric(float64(matched), "matched_jobs")
}
