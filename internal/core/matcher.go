package core

import (
	"sort"

	"panrucio/internal/metastore"
	"panrucio/internal/records"
	"panrucio/internal/simtime"
	"panrucio/internal/topology"
)

// Method selects the matching strategy.
type Method int

// Matching strategies, in increasing permissiveness.
const (
	Exact Method = iota
	RM1
	RM2
)

func (m Method) String() string {
	switch m {
	case Exact:
		return "Exact"
	case RM1:
		return "RM1"
	case RM2:
		return "RM2"
	}
	return "Method(?)"
}

// TransferClass labels a matched job by the locality of its transfer set
// (Table 2b columns).
type TransferClass int

// Job transfer classes.
const (
	AllLocal TransferClass = iota
	AllRemote
	Mixed
)

func (c TransferClass) String() string {
	switch c {
	case AllLocal:
		return "all-local"
	case AllRemote:
		return "all-remote"
	case Mixed:
		return "mixed"
	}
	return "class(?)"
}

// Match is one job with its matched transfer events.
type Match struct {
	Job       *records.JobRecord
	Transfers []*records.TransferEvent
}

// Class reports the locality class of the matched transfer set.
func (m *Match) Class() TransferClass {
	local, remote := 0, 0
	for _, ev := range m.Transfers {
		if ev.IsLocal() {
			local++
		} else {
			remote++
		}
	}
	switch {
	case remote == 0:
		return AllLocal
	case local == 0:
		return AllRemote
	default:
		return Mixed
	}
}

// QueueTransferTime is the paper's file-transfer-time metric: the length of
// the union of matched-transfer activity intervals clipped to the job's
// queuing phase [creation, start). "The cumulative duration during the
// job's queuing time in which at least one associated file was actively
// transferring."
func (m *Match) QueueTransferTime() simtime.VTime {
	return unionWithin(m.Transfers, m.Job.CreationTime, m.Job.StartTime)
}

// QueueTransferFraction is QueueTransferTime over the job's queuing time,
// in [0,1]; zero when the job had no queuing phase.
func (m *Match) QueueTransferFraction() float64 {
	q := m.Job.QueueTime()
	if q <= 0 {
		return 0
	}
	return m.QueueTransferTime().Seconds() / q.Seconds()
}

// TotalBytes sums the matched transfers' recorded sizes.
func (m *Match) TotalBytes() int64 {
	var total int64
	for _, ev := range m.Transfers {
		total += ev.FileSize
	}
	return total
}

// unionWithin measures the union of [StartedAt, EndedAt) clipped to
// [lo, hi).
func unionWithin(evs []*records.TransferEvent, lo, hi simtime.VTime) simtime.VTime {
	if hi <= lo || len(evs) == 0 {
		return 0
	}
	type iv struct{ a, b simtime.VTime }
	var ivs []iv
	for _, ev := range evs {
		a, b := ev.StartedAt, ev.EndedAt
		if a < lo {
			a = lo
		}
		if b > hi {
			b = hi
		}
		if b > a {
			ivs = append(ivs, iv{a, b})
		}
	}
	if len(ivs) == 0 {
		return 0
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].a < ivs[j].a })
	var total, end simtime.VTime
	end = -1
	var start simtime.VTime
	started := false
	for _, x := range ivs {
		if !started {
			start, end, started = x.a, x.b, true
			continue
		}
		if x.a > end {
			total += end - start
			start, end = x.a, x.b
			continue
		}
		if x.b > end {
			end = x.b
		}
	}
	if started {
		total += end - start
	}
	return total
}

// Matcher runs the strategies against a metastore.
type Matcher struct {
	store *metastore.Store
}

// NewMatcher builds a matcher over the given store.
func NewMatcher(store *metastore.Store) *Matcher { return &Matcher{store: store} }

// MatchJob applies the chosen strategy to one job and returns its matched
// transfer events (nil when unmatched). This is Algorithm 1 with the
// RM1/RM2 relaxations switchable. It works mid-run on a live (un-frozen)
// store — the segmented store resolves join entries from its incremental
// indices — as well as on a frozen one, where the pre-resolved entries
// make the probe allocation-free; the two answer identically for the same
// ingested prefix (see the cut-point equivalence tests).
//
// Candidate generation probes the metastore's per-task composite join-key
// index with each JEDI file row instead of scanning the task's whole
// candidate list per row (the original nested loop survives as
// matchJobReference, the oracle of the equivalence tests). A transfer
// matched by more than one file row is kept once, preserving Exact's
// whole-set size-sum semantics.
func (m *Matcher) MatchJob(j *records.JobRecord, method Method) []*records.TransferEvent {
	mMatchProbes.Inc()
	entries := m.store.JoinEntriesForJob(j.PandaID, j.JediTaskID) // F'_j with buckets bound
	if len(entries) == 0 {
		return nil
	}
	// Candidate buckets only hold transfers with a valid jeditaskid — the
	// pre-selection that defines the paper's denominator — and are already
	// join-key-matched, so only the method-dependent size check remains.
	var set []*records.TransferEvent
	for _, e := range entries {
		for _, ev := range e.Candidates {
			if method == Exact && ev.FileSize != e.File.FileSize {
				continue
			}
			if containsEvent(set, ev.EventID) {
				continue
			}
			set = append(set, ev)
		}
	}
	return finalizeSet(j, method, set)
}

// containsEvent reports whether the candidate set already holds the event.
// Matched sets are small (a job's file count), so a linear scan beats a
// per-job map allocation.
func containsEvent(set []*records.TransferEvent, id int64) bool {
	for _, ev := range set {
		if ev.EventID == id {
			return true
		}
	}
	return false
}

// finalizeSet applies the whole-set filtering of paper Section 4.2 to a
// candidate set. It is shared by the indexed matcher and the nested-loop
// reference so the two can only diverge in candidate generation.
func finalizeSet(j *records.JobRecord, method Method, set []*records.TransferEvent) []*records.TransferEvent {
	if len(set) == 0 {
		return nil
	}
	var kept []*records.TransferEvent
	for _, ev := range set {
		if ev.StartedAt >= j.EndTime {
			continue // condition (1): transfer started before job end
		}
		if method != RM2 {
			// Condition (3): downloads must land at the computing site,
			// uploads must leave from it.
			okDown := ev.IsDownload && ev.DestinationSite == j.ComputingSite
			okUp := ev.IsUpload && ev.SourceSite == j.ComputingSite
			if !okDown && !okUp {
				continue
			}
		}
		kept = append(kept, ev)
	}
	if len(kept) == 0 {
		return nil
	}
	if method == Exact {
		// Condition (2): the whole-set size sum equals the job's input or
		// output byte count.
		var sum int64
		for _, ev := range kept {
			sum += ev.FileSize
		}
		if sum != j.NInputFileBytes && sum != j.NOutputFileBytes {
			return nil
		}
	}
	return kept
}

// Result aggregates a full matching pass (one method over a job set).
type Result struct {
	Method  Method
	Matches []Match

	// Denominators, mirroring the paper's Section 5.1 accounting.
	TotalJobs           int
	TotalTransfers      int
	TransfersWithTaskID int

	// Numerators.
	MatchedJobs      int
	MatchedTransfers int // unique events across all matches

	LocalTransfers  int
	RemoteTransfers int

	JobsAllLocal  int
	JobsAllRemote int
	JobsMixed     int
}

// MatchedTransferPct is matched transfers over transfers-with-taskid, in
// percent (Table 2a's rightmost column).
func (r *Result) MatchedTransferPct() float64 {
	if r.TransfersWithTaskID == 0 {
		return 0
	}
	return 100 * float64(r.MatchedTransfers) / float64(r.TransfersWithTaskID)
}

// MatchedJobPct is matched jobs over total jobs, in percent.
func (r *Result) MatchedJobPct() float64 {
	if r.TotalJobs == 0 {
		return 0
	}
	return 100 * float64(r.MatchedJobs) / float64(r.TotalJobs)
}

// Run applies one strategy to a job set and aggregates the outcome. It is
// the single-worker case of the sharded streaming pipeline in parallel.go;
// Matches come back ordered by pandaid.
func (m *Matcher) Run(jobs []*records.JobRecord, method Method) *Result {
	return m.run(jobs, method, 1)
}

// RedundantGroup is a set of ≥2 matched transfers moving the same file
// (same LFN) for the same job — the avoidable duplicate pattern of
// Fig. 12 / Table 3.
type RedundantGroup struct {
	LFN    string
	Events []*records.TransferEvent
}

// FindRedundant returns the duplicate-transfer groups within one match,
// sorted by LFN.
func FindRedundant(m *Match) []RedundantGroup {
	byLFN := make(map[string][]*records.TransferEvent)
	for _, ev := range m.Transfers {
		byLFN[ev.LFN] = append(byLFN[ev.LFN], ev)
	}
	var out []RedundantGroup
	for lfn, evs := range byLFN {
		if len(evs) >= 2 {
			sort.Slice(evs, func(i, j int) bool { return evs[i].StartedAt < evs[j].StartedAt })
			out = append(out, RedundantGroup{LFN: lfn, Events: evs})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].LFN < out[j].LFN })
	return out
}

// Inference is a reconstructed site label for a transfer with missing
// metadata (Section 5.4: "in some RM2 cases the missing or incorrect site
// information can be inferred").
type Inference struct {
	Event        *records.TransferEvent
	Field        string // "source" or "destination"
	InferredSite string
	// Evidence is "duplicate" when a same-LFN, same-size matched transfer
	// with intact metadata pins the site (the Table 3 pattern), or
	// "site-condition" when the job's computing site is the only label
	// consistent with the match.
	Evidence string
}

// InferUnknownSites reconstructs UNKNOWN or invalid endpoint labels for the
// transfers of an RM2 match. The store is never mutated; callers decide
// what to do with the inferences.
func InferUnknownSites(m *Match, grid *topology.Grid) []Inference {
	known := func(site string) bool {
		_, ok := grid.Site(site)
		return ok
	}
	var out []Inference
	for _, ev := range m.Transfers {
		badSrc := !known(ev.SourceSite)
		badDst := !known(ev.DestinationSite)
		if !badSrc && !badDst {
			continue
		}
		// Duplicate evidence: another matched transfer of the same file
		// with the same recorded size and an intact label.
		var dupSrc, dupDst string
		for _, other := range m.Transfers {
			if other == ev || other.LFN != ev.LFN || other.FileSize != ev.FileSize {
				continue
			}
			if known(other.SourceSite) {
				dupSrc = other.SourceSite
			}
			if known(other.DestinationSite) {
				dupDst = other.DestinationSite
			}
		}
		if badSrc {
			switch {
			case dupSrc != "":
				out = append(out, Inference{ev, "source", dupSrc, "duplicate"})
			case ev.IsUpload:
				out = append(out, Inference{ev, "source", m.Job.ComputingSite, "site-condition"})
			}
		}
		if badDst {
			switch {
			case dupDst != "":
				out = append(out, Inference{ev, "destination", dupDst, "duplicate"})
			case ev.IsDownload:
				out = append(out, Inference{ev, "destination", m.Job.ComputingSite, "site-condition"})
			}
		}
	}
	return out
}
