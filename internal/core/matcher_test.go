package core

import (
	"testing"

	"panrucio/internal/metastore"
	"panrucio/internal/records"
	"panrucio/internal/simtime"
	"panrucio/internal/topology"
)

// scenario builds a one-job store with configurable transfers.
type scenario struct {
	store *metastore.Store
	job   *records.JobRecord
}

const (
	sJedi  = 41_000_001
	sPanda = 6_583_000_001
	sSite  = "CERN-PROD"
)

// newScenario creates a job with two input files (3e9 and 4e9 bytes) and an
// output file (1e9), queuing 1000..2000, running to 5000.
func newScenario() *scenario {
	s := &scenario{store: metastore.New()}
	s.job = &records.JobRecord{
		PandaID: sPanda, JediTaskID: sJedi, ComputingSite: sSite,
		Label:        records.LabelUser,
		CreationTime: 1000, StartTime: 2000, EndTime: 5000,
		Status: records.JobFinished, TaskStatus: records.TaskDone,
		NInputFileBytes: 7e9, NOutputFileBytes: 1e9,
	}
	s.store.PutJob(s.job)
	for i, size := range []int64{3e9, 4e9} {
		s.store.PutFile(&records.FileRecord{
			PandaID: sPanda, JediTaskID: sJedi,
			LFN: lfn(i), Scope: "data25", Dataset: "ds", ProdDBlock: "ds",
			FileSize: size, Kind: records.FileInput,
		})
	}
	s.store.PutFile(&records.FileRecord{
		PandaID: sPanda, JediTaskID: sJedi,
		LFN: "out0", Scope: "user.out", Dataset: "ods", ProdDBlock: "ods",
		FileSize: 1e9, Kind: records.FileOutput,
	})
	return s
}

func lfn(i int) string { return []string{"in0", "in1"}[i] }

// download returns a well-formed local download event for input file i.
func (s *scenario) download(i int, size int64, start, end simtime.VTime) *records.TransferEvent {
	return &records.TransferEvent{
		EventID: int64(100 + i), LFN: lfn(i), Scope: "data25",
		Dataset: "ds", ProdDBlock: "ds", FileSize: size,
		SourceSite: sSite, DestinationSite: sSite,
		Activity: records.AnalysisDownload, IsDownload: true,
		JediTaskID: sJedi, StartedAt: start, EndedAt: end,
	}
}

func (s *scenario) matcher() *Matcher { return NewMatcher(s.store) }

func TestExactMatchHappyPath(t *testing.T) {
	s := newScenario()
	s.store.PutTransfer(s.download(0, 3e9, 1100, 1200))
	s.store.PutTransfer(s.download(1, 4e9, 1200, 1400))
	got := s.matcher().MatchJob(s.job, Exact)
	if len(got) != 2 {
		t.Fatalf("exact matched %d transfers, want 2", len(got))
	}
}

func TestExactRejectsSizeJitterRM1Recovers(t *testing.T) {
	s := newScenario()
	s.store.PutTransfer(s.download(0, 3e9+17, 1100, 1200)) // imprecise size
	s.store.PutTransfer(s.download(1, 4e9, 1200, 1400))
	if got := s.matcher().MatchJob(s.job, Exact); got != nil {
		t.Fatalf("exact matched jittered size: %v", got)
	}
	if got := s.matcher().MatchJob(s.job, RM1); len(got) != 2 {
		t.Fatalf("RM1 matched %d, want 2", len(got))
	}
}

func TestExactRejectsSubsetRM1Recovers(t *testing.T) {
	s := newScenario()
	// Only one of the two inputs produced an event (the other was cached):
	// the size sum (3e9) matches neither 7e9 nor 1e9.
	s.store.PutTransfer(s.download(0, 3e9, 1100, 1200))
	if got := s.matcher().MatchJob(s.job, Exact); got != nil {
		t.Fatal("exact matched an incomplete transfer set")
	}
	if got := s.matcher().MatchJob(s.job, RM1); len(got) != 1 {
		t.Fatalf("RM1 matched %d, want 1", len(got))
	}
}

func TestSiteConditionRM2Recovers(t *testing.T) {
	s := newScenario()
	ev0 := s.download(0, 3e9, 1100, 1200)
	ev0.DestinationSite = topology.UnknownSite
	ev1 := s.download(1, 4e9, 1200, 1400)
	ev1.DestinationSite = topology.UnknownSite
	s.store.PutTransfer(ev0)
	s.store.PutTransfer(ev1)
	if got := s.matcher().MatchJob(s.job, Exact); got != nil {
		t.Fatal("exact matched UNKNOWN destination")
	}
	if got := s.matcher().MatchJob(s.job, RM1); got != nil {
		t.Fatal("RM1 matched UNKNOWN destination")
	}
	if got := s.matcher().MatchJob(s.job, RM2); len(got) != 2 {
		t.Fatalf("RM2 matched %d, want 2", len(got))
	}
}

func TestTransferAfterJobEndExcludedEverywhere(t *testing.T) {
	s := newScenario()
	late := s.download(0, 3e9, 6000, 6100) // starts after EndTime=5000
	s.store.PutTransfer(late)
	for _, m := range []Method{Exact, RM1, RM2} {
		if got := s.matcher().MatchJob(s.job, m); got != nil {
			t.Errorf("%v matched a transfer starting after job end", m)
		}
	}
}

func TestUploadMatching(t *testing.T) {
	s := newScenario()
	up := &records.TransferEvent{
		EventID: 200, LFN: "out0", Scope: "user.out",
		Dataset: "ods", ProdDBlock: "ods", FileSize: 1e9,
		SourceSite: sSite, DestinationSite: sSite,
		Activity: records.AnalysisUpload, IsUpload: true,
		JediTaskID: sJedi, StartedAt: 4500, EndedAt: 4900,
	}
	s.store.PutTransfer(up)
	got := s.matcher().MatchJob(s.job, Exact)
	if len(got) != 1 || !got[0].IsUpload {
		t.Fatalf("upload not exactly matched: %v", got)
	}
	// Upload from the wrong site fails Exact/RM1 but passes RM2.
	s2 := newScenario()
	up2 := *up
	up2.SourceSite = "BNL-ATLAS"
	s2.store.PutTransfer(&up2)
	if got := s2.matcher().MatchJob(s2.job, RM1); got != nil {
		t.Error("RM1 accepted upload from wrong site")
	}
	if got := s2.matcher().MatchJob(s2.job, RM2); len(got) != 1 {
		t.Error("RM2 rejected wrong-site upload")
	}
}

func TestMixedSetFailsExactSum(t *testing.T) {
	s := newScenario()
	s.store.PutTransfer(s.download(0, 3e9, 1100, 1200))
	s.store.PutTransfer(s.download(1, 4e9, 1200, 1400))
	s.store.PutTransfer(&records.TransferEvent{
		EventID: 200, LFN: "out0", Scope: "user.out",
		Dataset: "ods", ProdDBlock: "ods", FileSize: 1e9,
		SourceSite: sSite, DestinationSite: sSite,
		Activity: records.AnalysisUpload, IsUpload: true,
		JediTaskID: sJedi, StartedAt: 4500, EndedAt: 4900,
	})
	// Sum = 8e9, equals neither 7e9 (input) nor 1e9 (output).
	if got := s.matcher().MatchJob(s.job, Exact); got != nil {
		t.Fatal("exact matched a mixed download+upload set")
	}
	if got := s.matcher().MatchJob(s.job, RM1); len(got) != 3 {
		t.Fatalf("RM1 matched %d, want 3", len(got))
	}
}

func TestWrongTaskOrAttributesNeverMatch(t *testing.T) {
	s := newScenario()
	wrongTask := s.download(0, 3e9, 1100, 1200)
	wrongTask.JediTaskID = sJedi + 1
	s.store.PutTransfer(wrongTask)
	wrongDS := s.download(1, 4e9, 1100, 1200)
	wrongDS.Dataset = "other"
	s.store.PutTransfer(wrongDS)
	for _, m := range []Method{Exact, RM1, RM2} {
		if got := s.matcher().MatchJob(s.job, m); got != nil {
			t.Errorf("%v matched on wrong task/dataset", m)
		}
	}
}

func TestJobWithoutFilesUnmatched(t *testing.T) {
	s := newScenario()
	orphan := &records.JobRecord{PandaID: 999, JediTaskID: 888, ComputingSite: sSite, EndTime: 100}
	s.store.PutJob(orphan)
	if got := s.matcher().MatchJob(orphan, RM2); got != nil {
		t.Fatal("job with no file rows matched")
	}
}

func TestMatchClass(t *testing.T) {
	local := &records.TransferEvent{SourceSite: "A", DestinationSite: "A"}
	remote := &records.TransferEvent{SourceSite: "A", DestinationSite: "B"}
	j := &records.JobRecord{}
	if c := (&Match{j, []*records.TransferEvent{local, local}}).Class(); c != AllLocal {
		t.Errorf("class = %v", c)
	}
	if c := (&Match{j, []*records.TransferEvent{remote}}).Class(); c != AllRemote {
		t.Errorf("class = %v", c)
	}
	if c := (&Match{j, []*records.TransferEvent{local, remote}}).Class(); c != Mixed {
		t.Errorf("class = %v", c)
	}
	for c, want := range map[TransferClass]string{AllLocal: "all-local", AllRemote: "all-remote", Mixed: "mixed"} {
		if c.String() != want {
			t.Errorf("%d.String() = %q", c, c.String())
		}
	}
}

func TestQueueTransferTimeUnion(t *testing.T) {
	j := &records.JobRecord{CreationTime: 1000, StartTime: 2000, EndTime: 3000}
	mk := func(a, b simtime.VTime) *records.TransferEvent {
		return &records.TransferEvent{StartedAt: a, EndedAt: b}
	}
	cases := []struct {
		evs  []*records.TransferEvent
		want simtime.VTime
	}{
		{[]*records.TransferEvent{mk(1100, 1200)}, 100},
		{[]*records.TransferEvent{mk(1100, 1200), mk(1150, 1300)}, 200}, // overlap merges
		{[]*records.TransferEvent{mk(1100, 1200), mk(1400, 1500)}, 200}, // disjoint adds
		{[]*records.TransferEvent{mk(500, 1100)}, 100},                  // clip at creation
		{[]*records.TransferEvent{mk(1900, 2500)}, 100},                 // clip at start
		{[]*records.TransferEvent{mk(2100, 2500)}, 0},                   // wholly in wall time
		{[]*records.TransferEvent{mk(500, 3000)}, 1000},                 // spans everything
		{[]*records.TransferEvent{mk(1100, 1200), mk(1100, 1200)}, 100}, // duplicates
		{nil, 0},
	}
	for i, c := range cases {
		m := &Match{Job: j, Transfers: c.evs}
		if got := m.QueueTransferTime(); got != c.want {
			t.Errorf("case %d: QueueTransferTime = %d, want %d", i, got, c.want)
		}
	}
	m := &Match{Job: j, Transfers: []*records.TransferEvent{mk(1000, 1500)}}
	if f := m.QueueTransferFraction(); f != 0.5 {
		t.Errorf("fraction = %f", f)
	}
	zeroQ := &Match{Job: &records.JobRecord{CreationTime: 5, StartTime: 5}, Transfers: nil}
	if zeroQ.QueueTransferFraction() != 0 {
		t.Error("zero queue time should give zero fraction")
	}
}

func TestRunAggregation(t *testing.T) {
	s := newScenario()
	s.store.PutTransfer(s.download(0, 3e9, 1100, 1200))
	s.store.PutTransfer(s.download(1, 4e9, 1200, 1400))
	// A second job in the same task sharing file in0: the shared event must
	// be counted once in MatchedTransfers.
	j2 := &records.JobRecord{
		PandaID: sPanda + 1, JediTaskID: sJedi, ComputingSite: sSite,
		Label: records.LabelUser, CreationTime: 1000, StartTime: 2000, EndTime: 5000,
		NInputFileBytes: 3e9,
	}
	s.store.PutJob(j2)
	s.store.PutFile(&records.FileRecord{
		PandaID: j2.PandaID, JediTaskID: sJedi,
		LFN: "in0", Scope: "data25", Dataset: "ds", ProdDBlock: "ds",
		FileSize: 3e9, Kind: records.FileInput,
	})
	jobs := []*records.JobRecord{s.job, j2}
	res := s.matcher().Run(jobs, Exact)
	if res.MatchedJobs != 2 {
		t.Fatalf("MatchedJobs = %d, want 2", res.MatchedJobs)
	}
	if res.MatchedTransfers != 2 {
		t.Fatalf("MatchedTransfers = %d, want 2 unique", res.MatchedTransfers)
	}
	if res.LocalTransfers != 2 || res.RemoteTransfers != 0 {
		t.Error("locality counts wrong")
	}
	if res.JobsAllLocal != 2 || res.JobsAllRemote != 0 || res.JobsMixed != 0 {
		t.Error("class counts wrong")
	}
	if res.TotalJobs != 2 || res.TransfersWithTaskID != 2 {
		t.Error("denominators wrong")
	}
	if pct := res.MatchedTransferPct(); pct != 100 {
		t.Errorf("MatchedTransferPct = %f", pct)
	}
	if pct := res.MatchedJobPct(); pct != 100 {
		t.Errorf("MatchedJobPct = %f", pct)
	}
	empty := &Result{}
	if empty.MatchedTransferPct() != 0 || empty.MatchedJobPct() != 0 {
		t.Error("zero denominators must give zero percent")
	}
}

func TestFindRedundant(t *testing.T) {
	s := newScenario()
	a := s.download(0, 3e9, 1100, 1200)
	b := s.download(0, 3e9, 1300, 1400)
	b.EventID = 150
	c := s.download(1, 4e9, 1200, 1250)
	m := &Match{Job: s.job, Transfers: []*records.TransferEvent{b, a, c}}
	groups := FindRedundant(m)
	if len(groups) != 1 || groups[0].LFN != "in0" {
		t.Fatalf("groups = %+v", groups)
	}
	if len(groups[0].Events) != 2 || groups[0].Events[0].StartedAt != 1100 {
		t.Error("group not time-sorted")
	}
	if got := FindRedundant(&Match{Job: s.job, Transfers: []*records.TransferEvent{a, c}}); got != nil {
		t.Error("false redundancy")
	}
}

func TestInferUnknownSites(t *testing.T) {
	grid := topology.Default(topology.DefaultSpec{})
	s := newScenario()
	// Table 3 pattern: duplicate pair, first with UNKNOWN destination.
	bad := s.download(0, 3e9, 900, 950) // before job creation, like Fig. 12
	bad.DestinationSite = topology.UnknownSite
	good := s.download(0, 3e9, 1100, 1200)
	good.EventID = 150
	m := &Match{Job: s.job, Transfers: []*records.TransferEvent{bad, good}}
	infs := InferUnknownSites(m, grid)
	if len(infs) != 1 {
		t.Fatalf("inferences = %+v", infs)
	}
	if infs[0].Field != "destination" || infs[0].InferredSite != sSite || infs[0].Evidence != "duplicate" {
		t.Errorf("inference = %+v", infs[0])
	}
	// Without a duplicate, fall back to the site-condition argument.
	m2 := &Match{Job: s.job, Transfers: []*records.TransferEvent{bad}}
	infs2 := InferUnknownSites(m2, grid)
	if len(infs2) != 1 || infs2[0].Evidence != "site-condition" || infs2[0].InferredSite != sSite {
		t.Errorf("fallback inference = %+v", infs2)
	}
	// Garbled source on an upload infers the computing site.
	up := &records.TransferEvent{
		LFN: "out0", FileSize: 1e9, SourceSite: "gsiftp://invalid/X",
		DestinationSite: sSite, IsUpload: true, StartedAt: 4500, EndedAt: 4600,
	}
	m3 := &Match{Job: s.job, Transfers: []*records.TransferEvent{up}}
	infs3 := InferUnknownSites(m3, grid)
	if len(infs3) != 1 || infs3[0].Field != "source" || infs3[0].InferredSite != sSite {
		t.Errorf("upload inference = %+v", infs3)
	}
	// Intact events produce no inferences.
	if got := InferUnknownSites(&Match{Job: s.job, Transfers: []*records.TransferEvent{good}}, grid); got != nil {
		t.Error("inference on intact metadata")
	}
}

func TestMethodStrings(t *testing.T) {
	if Exact.String() != "Exact" || RM1.String() != "RM1" || RM2.String() != "RM2" {
		t.Error("method strings wrong")
	}
}
