package core

import "panrucio/internal/obs"

// Process-wide matcher metrics. The probe counter sits on the per-job hot
// path (one atomic add per MatchJob; cost pinned by bench/BENCH_obs.json);
// pass and worker timings are recorded once per matching pass and once per
// worker goroutine respectively, so a scrape shows both how many passes
// ran and how evenly the shard-affine job assignment balanced them.
var (
	mMatchProbes = obs.Default().Counter("core_match_probes_total",
		"MatchJob probes (jobs evaluated, across all methods and matchers)")
	mMatchPasses = obs.Default().Counter("core_match_passes_total",
		"full matching passes (one Run/RunParallel call)")
	mMatchPassSeconds = obs.Default().Histogram("core_match_pass_seconds",
		"wall time of one full matching pass", obs.DefBuckets)
	mMatchWorkerSeconds = obs.Default().Histogram("core_match_worker_seconds",
		"wall time of one worker's share of a matching pass", obs.DefBuckets)
)
