package core

import (
	"testing"

	"panrucio/internal/obs"
)

// benchMatchObs is the matcher half of the observability overhead probe:
// the identical indexed matching pass with the metrics gate on or off.
// MatchJob bumps one counter per probe, so this is the tightest loop the
// instrumentation touches; the on/off delta must stay <= 5% (recorded in
// bench/BENCH_obs.json).
func benchMatchObs(b *testing.B, enabled bool) {
	store, jobs := benchStore(50, 40, 8)
	m := NewMatcher(store)
	obs.SetEnabled(enabled)
	defer obs.SetEnabled(true)
	b.ReportAllocs()
	b.ResetTimer()
	var matched int
	for i := 0; i < b.N; i++ {
		matched = m.Run(jobs, Exact).MatchedJobs
	}
	b.ReportMetric(float64(matched), "matched_jobs")
}

func BenchmarkMatchObsOn(b *testing.B)  { benchMatchObs(b, true) }
func BenchmarkMatchObsOff(b *testing.B) { benchMatchObs(b, false) }
