package core

import (
	"runtime"
	"sort"
	"sync"
	"time"

	"panrucio/internal/records"
)

// RunParallel is Run with the per-job matching fanned out across workers —
// the parallelization the paper's limitations section singles out as the
// path to full-scale analysis ("any future systematic and scalable
// analysis designs, such as parallelization, will be especially
// valuable"). The metastore is frozen up front — live queries maintain
// per-shard caches, so only the frozen (read-only) state may be shared by
// worker goroutines — making sharding by job safe; results are aggregated
// by a single streaming routine and Matches are ordered by pandaid, making
// the output identical to Run's.
//
// workers <= 0 selects GOMAXPROCS.
func (m *Matcher) RunParallel(jobs []*records.JobRecord, method Method, workers int) *Result {
	return m.run(jobs, method, workers)
}

// run is the unified matching pipeline behind Run and RunParallel: shard
// the job set across workers, stream every match into one aggregator, and
// sort the merged matches by pandaid. workers == 1 is the degenerate case
// that runs inline with no goroutines or channel.
func (m *Matcher) run(jobs []*records.JobRecord, method Method, workers int) *Result {
	// Freeze up front so worker goroutines hit a read-only store.
	m.store.Freeze()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	passStart := time.Now()
	defer func() {
		mMatchPasses.Inc()
		mMatchPassSeconds.ObserveSince(passStart)
	}()
	agg := newAggregator(m, method)

	if workers <= 1 {
		t0 := time.Now()
		for i, j := range jobs {
			if evs := m.MatchJob(j, method); len(evs) > 0 {
				agg.add(i, Match{Job: j, Transfers: evs})
			}
		}
		mMatchWorkerSeconds.ObserveSince(t0)
		return agg.finish(len(jobs))
	}

	matches := make(chan indexedMatch, 4*workers)
	assign := m.assignJobs(jobs, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			t0 := time.Now()
			for _, i := range assign[w] {
				if evs := m.MatchJob(jobs[i], method); len(evs) > 0 {
					matches <- indexedMatch{i, Match{Job: jobs[i], Transfers: evs}}
				}
			}
			mMatchWorkerSeconds.ObserveSince(t0)
		}(w)
	}
	go func() {
		wg.Wait()
		close(matches)
	}()
	for im := range matches {
		agg.add(im.idx, im.match)
	}
	return agg.finish(len(jobs))
}

// assignJobs partitions the job set across workers. When the worker pool
// fits within the store's shard count, jobs are assigned shard-affine —
// worker = shard(task) mod workers — so each worker's probes stay within a
// bounded set of shard arenas (and, at workers == ShardCount, exactly one),
// keeping its scans cache-local. With more workers than shards the affine
// map would leave workers idle, so it falls back to striding. The
// assignment only decides which goroutine evaluates a job: the aggregator
// is order-insensitive and finish imposes the pandaid total order, so the
// output is identical either way.
func (m *Matcher) assignJobs(jobs []*records.JobRecord, workers int) [][]int {
	assign := make([][]int, workers)
	if workers > 1 && workers <= m.store.ShardCount() {
		for i, j := range jobs {
			w := m.store.ShardFor(j.JediTaskID) % workers
			assign[w] = append(assign[w], i)
		}
		return assign
	}
	for i := range jobs {
		assign[i%workers] = append(assign[i%workers], i)
	}
	return assign
}

// indexedMatch tags a match with its job's position in the input slice so
// aggregation can order deterministically regardless of arrival order.
type indexedMatch struct {
	idx   int
	match Match
}

// aggregator is the one shared accounting routine of the pipeline: it
// consumes matches in any arrival order (every Result field it maintains
// is order-insensitive) and defers the deterministic ordering of Matches
// — by pandaid, input position breaking ties (duplicate pandaid rows are
// legal) — to finish.
type aggregator struct {
	res  *Result
	idxs []int          // input position of each match, for the tie-break
	seen map[int64]bool // event ids already counted in MatchedTransfers
}

func newAggregator(m *Matcher, method Method) *aggregator {
	return &aggregator{
		res: &Result{
			Method:              method,
			TotalTransfers:      m.store.TransferCount(),
			TransfersWithTaskID: m.store.TransfersWithTaskID(),
		},
		seen: make(map[int64]bool),
	}
}

func (a *aggregator) add(idx int, match Match) {
	a.res.Matches = append(a.res.Matches, match)
	a.idxs = append(a.idxs, idx)
	a.res.MatchedJobs++
	for _, ev := range match.Transfers {
		if !a.seen[ev.EventID] {
			a.seen[ev.EventID] = true
			a.res.MatchedTransfers++
			if ev.IsLocal() {
				a.res.LocalTransfers++
			} else {
				a.res.RemoteTransfers++
			}
		}
	}
	switch match.Class() {
	case AllLocal:
		a.res.JobsAllLocal++
	case AllRemote:
		a.res.JobsAllRemote++
	default:
		a.res.JobsMixed++
	}
}

func (a *aggregator) finish(totalJobs int) *Result {
	a.res.TotalJobs = totalJobs
	sort.Sort(&byPandaThenInput{a.res.Matches, a.idxs})
	return a.res
}

// byPandaThenInput sorts matches by pandaid with the input position as the
// tie-break, keeping the match slice and its position tags in lockstep.
type byPandaThenInput struct {
	matches []Match
	idxs    []int
}

func (s *byPandaThenInput) Len() int { return len(s.matches) }
func (s *byPandaThenInput) Less(i, k int) bool {
	if a, b := s.matches[i].Job.PandaID, s.matches[k].Job.PandaID; a != b {
		return a < b
	}
	return s.idxs[i] < s.idxs[k]
}
func (s *byPandaThenInput) Swap(i, k int) {
	s.matches[i], s.matches[k] = s.matches[k], s.matches[i]
	s.idxs[i], s.idxs[k] = s.idxs[k], s.idxs[i]
}
