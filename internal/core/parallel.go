package core

import (
	"runtime"
	"sort"
	"sync"

	"panrucio/internal/records"
)

// RunParallel is Run with the per-job matching fanned out across workers —
// the parallelization the paper's limitations section singles out as the
// path to full-scale analysis ("any future systematic and scalable
// analysis designs, such as parallelization, will be especially
// valuable"). The metastore is read-only during matching, so sharding by
// job is safe; results are merged deterministically (matches ordered by
// pandaid), making the output identical to Run's up to match order.
//
// workers <= 0 selects GOMAXPROCS.
func (m *Matcher) RunParallel(jobs []*records.JobRecord, method Method, workers int) *Result {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		return m.Run(jobs, method)
	}

	partial := make([][]Match, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			var out []Match
			for i := w; i < len(jobs); i += workers {
				j := jobs[i]
				if evs := m.MatchJob(j, method); len(evs) > 0 {
					out = append(out, Match{Job: j, Transfers: evs})
				}
			}
			partial[w] = out
		}()
	}
	wg.Wait()

	res := &Result{
		Method:              method,
		TotalJobs:           len(jobs),
		TotalTransfers:      m.store.TransferCount(),
		TransfersWithTaskID: m.store.TransfersWithTaskID(),
	}
	for _, p := range partial {
		res.Matches = append(res.Matches, p...)
	}
	sort.Slice(res.Matches, func(a, b int) bool {
		return res.Matches[a].Job.PandaID < res.Matches[b].Job.PandaID
	})

	seen := make(map[int64]bool)
	for i := range res.Matches {
		match := &res.Matches[i]
		res.MatchedJobs++
		for _, ev := range match.Transfers {
			if !seen[ev.EventID] {
				seen[ev.EventID] = true
				res.MatchedTransfers++
				if ev.IsLocal() {
					res.LocalTransfers++
				} else {
					res.RemoteTransfers++
				}
			}
		}
		switch match.Class() {
		case AllLocal:
			res.JobsAllLocal++
		case AllRemote:
			res.JobsAllRemote++
		default:
			res.JobsMixed++
		}
	}
	return res
}
