package core

import (
	"fmt"
	"testing"
	"testing/quick"

	"panrucio/internal/metastore"
	"panrucio/internal/records"
	"panrucio/internal/simtime"
	"panrucio/internal/topology"
)

// perturbation flags drawn by the property generator for each transfer.
type perturbation struct {
	SizeJitter   bool
	UnknownDest  bool
	WrongDataset bool
	LateStart    bool // transfer begins after job end
	Missing      bool // event never recorded
}

// buildRandomScenario fabricates one job with len(perturbs) input files and
// one (possibly perturbed) transfer event per file.
func buildRandomScenario(perturbs []perturbation) (*metastore.Store, *records.JobRecord) {
	store := metastore.New()
	const (
		jedi  = int64(42_000_077)
		panda = int64(6_590_000_001)
		site  = "BNL-ATLAS"
	)
	job := &records.JobRecord{
		PandaID: panda, JediTaskID: jedi, ComputingSite: site,
		Label:        records.LabelUser,
		CreationTime: 1_000, StartTime: 5_000, EndTime: 20_000,
		Status: records.JobFinished, TaskStatus: records.TaskDone,
	}
	var inBytes int64
	for i, p := range perturbs {
		size := int64(1e9 + int64(i)*1e8)
		inBytes += size
		lfn := fmt.Sprintf("f%03d", i)
		store.PutFile(&records.FileRecord{
			PandaID: panda, JediTaskID: jedi, LFN: lfn, Scope: "s",
			Dataset: "ds", ProdDBlock: "ds", FileSize: size, Kind: records.FileInput,
		})
		if p.Missing {
			continue
		}
		ev := &records.TransferEvent{
			EventID: int64(1000 + i), LFN: lfn, Scope: "s",
			Dataset: "ds", ProdDBlock: "ds", FileSize: size,
			SourceSite: site, DestinationSite: site,
			Activity: records.AnalysisDownload, IsDownload: true,
			JediTaskID: jedi, StartedAt: 1_500 + simtime.VTime(i)*100,
			EndedAt: 1_600 + simtime.VTime(i)*100,
		}
		if p.SizeJitter {
			ev.FileSize += 7
		}
		if p.UnknownDest {
			ev.DestinationSite = topology.UnknownSite
		}
		if p.WrongDataset {
			ev.Dataset = "ds_tid00000042"
		}
		if p.LateStart {
			ev.StartedAt = 25_000
			ev.EndedAt = 25_100
		}
		store.PutTransfer(ev)
	}
	job.NInputFileBytes = inBytes
	store.PutJob(job)
	return store, job
}

// TestMatcherMonotonicityProperty: for arbitrary perturbation vectors,
// Exact ⊆ RM1 ⊆ RM2 per job, and every matched transfer satisfies the
// never-relaxed conditions (join attributes, start-before-end).
func TestMatcherMonotonicityProperty(t *testing.T) {
	prop := func(raw []uint8) bool {
		if len(raw) == 0 || len(raw) > 12 {
			return true
		}
		perturbs := make([]perturbation, len(raw))
		for i, b := range raw {
			perturbs[i] = perturbation{
				SizeJitter:   b&1 != 0,
				UnknownDest:  b&2 != 0,
				WrongDataset: b&4 != 0,
				LateStart:    b&8 != 0,
				Missing:      b&16 != 0,
			}
		}
		store, job := buildRandomScenario(perturbs)
		m := NewMatcher(store)
		exact := m.MatchJob(job, Exact)
		rm1 := m.MatchJob(job, RM1)
		rm2 := m.MatchJob(job, RM2)

		inSet := func(evs []*records.TransferEvent, id int64) bool {
			for _, ev := range evs {
				if ev.EventID == id {
					return true
				}
			}
			return false
		}
		for _, ev := range exact {
			if !inSet(rm1, ev.EventID) {
				return false
			}
		}
		for _, ev := range rm1 {
			if !inSet(rm2, ev.EventID) {
				return false
			}
		}
		// Universal conditions on every matched transfer.
		for _, set := range [][]*records.TransferEvent{exact, rm1, rm2} {
			for _, ev := range set {
				if ev.StartedAt >= job.EndTime {
					return false // time condition never relaxed
				}
				if ev.Dataset != "ds" {
					return false // join breakage never matchable
				}
			}
		}
		// Exact-only conditions.
		if len(exact) > 0 {
			var sum int64
			for _, ev := range exact {
				sum += ev.FileSize
				if ev.DestinationSite != job.ComputingSite {
					return false
				}
			}
			if sum != job.NInputFileBytes && sum != job.NOutputFileBytes {
				return false
			}
		}
		// RM1 site condition.
		for _, ev := range rm1 {
			if ev.DestinationSite != job.ComputingSite {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestCleanScenarioAlwaysExactMatches: with no perturbations at all, the
// exact method must link every file's transfer.
func TestCleanScenarioAlwaysExactMatches(t *testing.T) {
	for n := 1; n <= 8; n++ {
		store, job := buildRandomScenario(make([]perturbation, n))
		got := NewMatcher(store).MatchJob(job, Exact)
		if len(got) != n {
			t.Fatalf("clean %d-file scenario matched %d transfers", n, len(got))
		}
	}
}

// TestUnknownOnlyScenarioIsRM2Exclusive: when every event lost its
// destination, RM2 is the only method that links the job — the paper's
// central RM2 motivation.
func TestUnknownOnlyScenarioIsRM2Exclusive(t *testing.T) {
	perturbs := make([]perturbation, 4)
	for i := range perturbs {
		perturbs[i].UnknownDest = true
	}
	store, job := buildRandomScenario(perturbs)
	m := NewMatcher(store)
	if m.MatchJob(job, Exact) != nil || m.MatchJob(job, RM1) != nil {
		t.Fatal("unknown-destination events matched by a strict method")
	}
	if got := m.MatchJob(job, RM2); len(got) != 4 {
		t.Fatalf("RM2 matched %d, want 4", len(got))
	}
}

// TestJitterOnlyScenarioIsRM1Exclusive: byte-imprecise sizes are exactly
// the RM1 case.
func TestJitterOnlyScenarioIsRM1Exclusive(t *testing.T) {
	perturbs := make([]perturbation, 3)
	for i := range perturbs {
		perturbs[i].SizeJitter = true
	}
	store, job := buildRandomScenario(perturbs)
	m := NewMatcher(store)
	if m.MatchJob(job, Exact) != nil {
		t.Fatal("jittered sizes exact-matched")
	}
	if got := m.MatchJob(job, RM1); len(got) != 3 {
		t.Fatalf("RM1 matched %d, want 3", len(got))
	}
}
