package core

import "panrucio/internal/records"

// matchJobReference is the original O(files × candidate-transfers) nested
// scan over the task's candidate list, retained as the oracle the indexed
// MatchJob is tested (and benchmarked) against. Candidate order is the
// ingestion order of the task bucket restricted per file row — exactly the
// order the per-file join-key probes produce — so the two implementations
// must return identical slices, not just identical sets.
//
// Like MatchJob, a transfer matched by more than one file row is kept
// once; the historical duplicate-append behavior inflated Exact's size sum
// and the match set.
func (m *Matcher) matchJobReference(j *records.JobRecord, method Method) []*records.TransferEvent {
	files := m.store.FilesForJob(j.PandaID, j.JediTaskID) // F'_j
	if len(files) == 0 {
		return nil
	}
	candidates := m.store.TransfersByTaskID(j.JediTaskID)
	if len(candidates) == 0 {
		return nil
	}
	var set []*records.TransferEvent
	for _, f := range files {
		for _, ev := range candidates {
			if ev.LFN != f.LFN || ev.Scope != f.Scope ||
				ev.Dataset != f.Dataset || ev.ProdDBlock != f.ProdDBlock {
				continue
			}
			if method == Exact && ev.FileSize != f.FileSize {
				continue
			}
			if containsEvent(set, ev.EventID) {
				continue
			}
			set = append(set, ev)
		}
	}
	return finalizeSet(j, method, set)
}

// runReference is Run built on the reference matcher — the naive
// end-to-end path the benchmarks compare the indexed pipeline against.
func (m *Matcher) runReference(jobs []*records.JobRecord, method Method) *Result {
	m.store.Freeze()
	agg := newAggregator(m, method)
	for i, j := range jobs {
		if evs := m.matchJobReference(j, method); len(evs) > 0 {
			agg.add(i, Match{Job: j, Transfers: evs})
		}
	}
	return agg.finish(len(jobs))
}
