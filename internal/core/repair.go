package core

import (
	"panrucio/internal/metastore"
	"panrucio/internal/records"
	"panrucio/internal/topology"
)

// RepairStats summarizes a metadata-repair pass.
type RepairStats struct {
	// EventsExamined is the number of RM2-matched transfer events visited.
	EventsExamined int
	// LabelsRepaired counts endpoint labels rewritten from inference.
	LabelsRepaired int
	// ByDuplicate / BySiteCondition split LabelsRepaired by evidence class.
	ByDuplicate     int
	BySiteCondition int
}

// RepairStore implements the paper's "improving metadata completeness and
// consistency" direction: it applies the site-label inferences from an RM2
// matching pass and materializes a new store whose transfer events carry
// the reconstructed labels. The original store is untouched; job and file
// records are shared (they are immutable).
//
// Re-running the matcher on the repaired store quantifies the uplift:
// events whose only defect was a lost endpoint label become matchable by
// the stricter methods, "effectively converting uncertain cases into exact
// ones" (Section 5.4).
func RepairStore(store *metastore.Store, grid *topology.Grid, rm2 *Result) (*metastore.Store, RepairStats) {
	// Collect label fixes keyed by event id.
	type fix struct{ src, dst string }
	fixes := map[int64]fix{}
	var st RepairStats
	for i := range rm2.Matches {
		m := &rm2.Matches[i]
		st.EventsExamined += len(m.Transfers)
		for _, inf := range InferUnknownSites(m, grid) {
			f := fixes[inf.Event.EventID]
			switch inf.Field {
			case "source":
				f.src = inf.InferredSite
			case "destination":
				f.dst = inf.InferredSite
			}
			fixes[inf.Event.EventID] = f
			st.LabelsRepaired++
			if inf.Evidence == "duplicate" {
				st.ByDuplicate++
			} else {
				st.BySiteCondition++
			}
		}
	}

	// Clean RM2 result: nothing to rewrite, so skip the full store copy and
	// hand the caller's store back unchanged. The copy below exists only to
	// carry edited rows; with zero fixes it would burn O(store) time and
	// memory to produce a semantic clone.
	if len(fixes) == 0 {
		return store, st
	}

	repaired := metastore.NewSharded(store.ShardCount())
	for _, j := range store.Jobs(0, 1<<62, "") {
		repaired.PutJob(j)
	}
	// File records have no windowed accessor by design; re-derive them per
	// job through the job index.
	for _, j := range store.Jobs(0, 1<<62, "") {
		for _, f := range store.FilesForJob(j.PandaID, j.JediTaskID) {
			repaired.PutFile(f)
		}
	}
	for _, ev := range store.Transfers(0, 0) {
		if f, ok := fixes[ev.EventID]; ok {
			cp := *ev
			if f.src != "" {
				cp.SourceSite = f.src
			}
			if f.dst != "" {
				cp.DestinationSite = f.dst
			}
			repaired.PutTransfer(&cp)
			continue
		}
		repaired.PutTransfer(ev)
	}
	return repaired, st
}

// Uplift compares matching before and after repair for one method.
type Uplift struct {
	Method        Method
	Before, After *Result
	JobGain       int
	TransferGain  int
}

// MeasureUplift runs the full repair-and-rematch experiment: RM2-match the
// original store, repair it, and re-match with the given (stricter) method
// on both stores.
func MeasureUplift(store *metastore.Store, grid *topology.Grid, jobs []*records.JobRecord, method Method) (Uplift, RepairStats) {
	m := NewMatcher(store)
	rm2 := m.Run(jobs, RM2)
	repairedStore, st := RepairStore(store, grid, rm2)

	before := m.Run(jobs, method)
	after := NewMatcher(repairedStore).Run(jobs, method)
	return Uplift{
		Method:       method,
		Before:       before,
		After:        after,
		JobGain:      after.MatchedJobs - before.MatchedJobs,
		TransferGain: after.MatchedTransfers - before.MatchedTransfers,
	}, st
}
