package core

import (
	"testing"

	"panrucio/internal/corruption"
	"panrucio/internal/records"
	"panrucio/internal/sim"
	"panrucio/internal/topology"
)

func TestRepairStoreFixesKnownCase(t *testing.T) {
	grid := topology.Default(topology.DefaultSpec{})
	s := newScenario()
	// Both downloads lose their destination (the Fig. 12/Table 3 pattern).
	ev0 := s.download(0, 3e9, 1100, 1200)
	ev0.DestinationSite = topology.UnknownSite
	ev1 := s.download(1, 4e9, 1200, 1400)
	ev1.DestinationSite = topology.UnknownSite
	s.store.PutTransfer(ev0)
	s.store.PutTransfer(ev1)

	jobs := s.store.Jobs(0, 1<<62, records.LabelUser)
	m := NewMatcher(s.store)
	if got := m.Run(jobs, Exact); got.MatchedJobs != 0 {
		t.Fatal("scenario should not exact-match before repair")
	}
	rm2 := m.Run(jobs, RM2)
	repaired, st := RepairStore(s.store, grid, rm2)
	if st.LabelsRepaired != 2 || st.BySiteCondition != 2 {
		t.Fatalf("repair stats = %+v", st)
	}
	// The original store is untouched.
	if ev0.DestinationSite != topology.UnknownSite {
		t.Fatal("RepairStore mutated the original event")
	}
	// After repair the job exact-matches.
	after := NewMatcher(repaired).Run(jobs, Exact)
	if after.MatchedJobs != 1 || after.MatchedTransfers != 2 {
		t.Fatalf("post-repair exact: jobs=%d transfers=%d", after.MatchedJobs, after.MatchedTransfers)
	}
	for _, ev := range repaired.Transfers(0, 0) {
		if ev.DestinationSite != sSite {
			t.Errorf("repaired label = %q", ev.DestinationSite)
		}
	}
}

// TestRepairStoreNoOpFastPath pins the clean-result regression: when the
// RM2 pass yields no label fixes, RepairStore must hand back the caller's
// store untouched instead of burning time and memory on a full semantic
// clone. Pointer identity plus commitment identity (the seal-time hash of
// every stored row) prove both "same store" and "same bytes".
func TestRepairStoreNoOpFastPath(t *testing.T) {
	cfg := sim.QuickConfig(5)
	cfg.Corruption = corruption.Config{Disable: true}
	res := sim.Run(cfg)
	jobs := res.Store.Jobs(res.WindowFrom, res.WindowTo, records.LabelUser)
	rm2 := NewMatcher(res.Store).Run(jobs, RM2)

	before := res.Store.StoreCommitment()
	repaired, st := RepairStore(res.Store, res.Grid, rm2)
	if st.LabelsRepaired != 0 {
		t.Fatalf("clean run repaired %d labels — scenario not actually clean", st.LabelsRepaired)
	}
	if st.EventsExamined == 0 {
		t.Fatal("repair examined nothing — the RM2 pass matched no transfers")
	}
	if repaired != res.Store {
		t.Fatal("no-op repair returned a new store instead of the original")
	}
	if repaired.StoreCommitment() != before {
		t.Fatal("no-op repair changed the store commitment")
	}
}

func TestMeasureUpliftOnSimulatedRun(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale run skipped in -short mode")
	}
	res := sim.Run(sim.PaperConfig(1))
	jobs := res.Store.Jobs(res.WindowFrom, res.WindowTo, records.LabelUser)
	up, st := MeasureUplift(res.Store, res.Grid, jobs, Exact)
	if st.LabelsRepaired == 0 {
		t.Fatal("no labels repaired on the default run")
	}
	if up.JobGain <= 0 {
		t.Errorf("repair produced no exact-match job gain: %+v", up)
	}
	if up.TransferGain <= 0 {
		t.Errorf("repair produced no exact-match transfer gain: %+v", up)
	}
	if up.After.MatchedJobs != up.Before.MatchedJobs+up.JobGain {
		t.Error("gain accounting inconsistent")
	}
	t.Logf("repair uplift: +%d jobs, +%d transfers from %d repaired labels (%d duplicate-evidence)",
		up.JobGain, up.TransferGain, st.LabelsRepaired, st.ByDuplicate)
}

func TestRunParallelMatchesSerial(t *testing.T) {
	res := sim.Run(sim.QuickConfig(31))
	jobs := res.Store.Jobs(res.WindowFrom, res.WindowTo, records.LabelUser)
	m := NewMatcher(res.Store)
	for _, method := range []Method{Exact, RM1, RM2} {
		serial := m.Run(jobs, method)
		for _, workers := range []int{0, 1, 2, 7} {
			par := m.RunParallel(jobs, method, workers)
			if par.MatchedJobs != serial.MatchedJobs ||
				par.MatchedTransfers != serial.MatchedTransfers ||
				par.LocalTransfers != serial.LocalTransfers ||
				par.RemoteTransfers != serial.RemoteTransfers ||
				par.JobsAllLocal != serial.JobsAllLocal ||
				par.JobsAllRemote != serial.JobsAllRemote ||
				par.JobsMixed != serial.JobsMixed {
				t.Fatalf("%v workers=%d diverged from serial: %+v vs %+v",
					method, workers, par, serial)
			}
			// Deterministic match ordering by pandaid.
			for i := 1; i < len(par.Matches); i++ {
				if par.Matches[i-1].Job.PandaID >= par.Matches[i].Job.PandaID {
					t.Fatal("parallel matches not sorted by pandaid")
				}
			}
		}
	}
}

func TestRunParallelEmptyJobs(t *testing.T) {
	res := sim.Run(sim.QuickConfig(32))
	m := NewMatcher(res.Store)
	got := m.RunParallel(nil, Exact, 4)
	if got.MatchedJobs != 0 || got.TotalJobs != 0 {
		t.Errorf("empty job set: %+v", got)
	}
}
