package corruption

import (
	"fmt"
	"hash/fnv"

	"panrucio/internal/records"
	"panrucio/internal/simtime"
	"panrucio/internal/topology"
)

// Config sets corruption probabilities. Zero values take the calibrated
// defaults (see DESIGN.md shape targets); because of that, a probability
// cannot be set to literal zero by assigning 0 — pass any negative value
// instead and fill clamps it to exactly 0. Sweeps that ramp a channel down
// to "off" (internal/sweep, experiment E14) rely on this convention.
type Config struct {
	// Disable turns every channel off — events pass through untouched.
	// Ablation studies use this to measure the matching framework against
	// clean metadata.
	Disable bool
	// DropTransferProb loses the event entirely (per event, default 0.01).
	DropTransferProb float64
	// DropTaskIDProb clears jeditaskid on a job-correlated event (per
	// event, default 0.02).
	DropTaskIDProb float64
	// JoinBreakProb rewrites the dataset name recorded on job-correlated
	// download events of an afflicted dataset with a production "_tid"
	// suffix (per dataset, default 0.92). Uploads are immune: they
	// reference the job's own freshly created output dataset, so the names
	// agree — which is why the paper's Analysis Upload row matches at ~95 %.
	JoinBreakProb float64
	// UnknownSiteProb replaces the source or destination site with UNKNOWN
	// on background (no-taskid) events (per event, default 0.02) — keeps
	// Fig. 3's UNKNOWN row/column modest, as in the paper.
	UnknownSiteProb float64
	// UnknownSiteProbTaskID is the (much higher) UNKNOWN rate for
	// job-correlated *download* events, applied per pilot batch (default
	// 0.40) — the Table 3 pathology RM2 recovers from. Uploads are exempt:
	// the pilot registers them synchronously with its own site identity,
	// which is why the paper's "relatively straightforward" Analysis Upload
	// scheme matches at ~95 %.
	UnknownSiteProbTaskID float64
	// GarbleSiteProb replaces a site label with an invalid string (per
	// event, default 0.015).
	GarbleSiteProb float64
	// SizeJitterProb records the file size imprecisely (per event, default
	// 0.015); the error is uniform in ±SizeJitterMax bytes, never zero.
	SizeJitterProb float64
	// SizeJitterMax bounds the recorded-size error (default 4096 bytes).
	SizeJitterMax int64
}

func (c *Config) fill() {
	def := func(p *float64, v float64) {
		if *p == 0 {
			*p = v
		}
		if *p < 0 {
			*p = 0
		}
	}
	def(&c.DropTransferProb, 0.01)
	def(&c.DropTaskIDProb, 0.02)
	def(&c.JoinBreakProb, 0.92)
	def(&c.UnknownSiteProb, 0.02)
	def(&c.UnknownSiteProbTaskID, 0.40)
	def(&c.GarbleSiteProb, 0.015)
	def(&c.SizeJitterProb, 0.015)
	if c.SizeJitterMax == 0 {
		c.SizeJitterMax = 4096
	}
}

// Stats tallies what the corruptor did, surfaced after a run as
// sim.Result.Corruption.
type Stats struct {
	Seen         int64
	Dropped      int64
	TaskIDLost   int64
	JoinBroken   int64
	SiteUnknowns int64
	SiteGarbled  int64
	SizeJittered int64
}

// Corruptor mutates transfer events in place. Use one per simulation with a
// dedicated RNG split.
type Corruptor struct {
	cfg  Config
	rng  *simtime.RNG
	salt uint64
	// Stats is exported for post-run inspection.
	Stats Stats
}

// New builds a corruptor with the given config (zero fields defaulted).
func New(rng *simtime.RNG, cfg Config) *Corruptor {
	cfg.fill()
	salt := uint64(rng.Int63n(1 << 62))
	return &Corruptor{cfg: cfg, rng: rng, salt: salt}
}

// Config reports the effective configuration.
func (c *Corruptor) Config() Config { return c.cfg }

// hashBool makes a deterministic, seed-dependent draw keyed by a string:
// identical keys always decide alike within one corruptor.
func (c *Corruptor) hashBool(key string, p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/%s", c.salt, key)
	return float64(h.Sum64()%1_000_000)/1_000_000 < p
}

// batchKey identifies a pilot fetch session: one task staging to one site
// via one activity within one hour shares a metadata path, so endpoint
// loss hits the whole batch together.
func batchKey(ev *records.TransferEvent) string {
	return fmt.Sprintf("batch/%d/%s/%s/%s/%d",
		ev.JediTaskID, ev.SourceSite, ev.DestinationSite, ev.Activity,
		ev.SubmittedAt/simtime.Hour)
}

// Transfer applies corruption to one event. It returns false when the event
// is dropped (caller must not ingest it). The original event is mutated.
func (c *Corruptor) Transfer(ev *records.TransferEvent) bool {
	c.Stats.Seen++
	if c.cfg.Disable {
		return true
	}
	if c.rng.Bool(c.cfg.DropTransferProb) {
		c.Stats.Dropped++
		return false
	}
	jobCorrelated := ev.JediTaskID != 0

	// Per-dataset join breakage (downloads only; see Config docs).
	if jobCorrelated && ev.IsDownload && c.hashBool("join/"+ev.Dataset, c.cfg.JoinBreakProb) {
		ev.Dataset = ev.Dataset + "_tid" + fmt.Sprintf("%08d", fnvMod(ev.Dataset, 1e8))
		c.Stats.JoinBroken++
	}

	// Endpoint loss: per pilot batch for job-correlated downloads, per
	// event for everything else (uploads, background traffic).
	lost := false
	if jobCorrelated && ev.IsDownload {
		lost = c.hashBool(batchKey(ev), c.cfg.UnknownSiteProbTaskID)
	} else {
		lost = c.rng.Bool(c.cfg.UnknownSiteProb)
	}
	if lost {
		// Downloads lose their destination label and uploads their source
		// (both are the job's computing site — the Table 3 pattern);
		// background events lose either side.
		switch {
		case jobCorrelated && ev.IsUpload:
			ev.SourceSite = topology.UnknownSite
		case jobCorrelated:
			ev.DestinationSite = topology.UnknownSite
		case c.rng.Bool(0.5):
			ev.SourceSite = topology.UnknownSite
		default:
			ev.DestinationSite = topology.UnknownSite
		}
		c.Stats.SiteUnknowns++
	}

	if c.rng.Bool(c.cfg.GarbleSiteProb) {
		if c.rng.Bool(0.5) {
			ev.SourceSite = "gsiftp://invalid/" + ev.SourceSite
		} else {
			ev.DestinationSite = "gsiftp://invalid/" + ev.DestinationSite
		}
		c.Stats.SiteGarbled++
	}

	if jobCorrelated && c.rng.Bool(c.cfg.DropTaskIDProb) {
		ev.JediTaskID = 0
		c.Stats.TaskIDLost++
	}

	if c.rng.Bool(c.cfg.SizeJitterProb) {
		delta := c.rng.Int63n(2*c.cfg.SizeJitterMax) - c.cfg.SizeJitterMax
		if delta == 0 {
			delta = 1
		}
		ev.FileSize += delta
		if ev.FileSize < 1 {
			ev.FileSize = 1
		}
		c.Stats.SizeJittered++
	}
	return true
}

// fnvMod hashes a string into [0, mod).
func fnvMod(s string, mod float64) int {
	h := fnv.New64a()
	h.Write([]byte(s))
	return int(h.Sum64() % uint64(mod))
}
