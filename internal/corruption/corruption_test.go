package corruption

import (
	"strings"
	"testing"

	"panrucio/internal/records"
	"panrucio/internal/simtime"
	"panrucio/internal/topology"
)

func event() *records.TransferEvent {
	return &records.TransferEvent{
		LFN: "f", Dataset: "data25.ds", SourceSite: "A", DestinationSite: "B",
		FileSize: 1_000_000, JediTaskID: 42, IsDownload: true,
	}
}

// off disables every channel except those the caller re-enables.
func off() Config {
	return Config{
		DropTransferProb: 1e-12, DropTaskIDProb: 1e-12, JoinBreakProb: 1e-12,
		UnknownSiteProb: 1e-12, UnknownSiteProbTaskID: 1e-12,
		GarbleSiteProb: 1e-12, SizeJitterProb: 1e-12,
	}
}

func TestDropAll(t *testing.T) {
	cfg := off()
	cfg.DropTransferProb = 0.999999
	c := New(simtime.NewRNG(1), cfg)
	kept := 0
	for i := 0; i < 100; i++ {
		if c.Transfer(event()) {
			kept++
		}
	}
	if kept != 0 {
		t.Errorf("kept %d events with drop prob ~1", kept)
	}
	if c.Stats.Seen != 100 || c.Stats.Dropped != 100 {
		t.Errorf("stats %+v", c.Stats)
	}
}

func TestTaskIDLoss(t *testing.T) {
	cfg := off()
	cfg.DropTaskIDProb = 0.999999
	c := New(simtime.NewRNG(2), cfg)
	ev := event()
	if !c.Transfer(ev) {
		t.Fatal("event dropped")
	}
	if ev.JediTaskID != 0 {
		t.Error("jeditaskid survived p~1 loss")
	}
	// Events without a task id are unaffected.
	ev2 := event()
	ev2.JediTaskID = 0
	c.Transfer(ev2)
	if c.Stats.TaskIDLost != 1 {
		t.Errorf("TaskIDLost = %d, want 1", c.Stats.TaskIDLost)
	}
}

func TestUnknownSiteJobCorrelatedSides(t *testing.T) {
	cfg := off()
	cfg.UnknownSiteProbTaskID = 0.999999
	c := New(simtime.NewRNG(3), cfg)
	// Download: the destination (computing site) label is lost.
	down := event()
	c.Transfer(down)
	if down.DestinationSite != topology.UnknownSite || down.SourceSite != "A" {
		t.Errorf("download sides: %s -> %s", down.SourceSite, down.DestinationSite)
	}
	// Uploads are exempt from the per-batch channel...
	up := event()
	up.IsDownload, up.IsUpload = false, true
	c.Transfer(up)
	if up.SourceSite != "A" || up.DestinationSite != "B" {
		t.Errorf("upload corrupted by batch channel: %s -> %s", up.SourceSite, up.DestinationSite)
	}
	// ...but lose their source through the per-event channel.
	cfg2 := off()
	cfg2.UnknownSiteProb = 0.999999
	c2 := New(simtime.NewRNG(3), cfg2)
	up2 := event()
	up2.IsDownload, up2.IsUpload = false, true
	c2.Transfer(up2)
	if up2.SourceSite != topology.UnknownSite || up2.DestinationSite != "B" {
		t.Errorf("upload sides: %s -> %s", up2.SourceSite, up2.DestinationSite)
	}
}

func TestUnknownSiteBatchCorrelated(t *testing.T) {
	cfg := off()
	cfg.UnknownSiteProbTaskID = 0.5
	c := New(simtime.NewRNG(4), cfg)
	// Same batch (task, route, activity, hour): all events decide alike.
	perBatch := map[int64]int{}
	for task := int64(1); task <= 60; task++ {
		unknowns := 0
		for i := 0; i < 5; i++ {
			ev := event()
			ev.JediTaskID = task
			c.Transfer(ev)
			if ev.DestinationSite == topology.UnknownSite {
				unknowns++
			}
		}
		if unknowns != 0 && unknowns != 5 {
			t.Fatalf("task %d batch split: %d/5 unknown", task, unknowns)
		}
		perBatch[task] = unknowns
	}
	hit := 0
	for _, u := range perBatch {
		if u == 5 {
			hit++
		}
	}
	if hit < 15 || hit > 45 {
		t.Errorf("batch hit rate %d/60 far from p=0.5", hit)
	}
}

func TestUnknownSiteBackgroundPerEvent(t *testing.T) {
	cfg := off()
	cfg.UnknownSiteProb = 0.999999
	c := New(simtime.NewRNG(5), cfg)
	src, dst := 0, 0
	for i := 0; i < 200; i++ {
		ev := event()
		ev.JediTaskID = 0
		c.Transfer(ev)
		switch {
		case ev.SourceSite == topology.UnknownSite:
			src++
		case ev.DestinationSite == topology.UnknownSite:
			dst++
		default:
			t.Fatal("background event escaped p~1 unknown corruption")
		}
	}
	if src == 0 || dst == 0 {
		t.Errorf("background unknown one-sided: src=%d dst=%d", src, dst)
	}
}

func TestJoinBreakPerDataset(t *testing.T) {
	cfg := off()
	cfg.JoinBreakProb = 0.5
	c := New(simtime.NewRNG(6), cfg)
	broken := 0
	for d := 0; d < 80; d++ {
		name := "data25.ds" + string(rune('A'+d%26)) + string(rune('0'+d/26))
		state := 0 // 0 unknown, 1 all broken, 2 all intact
		for i := 0; i < 4; i++ {
			ev := event()
			ev.Dataset = name
			c.Transfer(ev)
			isBroken := strings.Contains(ev.Dataset, "_tid")
			switch {
			case state == 0 && isBroken:
				state = 1
			case state == 0:
				state = 2
			case state == 1 && !isBroken, state == 2 && isBroken:
				t.Fatalf("dataset %s split decision", name)
			}
		}
		if state == 1 {
			broken++
		}
	}
	if broken < 20 || broken > 60 {
		t.Errorf("dataset break rate %d/80 far from p=0.5", broken)
	}
	// Uploads are immune.
	up := event()
	up.IsDownload, up.IsUpload = false, true
	cfg.JoinBreakProb = 0.999999
	c2 := New(simtime.NewRNG(7), cfg)
	c2.Transfer(up)
	if strings.Contains(up.Dataset, "_tid") {
		t.Error("upload dataset was join-broken")
	}
	// Background events are immune.
	bg := event()
	bg.JediTaskID = 0
	c2.Transfer(bg)
	if strings.Contains(bg.Dataset, "_tid") {
		t.Error("background dataset was join-broken")
	}
}

func TestGarbleSiteLooksInvalid(t *testing.T) {
	cfg := off()
	cfg.GarbleSiteProb = 0.999999
	c := New(simtime.NewRNG(8), cfg)
	ev := event()
	c.Transfer(ev)
	if !strings.Contains(ev.SourceSite+ev.DestinationSite, "invalid") {
		t.Errorf("no garbled site: %s -> %s", ev.SourceSite, ev.DestinationSite)
	}
}

func TestSizeJitterNonZeroBounded(t *testing.T) {
	cfg := off()
	cfg.SizeJitterProb = 0.999999
	cfg.SizeJitterMax = 100
	c := New(simtime.NewRNG(9), cfg)
	for i := 0; i < 200; i++ {
		ev := event()
		orig := ev.FileSize
		c.Transfer(ev)
		d := ev.FileSize - orig
		if d == 0 {
			t.Fatal("jitter produced zero delta")
		}
		if d < -100 || d > 100 {
			t.Fatalf("jitter %d out of bounds", d)
		}
	}
	ev := event()
	ev.FileSize = 1
	c.Transfer(ev)
	if ev.FileSize < 1 {
		t.Error("size fell below 1")
	}
}

func TestDefaultsApplied(t *testing.T) {
	c := New(simtime.NewRNG(10), Config{})
	cfg := c.Config()
	if cfg.DropTransferProb != 0.01 || cfg.SizeJitterMax != 4096 ||
		cfg.SizeJitterProb != 0.015 || cfg.JoinBreakProb != 0.92 ||
		cfg.UnknownSiteProbTaskID != 0.40 || cfg.UnknownSiteProb != 0.02 {
		t.Errorf("defaults not applied: %+v", cfg)
	}
}

func TestDeterministicAcrossCorruptors(t *testing.T) {
	// Same seed, same events => same decisions (the whole suite depends on
	// this for reproducibility).
	run := func() []string {
		c := New(simtime.NewRNG(11), Config{})
		var out []string
		for i := 0; i < 50; i++ {
			ev := event()
			ev.JediTaskID = int64(i)
			ev.Dataset = "ds" + string(rune('a'+i%7))
			if c.Transfer(ev) {
				out = append(out, ev.Dataset+"|"+ev.SourceSite+"|"+ev.DestinationSite)
			}
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("corruptors diverged in drop decisions")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("corruptors diverged at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestNegativeProbabilityMeansExactlyZero(t *testing.T) {
	rng := simtime.NewRNG(9)
	c := New(rng, Config{
		DropTransferProb:      -1,
		DropTaskIDProb:        -1,
		JoinBreakProb:         -1,
		UnknownSiteProb:       -1,
		UnknownSiteProbTaskID: -1,
		GarbleSiteProb:        -1,
		SizeJitterProb:        -1,
	})
	if got := c.Config(); got.JoinBreakProb != 0 || got.UnknownSiteProbTaskID != 0 {
		t.Fatalf("negative probabilities not clamped to zero: %+v", got)
	}
	for i := 0; i < 500; i++ {
		ev := event()
		ev.JediTaskID = int64(i + 1)
		ev.EventID = int64(i)
		if !c.Transfer(ev) {
			t.Fatal("event dropped with DropTransferProb forced to zero")
		}
	}
	st := c.Stats
	if st.Dropped+st.TaskIDLost+st.JoinBroken+st.SiteUnknowns+st.SiteGarbled+st.SizeJittered != 0 {
		t.Fatalf("corruption acted with every channel forced off: %+v", st)
	}
}

// TestNegativeProbabilityPerChannel isolates the negative-means-zero
// contract channel by channel: with every OTHER channel cranked high, a
// single negative probability must silence exactly its own channel while
// the rest keep firing. This is what sweep's soloChannel/zeroable ramps
// rely on — a channel "ramped to off" must be off, not defaulted.
func TestNegativeProbabilityPerChannel(t *testing.T) {
	// jobDownload/background pick the event population each channel acts
	// on (the two UnknownSite channels split by job correlation).
	jobDownload := func(i int) *records.TransferEvent {
		ev := event()
		ev.EventID = int64(i)
		ev.JediTaskID = int64(i + 1)
		ev.Dataset = "data25.ds" + string(rune('a'+i%26))
		return ev
	}
	background := func(i int) *records.TransferEvent {
		ev := event()
		ev.EventID = int64(i)
		ev.JediTaskID = 0
		return ev
	}

	cases := []struct {
		name  string
		set   func(*Config)
		get   func(Config) float64
		stat  func(Stats) int64
		event func(int) *records.TransferEvent
	}{
		{"drop", func(c *Config) { c.DropTransferProb = -1 },
			func(c Config) float64 { return c.DropTransferProb },
			func(s Stats) int64 { return s.Dropped }, jobDownload},
		{"taskid", func(c *Config) { c.DropTaskIDProb = -1 },
			func(c Config) float64 { return c.DropTaskIDProb },
			func(s Stats) int64 { return s.TaskIDLost }, jobDownload},
		{"join", func(c *Config) { c.JoinBreakProb = -1 },
			func(c Config) float64 { return c.JoinBreakProb },
			func(s Stats) int64 { return s.JoinBroken }, jobDownload},
		{"site-background", func(c *Config) { c.UnknownSiteProb = -1 },
			func(c Config) float64 { return c.UnknownSiteProb },
			func(s Stats) int64 { return s.SiteUnknowns }, background},
		{"site-taskid", func(c *Config) { c.UnknownSiteProbTaskID = -1 },
			func(c Config) float64 { return c.UnknownSiteProbTaskID },
			func(s Stats) int64 { return s.SiteUnknowns }, jobDownload},
		{"garble", func(c *Config) { c.GarbleSiteProb = -1 },
			func(c Config) float64 { return c.GarbleSiteProb },
			func(s Stats) int64 { return s.SiteGarbled }, jobDownload},
		{"size", func(c *Config) { c.SizeJitterProb = -1 },
			func(c Config) float64 { return c.SizeJitterProb },
			func(s Stats) int64 { return s.SizeJittered }, jobDownload},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Every channel hot except drop (kept moderate so most events
			// survive to exercise the downstream channels), then the
			// channel under test forced negative.
			cfg := Config{
				DropTransferProb: 0.2, DropTaskIDProb: 0.9, JoinBreakProb: 0.9,
				UnknownSiteProb: 0.9, UnknownSiteProbTaskID: 0.9,
				GarbleSiteProb: 0.9, SizeJitterProb: 0.9,
			}
			tc.set(&cfg)
			c := New(simtime.NewRNG(17), cfg)
			if got := tc.get(c.Config()); got != 0 {
				t.Fatalf("negative probability filled to %g, want exactly 0", got)
			}
			for i := 0; i < 400; i++ {
				c.Transfer(tc.event(i))
			}
			st := c.Stats
			if n := tc.stat(st); n != 0 {
				t.Fatalf("channel %s fired %d times with its probability forced negative\nstats: %+v",
					tc.name, n, st)
			}
			others := st.Dropped + st.TaskIDLost + st.JoinBroken +
				st.SiteUnknowns + st.SiteGarbled + st.SizeJittered
			if others == 0 {
				t.Fatalf("no other channel fired — the corruptor was not exercised: %+v", st)
			}
		})
	}
}

// TestNegativeLeavesOtherDefaultsIntact pins that clamping one field does
// not disturb the zero-means-default convention of its neighbors.
func TestNegativeLeavesOtherDefaultsIntact(t *testing.T) {
	c := New(simtime.NewRNG(1), Config{JoinBreakProb: -1})
	got := c.Config()
	if got.JoinBreakProb != 0 {
		t.Fatalf("JoinBreakProb = %g, want 0", got.JoinBreakProb)
	}
	if got.DropTransferProb != 0.01 || got.UnknownSiteProbTaskID != 0.40 || got.SizeJitterMax != 4096 {
		t.Fatalf("neighboring defaults disturbed: %+v", got)
	}
}
