// Package corruption degrades transfer-event metadata on its way into the
// metastore, reproducing the data-quality pathologies the paper reports
// (Section 1, challenge 3; Section 5.4, Table 3): missing or invalid site
// labels, imprecisely recorded file sizes, lost jeditaskids, naming
// mismatches that break the metadata join, and dropped records. The
// corruption rates are the knobs that place the exact / RM1 / RM2 match
// fractions in the paper's bands; the sweep engine's E14 ramp turns the
// job-correlated knobs to measure robustness.
//
// Two of the channels are deliberately *correlated* rather than per-event,
// because that is how the production pathologies behave:
//
//   - Join breakage is per dataset: when a dataset's JEDI name and its
//     Rucio name follow different conventions (the "_tid" block suffix),
//     every transfer event of that dataset fails the join — under every
//     matching method. This is the dominant reason the paper links only
//     ~2 % of task-carrying transfers.
//   - UNKNOWN-endpoint loss is per pilot batch: all files fetched by one
//     pilot session lose their endpoint label together (Table 3 shows all
//     three transfers of the set with destination UNKNOWN). This is what
//     makes RM2 recover whole jobs rather than stray events.
//
// Entry points: New with a dedicated RNG split, then Transfer per event
// (false = drop). Determinism: per-event draws come from the split RNG and
// the correlated channels hash a salt plus a stable key, so one seed
// always corrupts the same events the same way. Config's zero values mean
// "calibrated default"; pass a negative probability to force a channel to
// exactly zero.
package corruption
