// Package experiments orchestrates the paper's full evaluation: it runs
// the simulated grid, applies the matching framework, and regenerates
// every table and figure (DESIGN.md E1–E14). The command-line tools and
// the benchmark harness both build on this package so that numbers
// printed by cmd/repro and measured by `go test -bench` come from the
// same code.
//
// Entry points: Run / RunWorkers build a Suite (one simulation plus the
// three matching passes); the Suite's Fig2…Fig12, Table1, and
// SummaryTable methods regenerate individual artifacts; RenderAll emits
// the complete textual report; ShapeChecks evaluates the paper's
// qualitative claims (delegating to analysis.ShapeChecks); and
// RobustnessSweep runs the multi-scenario E14 corruption ramp through
// internal/sweep. A Suite is deterministic for a given Config and worker
// count never changes results — RunWorkers merely shards the matching
// passes.
package experiments
