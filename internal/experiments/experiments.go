package experiments

import (
	"fmt"
	"runtime"
	"strings"

	"panrucio/internal/analysis"
	"panrucio/internal/anomaly"
	"panrucio/internal/core"
	"panrucio/internal/records"
	"panrucio/internal/report"
	"panrucio/internal/sim"
	"panrucio/internal/simtime"
	"panrucio/internal/stats"
	"panrucio/internal/sweep"
	"panrucio/internal/verify"
)

// Suite bundles one simulation run with the derived matching results.
type Suite struct {
	Result *sim.Result
	Jobs   []*records.JobRecord // user jobs completed in the window
	Cmp    *analysis.MethodComparison

	// Workers is the effective matcher fan-out the suite was built with
	// (1 = serial; a <= 0 request resolves to GOMAXPROCS).
	Workers int
}

// Run executes the scenario and the three matching passes serially.
func Run(cfg sim.Config) *Suite { return RunWorkers(cfg, 1) }

// RunWorkers executes the scenario and shards each matching pass across
// workers (<= 0 selects GOMAXPROCS). Results are identical to Run's; this
// is the entry point behind the -workers flag of cmd/repro and
// cmd/analyze.
func RunWorkers(cfg sim.Config, workers int) *Suite {
	return Build(sim.Run(cfg), workers)
}

// Build derives the suite from an already-executed run: the windowed user
// jobs plus the three matching passes, sharded across workers (<= 0
// selects GOMAXPROCS). It never runs a simulation, so the serving layer
// can rebuild analyses over a store it received from elsewhere — a frozen
// Run result or a live mid-run store published by sim.RunWithObserver
// (with Result.WindowTo set to the checkpoint time). Deterministic for a
// given store content and window, for any workers value.
func Build(res *sim.Result, workers int) *Suite {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	jobs := res.Store.Jobs(res.WindowFrom, res.WindowTo, records.LabelUser)
	m := core.NewMatcher(res.Store)
	return &Suite{
		Result:  res,
		Jobs:    jobs,
		Cmp:     analysis.CompareMethodsParallel(m, jobs, workers),
		Workers: workers,
	}
}

// Fig2 regenerates the cumulative-volume curve (E1).
func (s *Suite) Fig2() []analysis.GrowthPoint {
	return analysis.VolumeGrowth(analysis.GrowthConfig{})
}

// Fig3 regenerates the transfer heatmap over the study window (E2).
func (s *Suite) Fig3() *analysis.Heatmap {
	return analysis.BuildHeatmap(s.Result.Store, s.Result.Grid, s.Result.WindowFrom, s.Result.WindowTo)
}

// Table1 regenerates the exact-match activity breakdown (E3).
func (s *Suite) Table1() []analysis.ActivityRow {
	return analysis.ActivityBreakdown(s.Result.Store, s.Cmp.Exact)
}

// Fig5 regenerates the top-40 local-transfer jobs (E6).
func (s *Suite) Fig5() []analysis.TopJob {
	return analysis.TopJobs(s.Cmp.Exact, core.AllLocal, 0.10, 40)
}

// Fig6 regenerates the top-40 remote-transfer jobs (E7).
func (s *Suite) Fig6() []analysis.TopJob {
	return analysis.TopJobs(s.Cmp.Exact, core.AllRemote, 0.10, 40)
}

// matchedEvents collects the unique transfer events of a matching result.
func matchedEvents(res *core.Result) []*records.TransferEvent {
	seen := map[int64]bool{}
	var out []*records.TransferEvent
	for _, m := range res.Matches {
		for _, ev := range m.Transfers {
			if !seen[ev.EventID] {
				seen[ev.EventID] = true
				out = append(out, ev)
			}
		}
	}
	return out
}

// bandwidthFigure selects the top-k local or remote routes among the
// RM2-matched transfers (the paper plots matched-transfer bandwidth) and
// bins their flow.
func (s *Suite) bandwidthFigure(local bool, k int) []*report.Series {
	events := matchedEvents(s.Cmp.RM2)
	routes := analysis.TopRoutes(events, local, k)
	var out []*report.Series
	for _, r := range routes {
		ser := analysis.BandwidthSeries(analysis.RouteEvents(events, r),
			s.Result.WindowFrom, s.Result.WindowTo, 5*simtime.Minute)
		ser.Name = r.String()
		if r.Local() {
			ser.Name = "local @ " + r.Src
		}
		out = append(out, ser)
	}
	return out
}

// Fig7 regenerates the remote-connection bandwidth panels (E8).
func (s *Suite) Fig7() []*report.Series { return s.bandwidthFigure(false, 6) }

// Fig8 regenerates the local-site bandwidth panels (E9).
func (s *Suite) Fig8() []*report.Series { return s.bandwidthFigure(true, 6) }

// Fig9 regenerates the threshold curves (E10).
func (s *Suite) Fig9() *analysis.ThresholdCurves {
	return analysis.BuildThresholdCurves(s.Cmp.Exact, nil)
}

// Fig10 finds the long-transfer success case (E11).
func (s *Suite) Fig10() *analysis.CaseStudy {
	return analysis.FindLongTransferCase(s.Cmp.Exact, s.Result.Grid, 0.10)
}

// Fig11 finds the failed spanning-transfer case (E12).
func (s *Suite) Fig11() *analysis.CaseStudy {
	return analysis.FindFailedSpanningCase(s.Cmp.Exact, s.Result.Grid)
}

// Fig12 finds the RM2 redundant-transfer case with site inference (E13).
func (s *Suite) Fig12() *analysis.CaseStudy {
	return analysis.FindRM2RedundantCase(s.Cmp.RM2, s.Result.Grid)
}

// RobustnessSweep regenerates experiment E14: the canned robustness sweep
// ramping the job-correlated corruption channels from 0% to 50% over the
// quick scenario and measuring how the Exact/RM1/RM2 match rates respond.
// Exact matching collapses as site labels and task ids degrade while RM2
// holds — the paper's robustness ordering as a measured curve rather than
// a single point. workers bounds the concurrent scenarios (<= 0 selects
// GOMAXPROCS); the report is identical for any value.
func RobustnessSweep(seed int64, workers int) *sweep.Report {
	return sweep.Run(
		sweep.CorruptionRamp(sim.QuickConfig(seed), sweep.DefaultRampRates()),
		sweep.Options{Workers: workers})
}

// DetectionSweep regenerates experiment E15: the canned verify grid — one
// scenario per corruption channel pairing that channel's pre-ingest
// corruption (the E14 tolerance axis, isolated per channel) with the same
// channel's post-seal at-rest tamper, detected through the metastore's
// segment commitments, plus a clean control for false positives. The
// report's detection table must show 100% for every channel: commitments
// cover every committed field, so any at-rest change misses its hash.
// workers bounds the concurrent scenarios (<= 0 selects GOMAXPROCS); the
// report is identical for any value.
func DetectionSweep(seed int64, workers int) *sweep.Report {
	return sweep.Run(
		sweep.VerifyGrid(sim.QuickConfig(seed), sweep.DefaultVerifyProb),
		sweep.Options{Workers: workers})
}

// OnlineVerify runs the E15 online half: the detect-and-repair loop over
// the quick scenario with mid-run tamper planted each checkpoint — sealed
// segments audited incrementally, the trailing read window re-audited,
// fresh jobs anomaly-scanned via live RM2 matching, and a repair pass
// closing the run.
func OnlineVerify(seed int64) *verify.OnlineReport {
	return verify.RunOnline(sim.QuickConfig(seed), verify.OnlineOptions{
		Tamper: &verify.TamperConfig{Prob: sweep.DefaultVerifyProb, Seed: seed},
	})
}

// Anomalies runs the automated anomaly scan (the paper's future-work
// detection layer) over the RM2 matches.
func (s *Suite) Anomalies() *anomaly.Report {
	return anomaly.NewScanner(s.Result.Grid).Scan(s.Cmp.RM2)
}

// SummaryTable reports the Section 5.1 headline numbers for this run.
func (s *Suite) SummaryTable() *report.Table {
	t := &report.Table{
		Title:   "Section 5.1 — matching summary",
		Columns: []string{"metric", "measured", "paper"},
	}
	st := s.Result.Store
	t.AddRow("user jobs collected", fmt.Sprintf("%d", len(s.Jobs)), "966,453")
	t.AddRow("transfer events collected", fmt.Sprintf("%d", st.TransferCount()), "6,784,936")
	t.AddRow("transfers with jeditaskid", fmt.Sprintf("%d", st.TransfersWithTaskID()), "1,585,229")
	t.AddRow("exact matched transfers", fmt.Sprintf("%d (%.2f%%)",
		s.Cmp.Exact.MatchedTransfers, s.Cmp.Exact.MatchedTransferPct()), "30,380 (1.92%)")
	t.AddRow("exact matched jobs", fmt.Sprintf("%d (%.2f%%)",
		s.Cmp.Exact.MatchedJobs, s.Cmp.Exact.MatchedJobPct()), "7,907 (0.82%)")

	var fracs []float64
	for _, m := range s.Cmp.Exact.Matches {
		fracs = append(fracs, 100*m.QueueTransferFraction())
	}
	t.AddRow("avg transfer time in queue", fmt.Sprintf("%.2f%%", stats.Mean(fracs)), "8.43%")
	t.AddRow("geomean transfer time in queue", fmt.Sprintf("%.3f%%", stats.GeoMean(fracs)), "1.942%")
	return t
}

// RenderAll produces the complete textual report: every table and figure
// with its paper counterpart noted.
func (s *Suite) RenderAll() string {
	var b strings.Builder
	w := func(x string) { b.WriteString(x); b.WriteString("\n") }

	w(s.SummaryTable().Render())
	w(analysis.GrowthReport(s.Fig2()).Render())
	w(s.Fig3().Report(6).Render())
	w(analysis.ActivityTable(s.Table1()).Render())
	w(s.Cmp.TransferCountTable().Render())
	w(s.Cmp.JobCountTable().Render())
	w(analysis.TopJobsTable("Fig. 5 — top local-transfer jobs (>=10% of queuing time)", s.Fig5()).Render())
	w(analysis.TopJobsTable("Fig. 6 — top remote-transfer jobs (>=10% of queuing time)", s.Fig6()).Render())
	w(report.RenderSeries("Fig. 7 — bandwidth at remote connections (matched transfers)", 64, s.Fig7()))
	w(report.RenderSeries("Fig. 8 — bandwidth at local sites (matched transfers)", 64, s.Fig8()))
	w(s.Fig9().Table().Render())
	for _, cs := range []*analysis.CaseStudy{s.Fig10(), s.Fig11(), s.Fig12()} {
		if cs == nil {
			w("(case study not present for this seed)")
			continue
		}
		w(cs.TimelineTable().Render())
		if cs.Kind == "rm2-redundant" {
			w(cs.TransferSummaryTable().Render())
		}
	}
	w(s.Anomalies().Table(5).Render())
	return b.String()
}

// ShapeChecks verifies the paper's qualitative claims on this run and
// returns human-readable pass/fail lines (used by cmd/repro and the
// benchmark harness). All should pass for the default seeds. The check
// logic lives in analysis.ShapeChecks so the sweep engine can evaluate the
// same claims per scenario without importing this package.
func (s *Suite) ShapeChecks() []string {
	checks := analysis.ShapeChecks(s.Result.Store, s.Result.Grid,
		s.Result.WindowFrom, s.Result.WindowTo, s.Cmp)
	out := make([]string, len(checks))
	for i, c := range checks {
		out[i] = c.String()
	}
	return out
}
