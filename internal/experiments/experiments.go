// Package experiments orchestrates the paper's full evaluation: it runs the
// simulated grid, applies the matching framework, and regenerates every
// table and figure (DESIGN.md E1-E13). The command-line tools and the
// benchmark harness both build on this package so that numbers printed by
// `cmd/repro` and measured by `go test -bench` come from the same code.
package experiments

import (
	"fmt"
	"runtime"
	"strings"

	"panrucio/internal/analysis"
	"panrucio/internal/anomaly"
	"panrucio/internal/core"
	"panrucio/internal/records"
	"panrucio/internal/report"
	"panrucio/internal/sim"
	"panrucio/internal/simtime"
	"panrucio/internal/stats"
	"panrucio/internal/topology"
)

// Suite bundles one simulation run with the derived matching results.
type Suite struct {
	Result *sim.Result
	Jobs   []*records.JobRecord // user jobs completed in the window
	Cmp    *analysis.MethodComparison

	// Workers is the effective matcher fan-out the suite was built with
	// (1 = serial; a <= 0 request resolves to GOMAXPROCS).
	Workers int
}

// Run executes the scenario and the three matching passes serially.
func Run(cfg sim.Config) *Suite { return RunWorkers(cfg, 1) }

// RunWorkers executes the scenario and shards each matching pass across
// workers (<= 0 selects GOMAXPROCS). Results are identical to Run's; this
// is the entry point behind the -workers flag of cmd/repro and
// cmd/analyze.
func RunWorkers(cfg sim.Config, workers int) *Suite {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	res := sim.Run(cfg)
	jobs := res.Store.Jobs(res.WindowFrom, res.WindowTo, records.LabelUser)
	m := core.NewMatcher(res.Store)
	return &Suite{
		Result:  res,
		Jobs:    jobs,
		Cmp:     analysis.CompareMethodsParallel(m, jobs, workers),
		Workers: workers,
	}
}

// Fig2 regenerates the cumulative-volume curve (E1).
func (s *Suite) Fig2() []analysis.GrowthPoint {
	return analysis.VolumeGrowth(analysis.GrowthConfig{})
}

// Fig3 regenerates the transfer heatmap over the study window (E2).
func (s *Suite) Fig3() *analysis.Heatmap {
	return analysis.BuildHeatmap(s.Result.Store, s.Result.Grid, s.Result.WindowFrom, s.Result.WindowTo)
}

// Table1 regenerates the exact-match activity breakdown (E3).
func (s *Suite) Table1() []analysis.ActivityRow {
	return analysis.ActivityBreakdown(s.Result.Store, s.Cmp.Exact)
}

// Fig5 regenerates the top-40 local-transfer jobs (E6).
func (s *Suite) Fig5() []analysis.TopJob {
	return analysis.TopJobs(s.Cmp.Exact, core.AllLocal, 0.10, 40)
}

// Fig6 regenerates the top-40 remote-transfer jobs (E7).
func (s *Suite) Fig6() []analysis.TopJob {
	return analysis.TopJobs(s.Cmp.Exact, core.AllRemote, 0.10, 40)
}

// matchedEvents collects the unique transfer events of a matching result.
func matchedEvents(res *core.Result) []*records.TransferEvent {
	seen := map[int64]bool{}
	var out []*records.TransferEvent
	for _, m := range res.Matches {
		for _, ev := range m.Transfers {
			if !seen[ev.EventID] {
				seen[ev.EventID] = true
				out = append(out, ev)
			}
		}
	}
	return out
}

// bandwidthFigure selects the top-k local or remote routes among the
// RM2-matched transfers (the paper plots matched-transfer bandwidth) and
// bins their flow.
func (s *Suite) bandwidthFigure(local bool, k int) []*report.Series {
	events := matchedEvents(s.Cmp.RM2)
	routes := analysis.TopRoutes(events, local, k)
	var out []*report.Series
	for _, r := range routes {
		ser := analysis.BandwidthSeries(analysis.RouteEvents(events, r),
			s.Result.WindowFrom, s.Result.WindowTo, 5*simtime.Minute)
		ser.Name = r.String()
		if r.Local() {
			ser.Name = "local @ " + r.Src
		}
		out = append(out, ser)
	}
	return out
}

// Fig7 regenerates the remote-connection bandwidth panels (E8).
func (s *Suite) Fig7() []*report.Series { return s.bandwidthFigure(false, 6) }

// Fig8 regenerates the local-site bandwidth panels (E9).
func (s *Suite) Fig8() []*report.Series { return s.bandwidthFigure(true, 6) }

// Fig9 regenerates the threshold curves (E10).
func (s *Suite) Fig9() *analysis.ThresholdCurves {
	return analysis.BuildThresholdCurves(s.Cmp.Exact, nil)
}

// Fig10 finds the long-transfer success case (E11).
func (s *Suite) Fig10() *analysis.CaseStudy {
	return analysis.FindLongTransferCase(s.Cmp.Exact, s.Result.Grid, 0.10)
}

// Fig11 finds the failed spanning-transfer case (E12).
func (s *Suite) Fig11() *analysis.CaseStudy {
	return analysis.FindFailedSpanningCase(s.Cmp.Exact, s.Result.Grid)
}

// Fig12 finds the RM2 redundant-transfer case with site inference (E13).
func (s *Suite) Fig12() *analysis.CaseStudy {
	return analysis.FindRM2RedundantCase(s.Cmp.RM2, s.Result.Grid)
}

// Anomalies runs the automated anomaly scan (the paper's future-work
// detection layer) over the RM2 matches.
func (s *Suite) Anomalies() *anomaly.Report {
	return anomaly.NewScanner(s.Result.Grid).Scan(s.Cmp.RM2)
}

// SummaryTable reports the Section 5.1 headline numbers for this run.
func (s *Suite) SummaryTable() *report.Table {
	t := &report.Table{
		Title:   "Section 5.1 — matching summary",
		Columns: []string{"metric", "measured", "paper"},
	}
	st := s.Result.Store
	t.AddRow("user jobs collected", fmt.Sprintf("%d", len(s.Jobs)), "966,453")
	t.AddRow("transfer events collected", fmt.Sprintf("%d", st.TransferCount()), "6,784,936")
	t.AddRow("transfers with jeditaskid", fmt.Sprintf("%d", st.TransfersWithTaskID()), "1,585,229")
	t.AddRow("exact matched transfers", fmt.Sprintf("%d (%.2f%%)",
		s.Cmp.Exact.MatchedTransfers, s.Cmp.Exact.MatchedTransferPct()), "30,380 (1.92%)")
	t.AddRow("exact matched jobs", fmt.Sprintf("%d (%.2f%%)",
		s.Cmp.Exact.MatchedJobs, s.Cmp.Exact.MatchedJobPct()), "7,907 (0.82%)")

	var fracs []float64
	for _, m := range s.Cmp.Exact.Matches {
		fracs = append(fracs, 100*m.QueueTransferFraction())
	}
	t.AddRow("avg transfer time in queue", fmt.Sprintf("%.2f%%", stats.Mean(fracs)), "8.43%")
	t.AddRow("geomean transfer time in queue", fmt.Sprintf("%.3f%%", stats.GeoMean(fracs)), "1.942%")
	return t
}

// RenderAll produces the complete textual report: every table and figure
// with its paper counterpart noted.
func (s *Suite) RenderAll() string {
	var b strings.Builder
	w := func(x string) { b.WriteString(x); b.WriteString("\n") }

	w(s.SummaryTable().Render())
	w(analysis.GrowthReport(s.Fig2()).Render())
	w(s.Fig3().Report(6).Render())
	w(analysis.ActivityTable(s.Table1()).Render())
	w(s.Cmp.TransferCountTable().Render())
	w(s.Cmp.JobCountTable().Render())
	w(analysis.TopJobsTable("Fig. 5 — top local-transfer jobs (>=10% of queuing time)", s.Fig5()).Render())
	w(analysis.TopJobsTable("Fig. 6 — top remote-transfer jobs (>=10% of queuing time)", s.Fig6()).Render())
	w(report.RenderSeries("Fig. 7 — bandwidth at remote connections (matched transfers)", 64, s.Fig7()))
	w(report.RenderSeries("Fig. 8 — bandwidth at local sites (matched transfers)", 64, s.Fig8()))
	w(s.Fig9().Table().Render())
	for _, cs := range []*analysis.CaseStudy{s.Fig10(), s.Fig11(), s.Fig12()} {
		if cs == nil {
			w("(case study not present for this seed)")
			continue
		}
		w(cs.TimelineTable().Render())
		if cs.Kind == "rm2-redundant" {
			w(cs.TransferSummaryTable().Render())
		}
	}
	w(s.Anomalies().Table(5).Render())
	return b.String()
}

// ShapeChecks verifies the paper's qualitative claims on this run and
// returns human-readable pass/fail lines (used by cmd/repro and the
// benchmark harness). All should pass for the default seeds.
func (s *Suite) ShapeChecks() []string {
	var out []string
	check := func(name string, ok bool, detail string) {
		status := "PASS"
		if !ok {
			status = "FAIL"
		}
		out = append(out, fmt.Sprintf("[%s] %s — %s", status, name, detail))
	}
	e, r1, r2 := s.Cmp.Exact, s.Cmp.RM1, s.Cmp.RM2

	check("monotone transfers", e.MatchedTransfers <= r1.MatchedTransfers && r1.MatchedTransfers <= r2.MatchedTransfers,
		fmt.Sprintf("%d <= %d <= %d", e.MatchedTransfers, r1.MatchedTransfers, r2.MatchedTransfers))
	check("monotone jobs", e.MatchedJobs <= r1.MatchedJobs && r1.MatchedJobs <= r2.MatchedJobs,
		fmt.Sprintf("%d <= %d <= %d", e.MatchedJobs, r1.MatchedJobs, r2.MatchedJobs))
	localFrac := 0.0
	if e.MatchedTransfers > 0 {
		localFrac = float64(e.LocalTransfers) / float64(e.MatchedTransfers)
	}
	check("exact mostly local", localFrac >= 0.8,
		fmt.Sprintf("local fraction %.2f (paper 0.94)", localFrac))
	check("RM2 unlocks remote", r2.RemoteTransfers > 3*r1.RemoteTransfers,
		fmt.Sprintf("remote %d -> %d", r1.RemoteTransfers, r2.RemoteTransfers))

	rows := s.Table1()
	var up, prodUp, prodDown analysis.ActivityRow
	for _, row := range rows {
		switch row.Activity {
		case records.AnalysisUpload:
			up = row
		case records.ProductionUp:
			prodUp = row
		case records.ProductionDown:
			prodDown = row
		}
	}
	check("analysis upload high match", up.Pct() >= 70,
		fmt.Sprintf("%.1f%% (paper 95.4%%)", up.Pct()))
	check("production rows zero", prodUp.Matched == 0 && prodDown.Matched == 0,
		fmt.Sprintf("%d/%d matched", prodUp.Matched, prodDown.Matched))

	h := s.Fig3()
	check("heatmap local dominance", h.LocalFraction() >= 0.5,
		fmt.Sprintf("local %.1f%% of %s (paper 77%% of 957.98 PB)",
			100*h.LocalFraction(), stats.FormatBytes(h.TotalBytes)))
	check("heatmap imbalance", h.MeanCell > 10*h.GeoMeanCell,
		fmt.Sprintf("mean %s vs geomean %s (paper 77.75 TB vs 1.11 TB)",
			stats.FormatBytes(h.MeanCell), stats.FormatBytes(h.GeoMeanCell)))

	tc := s.Fig9()
	extreme := tc.AboveThreshold(75)
	total := 0
	for c := 0; c < 4; c++ {
		total += tc.Totals[c]
	}
	check("extreme transfer-time jobs rare", total > 0 && extreme*20 < total,
		fmt.Sprintf("%d of %d above 75%% (paper 72 of 7,907)", extreme, total))

	growth := s.Fig2()
	final := growth[len(growth)-1].TotalPB
	check("volume ~1 EB by 2024", final >= 800 && final <= 1300,
		fmt.Sprintf("%.0f PB", final))

	check("fig10 case found", s.Fig10() != nil, "long-transfer success case")
	check("fig11 case found", s.Fig11() != nil, "failed job spanning queue+wall")
	check("fig12 case found", s.Fig12() != nil, "RM2 redundant transfers with inferable site")

	sites := topology.Default(s.Result.Config.Grid)
	check("grid scale", len(sites.Sites()) >= 110, fmt.Sprintf("%d sites (paper ~111 active)", len(sites.Sites())))
	return out
}
