package experiments

import (
	"strings"
	"testing"

	"panrucio/internal/sim"
)

// The quick scenario exercises the full suite end to end.
func TestSuiteOnQuickConfig(t *testing.T) {
	s := Run(sim.QuickConfig(21))
	if len(s.Jobs) == 0 {
		t.Fatal("no jobs")
	}
	if s.Cmp.Exact == nil || s.Cmp.RM1 == nil || s.Cmp.RM2 == nil {
		t.Fatal("comparison incomplete")
	}
	if pts := s.Fig2(); len(pts) == 0 {
		t.Error("Fig2 empty")
	}
	if h := s.Fig3(); h.TotalBytes == 0 {
		t.Error("Fig3 empty")
	}
	if rows := s.Table1(); len(rows) != 5 {
		t.Errorf("Table1 rows = %d", len(rows))
	}
	// Figures 5-9 may legitimately be small on a quick run, but must not
	// panic and must respect their invariants.
	for _, j := range s.Fig5() {
		if j.TransferPct < 10 {
			t.Error("Fig5 admitted a job below the 10% threshold")
		}
	}
	for _, j := range s.Fig6() {
		if j.TransferPct < 10 {
			t.Error("Fig6 admitted a job below the 10% threshold")
		}
	}
	if got := s.Fig7(); len(got) > 6 {
		t.Error("Fig7 more than 6 panels")
	}
	if got := s.Fig8(); len(got) > 6 {
		t.Error("Fig8 more than 6 panels")
	}
	tc := s.Fig9()
	if tc == nil || len(tc.Thresholds) == 0 {
		t.Fatal("Fig9 missing")
	}
	out := s.RenderAll()
	for _, needle := range []string{"Table 1", "Table 2a", "Table 2b", "Fig. 2", "Fig. 3", "Fig. 9"} {
		if !strings.Contains(out, needle) {
			t.Errorf("RenderAll missing %q", needle)
		}
	}
}

// The paper-scale scenario must pass every qualitative shape check.
func TestShapeChecksPaperConfig(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale run skipped in -short mode")
	}
	s := Run(sim.PaperConfig(1))
	for _, line := range s.ShapeChecks() {
		if strings.HasPrefix(line, "[FAIL]") {
			t.Error(line)
		} else {
			t.Log(line)
		}
	}
}

func TestSuiteDeterministicRendering(t *testing.T) {
	a := Run(sim.QuickConfig(23)).RenderAll()
	b := Run(sim.QuickConfig(23)).RenderAll()
	if a != b {
		t.Fatal("RenderAll not deterministic for identical configs")
	}
	if !strings.Contains(a, "Automated anomaly scan") {
		t.Error("anomaly scan missing from the full report")
	}
}

func TestAnomaliesOnQuickRun(t *testing.T) {
	s := Run(sim.QuickConfig(24))
	rep := s.Anomalies()
	if rep.JobsScanned != s.Cmp.RM2.MatchedJobs {
		t.Errorf("scanned %d, want RM2 matched %d", rep.JobsScanned, s.Cmp.RM2.MatchedJobs)
	}
}

// E14: the robustness sweep must be deterministic across worker counts and
// must show exact matching degrading under the corruption ramp while RM2
// holds up better.
func TestRobustnessSweepE14(t *testing.T) {
	serial := RobustnessSweep(5, 1)
	parallel := RobustnessSweep(5, 4)
	if serial.Markdown() != parallel.Markdown() || serial.JSON() != parallel.JSON() {
		t.Fatal("E14 report diverged across worker counts")
	}
	out := serial.Outcomes
	if len(out) != 6 {
		t.Fatalf("E14 ran %d scenarios, want 6", len(out))
	}
	clean, worst := out[0], out[len(out)-1]
	if worst.Exact.MatchedJobs >= clean.Exact.MatchedJobs {
		t.Errorf("exact matching did not degrade along the ramp: %d -> %d",
			clean.Exact.MatchedJobs, worst.Exact.MatchedJobs)
	}
	if worst.RM2.MatchedJobs <= worst.Exact.MatchedJobs {
		t.Errorf("RM2 should out-match exact at 50%% corruption: %d vs %d",
			worst.RM2.MatchedJobs, worst.Exact.MatchedJobs)
	}
	if !strings.Contains(serial.Markdown(), "corr=50%") {
		t.Error("E14 markdown lost the ramp labels")
	}
}
