package experiments

import (
	"testing"

	"panrucio/internal/sim"
)

// TestRenderAllShardInvariant pins the segmented metastore's end-to-end
// contract at the experiment layer: the full rendered report (E1-E14
// tables, figures, anomaly scan) is byte-identical for any shard count
// crossed with any segment size — including matcher parallelism. Segment
// size 4096 forces many mid-run seals at quick-run volume; 0 (the
// default threshold) keeps most shards on the pure-tail path.
func TestRenderAllShardInvariant(t *testing.T) {
	cfg := sim.QuickConfig(23)
	want := Run(cfg).RenderAll() // default shards and segment size, serial matching

	for _, n := range []int{1, 4, 8} {
		for _, segRows := range []int{4096, 0} {
			c := cfg
			c.Shards = n
			c.SegmentRows = segRows
			if got := RunWorkers(c, 3).RenderAll(); got != want {
				t.Fatalf("RenderAll diverged at shards=%d segRows=%d", n, segRows)
			}
		}
	}
}
