package experiments

import (
	"testing"

	"panrucio/internal/sim"
)

// TestRenderAllShardInvariant pins the sharded metastore's end-to-end
// contract at the experiment layer: the full rendered report (E1-E14
// tables, figures, anomaly scan) is byte-identical for any shard count —
// including shard counts crossed with matcher parallelism.
func TestRenderAllShardInvariant(t *testing.T) {
	cfg := sim.QuickConfig(23)
	want := Run(cfg).RenderAll() // default shard count, serial matching

	for _, n := range []int{1, 4, 8} {
		c := cfg
		c.Shards = n
		if got := RunWorkers(c, 3).RenderAll(); got != want {
			t.Fatalf("RenderAll diverged at shards=%d", n)
		}
	}
}
