package metastore

// arenaChunkShift sizes arena chunks at 1<<arenaChunkShift records. Chunks
// are never reallocated once handed out, so record pointers returned by put
// stay valid for the store's lifetime — the property the whole query API
// (which traffics in *records.X) depends on.
const arenaChunkShift = 10

const arenaChunkSize = 1 << arenaChunkShift

// arena is a chunked slab allocator for record structs: records live
// contiguously in fixed-size chunks instead of as individual heap objects,
// which removes the per-record allocation header, keeps one shard's records
// adjacent in memory for the matcher's scans, and lets Reset reuse the
// chunks via a high-water mark instead of freeing and reallocating.
type arena[T any] struct {
	chunks [][]T
	n      int // high-water mark: rows in use
}

// put copies v into the next slot and returns its stable address.
func (a *arena[T]) put(v T) *T {
	ci, off := a.n>>arenaChunkShift, a.n&(arenaChunkSize-1)
	if off == 0 && ci == len(a.chunks) {
		a.chunks = append(a.chunks, make([]T, arenaChunkSize))
	}
	p := &a.chunks[ci][off]
	*p = v
	a.n++
	return p
}

// at returns the address of row i (0 <= i < len()).
func (a *arena[T]) at(i int) *T {
	return &a.chunks[i>>arenaChunkShift][i&(arenaChunkSize-1)]
}

// len reports the rows in use.
func (a *arena[T]) len() int { return a.n }

// reset rewinds the high-water mark, zeroing every used slot so stale
// string and pointer fields cannot pin the previous scenario's memory. The
// chunks themselves are kept for reuse.
func (a *arena[T]) reset() {
	full, rem := a.n>>arenaChunkShift, a.n&(arenaChunkSize-1)
	for i := 0; i < full; i++ {
		clear(a.chunks[i])
	}
	if rem > 0 {
		clear(a.chunks[full][:rem])
	}
	a.n = 0
}
