package metastore_test

import (
	"fmt"
	"runtime"
	"testing"

	"panrucio/internal/metastore"
	"panrucio/internal/records"
	"panrucio/internal/simtime"
)

// ingestWorkload streams a synthetic but paper-shaped record mix into the
// store: tasks of several jobs, each with a handful of file rows whose
// transfers share scope/dataset/proddblock strings within the task — the
// string-sharing profile the intern table exploits.
func ingestWorkload(s *metastore.Store, tasks, jobsPerTask, filesPerJob int) int {
	events := 0
	eventID := int64(1)
	for t := 1; t <= tasks; t++ {
		scope := "data25"
		ds := fmt.Sprintf("ds%d", t)
		for jn := 0; jn < jobsPerTask; jn++ {
			panda := int64(t*10000 + jn)
			for fn := 0; fn < filesPerJob; fn++ {
				lfn := fmt.Sprintf("t%d.j%d.f%d", t, jn, fn)
				s.PutFile(&records.FileRecord{
					PandaID: panda, JediTaskID: int64(t),
					LFN: lfn, Scope: scope, Dataset: ds, ProdDBlock: ds,
					FileSize: int64(1e9 + fn), Kind: records.FileInput,
				})
				s.PutTransfer(&records.TransferEvent{
					EventID: eventID, LFN: lfn, Scope: scope, Dataset: ds, ProdDBlock: ds,
					FileSize: int64(1e9 + fn), SourceRSE: "CERN-PROD_DATADISK",
					DestinationRSE: "BNL-ATLAS_DATADISK",
					SourceSite:     "CERN-PROD", DestinationSite: "BNL-ATLAS",
					Activity: records.AnalysisDownload, IsDownload: true,
					JediTaskID: int64(t),
					StartedAt:  simtime.VTime(1000 + fn*10), EndedAt: simtime.VTime(1100 + fn*10),
				})
				eventID++
				events++
			}
			s.PutJob(&records.JobRecord{
				PandaID: panda, JediTaskID: int64(t),
				ComputingSite: "BNL-ATLAS", Label: records.LabelUser,
				CreationTime: 500, StartTime: 2000, EndTime: simtime.VTime(9000 + jn),
				Status: records.JobFinished, TaskStatus: records.TaskDone,
			})
		}
	}
	s.Freeze()
	return events
}

// BenchmarkStoreIngest measures ingest + freeze of a 200-task workload
// (16,000 events) and reports the store's retained heap per event
// (live_B/event) — the direct measure of the record-storage memory ceiling
// — alongside allocation churn.
func BenchmarkStoreIngest(b *testing.B) {
	b.ReportAllocs()
	var events, liveB float64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		runtime.GC()
		var m0 runtime.MemStats
		runtime.ReadMemStats(&m0)
		b.StartTimer()
		s := metastore.New()
		n := ingestWorkload(s, 200, 10, 8)
		b.StopTimer()
		runtime.GC()
		var m1 runtime.MemStats
		runtime.ReadMemStats(&m1)
		events += float64(n)
		liveB += float64(m1.HeapAlloc) - float64(m0.HeapAlloc)
		runtime.KeepAlive(s)
		b.StartTimer()
	}
	b.StopTimer()
	b.ReportMetric(events/b.Elapsed().Seconds(), "events/sec")
	b.ReportMetric(liveB/events, "live_B/event")
}

// BenchmarkStoreIngestIncremental is BenchmarkStoreIngest on the
// incremental path: small segments force many mid-run seals (with their
// background sorts), and a windowed query after every task keeps the live
// sealed+tail merge hot instead of the single end-of-run Freeze. The
// events/sec and live_B/event deltas against BenchmarkStoreIngest are the
// price of mid-run queryability (recorded in bench/BENCH_incremental.json).
func BenchmarkStoreIngestIncremental(b *testing.B) {
	b.ReportAllocs()
	var events, liveB float64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		runtime.GC()
		var m0 runtime.MemStats
		runtime.ReadMemStats(&m0)
		b.StartTimer()
		s := metastore.NewShardedSegmented(0, 2048)
		n := 0
		eventID := int64(1)
		for t := 1; t <= 200; t++ {
			scope := "data25"
			ds := fmt.Sprintf("ds%d", t)
			for jn := 0; jn < 10; jn++ {
				panda := int64(t*10000 + jn)
				for fn := 0; fn < 8; fn++ {
					lfn := fmt.Sprintf("t%d.j%d.f%d", t, jn, fn)
					s.PutFile(&records.FileRecord{
						PandaID: panda, JediTaskID: int64(t),
						LFN: lfn, Scope: scope, Dataset: ds, ProdDBlock: ds,
						FileSize: int64(1e9 + fn), Kind: records.FileInput,
					})
					s.PutTransfer(&records.TransferEvent{
						EventID: eventID, LFN: lfn, Scope: scope, Dataset: ds, ProdDBlock: ds,
						FileSize: int64(1e9 + fn), SourceRSE: "CERN-PROD_DATADISK",
						DestinationRSE: "BNL-ATLAS_DATADISK",
						SourceSite:     "CERN-PROD", DestinationSite: "BNL-ATLAS",
						Activity: records.AnalysisDownload, IsDownload: true,
						JediTaskID: int64(t),
						StartedAt:  simtime.VTime(1000 + fn*10), EndedAt: simtime.VTime(1100 + fn*10),
					})
					eventID++
					n++
				}
				s.PutJob(&records.JobRecord{
					PandaID: panda, JediTaskID: int64(t),
					ComputingSite: "BNL-ATLAS", Label: records.LabelUser,
					CreationTime: 500, StartTime: 2000, EndTime: simtime.VTime(9000 + jn),
					Status: records.JobFinished, TaskStatus: records.TaskDone,
				})
			}
			// The mid-run query that batch ingest never pays for.
			if len(s.Transfers(1000, 1100)) == 0 {
				b.Fatal("live window came back empty")
			}
		}
		b.StopTimer()
		runtime.GC()
		var m1 runtime.MemStats
		runtime.ReadMemStats(&m1)
		events += float64(n)
		liveB += float64(m1.HeapAlloc) - float64(m0.HeapAlloc)
		runtime.KeepAlive(s)
		b.StartTimer()
	}
	b.StopTimer()
	b.ReportMetric(events/b.Elapsed().Seconds(), "events/sec")
	b.ReportMetric(liveB/events, "live_B/event")
}

// BenchmarkAuditSealed measures the commitment-audit scan: re-hash every
// sealed row of a frozen 16,000-event store and check it against the
// seal-time commitments. rows/sec is the verification throughput the
// online verify loop and the /api/verify endpoint pay per audit
// (recorded in bench/BENCH_verify.json).
func BenchmarkAuditSealed(b *testing.B) {
	b.ReportAllocs()
	s := metastore.NewShardedSegmented(0, 2048)
	ingestWorkload(s, 200, 10, 8)
	rep := s.AuditSealed()
	if !rep.Clean() || rep.Rows == 0 {
		b.Fatalf("audit setup broken: %+v", rep)
	}
	b.ResetTimer()
	rows := 0
	for i := 0; i < b.N; i++ {
		rep := s.AuditSealed()
		if !rep.Clean() {
			b.Fatal("clean store audited dirty")
		}
		rows += rep.Rows
	}
	b.StopTimer()
	b.ReportMetric(float64(rows)/b.Elapsed().Seconds(), "rows/sec")
}
