package metastore

import (
	"fmt"
	"math"
	"sort"
	"time"

	"panrucio/internal/records"
	"panrucio/internal/simtime"
)

// Integrity commitments over sealed segments (ROADMAP item 5, after the
// VDS scheme of SNIPPETS.md Snippet 1: owners commit to batches, consumers
// verify queries against tamper and rollback).
//
// Every sealed segment is a committed batch: when the background sorter
// finishes a segment's (time, seq) sort it also hashes every row — a
// 64-bit FNV-1a over the row's full canonical serialization plus its
// global ingestion sequence — and stores the per-row hash array, the chain
// head over the sorted order, the order-independent XOR aggregate, and the
// committed row count (segment.go, commitRows). Because rows and their
// global sequences are identical for any shard count and segment size, the
// XOR aggregate plus counts (StoreCommitment) is layout-independent:
// equal streams commit equally no matter how the store is partitioned.
//
// Audits re-hash rows and compare against the committed hashes: a mutated
// row surfaces as a row-tamper violation at its exact position, a
// truncated (rolled-back) segment as a committed-count excess. Compaction
// carries commitments instead of recomputing them (segment.go, compact),
// so a violation planted before a Freeze is still detected after it. The
// windowed audits bound the check to the rows a ranged Jobs/Transfers
// read actually returned — the cheap per-query proof of the VDS design.

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// rowDigest is an inline FNV-1a accumulator: no allocation, no interface
// dispatch, so committing a segment is a single pass over its bytes.
type rowDigest uint64

func (d *rowDigest) byte(b byte) { *d = (*d ^ rowDigest(b)) * fnvPrime64 }

func (d *rowDigest) u64(v uint64) {
	for i := 0; i < 64; i += 8 {
		d.byte(byte(v >> i))
	}
}

func (d *rowDigest) i64(v int64) { d.u64(uint64(v)) }

// str hashes the string length-prefixed, so adjacent fields cannot alias
// ("ab"+"c" vs "a"+"bc").
func (d *rowDigest) str(s string) {
	d.u64(uint64(len(s)))
	for i := 0; i < len(s); i++ {
		d.byte(s[i])
	}
}

func (d *rowDigest) bool(v bool) {
	if v {
		d.byte(1)
	} else {
		d.byte(0)
	}
}

// chainSeed/chainMix fold per-row hashes into a segment's chain head in
// (time, seq) order — the order-sensitive companion of the XOR aggregate.
func chainSeed() uint64 { return fnvOffset64 }

func chainMix(chain, h uint64) uint64 { return (chain ^ h) * fnvPrime64 }

// hashJobRow commits every field of a job row plus its global ingestion
// sequence. Including the sequence makes identical row contents distinct
// in the XOR aggregate (no pairwise cancellation) while staying
// layout-independent — sequences are global, not per-shard.
func hashJobRow(j *records.JobRecord, seq uint32) uint64 {
	d := rowDigest(fnvOffset64)
	d.u64(uint64(seq))
	d.i64(j.PandaID)
	d.i64(j.JediTaskID)
	d.str(j.ComputingSite)
	d.str(string(j.Label))
	d.i64(int64(j.CreationTime))
	d.i64(int64(j.StartTime))
	d.i64(int64(j.EndTime))
	d.str(string(j.Status))
	d.str(string(j.TaskStatus))
	d.i64(j.NInputFileBytes)
	d.i64(j.NOutputFileBytes)
	d.i64(int64(j.ErrorCode))
	d.str(j.ErrorMessage)
	return uint64(d)
}

// hashEventRow commits every field of a transfer event plus its global
// ingestion sequence — including every attribute the corruption channels
// mutate (dataset, sites, file size, jeditaskid), so any channel replayed
// against sealed rows changes the hash.
func hashEventRow(ev *records.TransferEvent, seq uint32) uint64 {
	d := rowDigest(fnvOffset64)
	d.u64(uint64(seq))
	d.i64(ev.EventID)
	d.str(ev.LFN)
	d.str(ev.Scope)
	d.str(ev.Dataset)
	d.str(ev.ProdDBlock)
	d.i64(ev.FileSize)
	d.str(ev.SourceRSE)
	d.str(ev.DestinationRSE)
	d.str(ev.SourceSite)
	d.str(ev.DestinationSite)
	d.str(string(ev.Activity))
	d.bool(ev.IsDownload)
	d.bool(ev.IsUpload)
	d.i64(ev.JediTaskID)
	d.i64(int64(ev.SubmittedAt))
	d.i64(int64(ev.StartedAt))
	d.i64(int64(ev.EndedAt))
	d.u64(math.Float64bits(ev.ThroughputBps))
	return uint64(d)
}

// ArenaKind names one of the two committed arenas of a shard.
type ArenaKind string

// The committed arenas. File rows have no time index and no seal cycle,
// so they carry no segment commitments (they are matcher inputs, not
// query outputs).
const (
	ArenaJobs   ArenaKind = "jobs"
	ArenaEvents ArenaKind = "events"
)

// SegmentRef identifies one sealed segment: shard index, arena, and the
// segment's position in the shard's sealed list. Refs are stable while no
// compaction runs (compaction — part of Freeze — merges all of a shard's
// segments into segment 0).
type SegmentRef struct {
	Shard   int       `json:"shard"`
	Arena   ArenaKind `json:"arena"`
	Segment int       `json:"segment"`
}

func (r SegmentRef) String() string {
	return fmt.Sprintf("%s[%d].seg%d", r.Arena, r.Shard, r.Segment)
}

// ViolationKind classifies a commitment violation.
type ViolationKind string

// Violation kinds: a row whose current content no longer hashes to its
// committed value, and a segment holding fewer rows than were committed
// (the VDS rollback attack).
const (
	RowTamper  ViolationKind = "row-tamper"
	Truncation ViolationKind = "truncation"
)

// Violation is one detected commitment violation, located to the segment
// and (for row tamper) the exact row position in its committed order.
type Violation struct {
	Ref    SegmentRef    `json:"ref"`
	Row    int           `json:"row"` // position for row-tamper; surviving length for truncation
	Kind   ViolationKind `json:"kind"`
	Detail string        `json:"detail"`
}

// AuditReport summarizes one integrity audit.
type AuditReport struct {
	Segments   int         `json:"segments"`
	Rows       int         `json:"rows"`
	Violations []Violation `json:"violations,omitempty"`
}

// Clean reports whether the audit found no violations.
func (r AuditReport) Clean() bool { return len(r.Violations) == 0 }

func (r *AuditReport) absorb(o AuditReport) {
	r.Segments += o.Segments
	r.Rows += o.Rows
	r.Violations = append(r.Violations, o.Violations...)
}

// AuditMark is an incremental-audit watermark: how many sealed segments of
// each shard and arena have been audited so far. The zero value means
// "nothing audited". Marks are positional, so they are invalidated by
// compaction (Freeze); the online verify loop audits between seals, before
// the final freeze, which is exactly when segments only accumulate.
type AuditMark struct {
	jobs   []int
	events []int
}

func (m *AuditMark) at(n int) {
	for len(m.jobs) < n {
		m.jobs = append(m.jobs, 0)
	}
	for len(m.events) < n {
		m.events = append(m.events, 0)
	}
}

// auditRun checks one sealed run against its commitment: length against
// the committed count, then every committed row's hash.
func auditRun[T any](seg *segRun[T], hash func(*T, uint32) uint64, ref SegmentRef, rep *AuditReport) {
	if seg.hashes == nil {
		return // uncommitted (hashing disabled); nothing to check
	}
	rep.Segments++
	if len(seg.rows) < seg.committed {
		rep.Violations = append(rep.Violations, Violation{
			Ref: ref, Row: len(seg.rows), Kind: Truncation,
			Detail: fmt.Sprintf("segment holds %d of %d committed rows", len(seg.rows), seg.committed),
		})
	}
	n := len(seg.rows)
	if n > len(seg.hashes) {
		n = len(seg.hashes)
	}
	for i := 0; i < n; i++ {
		rep.Rows++
		if hash(seg.rows[i], seg.seqs[i]) != seg.hashes[i] {
			rep.Violations = append(rep.Violations, Violation{
				Ref: ref, Row: i, Kind: RowTamper,
				Detail: fmt.Sprintf("row %d fails its committed hash", i),
			})
		}
	}
}

// auditWindowRun is auditRun bounded to the [from, to) time window of one
// sealed run — the per-query check: re-hash only the rows a ranged read
// returns. The length-vs-committed rollback check is unconditional (it is
// O(1)).
func auditWindowRun[T any](seg *segRun[T], hash func(*T, uint32) uint64, at func(*T) simtime.VTime,
	from, to simtime.VTime, ref SegmentRef, rep *AuditReport) {
	if seg.hashes == nil {
		return
	}
	rep.Segments++
	if len(seg.rows) < seg.committed {
		rep.Violations = append(rep.Violations, Violation{
			Ref: ref, Row: len(seg.rows), Kind: Truncation,
			Detail: fmt.Sprintf("segment holds %d of %d committed rows", len(seg.rows), seg.committed),
		})
	}
	n := len(seg.rows)
	if n > len(seg.hashes) {
		n = len(seg.hashes)
	}
	lo := sort.Search(n, func(i int) bool { return at(seg.rows[i]) >= from })
	hi := sort.Search(n, func(i int) bool { return at(seg.rows[i]) >= to })
	for i := lo; i < hi; i++ {
		rep.Rows++
		if hash(seg.rows[i], seg.seqs[i]) != seg.hashes[i] {
			rep.Violations = append(rep.Violations, Violation{
				Ref: ref, Row: i, Kind: RowTamper,
				Detail: fmt.Sprintf("row %d fails its committed hash", i),
			})
		}
	}
}

// AuditSealed re-verifies every sealed segment of both arenas against its
// seal-time commitment: each row is re-hashed and compared, each segment's
// surviving length checked against its committed count. O(sealed rows);
// the tails are uncommitted (they are still mutable) and are not checked.
// Safe to call at any time — it synchronizes with in-flight background
// sorts per index.
func (s *Store) AuditSealed() AuditReport {
	var zero AuditMark
	rep, _ := s.AuditSealedSince(zero)
	return rep
}

// AuditSealedSince audits only the sealed segments appended since the
// given mark (zero value = everything) and returns the advanced mark —
// the incremental step of the online verify loop: each checkpoint pays
// only for the segments its Seal produced. Marks are positional and do
// not survive compaction; use AuditSealed after a Freeze.
func (s *Store) AuditSealedSince(mark AuditMark) (AuditReport, AuditMark) {
	t0 := time.Now()
	mark.at(len(s.shards))
	reports := make([]AuditReport, len(s.shards))
	for i, sh := range s.shards {
		sh.jobSegs.waitCommits()
		sh.evSegs.waitCommits()
		for k := mark.jobs[i]; k < len(sh.jobSegs.sealed); k++ {
			auditRun(sh.jobSegs.sealed[k], hashJobRow,
				SegmentRef{Shard: i, Arena: ArenaJobs, Segment: k}, &reports[i])
		}
		mark.jobs[i] = len(sh.jobSegs.sealed)
		for k := mark.events[i]; k < len(sh.evSegs.sealed); k++ {
			auditRun(sh.evSegs.sealed[k], hashEventRow,
				SegmentRef{Shard: i, Arena: ArenaEvents, Segment: k}, &reports[i])
		}
		mark.events[i] = len(sh.evSegs.sealed)
	}
	var rep AuditReport
	for _, r := range reports {
		rep.absorb(r)
	}
	s.noteAudit(&rep, t0)
	return rep, mark
}

// AuditJobsWindow verifies the sealed rows a Jobs(from, to, …) read draws
// from: every sealed job segment's [from, to) EndTime window is re-hashed
// against its commitment, plus the O(1) rollback check per segment. Cost
// is proportional to the window, not the store.
func (s *Store) AuditJobsWindow(from, to simtime.VTime) AuditReport {
	t0 := time.Now()
	var rep AuditReport
	for i, sh := range s.shards {
		sh.jobSegs.waitCommits()
		for k, seg := range sh.jobSegs.sealed {
			auditWindowRun(seg, hashJobRow, jobEnd, from, to,
				SegmentRef{Shard: i, Arena: ArenaJobs, Segment: k}, &rep)
		}
	}
	s.noteAudit(&rep, t0)
	return rep
}

// AuditTransfersWindow is AuditJobsWindow for the events arena: the sealed
// rows a Transfers(from, to) read draws from, checked by StartedAt window.
func (s *Store) AuditTransfersWindow(from, to simtime.VTime) AuditReport {
	t0 := time.Now()
	var rep AuditReport
	for i, sh := range s.shards {
		sh.evSegs.waitCommits()
		for k, seg := range sh.evSegs.sealed {
			auditWindowRun(seg, hashEventRow, evStart, from, to,
				SegmentRef{Shard: i, Arena: ArenaEvents, Segment: k}, &rep)
		}
	}
	s.noteAudit(&rep, t0)
	return rep
}

func (s *Store) noteAudit(rep *AuditReport, t0 time.Time) {
	mAudits.Inc()
	mAuditRows.Add(int64(rep.Rows))
	mAuditViolations.Add(int64(len(rep.Violations)))
	mAuditSeconds.ObserveSince(t0)
}

// Commitment is the store-level integrity commitment: committed row counts
// and XOR-aggregated row hashes per arena, covering every sealed segment
// plus the current tails (tail rows are hashed on the fly). Because rows
// and global sequences are layout-independent, equal ingest streams yield
// equal Commitments for any shard count × segment size — the equivalence
// the commitment tests pin.
type Commitment struct {
	JobRows   int    `json:"job_rows"`
	EventRows int    `json:"event_rows"`
	JobAgg    uint64 `json:"job_agg"`
	EventAgg  uint64 `json:"event_agg"`
}

// Digest renders the commitment as a fixed-width hex string.
func (c Commitment) Digest() string {
	return fmt.Sprintf("%08x.%016x-%08x.%016x", c.JobRows, c.JobAgg, c.EventRows, c.EventAgg)
}

// StoreCommitment aggregates the sealed commitments and the live tails
// into the store-level commitment. On a frozen store this covers exactly
// the committed contents; mid-run it is the commitment of the current
// ingest prefix.
func (s *Store) StoreCommitment() Commitment {
	var c Commitment
	for _, sh := range s.shards {
		sh.jobSegs.waitCommits()
		sh.evSegs.waitCommits()
		for _, seg := range sh.jobSegs.sealed {
			c.JobAgg ^= seg.agg
			c.JobRows += seg.committed
		}
		for _, seg := range sh.evSegs.sealed {
			c.EventAgg ^= seg.agg
			c.EventRows += seg.committed
		}
		for i := sh.jobSegs.start; i < sh.jobs.len(); i++ {
			c.JobAgg ^= hashJobRow(sh.jobs.at(i), sh.jobSeq[i])
			c.JobRows++
		}
		for i := sh.evSegs.start; i < sh.events.len(); i++ {
			c.EventAgg ^= hashEventRow(sh.events.at(i), sh.evSeq[i])
			c.EventRows++
		}
	}
	return c
}

// SealedEventSegments iterates the sealed event segments in (shard,
// segment) order, handing each segment's rows to fn. The rows are arena
// pointers: mutating them through the pointers models at-rest tamper of
// committed data — the sanctioned fault-injection seam of internal/verify.
// Synchronizes with in-flight background sorts first.
func (s *Store) SealedEventSegments(fn func(ref SegmentRef, rows []*records.TransferEvent)) {
	for i, sh := range s.shards {
		sh.evSegs.waitCommits()
		for k, seg := range sh.evSegs.sealed {
			fn(SegmentRef{Shard: i, Arena: ArenaEvents, Segment: k}, seg.rows)
		}
	}
}

// SealedJobSegments is SealedEventSegments for the jobs arena.
func (s *Store) SealedJobSegments(fn func(ref SegmentRef, rows []*records.JobRecord)) {
	for i, sh := range s.shards {
		sh.jobSegs.waitCommits()
		for k, seg := range sh.jobSegs.sealed {
			fn(SegmentRef{Shard: i, Arena: ArenaJobs, Segment: k}, seg.rows)
		}
	}
}

// TruncateSealed models the rollback attack: drop the last `drop` rows of
// one sealed segment — rows, sequences, AND their hashes, so the surviving
// segment looks internally consistent and only the committed count (which
// is deliberately left untouched) exposes the rollback. Returns the number
// of rows actually dropped (0 when the ref does not resolve). A
// fault-injection seam for internal/verify and the tests; never called by
// the store itself.
func (s *Store) TruncateSealed(ref SegmentRef, drop int) int {
	if ref.Shard < 0 || ref.Shard >= len(s.shards) || drop <= 0 {
		return 0
	}
	sh := s.shards[ref.Shard]
	switch ref.Arena {
	case ArenaJobs:
		return truncateRun(&sh.jobSegs, ref.Segment, drop)
	case ArenaEvents:
		return truncateRun(&sh.evSegs, ref.Segment, drop)
	}
	return 0
}

func truncateRun[T any](x *segIndex[T], seg, drop int) int {
	x.waitCommits()
	if seg < 0 || seg >= len(x.sealed) {
		return 0
	}
	r := x.sealed[seg]
	if drop > len(r.rows) {
		drop = len(r.rows)
	}
	n := len(r.rows) - drop
	r.rows = r.rows[:n]
	r.seqs = r.seqs[:n]
	if r.hashes != nil && len(r.hashes) > n {
		r.hashes = r.hashes[:n]
	}
	return drop
}
