package metastore_test

import (
	"testing"

	"panrucio/internal/metastore"
	"panrucio/internal/records"
	"panrucio/internal/simtime"
)

// FuzzCommitmentAudit fuzzes the commitment/audit pair: build a sealed
// store, let the input pick an arbitrary mutation of an arbitrary sealed
// row (field, row, byte delta) or a truncation, and assert the audit
// verdict matches ground truth exactly — every actual change is detected
// (no false negatives), every no-op mutation audits clean (no false
// positives). The tricky corners the fuzzer hunts: mutations that cancel
// in the XOR aggregate, zero-delta writes, truncating zero rows, and
// field values that collide under the length-prefixed serialization.
//
// Input layout: data[0] → segment rows (1..8), data[1] → shard count
// (1..4), data[2] → tamper opcode, data[3] → target row selector,
// data[4] → mutation byte, data[5:] → one ingested event per byte.
func FuzzCommitmentAudit(f *testing.F) {
	f.Add([]byte("\x02\x02\x00\x01\x07commit and audit this stream"))
	f.Add([]byte("\x01\x01\x01\x00\x00truncate me"))
	f.Add([]byte("\x04\x03\x02\x05\xffsites and sizes and datasets"))
	f.Add([]byte("\x03\x02\x06\x02\x00zero delta must audit clean"))
	f.Add([]byte("\x08\x04\x05\x09\x41abcdefghijklmnopqrstuvwxyz"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 6 {
			return
		}
		segRows := 1 + int(data[0]%8)
		shards := 1 + int(data[1]%4)
		op, sel, mut := data[2], int(data[3]), data[4]

		s := metastore.NewShardedSegmented(shards, segRows)
		for i, b := range data[5:] {
			ev := records.TransferEvent{
				EventID:    int64(i + 1),
				JediTaskID: int64(1 + b%5),
				LFN:        "f", Scope: "s",
				Dataset: "d", ProdDBlock: "p",
				FileSize:   int64(b) + 1,
				SourceSite: "CERN-PROD", DestinationSite: "BNL-ATLAS",
				IsDownload: true,
				StartedAt:  simtime.VTime(b % 23),
				EndedAt:    simtime.VTime(b%23) + 40,
			}
			s.PutTransfer(&ev)
		}
		s.Seal()
		if rep := s.AuditSealed(); !rep.Clean() {
			t.Fatalf("clean store audits dirty: %+v", rep.Violations)
		}

		// Pick the sel-th sealed event row (mod total) as the target.
		var target *records.TransferEvent
		var ref metastore.SegmentRef
		total := 0
		s.SealedEventSegments(func(r metastore.SegmentRef, rows []*records.TransferEvent) {
			total += len(rows)
		})
		if total == 0 {
			return // stream too small to seal anything
		}
		idx, n := sel%total, 0
		s.SealedEventSegments(func(r metastore.SegmentRef, rows []*records.TransferEvent) {
			for _, ev := range rows {
				if n == idx {
					target, ref = ev, r
				}
				n++
			}
		})

		// Apply one mutation; changed is ground truth for "content moved".
		changed := false
		switch op % 8 {
		case 0:
			changed = mut != 0
			target.FileSize += int64(mut)
		case 1:
			drop := int(mut % 4)
			changed = s.TruncateSealed(ref, drop) > 0
		case 2:
			old := target.Dataset
			target.Dataset = string([]byte{mut})
			changed = target.Dataset != old
		case 3:
			old := target.SourceSite
			target.SourceSite = old + string([]byte{mut})
			changed = true
		case 4:
			changed = mut != 0
			target.StartedAt += simtime.VTime(mut)
		case 5:
			old := target.JediTaskID
			target.JediTaskID = int64(mut)
			changed = target.JediTaskID != old
		case 6:
			// no-op opcode: the audit must stay clean
		case 7:
			old := target.IsUpload
			target.IsUpload = mut%2 == 1
			changed = target.IsUpload != old
		}

		rep := s.AuditSealed()
		if changed && rep.Clean() {
			t.Fatalf("op=%d mut=%d on %v: mutation escaped the audit", op%8, mut, ref)
		}
		if !changed && !rep.Clean() {
			t.Fatalf("op=%d mut=%d: no-op mutation audits dirty: %+v", op%8, mut, rep.Violations)
		}

		// Detection must survive compaction (freeze) too.
		s.Freeze()
		if rep := s.AuditSealed(); changed != !rep.Clean() {
			t.Fatalf("op=%d mut=%d: post-freeze verdict flipped (changed=%v clean=%v)",
				op%8, mut, changed, rep.Clean())
		}
	})
}
