package metastore_test

import (
	"fmt"
	"testing"

	"panrucio/internal/metastore"
	"panrucio/internal/metastore/storetest"
	"panrucio/internal/records"
	"panrucio/internal/simtime"
)

// layouts is the shard-count × segment-size grid the commitment contract
// is pinned over (the same grid as the cut-point equivalence suite).
var layouts = []struct{ shards, segRows int }{
	{1, 64}, {4, 64}, {8, 64}, {1, 0}, {4, 0}, {8, 0},
}

// TestCommitmentLayoutIndependence: equal put streams must commit equally
// for every shard count × segment size — mid-run (sealed + live tail) and
// after a Freeze. This is what makes the store-level commitment a
// statement about the data, not about its partitioning.
func TestCommitmentLayoutIndependence(t *testing.T) {
	st := storetest.Make(42, 2500)
	cut := st.Len() / 2

	var midRef, endRef metastore.Commitment
	for li, l := range layouts {
		s := metastore.NewShardedSegmented(l.shards, l.segRows)
		st.IngestPrefix(s, cut)
		s.Seal() // exercise the sealed-aggregate path mid-run too
		mid := s.StoreCommitment()
		st.IngestRange(s, cut, st.Len())
		live := s.StoreCommitment() // mixed sealed + tail
		s.Freeze()
		end := s.StoreCommitment()

		if live != end {
			t.Fatalf("shards=%d segRows=%d: live commitment %v != frozen %v",
				l.shards, l.segRows, live, end)
		}
		if li == 0 {
			midRef, endRef = mid, end
			continue
		}
		if mid != midRef {
			t.Fatalf("shards=%d segRows=%d: mid-run commitment %v != reference %v",
				l.shards, l.segRows, mid, midRef)
		}
		if end != endRef {
			t.Fatalf("shards=%d segRows=%d: frozen commitment %v != reference %v",
				l.shards, l.segRows, end, endRef)
		}
	}
	if midRef == endRef {
		t.Fatal("mid-run and full commitments identical — the cut did nothing")
	}
	if endRef.Digest() == (metastore.Commitment{}).Digest() {
		t.Fatal("frozen commitment is the zero commitment")
	}
}

// TestAuditCleanStore: an untampered store audits clean on every surface,
// for every layout, mid-run and frozen — the false-positive half of the
// detection contract.
func TestAuditCleanStore(t *testing.T) {
	st := storetest.Make(7, 2000)
	for _, l := range layouts {
		s := metastore.NewShardedSegmented(l.shards, l.segRows)
		st.IngestPrefix(s, st.Len()/2)
		s.Seal()
		if rep := s.AuditSealed(); !rep.Clean() {
			t.Fatalf("shards=%d segRows=%d mid-run: %d violations on clean store",
				l.shards, l.segRows, len(rep.Violations))
		}
		st.IngestRange(s, st.Len()/2, st.Len())
		s.Freeze()
		rep := s.AuditSealed()
		if !rep.Clean() {
			t.Fatalf("shards=%d segRows=%d frozen: %d violations on clean store",
				l.shards, l.segRows, len(rep.Violations))
		}
		if rep.Rows == 0 || rep.Segments == 0 {
			t.Fatalf("shards=%d segRows=%d: frozen audit covered nothing (%+v)",
				l.shards, l.segRows, rep)
		}
		if w := s.AuditTransfersWindow(0, 40); !w.Clean() {
			t.Fatalf("shards=%d segRows=%d: windowed transfer audit dirty on clean store", l.shards, l.segRows)
		}
		if w := s.AuditJobsWindow(0, 40); !w.Clean() {
			t.Fatalf("shards=%d segRows=%d: windowed job audit dirty on clean store", l.shards, l.segRows)
		}
	}
}

// eventTampers mutates one field per entry — every attribute a corruption
// channel can touch, plus the time keys — so per-field detection is pinned
// rather than assumed from "the hash covers everything".
var eventTampers = []struct {
	name string
	fn   func(*records.TransferEvent)
}{
	{"dataset", func(ev *records.TransferEvent) { ev.Dataset = ev.Dataset + "_tid00000001" }},
	{"taskid", func(ev *records.TransferEvent) { ev.JediTaskID = ev.JediTaskID + 1 }},
	{"source-site", func(ev *records.TransferEvent) { ev.SourceSite = "" }},
	{"garble", func(ev *records.TransferEvent) { ev.DestinationSite = "gsiftp://invalid/" + ev.DestinationSite }},
	{"size", func(ev *records.TransferEvent) { ev.FileSize += 1 }},
	{"time", func(ev *records.TransferEvent) { ev.StartedAt += 1 }},
	{"flip-direction", func(ev *records.TransferEvent) { ev.IsDownload, ev.IsUpload = ev.IsUpload, ev.IsDownload }},
}

// tamperedStore builds a sealed multi-segment store and applies tamper to
// the idx-th sealed event row, returning the mutated row's segment ref.
func tamperedStore(t *testing.T, tamper func(*records.TransferEvent)) (*metastore.Store, metastore.SegmentRef) {
	t.Helper()
	s := metastore.NewShardedSegmented(4, 64)
	storetest.Make(3, 2000).Ingest(s)
	s.Seal()
	var ref metastore.SegmentRef
	done := false
	s.SealedEventSegments(func(r metastore.SegmentRef, rows []*records.TransferEvent) {
		if !done && len(rows) > 3 {
			tamper(rows[3])
			ref, done = r, true
		}
	})
	if !done {
		t.Fatal("no sealed event segment to tamper")
	}
	return s, ref
}

// TestAuditDetectsRowTamper: mutating any committed field of one sealed
// row is caught by the full audit, located to the exact segment and row.
func TestAuditDetectsRowTamper(t *testing.T) {
	for _, tc := range eventTampers {
		t.Run(tc.name, func(t *testing.T) {
			s, ref := tamperedStore(t, tc.fn)
			rep := s.AuditSealed()
			if len(rep.Violations) != 1 {
				t.Fatalf("want exactly 1 violation, got %d (%+v)", len(rep.Violations), rep.Violations)
			}
			v := rep.Violations[0]
			if v.Kind != metastore.RowTamper || v.Ref != ref || v.Row != 3 {
				t.Fatalf("violation mislocated: %+v (want %v row 3)", v, ref)
			}
		})
	}
}

// TestAuditDetectsJobTamper: the jobs arena is committed too.
func TestAuditDetectsJobTamper(t *testing.T) {
	s := metastore.NewShardedSegmented(4, 64)
	storetest.Make(5, 2000).Ingest(s)
	s.Seal()
	tampered := false
	s.SealedJobSegments(func(r metastore.SegmentRef, rows []*records.JobRecord) {
		if !tampered && len(rows) > 0 {
			rows[0].ComputingSite = "EVIL-SITE"
			tampered = true
		}
	})
	if !tampered {
		t.Fatal("no sealed job segment to tamper")
	}
	rep := s.AuditSealed()
	if len(rep.Violations) != 1 || rep.Violations[0].Kind != metastore.RowTamper ||
		rep.Violations[0].Ref.Arena != metastore.ArenaJobs {
		t.Fatalf("job tamper not detected as a jobs-arena row-tamper: %+v", rep.Violations)
	}
}

// TestAuditDetectsTruncation: dropping the last rows of a sealed segment
// (the rollback attack — rows, seqs, AND hashes truncated so the survivor
// is internally consistent) is caught via the committed-count excess.
func TestAuditDetectsTruncation(t *testing.T) {
	s := metastore.NewShardedSegmented(4, 64)
	storetest.Make(11, 2000).Ingest(s)
	s.Seal()
	var ref metastore.SegmentRef
	found := false
	s.SealedEventSegments(func(r metastore.SegmentRef, rows []*records.TransferEvent) {
		if !found && len(rows) >= 8 {
			ref, found = r, true
		}
	})
	if !found {
		t.Fatal("no sealed event segment large enough to truncate")
	}
	if got := s.TruncateSealed(ref, 5); got != 5 {
		t.Fatalf("TruncateSealed dropped %d rows, want 5", got)
	}
	rep := s.AuditSealed()
	if len(rep.Violations) != 1 {
		t.Fatalf("want exactly 1 violation, got %+v", rep.Violations)
	}
	if v := rep.Violations[0]; v.Kind != metastore.Truncation || v.Ref != ref {
		t.Fatalf("truncation mislocated: %+v (want %v)", v, ref)
	}
}

// TestAuditSurvivesCompaction: tamper planted before a Freeze must still
// be detected after it — compaction carries commitments rather than
// recomputing them, so it cannot launder violations (truncation included).
func TestAuditSurvivesCompaction(t *testing.T) {
	t.Run("row-tamper", func(t *testing.T) {
		s, _ := tamperedStore(t, func(ev *records.TransferEvent) { ev.FileSize += 7 })
		s.Freeze()
		rep := s.AuditSealed()
		if len(rep.Violations) != 1 || rep.Violations[0].Kind != metastore.RowTamper {
			t.Fatalf("pre-freeze tamper laundered by compaction: %+v", rep.Violations)
		}
	})
	t.Run("truncation", func(t *testing.T) {
		s := metastore.NewShardedSegmented(4, 64)
		storetest.Make(13, 2000).Ingest(s)
		s.Seal()
		var ref metastore.SegmentRef
		found := false
		s.SealedEventSegments(func(r metastore.SegmentRef, rows []*records.TransferEvent) {
			if !found && len(rows) >= 4 {
				ref, found = r, true
			}
		})
		if !found || s.TruncateSealed(ref, 2) != 2 {
			t.Fatal("could not truncate a sealed segment")
		}
		s.Freeze()
		rep := s.AuditSealed()
		if rep.Clean() {
			t.Fatal("pre-freeze truncation laundered by compaction")
		}
		hasTrunc := false
		for _, v := range rep.Violations {
			if v.Kind == metastore.Truncation {
				hasTrunc = true
			}
		}
		if !hasTrunc {
			t.Fatalf("truncation not reported as such after compaction: %+v", rep.Violations)
		}
	})
}

// TestAuditWindow: the windowed audits check exactly the rows a ranged
// read returns — tamper inside the window is caught, tamper outside it is
// not (that is the cost bound), and the full audit always catches it.
func TestAuditWindow(t *testing.T) {
	s, _ := tamperedStore(t, func(ev *records.TransferEvent) { ev.Scope = "tampered" })
	var at int64 = -1
	s.SealedEventSegments(func(r metastore.SegmentRef, rows []*records.TransferEvent) {
		for _, ev := range rows {
			if ev.Scope == "tampered" {
				at = int64(ev.StartedAt)
			}
		}
	})
	if at < 0 {
		t.Fatal("tampered row not found")
	}
	hit := s.AuditTransfersWindow(simtime.VTime(at), simtime.VTime(at+1))
	if hit.Clean() {
		t.Fatalf("window [%d,%d) missed tamper at t=%d", at, at+1, at)
	}
	miss := s.AuditTransfersWindow(simtime.VTime(at+1), simtime.VTime(at+100))
	if !miss.Clean() {
		t.Fatalf("window past the tamper reported violations: %+v", miss.Violations)
	}
	if miss.Rows >= hit.Rows+s.TransferCount() {
		t.Fatalf("windowed audit not bounded: checked %d rows", miss.Rows)
	}
	if full := s.AuditSealed(); full.Clean() {
		t.Fatal("full audit missed the tamper")
	}
}

// TestAuditSealedSince: the incremental watermark audits only segments
// sealed since the mark — the per-checkpoint cost of the online loop.
func TestAuditSealedSince(t *testing.T) {
	st := storetest.Make(17, 3000)
	s := metastore.NewShardedSegmented(4, 64)
	st.IngestPrefix(s, 1000)
	s.Seal()
	first, mark := s.AuditSealedSince(metastore.AuditMark{})
	if !first.Clean() || first.Segments == 0 {
		t.Fatalf("first incremental audit: %+v", first)
	}
	// Nothing new sealed: the incremental step must cover zero segments.
	again, mark := s.AuditSealedSince(mark)
	if again.Segments != 0 || again.Rows != 0 {
		t.Fatalf("no-op incremental audit re-checked %d segments / %d rows", again.Segments, again.Rows)
	}
	// Record how many event segments each shard had at the mark, so the
	// tamper below provably lands in a NEW segment.
	atMark := map[int]int{}
	s.SealedEventSegments(func(r metastore.SegmentRef, rows []*records.TransferEvent) {
		if r.Segment+1 > atMark[r.Shard] {
			atMark[r.Shard] = r.Segment + 1
		}
	})

	// More data, one of the NEW segments tampered: the incremental step
	// must cover only the new segments and still catch it.
	st.IngestRange(s, 1000, 3000)
	s.Seal()
	seen := 0
	tampered := false
	s.SealedEventSegments(func(r metastore.SegmentRef, rows []*records.TransferEvent) {
		seen++
		if !tampered && r.Segment >= atMark[r.Shard] && len(rows) > 0 {
			rows[0].LFN = "evil"
			tampered = true
		}
	})
	if !tampered {
		t.Fatal("no event segment sealed after the mark — stream too small")
	}
	inc, _ := s.AuditSealedSince(mark)
	if inc.Clean() {
		t.Fatal("incremental audit missed tamper in a newly sealed segment")
	}
	if inc.Segments >= first.Segments+seen {
		t.Fatalf("incremental audit re-checked old segments: %d", inc.Segments)
	}
	total := s.AuditSealed()
	if total.Segments <= inc.Segments {
		t.Fatalf("full audit (%d segs) should cover more than the increment (%d)", total.Segments, inc.Segments)
	}
}

// TestCommitmentBinding: the commitment binds to SEAL-TIME content —
// post-seal tamper of a sealed row must NOT move the store commitment
// (that is what makes it a commitment rather than a checksum of whatever
// is currently there), and the audit is what exposes the divergence. Tail
// rows are uncommitted live data, so tampering the tail DOES move it.
func TestCommitmentBinding(t *testing.T) {
	build := func() *metastore.Store {
		s := metastore.NewShardedSegmented(4, 64)
		storetest.Make(23, 1500).Ingest(s)
		s.Seal()
		return s
	}
	a, b := build(), build()
	if a.StoreCommitment() != b.StoreCommitment() {
		t.Fatal("equal stores commit unequally")
	}
	done := false
	b.SealedEventSegments(func(r metastore.SegmentRef, rows []*records.TransferEvent) {
		if !done && len(rows) > 0 {
			rows[0].FileSize++
			done = true
		}
	})
	if !done {
		t.Fatal("no sealed segment to tamper")
	}
	if a.StoreCommitment() != b.StoreCommitment() {
		t.Fatal("sealed-row tamper moved the commitment — it is not binding")
	}
	if a.AuditSealed().Clean() == false {
		t.Fatal("clean store audits dirty")
	}
	if b.AuditSealed().Clean() {
		t.Fatal("audit missed the divergence the commitment is bound against")
	}

	// Tail rows are live, uncommitted data: tampering one moves the
	// store commitment (it is hashed on the fly).
	// Default segment size: 1500 puts never hit the auto-seal threshold,
	// so every row stays in a tail.
	c := metastore.NewShardedSegmented(4, 0)
	storetest.Make(23, 1500).Ingest(c)
	before := c.StoreCommitment()
	tailHit := false
	for _, ev := range c.Transfers(0, 0) {
		if !tailHit {
			ev.FileSize++
			tailHit = true
		}
	}
	if !tailHit {
		t.Fatal("no tail row to tamper")
	}
	if c.StoreCommitment() == before {
		t.Fatal("tail tamper did not move the live commitment")
	}
}

func TestCommitmentDigestFormat(t *testing.T) {
	c := metastore.Commitment{JobRows: 1, EventRows: 2, JobAgg: 3, EventAgg: 4}
	want := fmt.Sprintf("%08x.%016x-%08x.%016x", 1, 3, 2, 4)
	if c.Digest() != want {
		t.Fatalf("Digest() = %q, want %q", c.Digest(), want)
	}
}
