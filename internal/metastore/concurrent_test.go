package metastore_test

import (
	"reflect"
	"sync"
	"testing"

	"panrucio/internal/core"
	"panrucio/internal/metastore"
	"panrucio/internal/metastore/storetest"
	"panrucio/internal/records"
)

// taskKey addresses one single-shard TaskTransfersByKey probe.
type taskKey struct {
	jedi int64
	key  metastore.JoinKey
}

// queryBaseline captures one serial pass over every read surface the
// serving layer depends on, flattened to comparable values.
type queryBaseline struct {
	jobs      []records.JobRecord
	window    []records.TransferEvent
	all       []records.TransferEvent
	byTask    map[int64][]records.TransferEvent
	matches   [][]int64 // per job row (Jobs order) -> RM2 event ids
	exact     [][]int64 // per job row (Jobs order) -> Exact event ids
	entries   []int     // per job row (Jobs order) -> join-entry count
	keyProbes map[taskKey][]records.TransferEvent
}

// snapshot runs the serial pass. The job set is re-queried rather than
// passed in so the baseline exercises the same call sequence the
// concurrent readers will.
func snapshot(s *metastore.Store) *queryBaseline {
	b := &queryBaseline{
		byTask:    map[int64][]records.TransferEvent{},
		keyProbes: map[taskKey][]records.TransferEvent{},
	}
	b.jobs = storetest.JobValues(s.Jobs(0, 20, ""))
	b.window = storetest.EvValues(s.Transfers(3, 30))
	b.all = storetest.EvValues(s.Transfers(0, 0))
	m := core.NewMatcher(s)
	for _, j := range s.Jobs(0, 20, "") {
		entries := s.JoinEntriesForJob(j.PandaID, j.JediTaskID)
		b.entries = append(b.entries, len(entries))
		for _, e := range entries {
			tk := taskKey{j.JediTaskID, metastore.FileKey(e.File)}
			b.keyProbes[tk] = storetest.EvValues(s.TaskTransfersByKey(tk.jedi, tk.key))
		}
		b.matches = append(b.matches, eventIDs(m.MatchJob(j, core.RM2)))
		b.exact = append(b.exact, eventIDs(m.MatchJob(j, core.Exact)))
		if _, seen := b.byTask[j.JediTaskID]; !seen {
			b.byTask[j.JediTaskID] = storetest.EvValues(s.TransfersByTaskID(j.JediTaskID))
		}
	}
	return b
}

func eventIDs(evs []*records.TransferEvent) []int64 {
	out := make([]int64, len(evs))
	for i, ev := range evs {
		out[i] = ev.EventID
	}
	return out
}

// hammer issues the full query surface from workers goroutines, each
// iters times, comparing every result against the serial baseline.
func hammer(t *testing.T, s *metastore.Store, base *queryBaseline, workers, iters int) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m := core.NewMatcher(s)
			for it := 0; it < iters; it++ {
				if got := storetest.JobValues(s.Jobs(0, 20, "")); !reflect.DeepEqual(got, base.jobs) {
					errs <- "Jobs diverged from serial baseline"
					return
				}
				if got := storetest.EvValues(s.Transfers(3, 30)); !reflect.DeepEqual(got, base.window) {
					errs <- "windowed Transfers diverged from serial baseline"
					return
				}
				if got := storetest.EvValues(s.Transfers(0, 0)); !reflect.DeepEqual(got, base.all) {
					errs <- "full Transfers diverged from serial baseline"
					return
				}
				for i, j := range s.Jobs(0, 20, "") {
					if got := len(s.JoinEntriesForJob(j.PandaID, j.JediTaskID)); got != base.entries[i] {
						errs <- "JoinEntriesForJob diverged from serial baseline"
						return
					}
					if got := eventIDs(m.MatchJob(j, core.RM2)); !reflect.DeepEqual(got, base.matches[i]) {
						errs <- "MatchJob(RM2) diverged from serial baseline"
						return
					}
					if got := eventIDs(m.MatchJob(j, core.Exact)); !reflect.DeepEqual(got, base.exact[i]) {
						errs <- "MatchJob(Exact) diverged from serial baseline"
						return
					}
				}
				for tk, want := range base.keyProbes {
					if got := storetest.EvValues(s.TaskTransfersByKey(tk.jedi, tk.key)); !reflect.DeepEqual(got, want) {
						errs <- "TaskTransfersByKey diverged from serial baseline"
						return
					}
				}
				for task, want := range base.byTask {
					if got := storetest.EvValues(s.TransfersByTaskID(task)); !reflect.DeepEqual(got, want) {
						errs <- "TransfersByTaskID diverged from serial baseline"
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}

// TestConcurrentFrozenReads is the read-only concurrency regression test
// the serving layer depends on: N goroutines issue Jobs, Transfers,
// MatchJob, JoinEntriesForJob, TaskTransfersByKey, and TransfersByTaskID
// against one frozen store, and every result must be identical to the
// serial baseline. Run under -race in CI.
func TestConcurrentFrozenReads(t *testing.T) {
	stream := storetest.Make(42, 4000)
	s := metastore.NewShardedSegmented(8, 64)
	stream.Ingest(s)
	s.Freeze()
	hammer(t, s, snapshot(s), 8, 3)
}

// TestConcurrentLiveReads is the same hammer on an un-frozen store mid
// ingest (sealed segments + mutable tails): concurrent readers share the
// lazily built tail views through the atomic cache, and all answers must
// equal the serial baseline over the same ingested prefix. Ingest itself
// is quiescent while readers run — the single-writer contract the serve
// layer's epoch windows enforce.
func TestConcurrentLiveReads(t *testing.T) {
	stream := storetest.Make(43, 4000)
	s := metastore.NewShardedSegmented(4, 64)
	stream.IngestPrefix(s, (stream.Len()*2)/3)
	base := snapshot(s)
	hammer(t, s, base, 8, 2)

	// Advance the ingest frontier (invalidating the tail caches), then
	// hammer again at the new cut: the baseline must move with the data.
	stream.IngestRange(s, (stream.Len()*2)/3, stream.Len())
	base2 := snapshot(s)
	hammer(t, s, base2, 8, 2)
	if reflect.DeepEqual(base.all, base2.all) {
		t.Fatal("second cut ingested no new events; test is vacuous")
	}
}
