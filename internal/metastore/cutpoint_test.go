package metastore_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"panrucio/internal/core"
	"panrucio/internal/metastore"
	"panrucio/internal/metastore/storetest"
	"panrucio/internal/records"
	"panrucio/internal/simtime"
)

// cutPoints picks k random cut positions in (0, n), always including 1 and
// n itself, sorted ascending — the prefixes at which the live store is
// interrogated.
func cutPoints(rng *rand.Rand, n, k int) []int {
	set := map[int]bool{1: true, n: true}
	for len(set) < k+2 {
		set[1+rng.Intn(n)] = true
	}
	cuts := make([]int, 0, len(set))
	for c := range set {
		cuts = append(cuts, c)
	}
	sort.Ints(cuts)
	return cuts
}

// assertStoresAgree compares every mid-run query surface of the live
// (never-frozen) store against the frozen reference holding the same
// prefix, including full matcher passes over every job either store knows.
func assertStoresAgree(t *testing.T, label string, live, ref *metastore.Store) {
	t.Helper()
	if live.JobCount() != ref.JobCount() || live.FileCount() != ref.FileCount() ||
		live.TransferCount() != ref.TransferCount() ||
		live.TransfersWithTaskID() != ref.TransfersWithTaskID() {
		t.Fatalf("%s: counts diverged", label)
	}

	// Time-ranged queries: full, windowed, windowed-with-label.
	if !reflect.DeepEqual(evValues(live.Transfers(0, 0)), evValues(ref.Transfers(0, 0))) {
		t.Fatalf("%s: Transfers(0,0) diverged", label)
	}
	for _, w := range [][2]simtime.VTime{{0, 20}, {5, 15}, {7, 8}, {19, 40}} {
		if !reflect.DeepEqual(
			evValues(live.Transfers(w[0], w[1])), evValues(ref.Transfers(w[0], w[1]))) {
			t.Fatalf("%s: Transfers(%d,%d) diverged", label, w[0], w[1])
		}
		for _, lab := range []records.SourceLabel{"", records.LabelUser, records.LabelManaged} {
			if !reflect.DeepEqual(
				jobValues(live.Jobs(w[0], w[1], lab)), jobValues(ref.Jobs(w[0], w[1], lab))) {
				t.Fatalf("%s: Jobs(%d,%d,%q) diverged", label, w[0], w[1], lab)
			}
		}
	}

	// Matcher probes: MatchJob must see the same world through the live
	// JoinEntriesForJob path as through the reference's frozen bindings.
	lm, rm := core.NewMatcher(live), core.NewMatcher(ref)
	for panda := int64(0); panda < 40; panda++ {
		lj, lok := live.Job(panda)
		rj, rok := ref.Job(panda)
		if lok != rok || (lok && *lj != *rj) {
			t.Fatalf("%s: Job(%d) diverged", label, panda)
		}
		if !lok {
			continue
		}
		probe := *rj // value copy: matcher input independent of either store
		for _, method := range []core.Method{core.Exact, core.RM1, core.RM2} {
			if !reflect.DeepEqual(
				evValues(lm.MatchJob(&probe, method)),
				evValues(rm.MatchJob(&probe, method))) {
				t.Fatalf("%s: MatchJob(%d, %v) diverged", label, panda, method)
			}
		}
	}

	// Per-task join probes over the stream's whole key space.
	for panda := int64(0); panda < 40; panda++ {
		for task := int64(0); task < 17; task++ {
			le, re := live.JoinEntriesForJob(panda, task), ref.JoinEntriesForJob(panda, task)
			if len(le) != len(re) {
				t.Fatalf("%s: JoinEntriesForJob(%d,%d) diverged", label, panda, task)
			}
			for i := range le {
				if *le[i].File != *re[i].File ||
					!reflect.DeepEqual(evValues(le[i].Candidates), evValues(re[i].Candidates)) {
					t.Fatalf("%s: JoinEntriesForJob(%d,%d)[%d] diverged", label, panda, task, i)
				}
			}
		}
	}
	for task := int64(1); task < 17; task++ {
		for lfn := 0; lfn < 25; lfn += 5 {
			key := metastore.JoinKey{LFN: fmt.Sprintf("f%d", lfn), Scope: "s", Dataset: "d1", ProdDBlock: "p"}
			if !reflect.DeepEqual(
				evValues(live.TaskTransfersByKey(task, key)),
				evValues(ref.TaskTransfersByKey(task, key))) {
				t.Fatalf("%s: TaskTransfersByKey(%d,%v) diverged", label, task, key)
			}
		}
	}
}

// TestCutPointEquivalence is the mid-run contract of the segmented store:
// stop a fuzzed ingest at k random prefixes and assert Jobs, Transfers,
// JoinEntriesForJob, TaskTransfersByKey, and MatchJob over the live
// sealed+tail state equal a fresh store fed the same prefix and frozen —
// across shard counts {1,4,8} × segment sizes {small, default}. One live
// store advances through all cuts (with explicit Seal()s interleaved at
// every other cut, so queries land on fresh seal boundaries too) and is
// never frozen until the final end-of-run check.
func TestCutPointEquivalence(t *testing.T) {
	st := storetest.Make(99, 3000)
	rng := rand.New(rand.NewSource(7))
	cuts := cutPoints(rng, st.Len(), 5)

	for _, shards := range []int{1, 4, 8} {
		for _, segRows := range []int{64, 0} { // 0 → DefaultSegmentRows (tail-only at this scale)
			live := metastore.NewShardedSegmented(shards, segRows)
			prev := 0
			for ci, cut := range cuts {
				st.IngestRange(live, prev, cut)
				prev = cut

				ref := metastore.NewSharded(1) // canonical batch path
				st.IngestPrefix(ref, cut)
				ref.Freeze()

				label := fmt.Sprintf("shards=%d segRows=%d cut=%d", shards, segRows, cut)
				assertStoresAgree(t, label, live, ref)

				if ci%2 == 1 {
					live.Seal() // queries after this land on a fresh seal boundary
					assertStoresAgree(t, label+" (sealed)", live, ref)
				}
			}

			// Small segments over 3000 puts must actually have sealed; the
			// default size must not (the pure-tail path is covered too).
			if segRows == 64 && live.SealedSegments() == 0 {
				t.Fatalf("shards=%d segRows=64: no segment ever sealed", shards)
			}

			// End of run: freezing the incrementally built store must land on
			// the exact batch result.
			live.Freeze()
			ref := metastore.NewSharded(1)
			st.IngestPrefix(ref, st.Len())
			ref.Freeze()
			assertStoresAgree(t, fmt.Sprintf("shards=%d segRows=%d frozen", shards, segRows), live, ref)
		}
	}
}
