// Package metastore is the OpenSearch stand-in: an in-memory, indexed
// store of job records, JEDI file records, and Rucio transfer events, with
// the time-windowed queries the paper's analysis workflow (Fig. 4) issues.
// Records are immutable once ingested; all queries return the stored
// pointers, so callers must not mutate results.
//
// Ingestion is append-only: the Put* methods maintain the hash indices
// (by-id, by-LFN, by-task, and the composite join-key indices Algorithm 1
// probes) and the cached counters incrementally. The sorted time indices
// behind the ranged queries Jobs and Transfers are built by Freeze, which
// runs automatically on the first ranged query after an ingest; once
// frozen, ranged queries are binary-search slices with no per-call
// allocation beyond the label filter. Freeze also pre-resolves each job's
// file rows to their candidate transfer buckets (JoinEntriesForJob), the
// matcher's allocation-free per-job probe.
//
// Concurrency invariant: the store is safe for concurrent readers after
// Freeze (the matcher's sharded pipeline relies on this); ingestion must
// not run concurrently with queries. Reset empties a store for reuse while
// keeping its index maps' capacity — the sweep engine gives each worker
// one store across many scenarios via sim.RunReusing — and invalidates
// everything previously obtained from it.
package metastore
