// Package metastore is the OpenSearch stand-in: an in-memory, indexed
// store of job records, JEDI file records, and Rucio transfer events, with
// the time-windowed queries the paper's analysis workflow (Fig. 4) issues.
//
// The store is sharded and columnar. Records route to one of N shards
// (NewSharded; New picks DefaultShards) by a hash of their jeditaskid and
// are value-copied into per-shard chunked arenas — contiguous slabs with
// stable addresses and no per-record heap object. String attributes intern
// through a store-global table at ingest: the composite join indices
// Algorithm 1 probes are keyed by dense symbol tuples rather than string
// quadruples, and repeated site/RSE/activity backings collapse onto one
// allocation. Matching is task-local, so the matcher-facing probes
// (JoinEntriesForJob, TaskTransfersByKey, FilesForJob, TransfersByTaskID)
// touch exactly one shard; events without a jeditaskid spread round-robin
// and never enter a task index.
//
// Ingestion is append-only and single-threaded: the Put* methods maintain
// the per-shard hash indices and the cached counters incrementally. The
// sorted time indices behind the ranged queries Jobs and Transfers are
// built by Freeze — run eagerly by sim.Run, lazily by the first ranged
// query — which sorts every shard concurrently and then merges the runs by
// (time, ingestion sequence), making the result byte-identical to an
// unsharded stable sort for any shard count. Freeze also pre-resolves each
// job's file rows to their candidate transfer buckets (JoinEntriesForJob),
// the matcher's allocation-free per-job probe. Queries return pointers
// into the arenas; callers must not mutate results.
//
// Concurrency invariant: the store is safe for concurrent readers after
// Freeze (the matcher's sharded pipeline relies on this); ingestion must
// not run concurrently with queries. Reset empties a store for reuse —
// arena high-water marks rewind keeping their chunks, index maps keep
// capacity, and the intern table clears so a reused store cannot leak one
// scenario's strings into the next (the sweep engine gives each worker one
// store across many scenarios via sim.RunReusing). Reset invalidates
// everything previously obtained from the store.
package metastore
