// Package metastore is the OpenSearch stand-in: an in-memory, indexed
// store of job records, JEDI file records, and Rucio transfer events, with
// the time-windowed queries the paper's analysis workflow (Fig. 4) issues.
//
// The store is sharded, columnar, and segmented. Records route to one of N
// shards (NewSharded; New picks DefaultShards) by a hash of their
// jeditaskid and are value-copied into per-shard chunked arenas —
// contiguous slabs with stable addresses and no per-record heap object.
// String attributes intern through a store-global table at ingest: the
// composite join indices Algorithm 1 probes are keyed by dense symbol
// tuples rather than string quadruples, and repeated site/RSE/activity
// backings collapse onto one allocation. Matching is task-local, so the
// matcher-facing probes (JoinEntriesForJob, TaskTransfersByKey,
// FilesForJob, TransfersByTaskID) touch exactly one shard; events without
// a jeditaskid spread round-robin and never enter a task index.
//
// Ingestion is append-only and single-threaded: the Put* methods maintain
// the per-shard hash indices and the cached counters incrementally. The
// sorted time order behind the ranged queries Jobs and Transfers is an
// epoch/segment structure per shard (NewShardedSegmented sizes it): rows
// land in a mutable tail whose sorted view is cached lazily; when the tail
// reaches the segment-row threshold — or on an explicit Seal() — it
// becomes an immutable, binary-searchable sealed segment (sorted in the
// background while ingestion continues) and a fresh tail begins.
//
// Mid-run query visibility: every query surface answers at any point
// during ingestion, with no Freeze required, over exactly the records put
// so far. Ranged queries merge the sealed segments' windows plus the tail
// by (time, ingestion sequence), so their results are byte-identical to
// the frozen store's for the same ingested prefix — for any shard count
// crossed with any segment size (pinned by the cut-point equivalence tests
// and FuzzSegmentMerge). Freeze is now only the batch-mode finalizer: it
// seals the tails, compacts each shard to one run, builds the store-level
// merged indices, and pre-resolves each job's file rows to their candidate
// transfer buckets (JoinEntriesForJob), making every subsequent query
// allocation-free. Queries return pointers into the arenas; callers must
// not mutate results.
//
// Concurrency invariant: the store is safe for concurrent readers only
// after Freeze (the matcher's sharded pipeline relies on this). Live
// queries are single-threaded with ingestion — they maintain per-shard
// caches — but may interleave with it freely, and background segment
// sorts overlap ingestion safely (readers synchronize on the seal before
// touching sealed runs). Reset empties a store for reuse — arena
// high-water marks rewind keeping their chunks, index maps keep capacity,
// and the intern table clears so a reused store cannot leak one scenario's
// strings into the next (the sweep engine gives each worker one store
// across many scenarios via sim.RunReusing). Reset invalidates everything
// previously obtained from the store.
package metastore
