package metastore

// internTable assigns dense uint32 symbols to strings and owns their
// canonical backing. Every string attribute that enters the store flows
// through it once at ingest: join attributes (lfn/scope/dataset/proddblock)
// get symbols so the join indices can be keyed by 16-byte value structs
// instead of 64-byte string quadruples, and repeated site/RSE/activity
// strings collapse onto one backing array regardless of how the producer
// built them (the corruption layer, in particular, rewrites labels with
// fresh allocations).
//
// The table is store-global, written only on the single-threaded ingest
// path, and read-only during Freeze and queries — per-shard freeze
// goroutines may look up symbols concurrently without locking.
type internTable struct {
	ids  map[string]uint32
	strs []string
}

func newInternTable() *internTable {
	return &internTable{ids: make(map[string]uint32)}
}

// sym returns the symbol for s, assigning the next dense id on first sight.
// Symbols are assigned in first-ingest order, so they are deterministic for
// a given put stream and independent of the shard count.
func (t *internTable) sym(s string) uint32 {
	if id, ok := t.ids[s]; ok {
		return id
	}
	id := uint32(len(t.strs))
	t.strs = append(t.strs, s)
	t.ids[s] = id
	return id
}

// canon returns the canonical backing for s, interning it if new. Storing
// the canonical string in a record lets duplicate producer-side backings be
// collected.
func (t *internTable) canon(s string) string {
	return t.strs[t.sym(s)]
}

// lookup resolves a symbol without interning — the query-side probe. A miss
// means no record carrying s was ever ingested.
func (t *internTable) lookup(s string) (uint32, bool) {
	id, ok := t.ids[s]
	return id, ok
}

// reset empties the table for store reuse while keeping the map's
// capacity. The backing strings are released: a sweep worker's store must
// not pin one scenario's dataset names through the next (the string-leak
// fix this table's lifecycle exists for).
func (t *internTable) reset() {
	clear(t.ids)
	clear(t.strs)
	t.strs = t.strs[:0]
}

// size reports the number of interned strings.
func (t *internTable) size() int { return len(t.strs) }

// symKey is the interned form of JoinKey: 16 bytes of dense symbols in
// place of four string headers, hashed as plain memory.
type symKey struct {
	lfn, scope, dataset, prodDBlock uint32
}

// taskSymKey scopes a symKey to one JEDI task — the interned form of the
// matcher's per-file probe key.
type taskSymKey struct {
	task int64
	key  symKey
}
