package metastore

import (
	"sort"
	"sync"
	"sync/atomic"

	"panrucio/internal/records"
	"panrucio/internal/simtime"
)

// JoinKey is the composite join key shared by JEDI file rows and transfer
// events: the equality attributes of Algorithm 1 minus file size, which is
// method-dependent (Exact checks it, RM1/RM2 relax it) and therefore left
// to the matcher.
type JoinKey struct {
	LFN        string
	Scope      string
	Dataset    string
	ProdDBlock string
}

// FileKey is the join key of a JEDI file row.
func FileKey(f *records.FileRecord) JoinKey {
	return JoinKey{LFN: f.LFN, Scope: f.Scope, Dataset: f.Dataset, ProdDBlock: f.ProdDBlock}
}

// EventKey is the join key of a transfer event.
func EventKey(ev *records.TransferEvent) JoinKey {
	return JoinKey{LFN: ev.LFN, Scope: ev.Scope, Dataset: ev.Dataset, ProdDBlock: ev.ProdDBlock}
}

// taskKey scopes a join key to one JEDI task — the probe the matcher
// issues per file row, since candidate transfers must also carry the
// job's jeditaskid.
type taskKey struct {
	task int64
	key  JoinKey
}

// Store holds the three metadata indices.
type Store struct {
	jobs      []*records.JobRecord
	files     []*records.FileRecord
	transfers []*records.TransferEvent

	jobsByID     map[int64]*records.JobRecord
	filesByPanda map[int64][]*records.FileRecord
	evByLFN      map[string][]*records.TransferEvent
	evByTask     map[int64][]*records.TransferEvent

	// Composite join-key indices, maintained at ingest. Within a bucket,
	// events stay in ingestion order, which keeps the indexed matcher's
	// candidate order identical to the reference nested loop's.
	evByKey     map[JoinKey][]*records.TransferEvent
	evByTaskKey map[taskKey][]*records.TransferEvent

	// Cached counters, maintained on PutTransfer.
	withTaskID     int
	taskByActivity map[records.Activity]int

	// Sorted time indices, built by Freeze. jobsByEnd is ordered by
	// EndTime, evByStart by StartedAt (ties keep ingestion order).
	jobsByEnd []*records.JobRecord
	evByStart []*records.TransferEvent

	// entriesByJob holds each (pandaid, jeditaskid) group of file rows
	// with their task-scoped join buckets pre-resolved at Freeze, so a
	// matching probe is a single int-pair lookup plus slice scans — no
	// string hashing and no allocation on the hot path.
	entriesByJob map[pandaTask][]JoinEntry

	frozen   atomic.Bool
	freezeMu sync.Mutex
}

// New returns an empty store.
func New() *Store {
	return &Store{
		jobsByID:       make(map[int64]*records.JobRecord),
		filesByPanda:   make(map[int64][]*records.FileRecord),
		evByLFN:        make(map[string][]*records.TransferEvent),
		evByTask:       make(map[int64][]*records.TransferEvent),
		evByKey:        make(map[JoinKey][]*records.TransferEvent),
		evByTaskKey:    make(map[taskKey][]*records.TransferEvent),
		taskByActivity: make(map[records.Activity]int),
	}
}

// PutJob ingests a job record. Duplicate pandaids overwrite the index entry
// but both rows are retained, mirroring the at-least-once semantics of the
// production pipeline.
func (s *Store) PutJob(j *records.JobRecord) {
	s.jobs = append(s.jobs, j)
	s.jobsByID[j.PandaID] = j
	s.frozen.Store(false)
}

// PutFile ingests a JEDI file-table row.
func (s *Store) PutFile(f *records.FileRecord) {
	s.files = append(s.files, f)
	s.filesByPanda[f.PandaID] = append(s.filesByPanda[f.PandaID], f)
	s.frozen.Store(false)
}

// PutTransfer ingests a transfer event.
func (s *Store) PutTransfer(ev *records.TransferEvent) {
	s.transfers = append(s.transfers, ev)
	s.evByLFN[ev.LFN] = append(s.evByLFN[ev.LFN], ev)
	key := EventKey(ev)
	s.evByKey[key] = append(s.evByKey[key], ev)
	if ev.JediTaskID != 0 {
		s.evByTask[ev.JediTaskID] = append(s.evByTask[ev.JediTaskID], ev)
		s.evByTaskKey[taskKey{ev.JediTaskID, key}] = append(s.evByTaskKey[taskKey{ev.JediTaskID, key}], ev)
		s.withTaskID++
		s.taskByActivity[ev.Activity]++
	}
	s.frozen.Store(false)
}

// Freeze builds the sorted time indices. It is idempotent, runs implicitly
// on the first ranged query after an ingest, and is safe to call from
// concurrent readers; calling it eagerly (as sim.Run does) keeps the query
// path lock-free.
func (s *Store) Freeze() {
	if s.frozen.Load() {
		return
	}
	s.freezeMu.Lock()
	defer s.freezeMu.Unlock()
	if s.frozen.Load() {
		return
	}
	// Fresh arrays every build: ranged queries alias these, so a rebuild
	// after further ingestion must not sort under slices already handed
	// out to callers.
	s.jobsByEnd = append([]*records.JobRecord(nil), s.jobs...)
	sort.SliceStable(s.jobsByEnd, func(i, k int) bool {
		return s.jobsByEnd[i].EndTime < s.jobsByEnd[k].EndTime
	})
	s.evByStart = append([]*records.TransferEvent(nil), s.transfers...)
	sort.SliceStable(s.evByStart, func(i, k int) bool {
		return s.evByStart[i].StartedAt < s.evByStart[k].StartedAt
	})
	s.entriesByJob = make(map[pandaTask][]JoinEntry, len(s.filesByPanda))
	for _, f := range s.files {
		k := pandaTask{f.PandaID, f.JediTaskID}
		s.entriesByJob[k] = append(s.entriesByJob[k], JoinEntry{
			File:       f,
			Candidates: s.evByTaskKey[taskKey{f.JediTaskID, FileKey(f)}],
		})
	}
	s.frozen.Store(true)
}

// Reset empties the store for reuse while keeping the allocated index maps
// and record slices, so a long-lived store (one per sweep worker, say) does
// not rebuild its hash tables from scratch for every scenario. After Reset
// the store is unfrozen and indistinguishable from New()'s result — except
// that any records, query results, or join entries previously obtained from
// it are invalidated and must not be used.
//
// Reset must not run concurrently with ingestion or queries; the sweep
// engine guarantees this by giving each worker goroutine its own store.
func (s *Store) Reset() {
	s.freezeMu.Lock()
	defer s.freezeMu.Unlock()
	// Zero the record slices before truncating: the backing arrays are kept
	// for capacity, but stale pointers in the tail would pin the previous
	// scenario's records for the store's whole lifetime.
	clear(s.jobs)
	s.jobs = s.jobs[:0]
	clear(s.files)
	s.files = s.files[:0]
	clear(s.transfers)
	s.transfers = s.transfers[:0]
	clear(s.jobsByID)
	clear(s.filesByPanda)
	clear(s.evByLFN)
	clear(s.evByTask)
	clear(s.evByKey)
	clear(s.evByTaskKey)
	s.withTaskID = 0
	clear(s.taskByActivity)
	// The frozen indices are rebuilt from scratch by every Freeze (ranged
	// queries alias them), so there is no capacity worth keeping — drop the
	// references and let the old arrays go.
	s.jobsByEnd = nil
	s.evByStart = nil
	s.entriesByJob = nil
	s.frozen.Store(false)
}

// pandaTask identifies one job's file-row group: JEDI file rows carry both
// ids, and Algorithm 1's F'_j subset filters on the pair.
type pandaTask struct {
	panda, task int64
}

// JoinEntry pairs one JEDI file row with its pre-resolved candidate
// transfers: the events of the row's task that share its composite join
// key, in ingestion order. Both fields are read-only for callers.
type JoinEntry struct {
	File       *records.FileRecord
	Candidates []*records.TransferEvent
}

// JoinEntriesForJob returns the job's file rows (Algorithm 1's F'_j) with
// their join buckets resolved — the matcher's per-job probe. The groups
// and buckets are bound at Freeze, so the call does no join-key hashing
// and no allocation.
func (s *Store) JoinEntriesForJob(pandaID, jediTaskID int64) []JoinEntry {
	s.Freeze()
	return s.entriesByJob[pandaTask{pandaID, jediTaskID}]
}

// Counts of ingested records.
func (s *Store) JobCount() int      { return len(s.jobs) }
func (s *Store) FileCount() int     { return len(s.files) }
func (s *Store) TransferCount() int { return len(s.transfers) }

// TransfersWithTaskID counts events that retained a valid jeditaskid (the
// paper's 1,585,229 of 6,784,936). The counter is maintained at ingest.
func (s *Store) TransfersWithTaskID() int { return s.withTaskID }

// TaskTransfersByActivity returns the per-activity counts of events
// carrying a jeditaskid — Table 1's denominators, cached at ingest.
func (s *Store) TaskTransfersByActivity() map[records.Activity]int {
	out := make(map[records.Activity]int, len(s.taskByActivity))
	for a, n := range s.taskByActivity {
		out[a] = n
	}
	return out
}

// Jobs returns the jobs with EndTime in [from, to) and the given label
// ("" = any), sorted by pandaid. This mirrors the paper's query semantics:
// only jobs completed inside the window are reported. The window is
// resolved by binary search over the EndTime index.
func (s *Store) Jobs(from, to simtime.VTime, label records.SourceLabel) []*records.JobRecord {
	s.Freeze()
	seg := timeRange(s.jobsByEnd, from, to, func(j *records.JobRecord) simtime.VTime { return j.EndTime })
	var out []*records.JobRecord
	for _, j := range seg {
		if label == "" || j.Label == label {
			out = append(out, j)
		}
	}
	sort.SliceStable(out, func(i, k int) bool { return out[i].PandaID < out[k].PandaID })
	return out
}

// timeRange cuts the half-open [from, to) window out of a slice sorted by
// the time key that at extracts.
func timeRange[T any](sorted []T, from, to simtime.VTime, at func(T) simtime.VTime) []T {
	lo := sort.Search(len(sorted), func(i int) bool { return at(sorted[i]) >= from })
	hi := sort.Search(len(sorted), func(i int) bool { return at(sorted[i]) >= to })
	if hi < lo {
		hi = lo
	}
	return sorted[lo:hi]
}

// Job resolves a pandaid.
func (s *Store) Job(pandaID int64) (*records.JobRecord, bool) {
	j, ok := s.jobsByID[pandaID]
	return j, ok
}

// FilesForJob returns the JEDI file rows carrying the given pandaid and
// jeditaskid — Algorithm 1's F'_j subset.
func (s *Store) FilesForJob(pandaID, jediTaskID int64) []*records.FileRecord {
	var out []*records.FileRecord
	for _, f := range s.filesByPanda[pandaID] {
		if f.JediTaskID == jediTaskID {
			out = append(out, f)
		}
	}
	return out
}

// TransfersByLFN returns the transfer events for one logical file name.
func (s *Store) TransfersByLFN(lfn string) []*records.TransferEvent {
	return s.evByLFN[lfn]
}

// TransfersByTaskID returns the transfer events carrying a jeditaskid.
func (s *Store) TransfersByTaskID(jedi int64) []*records.TransferEvent {
	return s.evByTask[jedi]
}

// TransfersByKey returns the events sharing one composite join key, in
// ingestion order.
func (s *Store) TransfersByKey(key JoinKey) []*records.TransferEvent {
	return s.evByKey[key]
}

// TaskTransfersByKey returns the events of one JEDI task sharing the join
// key — the per-file probe of the indexed matcher. Events without a valid
// jeditaskid are never in this index, preserving the paper's
// "transfers with a valid jeditaskid" pre-selection.
func (s *Store) TaskTransfersByKey(jedi int64, key JoinKey) []*records.TransferEvent {
	return s.evByTaskKey[taskKey{jedi, key}]
}

// Transfers returns events with StartedAt in [from, to); from==to==0 means
// everything. Events are ordered by StartedAt (ties in ingestion order);
// the window is resolved by binary search over the StartedAt index and the
// returned slice aliases the index, so callers must not modify it.
func (s *Store) Transfers(from, to simtime.VTime) []*records.TransferEvent {
	s.Freeze()
	if from == 0 && to == 0 {
		return s.evByStart
	}
	return timeRange(s.evByStart, from, to, func(ev *records.TransferEvent) simtime.VTime { return ev.StartedAt })
}
