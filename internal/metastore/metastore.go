// Package metastore is the OpenSearch stand-in: an in-memory, indexed
// store of job records, JEDI file records, and Rucio transfer events, with
// the time-windowed queries the paper's analysis workflow (Fig. 4) issues.
// Records are immutable once ingested; all queries return the stored
// pointers, so callers must not mutate results.
package metastore

import (
	"sort"

	"panrucio/internal/records"
	"panrucio/internal/simtime"
)

// Store holds the three metadata indices.
type Store struct {
	jobs      []*records.JobRecord
	files     []*records.FileRecord
	transfers []*records.TransferEvent

	jobsByID     map[int64]*records.JobRecord
	filesByPanda map[int64][]*records.FileRecord
	evByLFN      map[string][]*records.TransferEvent
	evByTask     map[int64][]*records.TransferEvent
}

// New returns an empty store.
func New() *Store {
	return &Store{
		jobsByID:     make(map[int64]*records.JobRecord),
		filesByPanda: make(map[int64][]*records.FileRecord),
		evByLFN:      make(map[string][]*records.TransferEvent),
		evByTask:     make(map[int64][]*records.TransferEvent),
	}
}

// PutJob ingests a job record. Duplicate pandaids overwrite the index entry
// but both rows are retained, mirroring the at-least-once semantics of the
// production pipeline.
func (s *Store) PutJob(j *records.JobRecord) {
	s.jobs = append(s.jobs, j)
	s.jobsByID[j.PandaID] = j
}

// PutFile ingests a JEDI file-table row.
func (s *Store) PutFile(f *records.FileRecord) {
	s.files = append(s.files, f)
	s.filesByPanda[f.PandaID] = append(s.filesByPanda[f.PandaID], f)
}

// PutTransfer ingests a transfer event.
func (s *Store) PutTransfer(ev *records.TransferEvent) {
	s.transfers = append(s.transfers, ev)
	s.evByLFN[ev.LFN] = append(s.evByLFN[ev.LFN], ev)
	if ev.JediTaskID != 0 {
		s.evByTask[ev.JediTaskID] = append(s.evByTask[ev.JediTaskID], ev)
	}
}

// Counts of ingested records.
func (s *Store) JobCount() int      { return len(s.jobs) }
func (s *Store) FileCount() int     { return len(s.files) }
func (s *Store) TransferCount() int { return len(s.transfers) }

// TransfersWithTaskID counts events that retained a valid jeditaskid (the
// paper's 1,585,229 of 6,784,936).
func (s *Store) TransfersWithTaskID() int {
	n := 0
	for _, ev := range s.transfers {
		if ev.HasTaskID() {
			n++
		}
	}
	return n
}

// Jobs returns the jobs with EndTime in [from, to) and the given label
// ("" = any), sorted by pandaid. This mirrors the paper's query semantics:
// only jobs completed inside the window are reported.
func (s *Store) Jobs(from, to simtime.VTime, label records.SourceLabel) []*records.JobRecord {
	var out []*records.JobRecord
	for _, j := range s.jobs {
		if j.EndTime < from || j.EndTime >= to {
			continue
		}
		if label != "" && j.Label != label {
			continue
		}
		out = append(out, j)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].PandaID < out[k].PandaID })
	return out
}

// Job resolves a pandaid.
func (s *Store) Job(pandaID int64) (*records.JobRecord, bool) {
	j, ok := s.jobsByID[pandaID]
	return j, ok
}

// FilesForJob returns the JEDI file rows carrying the given pandaid and
// jeditaskid — Algorithm 1's F'_j subset.
func (s *Store) FilesForJob(pandaID, jediTaskID int64) []*records.FileRecord {
	var out []*records.FileRecord
	for _, f := range s.filesByPanda[pandaID] {
		if f.JediTaskID == jediTaskID {
			out = append(out, f)
		}
	}
	return out
}

// TransfersByLFN returns the transfer events for one logical file name.
func (s *Store) TransfersByLFN(lfn string) []*records.TransferEvent {
	return s.evByLFN[lfn]
}

// TransfersByTaskID returns the transfer events carrying a jeditaskid.
func (s *Store) TransfersByTaskID(jedi int64) []*records.TransferEvent {
	return s.evByTask[jedi]
}

// Transfers returns events with StartedAt in [from, to); from==to==0 means
// everything. Events are returned in ingestion order.
func (s *Store) Transfers(from, to simtime.VTime) []*records.TransferEvent {
	if from == 0 && to == 0 {
		return s.transfers
	}
	var out []*records.TransferEvent
	for _, ev := range s.transfers {
		if ev.StartedAt >= from && ev.StartedAt < to {
			out = append(out, ev)
		}
	}
	return out
}
