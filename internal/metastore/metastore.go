package metastore

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"panrucio/internal/records"
	"panrucio/internal/simtime"
)

// JoinKey is the composite join key shared by JEDI file rows and transfer
// events: the equality attributes of Algorithm 1 minus file size, which is
// method-dependent (Exact checks it, RM1/RM2 relax it) and therefore left
// to the matcher.
type JoinKey struct {
	LFN        string
	Scope      string
	Dataset    string
	ProdDBlock string
}

// FileKey is the join key of a JEDI file row.
func FileKey(f *records.FileRecord) JoinKey {
	return JoinKey{LFN: f.LFN, Scope: f.Scope, Dataset: f.Dataset, ProdDBlock: f.ProdDBlock}
}

// EventKey is the join key of a transfer event.
func EventKey(ev *records.TransferEvent) JoinKey {
	return JoinKey{LFN: ev.LFN, Scope: ev.Scope, Dataset: ev.Dataset, ProdDBlock: ev.ProdDBlock}
}

// DefaultShards is the shard count New selects. Fixed rather than
// GOMAXPROCS-derived so a store's layout is machine-independent; results
// are byte-identical for any shard count regardless (see the equivalence
// tests), so this is purely a performance default.
const DefaultShards = 8

// Store holds the metadata indices, partitioned into independent shards by
// jeditaskid hash. Records live in per-shard chunked arenas (no per-record
// heap objects) with their string attributes canonicalized through a
// store-global intern table; the join indices are keyed by 16-byte interned
// symbol tuples instead of string quadruples. Matching is task-local, so
// the matcher's probes (JoinEntriesForJob, TaskTransfersByKey) route to
// exactly one shard.
//
// Each shard's time-sorted view is segmented: rows land in a mutable tail
// whose indices are maintained incrementally, and tails seal into
// immutable sorted segments at SegmentRows (or on Seal). Every query —
// Jobs, Transfers, the matcher probes — answers at any point mid-run by
// merging sealed segments and tails through the (time, ingestion-seq)
// k-way merge; Freeze degenerates to "seal and compact the tails", builds
// the store-level merged indices the frozen fast path serves from, and
// leaves results byte-identical to the live path for any shard count and
// segment size.
type Store struct {
	shards  []*shard
	strings *internTable
	segRows int
	seq     uint32 // global put sequence (jobs + transfers)

	// jobsByID stays store-global: duplicate pandaids may hash to
	// different shards, and the index must keep exact last-put-wins
	// semantics. One pointer per job row.
	jobsByID map[int64]*records.JobRecord

	// Cached counters, maintained on PutTransfer.
	withTaskID     int
	taskByActivity map[records.Activity]int

	// Pending obs-counter deltas, batched on the single-writer ingest path
	// (a plain increment per put) and flushed to the process-wide metrics
	// at Freeze/Reset. Batching keeps the put hot loops free of atomic
	// read-modify-writes; scrapes between flushes read checkpoint-stale
	// counters, which is the granularity the serving layer publishes at
	// anyway.
	pendJobs      int64
	pendFiles     int64
	pendTransfers int64

	// Merged sorted time indices, built by Freeze from the per-shard runs.
	// jobsByEnd is ordered by EndTime, evByStart by StartedAt (ties keep
	// global ingestion order).
	jobsByEnd []*records.JobRecord
	evByStart []*records.TransferEvent

	// lfnIdx maps interned LFN symbols to that file's events in global
	// ingestion order. It is built lazily on the first TransfersByLFN /
	// TransfersByKey call — those queries are off the simulation and
	// matching hot paths, and skipping the eager per-event map upkeep is a
	// large share of the columnar layout's memory win.
	lfnMu    sync.Mutex
	lfnIdx   map[uint32][]*records.TransferEvent
	lfnBuilt bool

	frozen   atomic.Bool
	freezeMu sync.Mutex
}

// New returns an empty store with DefaultShards shards.
func New() *Store { return NewSharded(DefaultShards) }

// NewSharded returns an empty store with n shards (n < 1 selects
// DefaultShards) and the default segment size. Every query result is
// byte-identical for any n; the knob trades per-shard freeze/reset
// parallelism and matcher locality against fixed per-shard overhead.
func NewSharded(n int) *Store { return NewShardedSegmented(n, 0) }

// NewShardedSegmented is NewSharded with an explicit seal threshold: each
// shard's mutable tail seals into an immutable sorted segment once it
// holds segRows rows (< 1 selects DefaultSegmentRows). Like the shard
// count, the segment size is purely a performance knob — results are
// byte-identical for any value.
func NewShardedSegmented(n, segRows int) *Store {
	if n < 1 {
		n = DefaultShards
	}
	if segRows < 1 {
		segRows = DefaultSegmentRows
	}
	s := &Store{
		strings:        newInternTable(),
		segRows:        segRows,
		jobsByID:       make(map[int64]*records.JobRecord),
		taskByActivity: make(map[records.Activity]int),
	}
	s.shards = make([]*shard, n)
	for i := range s.shards {
		s.shards[i] = newShard(segRows)
	}
	return s
}

// ShardCount reports the number of shards.
func (s *Store) ShardCount() int { return len(s.shards) }

// SegmentRows reports the seal threshold the store was built with.
func (s *Store) SegmentRows() int { return s.segRows }

// SealedSegments reports the total number of sealed segments across all
// shards and both time indices — observability for the segment lifecycle
// (tail → seal → compact) the mid-run tests pin.
func (s *Store) SealedSegments() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.jobSegs.segments() + sh.evSegs.segments()
	}
	return n
}

// ShardFor returns the shard index owning a JEDI task — exposed so the
// matcher pipeline can give each worker shard-affine job subsets (one
// worker's probes then stay within one shard's arenas).
func (s *Store) ShardFor(jediTaskID int64) int {
	return int(mixTask(jediTaskID) % uint64(len(s.shards)))
}

// mixTask is the splitmix64 finalizer: a fixed, seed-free avalanche of the
// task id so shard routing is deterministic across runs and processes.
func mixTask(task int64) uint64 {
	x := uint64(task)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func (s *Store) nextSeq() uint32 {
	s.seq++
	return s.seq
}

// PutJob ingests a job record. Duplicate pandaids overwrite the index entry
// but both rows are retained, mirroring the at-least-once semantics of the
// production pipeline. The record is copied into its shard's arena; the
// caller's pointer is not retained.
func (s *Store) PutJob(j *records.JobRecord) {
	cp := *j
	cp.ComputingSite = s.strings.canon(cp.ComputingSite)
	p := s.shards[s.ShardFor(cp.JediTaskID)].putJob(cp, s.nextSeq())
	s.jobsByID[cp.PandaID] = p
	s.pendJobs++
	s.frozen.Store(false)
}

// PutFile ingests a JEDI file-table row, interning its join attributes.
// The row's interned join key is resolved here, once, so neither the
// freeze-time candidate binding nor the live matcher probe re-hashes the
// strings. The record is copied into its shard's arena.
func (s *Store) PutFile(f *records.FileRecord) {
	cp := *f
	key := symKey{
		lfn:        s.strings.sym(cp.LFN),
		scope:      s.strings.sym(cp.Scope),
		dataset:    s.strings.sym(cp.Dataset),
		prodDBlock: s.strings.sym(cp.ProdDBlock),
	}
	cp.LFN = s.strings.strs[key.lfn]
	cp.Scope = s.strings.strs[key.scope]
	cp.Dataset = s.strings.strs[key.dataset]
	cp.ProdDBlock = s.strings.strs[key.prodDBlock]
	s.shards[s.ShardFor(cp.JediTaskID)].putFile(cp, key)
	s.pendFiles++
	s.frozen.Store(false)
}

// PutTransfer ingests a transfer event, interning its join attributes and
// endpoint/activity labels. Events carrying a jeditaskid are routed to
// their task's shard (keeping the matcher's candidate buckets
// shard-complete); task-less background events are spread round-robin for
// balance — no task-local index ever sees them.
func (s *Store) PutTransfer(ev *records.TransferEvent) {
	cp := *ev
	key := symKey{
		lfn:        s.strings.sym(cp.LFN),
		scope:      s.strings.sym(cp.Scope),
		dataset:    s.strings.sym(cp.Dataset),
		prodDBlock: s.strings.sym(cp.ProdDBlock),
	}
	cp.LFN = s.strings.strs[key.lfn]
	cp.Scope = s.strings.strs[key.scope]
	cp.Dataset = s.strings.strs[key.dataset]
	cp.ProdDBlock = s.strings.strs[key.prodDBlock]
	cp.SourceRSE = s.strings.canon(cp.SourceRSE)
	cp.DestinationRSE = s.strings.canon(cp.DestinationRSE)
	cp.SourceSite = s.strings.canon(cp.SourceSite)
	cp.DestinationSite = s.strings.canon(cp.DestinationSite)
	cp.Activity = records.Activity(s.strings.canon(string(cp.Activity)))

	seq := s.nextSeq()
	var sh *shard
	if cp.JediTaskID != 0 {
		sh = s.shards[s.ShardFor(cp.JediTaskID)]
		s.withTaskID++
		s.taskByActivity[cp.Activity]++
	} else {
		sh = s.shards[int(seq)%len(s.shards)]
	}
	sh.putTransfer(cp, key, seq)
	s.pendTransfers++
	s.lfnBuilt = false
	s.frozen.Store(false)
}

// Freeze finalizes the store for the frozen fast path: every shard seals
// its tails, compacts its sealed segments into one run per arena, and
// binds the pre-resolved join entries — concurrently, one goroutine per
// shard — then the per-shard runs are merged into the store-level indices
// by (time, ingestion sequence), byte-identical to a single-store stable
// sort. Because sealed segments stay sorted, a re-freeze after further
// ingestion only sorts the new tail and re-merges, instead of re-sorting
// history. Freeze is idempotent and safe to call from concurrent readers;
// it is no longer a precondition for any query — an unfrozen store answers
// the same queries live from sealed+tail — but calling it eagerly (as
// sim.Run does) keeps the steady-state query path lock- and
// allocation-free.
func (s *Store) Freeze() {
	if s.frozen.Load() {
		return
	}
	s.freezeMu.Lock()
	defer s.freezeMu.Unlock()
	if s.frozen.Load() {
		return
	}
	s.flushIngestMetrics()
	t0 := time.Now()
	var wg sync.WaitGroup
	for _, sh := range s.shards {
		wg.Add(1)
		go func(sh *shard) {
			defer wg.Done()
			sh.freeze()
		}(sh)
	}
	wg.Wait()

	jobRuns := make([][]*records.JobRecord, len(s.shards))
	jobSeqs := make([][]uint32, len(s.shards))
	evRuns := make([][]*records.TransferEvent, len(s.shards))
	evSeqs := make([][]uint32, len(s.shards))
	for i, sh := range s.shards {
		jobRuns[i], jobSeqs[i] = sh.jobSegs.single()
		evRuns[i], evSeqs[i] = sh.evSegs.single()
	}
	// The merged indices alias the compacted segment runs only in the
	// single-shard case, and compacted runs are immutable — a re-freeze
	// after further ingestion compacts into fresh arrays — so slices
	// already handed out to callers are never disturbed.
	s.jobsByEnd, _ = mergeRuns(jobRuns, jobSeqs, jobEnd, false)
	s.evByStart, _ = mergeRuns(evRuns, evSeqs, evStart, false)
	s.frozen.Store(true)
	mFreezes.Inc()
	mFreezeSeconds.ObserveSince(t0)
}

// TailRows reports the rows currently sitting in mutable (unsealed) tails
// across all shards and both arenas. Zero on a frozen store.
func (s *Store) TailRows() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.jobs.len() - sh.jobSegs.start + sh.events.len() - sh.evSegs.start
	}
	return n
}

// flushIngestMetrics publishes the batched put counters and the tail-size
// gauge to the process-wide registry. Runs on the ingest/freeze path with
// freezeMu held (or from Reset), so the pending fields are stable. The
// gauge is captured before the freeze seals the tails: it reports how many
// rows had accumulated unsorted since the previous checkpoint.
func (s *Store) flushIngestMetrics() {
	mJobsIngested.Add(s.pendJobs)
	mFilesIngested.Add(s.pendFiles)
	mTransfersIngested.Add(s.pendTransfers)
	s.pendJobs, s.pendFiles, s.pendTransfers = 0, 0, 0
	mTailRows.Set(int64(s.TailRows()))
}

// Seal closes every shard's mutable tail into an immutable sorted segment
// without freezing: sorting happens in the background while ingestion
// continues into the fresh tails, and queries keep answering live over
// sealed+tail. A long-running ingester can call this at checkpoints to
// bound the tail-sort cost of mid-run queries; Freeze subsumes it.
func (s *Store) Seal() {
	for _, sh := range s.shards {
		sh.seal()
	}
}

// Reset empties the store for reuse while keeping the arena chunks, index
// maps, and intern-table capacity, so a long-lived store (one per sweep
// worker, say) does not rebuild from scratch for every scenario. Shards
// reset concurrently. The intern table's contents are cleared too — symbols
// restart at zero and the previous scenario's strings are released, so a
// reused worker store cannot leak strings across sweep scenarios. After
// Reset the store is unfrozen and indistinguishable from New()'s result —
// except that any records, query results, or join entries previously
// obtained from it are invalidated and must not be used.
//
// Reset must not run concurrently with ingestion or queries; the sweep
// engine guarantees this by giving each worker goroutine its own store.
func (s *Store) Reset() {
	s.freezeMu.Lock()
	defer s.freezeMu.Unlock()
	s.flushIngestMetrics()
	mTailRows.Set(0) // the tails are about to be dropped
	var wg sync.WaitGroup
	for _, sh := range s.shards {
		wg.Add(1)
		go func(sh *shard) {
			defer wg.Done()
			sh.reset()
		}(sh)
	}
	wg.Wait()
	clear(s.jobsByID)
	s.strings.reset()
	s.seq = 0
	s.withTaskID = 0
	clear(s.taskByActivity)
	// The merged indices are rebuilt from scratch by every Freeze (ranged
	// queries alias them), so there is no capacity worth keeping — drop the
	// references and let the old arrays go.
	s.jobsByEnd = nil
	s.evByStart = nil
	s.lfnIdx = nil
	s.lfnBuilt = false
	s.frozen.Store(false)
}

// pandaTask identifies one job's file-row group: JEDI file rows carry both
// ids, and Algorithm 1's F'_j subset filters on the pair.
type pandaTask struct {
	panda, task int64
}

// JoinEntry pairs one JEDI file row with its pre-resolved candidate
// transfers: the events of the row's task that share its composite join
// key, in ingestion order. Both fields are read-only for callers.
type JoinEntry struct {
	File       *records.FileRecord
	Candidates []*records.TransferEvent
}

// JoinEntriesForJob returns the job's file rows (Algorithm 1's F'_j) with
// their join buckets resolved — the matcher's per-job probe, which lives
// entirely in the task's shard. On a frozen store the groups and buckets
// were bound at Freeze, so the call is one hash route plus one map lookup —
// no join-key hashing and no allocation. Mid-run (unfrozen) the entries
// are assembled live from the incrementally maintained file and join-key
// indices, reflecting every record ingested so far.
func (s *Store) JoinEntriesForJob(pandaID, jediTaskID int64) []JoinEntry {
	sh := s.shards[s.ShardFor(jediTaskID)]
	if s.frozen.Load() {
		return sh.entriesByJob[pandaTask{pandaID, jediTaskID}]
	}
	return sh.liveEntriesForJob(pandaID, jediTaskID)
}

// Counts of ingested records.
func (s *Store) JobCount() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.jobs.len()
	}
	return n
}

func (s *Store) FileCount() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.files.len()
	}
	return n
}

func (s *Store) TransferCount() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.events.len()
	}
	return n
}

// InternedStrings reports the number of distinct strings in the intern
// table — observability for the string-leak contract of Reset.
func (s *Store) InternedStrings() int { return s.strings.size() }

// TransfersWithTaskID counts events that retained a valid jeditaskid (the
// paper's 1,585,229 of 6,784,936). The counter is maintained at ingest.
func (s *Store) TransfersWithTaskID() int { return s.withTaskID }

// TaskTransfersByActivity returns the per-activity counts of events
// carrying a jeditaskid — Table 1's denominators, cached at ingest.
func (s *Store) TaskTransfersByActivity() map[records.Activity]int {
	out := make(map[records.Activity]int, len(s.taskByActivity))
	for a, n := range s.taskByActivity {
		out[a] = n
	}
	return out
}

// Jobs returns the jobs with EndTime in [from, to) and the given label
// ("" = any), sorted by pandaid. This mirrors the paper's query semantics:
// only jobs completed inside the window are reported. On a frozen store the
// window is resolved by binary search over the merged EndTime index; on a
// live store it is merged on the fly from every shard's sealed segments and
// tail — identical results either way.
func (s *Store) Jobs(from, to simtime.VTime, label records.SourceLabel) []*records.JobRecord {
	var seg []*records.JobRecord
	if s.frozen.Load() {
		seg = timeRange(s.jobsByEnd, from, to, jobEnd)
	} else {
		seg = s.liveJobWindow(from, to)
	}
	var out []*records.JobRecord
	for _, j := range seg {
		if label == "" || j.Label == label {
			out = append(out, j)
		}
	}
	sort.SliceStable(out, func(i, k int) bool { return out[i].PandaID < out[k].PandaID })
	return out
}

// liveJobWindow merges the [from, to) EndTime window across every shard's
// sealed segments and tail, ordered by (EndTime, ingestion seq).
func (s *Store) liveJobWindow(from, to simtime.VTime) []*records.JobRecord {
	var runs [][]*records.JobRecord
	var seqs [][]uint32
	for _, sh := range s.shards {
		sh.jobSegs.windows(&sh.jobs, sh.jobSeq, from, to, false, &runs, &seqs)
	}
	out, _ := mergeRuns(runs, seqs, jobEnd, false)
	return out
}

// timeRange cuts the half-open [from, to) window out of a slice sorted by
// the time key that at extracts.
func timeRange[T any](sorted []T, from, to simtime.VTime, at func(T) simtime.VTime) []T {
	lo := sort.Search(len(sorted), func(i int) bool { return at(sorted[i]) >= from })
	hi := sort.Search(len(sorted), func(i int) bool { return at(sorted[i]) >= to })
	if hi < lo {
		hi = lo
	}
	return sorted[lo:hi]
}

// Job resolves a pandaid (the latest ingested row for duplicate ids).
func (s *Store) Job(pandaID int64) (*records.JobRecord, bool) {
	j, ok := s.jobsByID[pandaID]
	return j, ok
}

// FilesForJob returns the JEDI file rows carrying the given pandaid and
// jeditaskid — Algorithm 1's F'_j subset. File rows live in their task's
// shard, so this probes exactly one shard.
func (s *Store) FilesForJob(pandaID, jediTaskID int64) []*records.FileRecord {
	var out []*records.FileRecord
	for _, fe := range s.shards[s.ShardFor(jediTaskID)].filesByPanda[pandaID] {
		if fe.row.JediTaskID == jediTaskID {
			out = append(out, fe.row)
		}
	}
	return out
}

// TransfersByLFN returns the transfer events for one logical file name, in
// ingestion order. Served from the lazily built per-LFN index (see lfnIdx);
// the first call after an ingest pays the build.
func (s *Store) TransfersByLFN(lfn string) []*records.TransferEvent {
	id, ok := s.strings.lookup(lfn)
	if !ok {
		return nil
	}
	return s.lfnIndex()[id]
}

// lfnIndex returns the per-LFN buckets, building them on first use by
// merging the shards' event arenas in global ingestion order.
func (s *Store) lfnIndex() map[uint32][]*records.TransferEvent {
	s.lfnMu.Lock()
	defer s.lfnMu.Unlock()
	if s.lfnBuilt {
		return s.lfnIdx
	}
	idx := make(map[uint32][]*records.TransferEvent)
	heads := make([]int, len(s.shards))
	remaining := s.TransferCount()
	for remaining > 0 {
		best := -1
		for i, sh := range s.shards {
			if heads[i] >= sh.events.len() {
				continue
			}
			if best == -1 || sh.evSeq[heads[i]] < s.shards[best].evSeq[heads[best]] {
				best = i
			}
		}
		ev := s.shards[best].events.at(heads[best])
		if id, ok := s.strings.lookup(ev.LFN); ok {
			idx[id] = append(idx[id], ev)
		}
		heads[best]++
		remaining--
	}
	s.lfnIdx = idx
	s.lfnBuilt = true
	return idx
}

// TransfersByTaskID returns the transfer events carrying a jeditaskid, in
// ingestion order — a single-shard probe.
func (s *Store) TransfersByTaskID(jedi int64) []*records.TransferEvent {
	return s.shards[s.ShardFor(jedi)].evByTask[jedi]
}

// TransfersByKey returns the events sharing one composite join key, in
// ingestion order — the per-LFN bucket narrowed by the remaining three
// attributes (LFNs rarely repeat across keys, so the filter scans a
// handful of events).
func (s *Store) TransfersByKey(key JoinKey) []*records.TransferEvent {
	var out []*records.TransferEvent
	for _, ev := range s.TransfersByLFN(key.LFN) {
		if ev.Scope == key.Scope && ev.Dataset == key.Dataset && ev.ProdDBlock == key.ProdDBlock {
			out = append(out, ev)
		}
	}
	return out
}

// TaskTransfersByKey returns the events of one JEDI task sharing the join
// key — the per-file probe of the indexed matcher, answered entirely by the
// task's shard. Events without a valid jeditaskid are never in this index,
// preserving the paper's "transfers with a valid jeditaskid" pre-selection.
func (s *Store) TaskTransfersByKey(jedi int64, key JoinKey) []*records.TransferEvent {
	lfn, ok := s.strings.lookup(key.LFN)
	if !ok {
		return nil
	}
	scope, ok := s.strings.lookup(key.Scope)
	if !ok {
		return nil
	}
	ds, ok := s.strings.lookup(key.Dataset)
	if !ok {
		return nil
	}
	pdb, ok := s.strings.lookup(key.ProdDBlock)
	if !ok {
		return nil
	}
	sk := taskSymKey{jedi, symKey{lfn, scope, ds, pdb}}
	return s.shards[s.ShardFor(jedi)].evByTaskKey[sk]
}

// Transfers returns events with StartedAt in [from, to); from==to==0 means
// everything. Events are ordered by StartedAt (ties in global ingestion
// order). On a frozen store the window is resolved by binary search over
// the merged StartedAt index and the returned slice aliases it; on a live
// store the window is merged on the fly from sealed segments and tails.
// Either way callers must not modify the result.
func (s *Store) Transfers(from, to simtime.VTime) []*records.TransferEvent {
	if s.frozen.Load() {
		if from == 0 && to == 0 {
			return s.evByStart
		}
		return timeRange(s.evByStart, from, to, evStart)
	}
	var runs [][]*records.TransferEvent
	var seqs [][]uint32
	all := from == 0 && to == 0
	for _, sh := range s.shards {
		sh.evSegs.windows(&sh.events, sh.evSeq, from, to, all, &runs, &seqs)
	}
	out, _ := mergeRuns(runs, seqs, evStart, false)
	return out
}
