package metastore

import (
	"testing"

	"panrucio/internal/records"
	"panrucio/internal/simtime"
)

func TestJobQueriesWindowAndLabel(t *testing.T) {
	s := New()
	s.PutJob(&records.JobRecord{PandaID: 3, EndTime: 50, Label: records.LabelUser})
	s.PutJob(&records.JobRecord{PandaID: 1, EndTime: 150, Label: records.LabelUser})
	s.PutJob(&records.JobRecord{PandaID: 2, EndTime: 150, Label: records.LabelManaged})
	s.PutJob(&records.JobRecord{PandaID: 4, EndTime: 250, Label: records.LabelUser})

	got := s.Jobs(100, 200, records.LabelUser)
	if len(got) != 1 || got[0].PandaID != 1 {
		t.Fatalf("windowed user jobs = %v", got)
	}
	all := s.Jobs(0, 1000, "")
	if len(all) != 4 {
		t.Fatalf("all jobs = %d", len(all))
	}
	// Sorted by pandaid.
	for i := 1; i < len(all); i++ {
		if all[i-1].PandaID >= all[i].PandaID {
			t.Fatal("jobs not sorted by pandaid")
		}
	}
	if _, ok := s.Job(2); !ok {
		t.Error("Job(2) lookup failed")
	}
	if _, ok := s.Job(99); ok {
		t.Error("phantom job")
	}
	if s.JobCount() != 4 {
		t.Error("JobCount wrong")
	}
}

func TestFilesForJobFiltersTask(t *testing.T) {
	s := New()
	s.PutFile(&records.FileRecord{PandaID: 10, JediTaskID: 1, LFN: "a"})
	s.PutFile(&records.FileRecord{PandaID: 10, JediTaskID: 2, LFN: "b"})
	s.PutFile(&records.FileRecord{PandaID: 11, JediTaskID: 1, LFN: "c"})
	got := s.FilesForJob(10, 1)
	if len(got) != 1 || got[0].LFN != "a" {
		t.Fatalf("FilesForJob = %v", got)
	}
	if s.FileCount() != 3 {
		t.Error("FileCount wrong")
	}
	if s.FilesForJob(99, 1) != nil {
		t.Error("phantom files")
	}
}

func TestTransferIndexes(t *testing.T) {
	s := New()
	s.PutTransfer(&records.TransferEvent{EventID: 1, LFN: "x", JediTaskID: 5, StartedAt: 10})
	s.PutTransfer(&records.TransferEvent{EventID: 2, LFN: "x", JediTaskID: 0, StartedAt: 20})
	s.PutTransfer(&records.TransferEvent{EventID: 3, LFN: "y", JediTaskID: 5, StartedAt: 30})

	if got := s.TransfersByLFN("x"); len(got) != 2 {
		t.Fatalf("TransfersByLFN(x) = %d", len(got))
	}
	if got := s.TransfersByTaskID(5); len(got) != 2 {
		t.Fatalf("TransfersByTaskID(5) = %d", len(got))
	}
	if s.TransfersWithTaskID() != 2 {
		t.Errorf("TransfersWithTaskID = %d", s.TransfersWithTaskID())
	}
	if got := s.Transfers(15, 35); len(got) != 2 {
		t.Fatalf("windowed transfers = %d", len(got))
	}
	if got := s.Transfers(0, 0); len(got) != 3 {
		t.Fatalf("all transfers = %d", len(got))
	}
	if s.TransferCount() != 3 {
		t.Error("TransferCount wrong")
	}
}

func TestJoinKeyIndices(t *testing.T) {
	s := New()
	key := JoinKey{LFN: "f1", Scope: "data25", Dataset: "ds", ProdDBlock: "pb"}
	mk := func(id, task int64) *records.TransferEvent {
		return &records.TransferEvent{
			EventID: id, LFN: key.LFN, Scope: key.Scope, Dataset: key.Dataset,
			ProdDBlock: key.ProdDBlock, JediTaskID: task,
			Activity: records.AnalysisDownload,
		}
	}
	s.PutTransfer(mk(1, 5))
	s.PutTransfer(mk(2, 5))
	s.PutTransfer(mk(3, 6))
	s.PutTransfer(mk(4, 0)) // no jeditaskid: excluded from the task index
	other := mk(5, 5)
	other.Dataset = "other"
	s.PutTransfer(other)

	if got := s.TransfersByKey(key); len(got) != 4 {
		t.Fatalf("TransfersByKey = %d events, want 4", len(got))
	}
	got := s.TaskTransfersByKey(5, key)
	if len(got) != 2 || got[0].EventID != 1 || got[1].EventID != 2 {
		t.Fatalf("TaskTransfersByKey(5) = %v, want events 1,2 in ingestion order", got)
	}
	if got := s.TaskTransfersByKey(6, key); len(got) != 1 || got[0].EventID != 3 {
		t.Fatalf("TaskTransfersByKey(6) wrong: %v", got)
	}
	if got := s.TaskTransfersByKey(7, key); got != nil {
		t.Errorf("phantom task bucket: %v", got)
	}
	f := &records.FileRecord{LFN: key.LFN, Scope: key.Scope, Dataset: key.Dataset, ProdDBlock: key.ProdDBlock}
	if FileKey(f) != key || EventKey(mk(9, 1)) != key {
		t.Error("FileKey/EventKey disagree with the composite key")
	}
	counts := s.TaskTransfersByActivity()
	if counts[records.AnalysisDownload] != 4 {
		t.Errorf("TaskTransfersByActivity = %v, want 4 task-carrying downloads", counts)
	}
	counts[records.AnalysisDownload] = 99 // callers get a copy
	if s.TaskTransfersByActivity()[records.AnalysisDownload] != 4 {
		t.Error("TaskTransfersByActivity exposed internal state")
	}
}

func TestRangedQueriesMatchLinearScan(t *testing.T) {
	s := New()
	// StartedAt/EndTime values deliberately out of order and with ties.
	starts := []simtime.VTime{50, 10, 30, 30, 90, 70, 10, 60}
	for i, at := range starts {
		s.PutTransfer(&records.TransferEvent{EventID: int64(i + 1), StartedAt: at})
		s.PutJob(&records.JobRecord{PandaID: int64(i + 1), EndTime: at, Label: records.LabelUser})
	}
	windows := [][2]simtime.VTime{{0, 100}, {10, 30}, {30, 31}, {0, 10}, {95, 99}, {60, 50}}
	for _, w := range windows {
		from, to := w[0], w[1]
		var wantEv int
		for _, at := range starts {
			if at >= from && at < to {
				wantEv++
			}
		}
		if got := len(s.Transfers(from, to)); got != wantEv {
			t.Errorf("Transfers(%d,%d) = %d events, want %d", from, to, got, wantEv)
		}
		if got := len(s.Jobs(from, to, records.LabelUser)); got != wantEv {
			t.Errorf("Jobs(%d,%d) = %d jobs, want %d", from, to, got, wantEv)
		}
	}
	// Time-ordered output with ingestion-order ties.
	all := s.Transfers(0, 100)
	for i := 1; i < len(all); i++ {
		if all[i-1].StartedAt > all[i].StartedAt {
			t.Fatal("Transfers not ordered by StartedAt")
		}
		if all[i-1].StartedAt == all[i].StartedAt && all[i-1].EventID > all[i].EventID {
			t.Fatal("StartedAt ties not in ingestion order")
		}
	}
}

func TestFreezeThenIngestRebuildsIndices(t *testing.T) {
	s := New()
	s.PutTransfer(&records.TransferEvent{EventID: 1, StartedAt: 10, JediTaskID: 1})
	s.Freeze()
	if got := len(s.Transfers(0, 100)); got != 1 {
		t.Fatalf("pre-ingest window = %d", got)
	}
	// Ingest after freeze: the next ranged query must see the new event.
	s.PutTransfer(&records.TransferEvent{EventID: 2, StartedAt: 5, JediTaskID: 2})
	s.PutJob(&records.JobRecord{PandaID: 1, EndTime: 50})
	got := s.Transfers(0, 100)
	if len(got) != 2 || got[0].EventID != 2 {
		t.Fatalf("post-ingest window = %v, want re-sorted [2 1]", got)
	}
	if len(s.Jobs(0, 100, "")) != 1 {
		t.Error("job ingested after freeze not visible")
	}
	if s.TransfersWithTaskID() != 2 {
		t.Errorf("cached taskid counter = %d", s.TransfersWithTaskID())
	}
}

// TestRefreezeDoesNotCorruptHandedOutSlices: ranged-query results alias
// the sorted index, so a rebuild after further ingestion must build a
// fresh array rather than re-sorting under the caller's slice.
func TestRefreezeDoesNotCorruptHandedOutSlices(t *testing.T) {
	s := New()
	for i := 1; i <= 8; i++ {
		s.PutTransfer(&records.TransferEvent{EventID: int64(i), StartedAt: simtime.VTime(i * 10)})
	}
	window := s.Transfers(30, 60) // events 3,4,5
	if len(window) != 3 {
		t.Fatalf("window = %d events", len(window))
	}
	s.PutTransfer(&records.TransferEvent{EventID: 9, StartedAt: 5}) // re-sorts on next query
	_ = s.Transfers(0, 100)
	for i, want := range []int64{3, 4, 5} {
		if window[i].EventID != want {
			t.Fatalf("handed-out slice corrupted by re-freeze: window[%d] = event %d, want %d",
				i, window[i].EventID, want)
		}
	}
}

func TestDuplicatePandaIDKeepsBothRows(t *testing.T) {
	s := New()
	s.PutJob(&records.JobRecord{PandaID: 7, EndTime: 10, Label: records.LabelUser})
	s.PutJob(&records.JobRecord{PandaID: 7, EndTime: 20, Label: records.LabelUser})
	if s.JobCount() != 2 {
		t.Errorf("rows = %d, want at-least-once retention of both", s.JobCount())
	}
	j, ok := s.Job(7)
	if !ok || j.EndTime != 20 {
		t.Error("index should point at the latest ingest")
	}
	if got := s.Jobs(0, 100, records.LabelUser); len(got) != 2 {
		t.Errorf("windowed query returned %d rows", len(got))
	}
}

func TestResetReusesStoreAcrossScenarios(t *testing.T) {
	s := New()
	fill := func(n int) {
		for i := 1; i <= n; i++ {
			s.PutJob(&records.JobRecord{PandaID: int64(i), JediTaskID: 1, EndTime: simtime.VTime(i), Label: records.LabelUser})
			s.PutFile(&records.FileRecord{PandaID: int64(i), JediTaskID: 1, LFN: "f", Scope: "s", Dataset: "d"})
			s.PutTransfer(&records.TransferEvent{EventID: int64(i), JediTaskID: 1,
				LFN: "f", Scope: "s", Dataset: "d", StartedAt: simtime.VTime(i), Activity: records.AnalysisDownload})
		}
	}
	fill(5)
	s.Freeze()
	if len(s.JoinEntriesForJob(1, 1)) != 1 {
		t.Fatal("join entries missing before reset")
	}

	s.Reset()
	if s.JobCount() != 0 || s.FileCount() != 0 || s.TransferCount() != 0 || s.TransfersWithTaskID() != 0 {
		t.Fatalf("reset left records behind: %d/%d/%d", s.JobCount(), s.FileCount(), s.TransferCount())
	}
	if got := s.Jobs(0, 100, ""); len(got) != 0 {
		t.Fatalf("ranged query after reset returned %d jobs", len(got))
	}
	if got := s.TaskTransfersByActivity(); len(got) != 0 {
		t.Fatalf("activity counters survived reset: %v", got)
	}

	// The second scenario must be indistinguishable from a fresh store.
	fill(3)
	if s.TransferCount() != 3 || s.TransfersWithTaskID() != 3 {
		t.Fatalf("counts after refill: %d transfers, %d with task id", s.TransferCount(), s.TransfersWithTaskID())
	}
	if got := s.Jobs(0, 100, records.LabelUser); len(got) != 3 {
		t.Fatalf("jobs after refill = %d", len(got))
	}
	entries := s.JoinEntriesForJob(2, 1)
	if len(entries) != 1 || len(entries[0].Candidates) != 3 {
		t.Fatalf("join entries after refill: %d entries", len(entries))
	}
}
