package metastore

import (
	"testing"

	"panrucio/internal/records"
)

func TestJobQueriesWindowAndLabel(t *testing.T) {
	s := New()
	s.PutJob(&records.JobRecord{PandaID: 3, EndTime: 50, Label: records.LabelUser})
	s.PutJob(&records.JobRecord{PandaID: 1, EndTime: 150, Label: records.LabelUser})
	s.PutJob(&records.JobRecord{PandaID: 2, EndTime: 150, Label: records.LabelManaged})
	s.PutJob(&records.JobRecord{PandaID: 4, EndTime: 250, Label: records.LabelUser})

	got := s.Jobs(100, 200, records.LabelUser)
	if len(got) != 1 || got[0].PandaID != 1 {
		t.Fatalf("windowed user jobs = %v", got)
	}
	all := s.Jobs(0, 1000, "")
	if len(all) != 4 {
		t.Fatalf("all jobs = %d", len(all))
	}
	// Sorted by pandaid.
	for i := 1; i < len(all); i++ {
		if all[i-1].PandaID >= all[i].PandaID {
			t.Fatal("jobs not sorted by pandaid")
		}
	}
	if _, ok := s.Job(2); !ok {
		t.Error("Job(2) lookup failed")
	}
	if _, ok := s.Job(99); ok {
		t.Error("phantom job")
	}
	if s.JobCount() != 4 {
		t.Error("JobCount wrong")
	}
}

func TestFilesForJobFiltersTask(t *testing.T) {
	s := New()
	s.PutFile(&records.FileRecord{PandaID: 10, JediTaskID: 1, LFN: "a"})
	s.PutFile(&records.FileRecord{PandaID: 10, JediTaskID: 2, LFN: "b"})
	s.PutFile(&records.FileRecord{PandaID: 11, JediTaskID: 1, LFN: "c"})
	got := s.FilesForJob(10, 1)
	if len(got) != 1 || got[0].LFN != "a" {
		t.Fatalf("FilesForJob = %v", got)
	}
	if s.FileCount() != 3 {
		t.Error("FileCount wrong")
	}
	if s.FilesForJob(99, 1) != nil {
		t.Error("phantom files")
	}
}

func TestTransferIndexes(t *testing.T) {
	s := New()
	s.PutTransfer(&records.TransferEvent{EventID: 1, LFN: "x", JediTaskID: 5, StartedAt: 10})
	s.PutTransfer(&records.TransferEvent{EventID: 2, LFN: "x", JediTaskID: 0, StartedAt: 20})
	s.PutTransfer(&records.TransferEvent{EventID: 3, LFN: "y", JediTaskID: 5, StartedAt: 30})

	if got := s.TransfersByLFN("x"); len(got) != 2 {
		t.Fatalf("TransfersByLFN(x) = %d", len(got))
	}
	if got := s.TransfersByTaskID(5); len(got) != 2 {
		t.Fatalf("TransfersByTaskID(5) = %d", len(got))
	}
	if s.TransfersWithTaskID() != 2 {
		t.Errorf("TransfersWithTaskID = %d", s.TransfersWithTaskID())
	}
	if got := s.Transfers(15, 35); len(got) != 2 {
		t.Fatalf("windowed transfers = %d", len(got))
	}
	if got := s.Transfers(0, 0); len(got) != 3 {
		t.Fatalf("all transfers = %d", len(got))
	}
	if s.TransferCount() != 3 {
		t.Error("TransferCount wrong")
	}
}

func TestDuplicatePandaIDKeepsBothRows(t *testing.T) {
	s := New()
	s.PutJob(&records.JobRecord{PandaID: 7, EndTime: 10, Label: records.LabelUser})
	s.PutJob(&records.JobRecord{PandaID: 7, EndTime: 20, Label: records.LabelUser})
	if s.JobCount() != 2 {
		t.Errorf("rows = %d, want at-least-once retention of both", s.JobCount())
	}
	j, ok := s.Job(7)
	if !ok || j.EndTime != 20 {
		t.Error("index should point at the latest ingest")
	}
	if got := s.Jobs(0, 100, records.LabelUser); len(got) != 2 {
		t.Errorf("windowed query returned %d rows", len(got))
	}
}
