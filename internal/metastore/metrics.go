package metastore

import "panrucio/internal/obs"

// Process-wide metastore metrics, registered in the obs default registry.
// Counters and histograms aggregate over every store in the process (the
// sweep engine runs one store per worker).
//
// The per-row ingest counters and the tail gauge are NOT updated per put:
// the single-writer ingest path batches them as plain increments on the
// store and flushes at Freeze/Reset (see flushIngestMetrics), so the put
// hot loops carry no atomic read-modify-writes at all. A scrape between
// flushes therefore reads values as of the last freeze — checkpoint
// granularity, which is when the serving layer opens read windows anyway.
// Seal/merge/freeze metrics update at reorganization time, where one
// atomic op amortizes over thousands of rows. The overhead benchmark
// (bench/BENCH_obs.json) pins the total ingest-path cost.
var (
	mJobsIngested = obs.Default().Counter("metastore_jobs_ingested_total",
		"job rows ingested across all stores (flushed at freeze)")
	mFilesIngested = obs.Default().Counter("metastore_files_ingested_total",
		"JEDI file rows ingested across all stores (flushed at freeze)")
	mTransfersIngested = obs.Default().Counter("metastore_transfers_ingested_total",
		"transfer events ingested across all stores (flushed at freeze)")
	mTailRows = obs.Default().Gauge("metastore_tail_rows",
		"unsealed tail rows pending at the last freeze (pre-seal capture)")
	mSeals = obs.Default().Counter("metastore_seals_total",
		"tail seals (immutable sorted segments created)")
	mSealRows = obs.Default().Histogram("metastore_seal_rows",
		"rows per sealed segment", obs.SizeBuckets)
	mSealSortSeconds = obs.Default().Histogram("metastore_seal_sort_seconds",
		"background (time, seq) sort latency of one sealed segment", obs.DefBuckets)
	mMergeWidth = obs.Default().Histogram("metastore_merge_width",
		"sorted runs per k-way merge (live windows, compaction, freeze)", obs.SizeBuckets)
	mFreezes = obs.Default().Counter("metastore_freezes_total",
		"store freezes that did reorganization work (idempotent fast-path hits excluded)")
	mFreezeSeconds = obs.Default().Histogram("metastore_freeze_seconds",
		"wall time of one reorganizing freeze", obs.DefBuckets)
	mCommitRows = obs.Default().Counter("metastore_commit_rows_total",
		"rows covered by seal-time integrity commitments (background, off the ingest path)")
	mCommitSeconds = obs.Default().Histogram("metastore_commit_seconds",
		"background commitment (row hashing) latency of one sealed segment", obs.DefBuckets)
	mAudits = obs.Default().Counter("metastore_audits_total",
		"integrity audits run (full, incremental, and windowed)")
	mAuditRows = obs.Default().Counter("metastore_audit_rows_total",
		"sealed rows re-hashed and checked against their commitments")
	mAuditViolations = obs.Default().Counter("metastore_audit_violations_total",
		"commitment violations detected across all audits")
	mAuditSeconds = obs.Default().Histogram("metastore_audit_seconds",
		"wall time of one integrity audit", obs.DefBuckets)
)
