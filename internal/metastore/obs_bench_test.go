package metastore_test

import (
	"testing"

	"panrucio/internal/metastore"
	"panrucio/internal/obs"
)

// benchIngestObs is the observability overhead probe: the identical ingest
// + freeze workload with the metrics gate on or off. The two variants'
// events/sec delta is the whole cost of the instrumentation (counter and
// histogram updates on every Put, seal, and merge); the PR's acceptance
// bound is <= 5%, recorded in bench/BENCH_obs.json.
func benchIngestObs(b *testing.B, enabled bool) {
	obs.SetEnabled(enabled)
	defer obs.SetEnabled(true)
	b.ReportAllocs()
	var events float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := metastore.NewShardedSegmented(0, 2048)
		events += float64(ingestWorkload(s, 100, 10, 8))
	}
	b.StopTimer()
	b.ReportMetric(events/b.Elapsed().Seconds(), "events/sec")
}

func BenchmarkIngestObsOn(b *testing.B)  { benchIngestObs(b, true) }
func BenchmarkIngestObsOff(b *testing.B) { benchIngestObs(b, false) }
