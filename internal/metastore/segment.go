package metastore

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"panrucio/internal/simtime"
)

// DefaultSegmentRows is the tail-size threshold at which a shard seals its
// mutable tail into an immutable sorted segment. Fixed rather than derived
// from the ingest volume so a store's segment layout is reproducible for a
// given put stream; query results are byte-identical for any value (see the
// cut-point equivalence tests), so this is purely a performance default
// trading seal frequency against per-query tail-sort cost.
const DefaultSegmentRows = 1 << 15

// segRun is one (time, ingestion-sequence) sorted run: the contents of a
// sealed segment, a sorted tail view, or a binary-searched window into
// either. rows and seqs are parallel; once a run has been sorted it is
// immutable, so windows may alias it freely.
//
// Sealed runs additionally carry their integrity commitment (see
// commit.go): a per-row hash array parallel to rows, the chain head over
// the (time, seq) order, the order-independent XOR aggregate, and the row
// count at commitment time. Tail views and windows leave these zero.
type segRun[T any] struct {
	rows []*T
	seqs []uint32

	hashes    []uint64 // seal-time row hashes, parallel to rows
	chain     uint64   // running chain over hashes in (time, seq) order
	agg       uint64   // XOR of all row hashes (order-independent)
	committed int      // len(rows) at commitment time
}

// commitRows computes the run's integrity commitment from its current
// contents: the per-row hashes in (time, seq) order, the chain head, the
// XOR aggregate, and the committed row count. Runs in the seal's
// background goroutine after sortByTime, so the ingest path never pays
// for hashing.
func (r *segRun[T]) commitRows(hash func(*T, uint32) uint64) {
	r.hashes = make([]uint64, len(r.rows))
	agg, chain := uint64(0), chainSeed()
	for i, p := range r.rows {
		h := hash(p, r.seqs[i])
		r.hashes[i] = h
		agg ^= h
		chain = chainMix(chain, h)
	}
	r.agg, r.chain, r.committed = agg, chain, len(r.rows)
}

// window cuts the half-open [from, to) time window out of the run by
// binary search. The returned run aliases the receiver.
func (r *segRun[T]) window(from, to simtime.VTime, at func(*T) simtime.VTime) segRun[T] {
	lo := sort.Search(len(r.rows), func(i int) bool { return at(r.rows[i]) >= from })
	hi := sort.Search(len(r.rows), func(i int) bool { return at(r.rows[i]) >= to })
	if hi < lo {
		hi = lo
	}
	return segRun[T]{rows: r.rows[lo:hi], seqs: r.seqs[lo:hi]}
}

// sortByTime stable-sorts the run by its time key in place. Rows enter in
// ingestion (sequence) order, so stability makes the result ordered by
// (time, seq) without comparing sequences.
func (r *segRun[T]) sortByTime(at func(*T) simtime.VTime) {
	n := len(r.rows)
	times := make([]simtime.VTime, n)
	for i, p := range r.rows {
		times[i] = at(p)
	}
	perm := make([]int32, n)
	for i := range perm {
		perm[i] = int32(i)
	}
	sort.SliceStable(perm, func(i, k int) bool { return times[perm[i]] < times[perm[k]] })
	rows := make([]*T, n)
	seqs := make([]uint32, n)
	for i, p := range perm {
		rows[i] = r.rows[p]
		seqs[i] = r.seqs[p]
	}
	copy(r.rows, rows)
	copy(r.seqs, seqs)
}

// segIndex is the segmented (time, seq) index over one arena: an ordered
// list of immutable sealed segments (each a sorted run over a contiguous
// slab of arena rows) plus a mutable tail — the rows ingested since the
// last seal, whose sorted view is built lazily and cached until the next
// append invalidates it.
//
// The single-writer ingest contract of the store extends here: noteAppend,
// seal, and reset run only on the ingest path. Sealing is the one
// concurrent step — the segment's rows are captured synchronously, then
// sorted by a background goroutine so ingestion continues while the sort
// runs; every reader synchronizes through wait() before touching sealed
// runs. Readers may run concurrently with each other at any time (the
// serving layer batches them into windows where no ingest is in flight):
// the lazily built tail view is published through an atomic pointer, so
// racing readers at worst build the same immutable view twice.
type segIndex[T any] struct {
	at    func(*T) simtime.VTime
	limit int // seal threshold in rows

	// hash computes one row's commitment hash from (row, global seq); nil
	// disables commitments (bare indices built by tests). Set once at
	// construction, before any seal.
	hash func(*T, uint32) uint64

	sealed []*segRun[T]
	start  int // first arena row of the tail

	// tail caches the sorted view of rows [start, arena.len()); cleared
	// after an append or a seal. Atomic so concurrent readers can share
	// (or independently rebuild) the view without serializing on a lock.
	tail atomic.Pointer[segRun[T]]

	// sealing publishes the background sort; committing additionally
	// publishes the commitment hashes computed after it. Queries only need
	// the sort (wait); audits, compaction, and reset need the commitments
	// too (waitCommits), so hashing stays off the query critical path.
	sealing    sync.WaitGroup
	committing sync.WaitGroup
}

// noteAppend records that one row was appended to the arena, invalidating
// the cached tail view and sealing the tail once it reaches the limit.
func (x *segIndex[T]) noteAppend(a *arena[T], seqs []uint32) {
	x.tail.Store(nil)
	if a.len()-x.start >= x.limit {
		x.seal(a, seqs)
	}
}

// seal compacts the current tail into an immutable sealed segment and
// starts a fresh (empty) tail. The segment's rows and sequences are
// captured synchronously — arena slots already written never move or
// change, so the capture is a plain copy — and the (time, seq) sort runs
// in a background goroutine, overlapping subsequent ingestion. An empty
// tail seals to nothing.
func (x *segIndex[T]) seal(a *arena[T], seqs []uint32) {
	n := a.len()
	if n == x.start {
		return
	}
	seg := &segRun[T]{
		rows: make([]*T, n-x.start),
		seqs: make([]uint32, n-x.start),
	}
	for i := range seg.rows {
		seg.rows[i] = a.at(x.start + i)
	}
	copy(seg.seqs, seqs[x.start:n])
	x.sealed = append(x.sealed, seg)
	x.start = n
	x.tail.Store(nil)
	mSeals.Inc()
	mSealRows.Observe(float64(len(seg.rows)))
	x.sealing.Add(1)
	x.committing.Add(1)
	go func() {
		defer x.committing.Done()
		t0 := time.Now()
		seg.sortByTime(x.at)
		mSealSortSeconds.ObserveSince(t0)
		// Publish the sort before hashing: queries block only on the sorted
		// order, not on the commitment computed over it.
		x.sealing.Done()
		if x.hash != nil {
			// Commit the sealed contents while still off the ingest path:
			// the segment is immutable from here on, so the hashes fix its
			// canonical (time, seq) order and contents.
			tc := time.Now()
			seg.commitRows(x.hash)
			mCommitRows.Add(int64(seg.committed))
			mCommitSeconds.ObserveSince(tc)
		}
	}()
}

// wait blocks until every in-flight segment sort has finished. Readers of
// sealed runs must call it first; the WaitGroup edge is what publishes the
// sorted contents to them.
func (x *segIndex[T]) wait() { x.sealing.Wait() }

// waitCommits blocks until every in-flight seal has finished both its sort
// and its commitment hashing. Anything that reads or rewrites the hashes —
// audits, compaction (which carries them), truncation, reset — must use
// this edge instead of wait.
func (x *segIndex[T]) waitCommits() { x.committing.Wait() }

// tailRun returns the sorted view of the tail, rebuilding it only when an
// append has invalidated the cache. The view owns fresh arrays, so runs
// handed to callers survive later rebuilds untouched. Concurrent readers
// may each build the view when the cache is cold — the builds are
// identical and the last Store wins, so no locking is needed and readers
// never serialize on each other.
func (x *segIndex[T]) tailRun(a *arena[T], seqs []uint32) *segRun[T] {
	if t := x.tail.Load(); t != nil {
		return t
	}
	n := a.len()
	t := &segRun[T]{
		rows: make([]*T, n-x.start),
		seqs: make([]uint32, n-x.start),
	}
	for i := range t.rows {
		t.rows[i] = a.at(x.start + i)
	}
	copy(t.seqs, seqs[x.start:n])
	t.sortByTime(x.at)
	x.tail.Store(t)
	return t
}

// windows appends the sorted run views overlapping [from, to) — every
// sealed segment's window plus the tail's — to runs/runSeqs, for the
// store-level (time, seq) merge. all selects the full runs without
// windowing.
func (x *segIndex[T]) windows(a *arena[T], seqs []uint32, from, to simtime.VTime, all bool,
	runs *[][]*T, runSeqs *[][]uint32) {
	x.wait()
	add := func(r segRun[T]) {
		if len(r.rows) > 0 {
			*runs = append(*runs, r.rows)
			*runSeqs = append(*runSeqs, r.seqs)
		}
	}
	for _, seg := range x.sealed {
		if all {
			// View only rows/seqs: the full struct copy would read the
			// commitment fields, which the seal goroutine may still be
			// writing — wait() publishes the sort, not the hashes.
			add(segRun[T]{rows: seg.rows, seqs: seg.seqs})
		} else {
			add(seg.window(from, to, x.at))
		}
	}
	t := x.tailRun(a, seqs)
	if all {
		add(*t)
	} else {
		add(t.window(from, to, x.at))
	}
}

// compact k-way-merges all sealed segments into one — the shard-local LSM
// step run at Freeze so the store-level merge sees one run per shard and
// later incremental freezes merge [compacted, new] instead of re-sorting
// history. The merged run is built in fresh arrays; the old segment runs
// are dropped but never mutated, so query results that alias them stay
// intact.
//
// Commitments are CARRIED through the merge, never recomputed: each
// surviving row keeps its seal-time hash, the aggregate is the XOR of the
// input aggregates, and the committed count is their sum. Recomputing from
// the current contents would launder any post-seal tamper into a fresh
// clean commitment; carrying means a mismatch planted before compaction is
// still detected after it (including truncation, which survives as a
// committed-count excess over the merged length).
func (x *segIndex[T]) compact() {
	x.waitCommits()
	if len(x.sealed) <= 1 {
		return
	}
	runs := make([][]*T, len(x.sealed))
	seqs := make([][]uint32, len(x.sealed))
	for i, seg := range x.sealed {
		runs[i], seqs[i] = seg.rows, seg.seqs
	}
	rows, sq := mergeRuns(runs, seqs, x.at, true)
	merged := &segRun[T]{rows: rows, seqs: sq}

	carried := true
	total := 0
	for _, seg := range x.sealed {
		if seg.hashes == nil {
			carried = false
			break
		}
		total += len(seg.rows)
	}
	if carried {
		byRow := make(map[*T]uint64, total)
		for _, seg := range x.sealed {
			for i, p := range seg.rows {
				byRow[p] = seg.hashes[i]
			}
			merged.agg ^= seg.agg
			merged.committed += seg.committed
		}
		merged.hashes = make([]uint64, len(rows))
		chain := chainSeed()
		for i, p := range rows {
			h := byRow[p]
			merged.hashes[i] = h
			chain = chainMix(chain, h)
		}
		merged.chain = chain
	}
	x.sealed = []*segRun[T]{merged}
}

// single returns the lone sealed run after seal+compact (empty when the
// index holds no rows) — the shard's contribution to the store-level
// merged indices.
func (x *segIndex[T]) single() ([]*T, []uint32) {
	x.wait()
	if len(x.sealed) == 0 {
		return nil, nil
	}
	return x.sealed[0].rows, x.sealed[0].seqs
}

// segments reports the number of sealed segments (observability for the
// lifecycle tests).
func (x *segIndex[T]) segments() int { return len(x.sealed) }

// reset rewinds the index for store reuse, waiting out any in-flight
// segment sort first so a background sorter can never race the arena
// clear that follows.
func (x *segIndex[T]) reset() {
	x.waitCommits()
	x.sealed = nil
	x.start = 0
	x.tail.Store(nil)
}

// mergeRuns k-way-merges (time, seq)-sorted runs into one globally sorted
// run, ordering by (time, global sequence) — byte-identical to stable-
// sorting the full ingest stream, for any segmentation and shard count.
// Time keys are extracted once up front so the merge loop compares plain
// integers. withSeqs selects whether the merged sequence array is built
// too (the shard-level compaction needs it for future merges; the
// store-level indices do not).
func mergeRuns[T any](runs [][]*T, seqs [][]uint32, at func(*T) simtime.VTime, withSeqs bool) ([]*T, []uint32) {
	mMergeWidth.Observe(float64(len(runs)))
	if len(runs) == 1 {
		if withSeqs {
			return runs[0], seqs[0]
		}
		return runs[0], nil
	}
	total := 0
	times := make([][]simtime.VTime, len(runs))
	for i, run := range runs {
		total += len(run)
		ts := make([]simtime.VTime, len(run))
		for k, p := range run {
			ts[k] = at(p)
		}
		times[i] = ts
	}
	out := make([]*T, 0, total)
	var outSeqs []uint32
	if withSeqs {
		outSeqs = make([]uint32, 0, total)
	}
	heads := make([]int, len(runs))
	for len(out) < total {
		best := -1
		for i := range runs {
			h := heads[i]
			if h >= len(runs[i]) {
				continue
			}
			if best == -1 {
				best = i
				continue
			}
			hb := heads[best]
			if times[i][h] < times[best][hb] ||
				(times[i][h] == times[best][hb] && seqs[i][h] < seqs[best][hb]) {
				best = i
			}
		}
		out = append(out, runs[best][heads[best]])
		if withSeqs {
			outSeqs = append(outSeqs, seqs[best][heads[best]])
		}
		heads[best]++
	}
	return out, outSeqs
}
