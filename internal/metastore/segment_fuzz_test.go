package metastore_test

import (
	"sort"
	"testing"

	"panrucio/internal/metastore"
	"panrucio/internal/records"
	"panrucio/internal/simtime"
)

// FuzzSegmentMerge fuzzes the k-way (time, ingestion-seq) merge over
// sealed segments + tail through the public query surface. The input
// bytes drive shard count, segment size, event times, and explicit Seal()
// calls, so the fuzzer explores arbitrary segment boundaries; the oracle
// is the definition of the merge itself — a stable sort of the full put
// stream by time, which a single-run store trivially produces and which
// any segmentation must reproduce byte-identically.
//
// Input layout: data[0] → segment rows (1..8), data[1] → shard count
// (1..8), then one event per byte: 0xFF seals every shard's tail, any
// other value b ingests a transfer with StartedAt = b%23 (tiny time pool →
// heavy ties, so the seq tiebreak is always load-bearing).
func FuzzSegmentMerge(f *testing.F) {
	f.Add([]byte("\x02\x03abacus-sealed\xffsegments-tail"))
	f.Add([]byte("\x01\x01\x00\x00\x00\x00"))
	f.Add([]byte("\x03\x08\xff\xff\x01\x02\x03\xff\x04\x05"))
	f.Add([]byte("\x05\x04the same byte the same byte the same byte"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			return
		}
		segRows := 1 + int(data[0]%8)
		shards := 1 + int(data[1]%8)
		s := metastore.NewShardedSegmented(shards, segRows)

		var model []records.TransferEvent
		for i, b := range data[2:] {
			if b == 0xFF {
				s.Seal()
				continue
			}
			ev := records.TransferEvent{
				EventID:    int64(i + 1),
				JediTaskID: int64(1 + b%3), // tasks spread rows across shards
				LFN:        "f", Scope: "s", Dataset: "d", ProdDBlock: "p",
				StartedAt: simtime.VTime(b % 23),
				EndedAt:   simtime.VTime(b%23) + 40,
			}
			s.PutTransfer(&ev)
			model = append(model, ev)
		}

		// Oracle: the stable sort of the ingest stream by StartedAt.
		want := make([]records.TransferEvent, len(model))
		copy(want, model)
		sort.SliceStable(want, func(i, j int) bool { return want[i].StartedAt < want[j].StartedAt })

		check := func(label string, got []*records.TransferEvent, want []records.TransferEvent) {
			if len(got) != len(want) {
				t.Fatalf("%s: %d events, want %d", label, len(got), len(want))
			}
			for i := range got {
				if got[i].EventID != want[i].EventID {
					t.Fatalf("%s: event %d is id=%d, want id=%d", label, i, got[i].EventID, want[i].EventID)
				}
			}
		}

		check("live full", s.Transfers(0, 0), want)
		if len(data) >= 5 {
			lo := simtime.VTime(data[2] % 23)
			hi := simtime.VTime(data[3]%23) + 1
			if hi < lo {
				lo, hi = hi, lo
			}
			var ww []records.TransferEvent
			for _, ev := range want {
				if ev.StartedAt >= lo && ev.StartedAt < hi {
					ww = append(ww, ev)
				}
			}
			check("live window", s.Transfers(lo, hi), ww)
		}

		// The frozen (compacted) path must agree with the live merge.
		s.Freeze()
		check("frozen full", s.Transfers(0, 0), want)
	})
}
