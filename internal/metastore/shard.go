package metastore

import (
	"sort"

	"panrucio/internal/records"
	"panrucio/internal/simtime"
)

// shard is one horizontal partition of the store. Jobs and JEDI file rows
// are routed here by jeditaskid hash; transfer events carrying a jeditaskid
// follow their task, task-less (background) events are spread round-robin.
// Matching is task-local, so every per-task index is shard-complete: the
// matcher's JoinEntriesForJob/TaskTransfersByKey probes touch exactly one
// shard. Only the time-ranged queries need cross-shard data, and those are
// served by the store-level indices merged from the per-shard sorted runs
// at Freeze.
type shard struct {
	strings *internTable // shared, read-only during freeze

	jobs   arena[records.JobRecord]
	files  arena[records.FileRecord]
	events arena[records.TransferEvent]

	// Global put sequence per arena row. Rows within a shard are already in
	// global ingestion order; the sequences order rows across shards when
	// the per-shard sorted runs are merged (time ties keep ingestion order)
	// and when per-LFN buckets are built.
	jobSeq []uint32
	evSeq  []uint32

	filesByPanda map[int64][]*records.FileRecord
	evByTask     map[int64][]*records.TransferEvent
	evByTaskKey  map[taskSymKey][]*records.TransferEvent
	entriesByJob map[pandaTask][]JoinEntry

	// Freeze scratch: sorted runs handed to the store-level merge, released
	// once the merged indices are built.
	jobsByEnd  []*records.JobRecord
	jobsEndSeq []uint32
	evByStart  []*records.TransferEvent
	evStartSeq []uint32
}

func newShard(strings *internTable) *shard {
	return &shard{
		strings:      strings,
		filesByPanda: make(map[int64][]*records.FileRecord),
		evByTask:     make(map[int64][]*records.TransferEvent),
		evByTaskKey:  make(map[taskSymKey][]*records.TransferEvent),
	}
}

// putJob ingests one job row (already canonicalized by the store).
func (sh *shard) putJob(j records.JobRecord, seq uint32) *records.JobRecord {
	p := sh.jobs.put(j)
	sh.jobSeq = append(sh.jobSeq, seq)
	return p
}

// putFile ingests one file row (already canonicalized by the store).
func (sh *shard) putFile(f records.FileRecord) *records.FileRecord {
	p := sh.files.put(f)
	sh.filesByPanda[f.PandaID] = append(sh.filesByPanda[f.PandaID], p)
	return p
}

// putTransfer ingests one event row (already canonicalized by the store);
// key is the event's interned join key.
func (sh *shard) putTransfer(ev records.TransferEvent, key symKey, seq uint32) *records.TransferEvent {
	p := sh.events.put(ev)
	sh.evSeq = append(sh.evSeq, seq)
	if ev.JediTaskID != 0 {
		sh.evByTask[ev.JediTaskID] = append(sh.evByTask[ev.JediTaskID], p)
		tk := taskSymKey{ev.JediTaskID, key}
		sh.evByTaskKey[tk] = append(sh.evByTaskKey[tk], p)
	}
	return p
}

// freeze builds the shard's sorted time runs and the pre-resolved join
// entries. Shards freeze concurrently: each touches only its own arenas and
// indices plus read-only lookups in the shared intern table.
func (sh *shard) freeze() {
	sh.jobsByEnd, sh.jobsEndSeq = sortedRun(&sh.jobs, sh.jobSeq,
		func(j *records.JobRecord) simtime.VTime { return j.EndTime })
	sh.evByStart, sh.evStartSeq = sortedRun(&sh.events, sh.evSeq,
		func(ev *records.TransferEvent) simtime.VTime { return ev.StartedAt })

	sh.entriesByJob = make(map[pandaTask][]JoinEntry, len(sh.filesByPanda))
	for i, n := 0, sh.files.len(); i < n; i++ {
		f := sh.files.at(i)
		key, ok := sh.fileSymKey(f)
		var candidates []*records.TransferEvent
		if ok {
			candidates = sh.evByTaskKey[taskSymKey{f.JediTaskID, key}]
		}
		k := pandaTask{f.PandaID, f.JediTaskID}
		sh.entriesByJob[k] = append(sh.entriesByJob[k], JoinEntry{File: f, Candidates: candidates})
	}
}

// fileSymKey resolves a file row's interned join key. The row's fields were
// canonicalized at ingest, so a miss is impossible for rows this store
// ingested; the ok return guards the contract anyway.
func (sh *shard) fileSymKey(f *records.FileRecord) (symKey, bool) {
	lfn, ok1 := sh.strings.lookup(f.LFN)
	scope, ok2 := sh.strings.lookup(f.Scope)
	ds, ok3 := sh.strings.lookup(f.Dataset)
	pdb, ok4 := sh.strings.lookup(f.ProdDBlock)
	return symKey{lfn, scope, ds, pdb}, ok1 && ok2 && ok3 && ok4
}

// releaseRuns drops the freeze scratch once the store-level merge has
// consumed it, so steady-state memory holds one sorted copy per index, not
// two.
func (sh *shard) releaseRuns() {
	sh.jobsByEnd, sh.jobsEndSeq = nil, nil
	sh.evByStart, sh.evStartSeq = nil, nil
}

// reset rewinds the shard for reuse, keeping arena chunks and map capacity.
func (sh *shard) reset() {
	sh.jobs.reset()
	sh.files.reset()
	sh.events.reset()
	sh.jobSeq = sh.jobSeq[:0]
	sh.evSeq = sh.evSeq[:0]
	clear(sh.filesByPanda)
	clear(sh.evByTask)
	clear(sh.evByTaskKey)
	sh.entriesByJob = nil
	sh.releaseRuns()
}

// sortedRun stable-sorts one arena's rows by a time key. Arena order is
// ingestion order, so the run comes out ordered by (time, local ingestion
// order) with the matching global sequences alongside for the merge.
func sortedRun[T any](a *arena[T], seqs []uint32, at func(*T) simtime.VTime) ([]*T, []uint32) {
	n := a.len()
	ptrs := make([]*T, n)
	for i := 0; i < n; i++ {
		ptrs[i] = a.at(i)
	}
	perm := make([]int32, n)
	for i := range perm {
		perm[i] = int32(i)
	}
	sort.SliceStable(perm, func(i, k int) bool {
		return at(ptrs[perm[i]]) < at(ptrs[perm[k]])
	})
	outP := make([]*T, n)
	outS := make([]uint32, n)
	for i, p := range perm {
		outP[i] = ptrs[p]
		outS[i] = seqs[p]
	}
	return outP, outS
}

// mergeRuns k-way-merges per-shard sorted runs into one globally sorted
// index, ordering by (time, global sequence) — byte-identical to stable-
// sorting the full ingest stream, for any shard count. Time keys are
// extracted once up front so the merge loop compares plain integers.
func mergeRuns[T any](runs [][]*T, seqs [][]uint32, at func(*T) simtime.VTime) []*T {
	if len(runs) == 1 {
		return runs[0]
	}
	total := 0
	times := make([][]simtime.VTime, len(runs))
	for i, run := range runs {
		total += len(run)
		ts := make([]simtime.VTime, len(run))
		for k, p := range run {
			ts[k] = at(p)
		}
		times[i] = ts
	}
	out := make([]*T, 0, total)
	heads := make([]int, len(runs))
	for len(out) < total {
		best := -1
		for i := range runs {
			h := heads[i]
			if h >= len(runs[i]) {
				continue
			}
			if best == -1 {
				best = i
				continue
			}
			hb := heads[best]
			if times[i][h] < times[best][hb] ||
				(times[i][h] == times[best][hb] && seqs[i][h] < seqs[best][hb]) {
				best = i
			}
		}
		out = append(out, runs[best][heads[best]])
		heads[best]++
	}
	return out
}
