package metastore

import (
	"panrucio/internal/records"
	"panrucio/internal/simtime"
)

// shard is one horizontal partition of the store. Jobs and JEDI file rows
// are routed here by jeditaskid hash; transfer events carrying a jeditaskid
// follow their task, task-less (background) events are spread round-robin.
// Matching is task-local, so every per-task index is shard-complete: the
// matcher's JoinEntriesForJob/TaskTransfersByKey probes touch exactly one
// shard. The hash indices are maintained incrementally at ingest; the
// time-sorted view of each arena is a segIndex — immutable sealed segments
// plus a mutable tail — so the time-ranged queries can answer at any point
// mid-run by merging sealed+tail runs, and Freeze only sorts the current
// tail instead of re-sorting history.
type shard struct {
	jobs   arena[records.JobRecord]
	files  arena[records.FileRecord]
	events arena[records.TransferEvent]

	// Global put sequence per arena row. Rows within a shard are already in
	// global ingestion order; the sequences order rows across shards and
	// segments when sorted runs are merged (time ties keep ingestion order)
	// and when per-LFN buckets are built.
	jobSeq []uint32
	evSeq  []uint32

	// Segmented (time, seq) indices over the jobs and events arenas.
	jobSegs segIndex[records.JobRecord]
	evSegs  segIndex[records.TransferEvent]

	filesByPanda map[int64][]fileEntry
	evByTask     map[int64][]*records.TransferEvent
	evByTaskKey  map[taskSymKey][]*records.TransferEvent

	// entriesByJob binds each job's file rows to their candidate buckets at
	// Freeze — the frozen store's allocation-free matcher probe. Mid-run the
	// probe is answered live from filesByPanda + evByTaskKey instead.
	entriesByJob map[pandaTask][]JoinEntry
}

// fileEntry pairs a file row with its interned join key, resolved once at
// ingest so neither the freeze-time candidate binding nor the live
// mid-run probe has to re-hash the row's strings.
type fileEntry struct {
	row *records.FileRecord
	key symKey
}

func jobEnd(j *records.JobRecord) simtime.VTime       { return j.EndTime }
func evStart(ev *records.TransferEvent) simtime.VTime { return ev.StartedAt }

func newShard(segRows int) *shard {
	sh := &shard{
		filesByPanda: make(map[int64][]fileEntry),
		evByTask:     make(map[int64][]*records.TransferEvent),
		evByTaskKey:  make(map[taskSymKey][]*records.TransferEvent),
	}
	sh.jobSegs.at, sh.jobSegs.limit = jobEnd, segRows
	sh.evSegs.at, sh.evSegs.limit = evStart, segRows
	sh.jobSegs.hash = hashJobRow
	sh.evSegs.hash = hashEventRow
	return sh
}

// putJob ingests one job row (already canonicalized by the store).
func (sh *shard) putJob(j records.JobRecord, seq uint32) *records.JobRecord {
	p := sh.jobs.put(j)
	sh.jobSeq = append(sh.jobSeq, seq)
	sh.jobSegs.noteAppend(&sh.jobs, sh.jobSeq)
	return p
}

// putFile ingests one file row (already canonicalized by the store); key
// is the row's interned join key.
func (sh *shard) putFile(f records.FileRecord, key symKey) *records.FileRecord {
	p := sh.files.put(f)
	sh.filesByPanda[f.PandaID] = append(sh.filesByPanda[f.PandaID], fileEntry{row: p, key: key})
	return p
}

// putTransfer ingests one event row (already canonicalized by the store);
// key is the event's interned join key.
func (sh *shard) putTransfer(ev records.TransferEvent, key symKey, seq uint32) *records.TransferEvent {
	p := sh.events.put(ev)
	sh.evSeq = append(sh.evSeq, seq)
	sh.evSegs.noteAppend(&sh.events, sh.evSeq)
	if ev.JediTaskID != 0 {
		sh.evByTask[ev.JediTaskID] = append(sh.evByTask[ev.JediTaskID], p)
		tk := taskSymKey{ev.JediTaskID, key}
		sh.evByTaskKey[tk] = append(sh.evByTaskKey[tk], p)
	}
	return p
}

// seal closes both tails into sealed segments (sorting in the background);
// ingestion may continue into the fresh tails immediately.
func (sh *shard) seal() {
	sh.jobSegs.seal(&sh.jobs, sh.jobSeq)
	sh.evSegs.seal(&sh.events, sh.evSeq)
}

// freeze finalizes the shard for the frozen query path: seal the tails,
// compact all sealed segments into one run per arena, and bind the
// pre-resolved join entries. Shards freeze concurrently: each touches only
// its own arenas and indices.
func (sh *shard) freeze() {
	sh.seal()
	sh.jobSegs.compact()
	sh.evSegs.compact()

	sh.entriesByJob = make(map[pandaTask][]JoinEntry, len(sh.filesByPanda))
	for panda, list := range sh.filesByPanda {
		for _, fe := range list {
			k := pandaTask{panda, fe.row.JediTaskID}
			sh.entriesByJob[k] = append(sh.entriesByJob[k], JoinEntry{
				File:       fe.row,
				Candidates: sh.evByTaskKey[taskSymKey{fe.row.JediTaskID, fe.key}],
			})
		}
	}
}

// liveEntriesForJob answers the matcher's per-job probe mid-run, before any
// freeze: the job's file rows with their candidate buckets resolved from
// the incrementally maintained indices. Unlike the frozen path this
// allocates the entry slice per call — the price of a moving target.
func (sh *shard) liveEntriesForJob(pandaID, jediTaskID int64) []JoinEntry {
	var out []JoinEntry
	for _, fe := range sh.filesByPanda[pandaID] {
		if fe.row.JediTaskID != jediTaskID {
			continue
		}
		out = append(out, JoinEntry{
			File:       fe.row,
			Candidates: sh.evByTaskKey[taskSymKey{jediTaskID, fe.key}],
		})
	}
	return out
}

// reset rewinds the shard for reuse, keeping arena chunks and map capacity.
// Segment indices reset first: reset waits out any in-flight background
// sort, so a sorter can never race the arena clear.
func (sh *shard) reset() {
	sh.jobSegs.reset()
	sh.evSegs.reset()
	sh.jobs.reset()
	sh.files.reset()
	sh.events.reset()
	sh.jobSeq = sh.jobSeq[:0]
	sh.evSeq = sh.evSeq[:0]
	clear(sh.filesByPanda)
	clear(sh.evByTask)
	clear(sh.evByTaskKey)
	sh.entriesByJob = nil
}
