package metastore_test

import (
	"fmt"
	"reflect"
	"testing"

	"panrucio/internal/metastore"
	"panrucio/internal/metastore/storetest"
	"panrucio/internal/records"
)

// The fuzzed put streams and flattening helpers live in the shared
// storetest package; these tests pin the frozen (batch) query path, the
// cut-point suite in cutpoint_test.go pins the live one.

func ingestFrozen(st *storetest.Stream, s *metastore.Store) {
	st.Ingest(s)
	s.Freeze()
}

var (
	evValues  = storetest.EvValues
	jobValues = storetest.JobValues
)

// TestShardCountEquivalence is the core invariant of the sharded store:
// every query surface returns byte-identical results for any shard count.
func TestShardCountEquivalence(t *testing.T) {
	st := storetest.Make(42, 4000)
	ref := metastore.NewSharded(1)
	ingestFrozen(st, ref)

	for _, n := range []int{4, 8} {
		s := metastore.NewSharded(n)
		ingestFrozen(st, s)

		if s.ShardCount() != n {
			t.Fatalf("ShardCount() = %d, want %d", s.ShardCount(), n)
		}
		if s.JobCount() != ref.JobCount() || s.FileCount() != ref.FileCount() ||
			s.TransferCount() != ref.TransferCount() ||
			s.TransfersWithTaskID() != ref.TransfersWithTaskID() {
			t.Fatalf("shards=%d: counts diverged", n)
		}
		if !reflect.DeepEqual(s.TaskTransfersByActivity(), ref.TaskTransfersByActivity()) {
			t.Errorf("shards=%d: TaskTransfersByActivity diverged", n)
		}

		// Full and windowed time-ranged queries, with and without label.
		if !reflect.DeepEqual(evValues(s.Transfers(0, 0)), evValues(ref.Transfers(0, 0))) {
			t.Fatalf("shards=%d: Transfers(0,0) diverged", n)
		}
		if !reflect.DeepEqual(evValues(s.Transfers(5, 15)), evValues(ref.Transfers(5, 15))) {
			t.Errorf("shards=%d: windowed Transfers diverged", n)
		}
		for _, label := range []records.SourceLabel{"", records.LabelUser, records.LabelManaged} {
			if !reflect.DeepEqual(jobValues(s.Jobs(0, 100, label)), jobValues(ref.Jobs(0, 100, label))) {
				t.Errorf("shards=%d: Jobs(label=%q) diverged", n, label)
			}
		}

		// Point and per-task probes over the whole key space of the stream.
		for panda := int64(0); panda < 40; panda++ {
			sj, sok := s.Job(panda)
			rj, rok := ref.Job(panda)
			if sok != rok || (sok && *sj != *rj) {
				t.Fatalf("shards=%d: Job(%d) diverged", n, panda)
			}
			for task := int64(0); task < 17; task++ {
				sf, rf := s.FilesForJob(panda, task), ref.FilesForJob(panda, task)
				if len(sf) != len(rf) {
					t.Fatalf("shards=%d: FilesForJob(%d,%d) diverged", n, panda, task)
				}
				for i := range sf {
					if *sf[i] != *rf[i] {
						t.Fatalf("shards=%d: FilesForJob(%d,%d)[%d] diverged", n, panda, task, i)
					}
				}
				se, re := s.JoinEntriesForJob(panda, task), ref.JoinEntriesForJob(panda, task)
				if len(se) != len(re) {
					t.Fatalf("shards=%d: JoinEntriesForJob(%d,%d) diverged", n, panda, task)
				}
				for i := range se {
					if *se[i].File != *re[i].File ||
						!reflect.DeepEqual(evValues(se[i].Candidates), evValues(re[i].Candidates)) {
						t.Fatalf("shards=%d: JoinEntriesForJob(%d,%d)[%d] diverged", n, panda, task, i)
					}
				}
			}
		}
		for task := int64(0); task < 17; task++ {
			if !reflect.DeepEqual(evValues(s.TransfersByTaskID(task)), evValues(ref.TransfersByTaskID(task))) {
				t.Errorf("shards=%d: TransfersByTaskID(%d) diverged", n, task)
			}
		}
		for lfn := 0; lfn < 25; lfn++ {
			name := fmt.Sprintf("f%d", lfn)
			if !reflect.DeepEqual(evValues(s.TransfersByLFN(name)), evValues(ref.TransfersByLFN(name))) {
				t.Fatalf("shards=%d: TransfersByLFN(%q) diverged", n, name)
			}
			for ds := 0; ds < 5; ds++ {
				key := metastore.JoinKey{LFN: name, Scope: "s", Dataset: fmt.Sprintf("d%d", ds), ProdDBlock: "p"}
				if !reflect.DeepEqual(evValues(s.TransfersByKey(key)), evValues(ref.TransfersByKey(key))) {
					t.Errorf("shards=%d: TransfersByKey(%v) diverged", n, key)
				}
				for task := int64(1); task < 17; task++ {
					if !reflect.DeepEqual(
						evValues(s.TaskTransfersByKey(task, key)),
						evValues(ref.TaskTransfersByKey(task, key))) {
						t.Errorf("shards=%d: TaskTransfersByKey(%d,%v) diverged", n, task, key)
					}
				}
			}
		}
	}
}

// TestResetClearsInternTable is the string-leak contract: a reused store
// must not pin one scenario's strings (or symbols) through the next.
func TestResetClearsInternTable(t *testing.T) {
	s := metastore.NewSharded(4)
	st := storetest.Make(7, 500)
	ingestFrozen(st, s)
	if s.InternedStrings() == 0 {
		t.Fatal("ingest interned nothing")
	}
	s.Reset()
	if got := s.InternedStrings(); got != 0 {
		t.Fatalf("Reset left %d interned strings", got)
	}
	if s.JobCount() != 0 || s.FileCount() != 0 || s.TransferCount() != 0 ||
		s.TransfersWithTaskID() != 0 {
		t.Fatal("Reset left records behind")
	}
	if len(s.Transfers(0, 0)) != 0 || len(s.Jobs(0, 1<<40, "")) != 0 {
		t.Fatal("Reset left indexed entries behind")
	}
	if len(s.TransfersByLFN("f1")) != 0 {
		t.Fatal("Reset left LFN buckets behind")
	}
}

// TestResetReusedStoreMatchesFresh replays scenario B on a store dirtied by
// scenario A; every query surface must match a fresh store that only ever
// saw B.
func TestResetReusedStoreMatchesFresh(t *testing.T) {
	a, b := storetest.Make(1, 3000), storetest.Make(2, 3000)

	fresh := metastore.NewSharded(4)
	ingestFrozen(b, fresh)

	reused := metastore.NewSharded(4)
	ingestFrozen(a, reused)
	reused.Reset()
	ingestFrozen(b, reused)

	if reused.InternedStrings() != fresh.InternedStrings() {
		t.Errorf("interned strings diverged after reuse: %d vs %d",
			reused.InternedStrings(), fresh.InternedStrings())
	}
	if !reflect.DeepEqual(evValues(reused.Transfers(0, 0)), evValues(fresh.Transfers(0, 0))) {
		t.Fatal("Transfers diverged after reuse")
	}
	if !reflect.DeepEqual(jobValues(reused.Jobs(0, 100, "")), jobValues(fresh.Jobs(0, 100, ""))) {
		t.Fatal("Jobs diverged after reuse")
	}
	for panda := int64(0); panda < 40; panda++ {
		for task := int64(0); task < 17; task++ {
			re, fe := reused.JoinEntriesForJob(panda, task), fresh.JoinEntriesForJob(panda, task)
			if len(re) != len(fe) {
				t.Fatalf("JoinEntriesForJob(%d,%d) diverged after reuse", panda, task)
			}
			for i := range re {
				if *re[i].File != *fe[i].File ||
					!reflect.DeepEqual(evValues(re[i].Candidates), evValues(fe[i].Candidates)) {
					t.Fatalf("JoinEntriesForJob(%d,%d)[%d] diverged after reuse", panda, task, i)
				}
			}
		}
	}
}

// TestPutCopiesRecords pins the arena-copy semantics: the store must not
// retain the caller's pointers, so producers may reuse their structs.
func TestPutCopiesRecords(t *testing.T) {
	s := metastore.New()
	ev := records.TransferEvent{EventID: 1, LFN: "f", Scope: "s", Dataset: "d", ProdDBlock: "p", JediTaskID: 3, StartedAt: 5}
	s.PutTransfer(&ev)
	ev.LFN = "clobbered"
	ev.EventID = 999
	got := s.TransfersByTaskID(3)
	if len(got) != 1 || got[0].LFN != "f" || got[0].EventID != 1 {
		t.Fatalf("store aliased the caller's record: %+v", got[0])
	}

	j := records.JobRecord{PandaID: 9, JediTaskID: 3, EndTime: 4}
	s.PutJob(&j)
	j.PandaID = 1000
	if stored, ok := s.Job(9); !ok || stored.PandaID != 9 {
		t.Fatal("store aliased the caller's job record")
	}
}
