// Package storetest provides the deterministic fuzzed put streams and
// result-flattening helpers shared by the store-level equivalence tests —
// shard-count equivalence, reset-reuse, the mid-run cut-point suite, and
// the segment-merge fuzz target — so each new test layer reuses one
// generator instead of copying it.
//
// A Stream is a pseudo-random but fully deterministic interleaving of job,
// file, and transfer puts designed to stress the store's invariants:
// duplicate pandaids, task-less background events, arbitrary
// (non-monotonic) event ids, heavy time-key ties, join keys shared across
// tasks, file-size jitter, and endpoint labels drawn from a small pool so
// the matcher's site conditions bite. Streams can be replayed whole or cut
// at any prefix, which is what the incremental-ingest tests build on: a
// store fed a prefix must answer every query exactly like a fresh store
// fed the same prefix.
package storetest

import (
	"fmt"
	"math/rand"

	"panrucio/internal/metastore"
	"panrucio/internal/records"
	"panrucio/internal/simtime"
)

// Sites is the endpoint-label pool Make draws from; jobs only ever run at
// the first two, so UNKNOWN endpoints exercise the RM2 relaxation.
var Sites = []string{"CERN-PROD", "BNL-ATLAS", "UNKNOWN"}

// Stream is a recorded put interleaving. Replay it with Ingest or
// IngestPrefix; the stream itself is immutable and safe to replay into any
// number of stores.
type Stream struct {
	jobs  []records.JobRecord
	files []records.FileRecord
	evs   []records.TransferEvent
	puts  []int // interleave: 0=job, 1=file, 2=transfer, in stream order
}

// Make generates a deterministic stream of n puts from the seed. The value
// pools are deliberately tiny — task ids in [0,17), pandaids in [0,40),
// 25 LFNs, 5 datasets, 2 file sizes, 20 time ticks — so shard collisions,
// duplicate keys, and time ties are guaranteed at any stream length.
func Make(seed int64, n int) *Stream {
	rng := rand.New(rand.NewSource(seed))
	st := &Stream{}
	labels := []records.SourceLabel{records.LabelUser, records.LabelManaged}
	acts := []records.Activity{records.AnalysisDownload, records.ProductionUp, records.DataRebalancing}
	for i := 0; i < n; i++ {
		task := int64(rng.Intn(17)) // small pool → many shard collisions, incl. 0
		switch k := rng.Intn(4); k {
		case 0:
			st.jobs = append(st.jobs, records.JobRecord{
				PandaID:         int64(rng.Intn(40)), // duplicates guaranteed
				JediTaskID:      task,
				Label:           labels[rng.Intn(2)],
				ComputingSite:   Sites[rng.Intn(2)], // jobs never run at UNKNOWN
				CreationTime:    simtime.VTime(rng.Intn(5)),
				StartTime:       simtime.VTime(rng.Intn(10)),
				EndTime:         simtime.VTime(rng.Intn(20)), // heavy EndTime ties
				NInputFileBytes: int64(rng.Intn(4)) * 1e9,
			})
			st.puts = append(st.puts, 0)
		case 1:
			st.files = append(st.files, records.FileRecord{
				PandaID:    int64(rng.Intn(40)),
				JediTaskID: task,
				LFN:        fmt.Sprintf("f%d", rng.Intn(25)),
				Scope:      "s",
				Dataset:    fmt.Sprintf("d%d", rng.Intn(5)),
				ProdDBlock: "p",
				FileSize:   int64(1+rng.Intn(2)) * 1e9,
				Kind:       records.FileInput,
			})
			st.puts = append(st.puts, 1)
		default:
			if rng.Intn(3) == 0 {
				task = 0 // task-less background event
			}
			ev := records.TransferEvent{
				EventID:         int64(rng.Intn(1 << 30)), // arbitrary, non-monotonic
				JediTaskID:      task,
				LFN:             fmt.Sprintf("f%d", rng.Intn(25)),
				Scope:           "s",
				Dataset:         fmt.Sprintf("d%d", rng.Intn(5)),
				ProdDBlock:      "p",
				FileSize:        int64(1+rng.Intn(2)) * 1e9,
				SourceSite:      Sites[rng.Intn(3)],
				DestinationSite: Sites[rng.Intn(3)],
				Activity:        acts[rng.Intn(3)],
				StartedAt:       simtime.VTime(rng.Intn(20)), // heavy StartedAt ties
				EndedAt:         simtime.VTime(20 + rng.Intn(20)),
			}
			if rng.Intn(2) == 0 {
				ev.IsDownload = true
			} else {
				ev.IsUpload = true
			}
			st.evs = append(st.evs, ev)
			st.puts = append(st.puts, 2)
		}
	}
	return st
}

// Len reports the number of puts in the stream.
func (st *Stream) Len() int { return len(st.puts) }

// Ingest replays the whole stream into the store in its recorded order.
// It does not Freeze — callers pin the frozen or the live query path
// explicitly.
func (st *Stream) Ingest(s *metastore.Store) { st.IngestPrefix(s, st.Len()) }

// IngestPrefix replays the first k puts of the stream into the store —
// the cut-point primitive of the mid-run equivalence tests.
func (st *Stream) IngestPrefix(s *metastore.Store, k int) { st.IngestRange(s, 0, k) }

// IngestRange replays puts [from, to) of the stream into the store. A
// store fed [0, a) then [a, b) holds exactly the prefix [0, b), which is
// how the cut-point tests advance one live store through successive cuts.
func (st *Stream) IngestRange(s *metastore.Store, from, to int) {
	var j, f, e int
	for _, kind := range st.puts[:from] {
		switch kind {
		case 0:
			j++
		case 1:
			f++
		default:
			e++
		}
	}
	for _, kind := range st.puts[from:to] {
		switch kind {
		case 0:
			s.PutJob(&st.jobs[j])
			j++
		case 1:
			s.PutFile(&st.files[f])
			f++
		default:
			s.PutTransfer(&st.evs[e])
			e++
		}
	}
}

// EvValues flattens a query result to comparable values (stores copy
// records into their own arenas, so pointer identity never matches across
// stores).
func EvValues(evs []*records.TransferEvent) []records.TransferEvent {
	out := make([]records.TransferEvent, len(evs))
	for i, ev := range evs {
		out[i] = *ev
	}
	return out
}

// JobValues flattens a job query result to comparable values.
func JobValues(js []*records.JobRecord) []records.JobRecord {
	out := make([]records.JobRecord, len(js))
	for i, j := range js {
		out[i] = *j
	}
	return out
}
