// Package netsim models the network substrate of the simulated grid: a
// lazily-created mesh of directed links between sites. Each link has a
// nominal bandwidth (from the topology), an AR(1) stochastic fluctuation
// process, and a diurnal modulation; concurrent transfers on a link share
// its instantaneous capacity fairly, and a per-link concurrency cap queues
// the excess (an FTS-like admission discipline).
//
// This reproduces the phenomenology behind the paper's Figs. 7 and 8:
// transfer rates that are unsteady at short timescales, asymmetric between
// the two directions of a site pair, and generally higher for local (LAN)
// movement than for wide-area movement.
//
// Entry point: New binds the network to an engine, grid, and RNG split;
// rucio submits transfers and receives completion callbacks in virtual
// time. All stochastic behavior draws from the split RNG on the
// single-goroutine engine, so a seed reproduces every transfer duration
// exactly.
package netsim
