package netsim

import (
	"fmt"
	"math"

	"panrucio/internal/simtime"
	"panrucio/internal/topology"
)

// Options tunes the network model. Zero fields take the documented defaults.
type Options struct {
	// FluctuationInterval is the AR(1) step length (default 300s).
	FluctuationInterval simtime.VTime
	// Phi is the AR(1) persistence coefficient in [0,1) (default 0.85).
	Phi float64
	// NoiseSigma is the AR(1) innovation standard deviation (default 0.22).
	NoiseSigma float64
	// DiurnalAmplitude scales the sinusoidal day/night modulation (default 0.30).
	DiurnalAmplitude float64
	// MaxActivePerLink caps concurrent transfers on a link; extra transfers
	// queue FIFO (default 16). The sequential per-job staging seen in the
	// paper's Fig. 10 emerges when effective concurrency collapses to 1.
	MaxActivePerLink int
	// PerTransferCapBps bounds a single transfer's rate regardless of link
	// headroom (default 300 MB/s) — the storage-door per-stream limit.
	// This is why the paper's per-connection rates top out at hundreds of
	// MBps (Figs. 7-8) even on multi-GB/s links, and why stage-in occupies
	// a visible fraction of job queuing time.
	PerTransferCapBps float64
	// MinFactor floors the fluctuation factor (default 0.05) so links never
	// stall entirely.
	MinFactor float64
	// MaxFactor caps the fluctuation factor (default 2.5).
	MaxFactor float64
}

func (o *Options) fill() {
	if o.FluctuationInterval == 0 {
		o.FluctuationInterval = 300
	}
	if o.Phi == 0 {
		o.Phi = 0.85
	}
	if o.NoiseSigma == 0 {
		o.NoiseSigma = 0.22
	}
	if o.DiurnalAmplitude == 0 {
		o.DiurnalAmplitude = 0.30
	}
	if o.MaxActivePerLink == 0 {
		o.MaxActivePerLink = 16
	}
	if o.PerTransferCapBps == 0 {
		o.PerTransferCapBps = 300e6
	}
	if o.MinFactor == 0 {
		o.MinFactor = 0.05
	}
	if o.MaxFactor == 0 {
		o.MaxFactor = 2.5
	}
}

// Transfer is one file movement in flight. Timestamps are filled in as the
// transfer progresses; Finished is zero until completion.
type Transfer struct {
	ID       int64
	Src, Dst string
	Bytes    int64

	Enqueued simtime.VTime
	Started  simtime.VTime
	Finished simtime.VTime

	remaining float64
	done      func(*Transfer)
	cancelled bool
}

// QueueDelay is the time the transfer spent waiting for a link slot.
func (t *Transfer) QueueDelay() simtime.VTime { return t.Started - t.Enqueued }

// Duration is the active transfer time (zero until finished).
func (t *Transfer) Duration() simtime.VTime {
	if t.Finished == 0 {
		return 0
	}
	return t.Finished - t.Started
}

// Throughput is the average achieved rate in bytes/s (zero until finished).
func (t *Transfer) Throughput() float64 {
	d := t.Duration()
	if d <= 0 {
		// Sub-second transfer: report the whole size as a 1-second rate,
		// matching how production monitoring rounds instantaneous events.
		return float64(t.Bytes)
	}
	return float64(t.Bytes) / d.Seconds()
}

type linkKey struct{ src, dst string }

type link struct {
	key     linkKey
	nominal float64 // bytes/s at factor 1, diurnal 1
	phase   float64 // diurnal phase offset, radians

	factor     float64 // AR(1) state
	factorAt   simtime.VTime
	lastUpdate simtime.VTime

	active []*Transfer
	queue  []*Transfer

	wake *simtime.Event
	rng  *simtime.RNG
}

// outage is a scheduled degradation window on every link touching a site.
type outage struct {
	site     string
	from, to simtime.VTime
	factor   float64
}

// Network is the simulation-wide link mesh. Not safe for concurrent use;
// the DES kernel is single-goroutine by design.
type Network struct {
	eng  *simtime.Engine
	grid *topology.Grid
	opts Options
	rng  *simtime.RNG

	links   map[linkKey]*link
	nextID  int64
	outages []outage

	// Aggregate counters for quick inspection and benchmarks.
	CompletedTransfers int64
	CompletedBytes     int64
}

// New creates a network over the given grid. rng must be dedicated to the
// network (use RNG.Split).
func New(eng *simtime.Engine, grid *topology.Grid, rng *simtime.RNG, opts Options) *Network {
	opts.fill()
	return &Network{eng: eng, grid: grid, opts: opts, rng: rng, links: make(map[linkKey]*link)}
}

// Options reports the effective (defaulted) options.
func (n *Network) Options() Options { return n.opts }

func (n *Network) linkFor(src, dst string) *link {
	k := linkKey{src, dst}
	if l, ok := n.links[k]; ok {
		return l
	}
	lr := n.rng.Split(fmt.Sprintf("link/%s->%s", src, dst))
	l := &link{
		key:      k,
		nominal:  topology.LinkGbps(n.grid, src, dst) * 1e9 / 8, // Gb/s -> bytes/s
		phase:    lr.Uniform(0, 2*math.Pi),
		factor:   1 + lr.Normal(0, 0.1),
		factorAt: n.eng.Now(),
		rng:      lr,
	}
	if l.factor < n.opts.MinFactor {
		l.factor = n.opts.MinFactor
	}
	l.lastUpdate = n.eng.Now()
	n.links[k] = l
	return l
}

// diurnal returns the day/night modulation at time t for this link.
func (n *Network) diurnal(l *link, t simtime.VTime) float64 {
	frac := float64(t%simtime.Day) / float64(simtime.Day)
	return 1 + n.opts.DiurnalAmplitude*math.Sin(2*math.Pi*frac+l.phase)
}

// advanceFactor evolves the AR(1) state to time t using the closed-form
// k-step transition: mean reverts geometrically, innovations accumulate
// with variance sigma^2 (1-phi^2k)/(1-phi^2). O(1) regardless of gap size.
func (n *Network) advanceFactor(l *link, t simtime.VTime) {
	steps := int64((t - l.factorAt) / n.opts.FluctuationInterval)
	if steps <= 0 {
		return
	}
	phiK := math.Pow(n.opts.Phi, float64(steps))
	variance := n.opts.NoiseSigma * n.opts.NoiseSigma
	if n.opts.Phi < 1 {
		variance *= (1 - phiK*phiK) / (1 - n.opts.Phi*n.opts.Phi)
	} else {
		variance *= float64(steps)
	}
	l.factor = 1 + phiK*(l.factor-1) + l.rng.Normal(0, math.Sqrt(variance))
	if l.factor < n.opts.MinFactor {
		l.factor = n.opts.MinFactor
	}
	if l.factor > n.opts.MaxFactor {
		l.factor = n.opts.MaxFactor
	}
	l.factorAt += simtime.VTime(steps) * n.opts.FluctuationInterval
}

// InjectOutage throttles every link touching the site to factor times its
// normal rate during [from, to) — failure injection for resilience
// studies (a storage-element brownout, a cut WAN path). factor 0 clamps to
// the 1 B/s floor, stalling the site's transfers without deadlocking the
// simulation. Wake events are scheduled at the window edges so in-flight
// transfers reprice promptly.
func (n *Network) InjectOutage(site string, from, to simtime.VTime, factor float64) {
	if to <= from || factor < 0 {
		return
	}
	n.outages = append(n.outages, outage{site: site, from: from, to: to, factor: factor})
	reprice := func() {
		for _, l := range n.links {
			if (l.key.src == site || l.key.dst == site) && len(l.active) > 0 {
				n.service(l)
			}
		}
	}
	if from >= n.eng.Now() {
		if _, err := n.eng.At(from, "netsim.outage.start", reprice); err != nil {
			return
		}
	}
	if to >= n.eng.Now() {
		_, _ = n.eng.At(to, "netsim.outage.end", reprice)
	}
}

// outageFactor is the product of all outage factors hitting a link at t.
func (n *Network) outageFactor(l *link, t simtime.VTime) float64 {
	f := 1.0
	for _, o := range n.outages {
		if t >= o.from && t < o.to && (l.key.src == o.site || l.key.dst == o.site) {
			f *= o.factor
		}
	}
	return f
}

// rate returns the instantaneous total link rate in bytes/s.
func (n *Network) rate(l *link, t simtime.VTime) float64 {
	n.advanceFactor(l, t)
	r := l.nominal * l.factor * n.diurnal(l, t) * n.outageFactor(l, t)
	if r < 1 {
		r = 1
	}
	return r
}

// Start enqueues a transfer of size bytes from src to dst. done (may be nil)
// fires on completion. Size must be positive; zero/negative sizes complete
// instantly at the current time.
func (n *Network) Start(src, dst string, bytes int64, done func(*Transfer)) *Transfer {
	n.nextID++
	tr := &Transfer{
		ID: n.nextID, Src: src, Dst: dst, Bytes: bytes,
		Enqueued:  n.eng.Now(),
		remaining: float64(bytes),
		done:      done,
	}
	if bytes <= 0 {
		tr.Started = n.eng.Now()
		tr.Finished = n.eng.Now()
		n.CompletedTransfers++
		if done != nil {
			done(tr)
		}
		return tr
	}
	l := n.linkFor(src, dst)
	l.queue = append(l.queue, tr)
	n.service(l)
	return tr
}

// Cancel aborts a queued or in-flight transfer. Completed transfers are
// unaffected. Cancelled transfers never invoke done.
func (n *Network) Cancel(tr *Transfer) {
	if tr.Finished != 0 {
		return
	}
	tr.cancelled = true
	// The link sweep on next wake removes it; force a wake now for
	// promptness of queued peers.
	l := n.linkFor(tr.Src, tr.Dst)
	n.service(l)
}

// perRate is the per-transfer share of the link at time t: fair share of
// the instantaneous link rate, bounded by the storage-door stream cap.
func (n *Network) perRate(l *link, t simtime.VTime, active int) float64 {
	per := n.rate(l, t) / float64(active)
	if per > n.opts.PerTransferCapBps {
		per = n.opts.PerTransferCapBps
	}
	return per
}

// progress applies elapsed time at the current shared rate to all active
// transfers on the link.
func (n *Network) progress(l *link, now simtime.VTime) {
	dt := (now - l.lastUpdate).Seconds()
	if dt > 0 && len(l.active) > 0 {
		per := n.perRate(l, l.lastUpdate, len(l.active))
		for _, tr := range l.active {
			tr.remaining -= per * dt
		}
	}
	l.lastUpdate = now
}

// service advances the link, completes finished transfers, admits queued
// ones, and schedules the next wake event.
func (n *Network) service(l *link) {
	now := n.eng.Now()
	n.progress(l, now)

	// Sweep completions and cancellations. Callbacks are deferred to a
	// same-instant engine event: invoking them here could re-enter service
	// (a callback that starts another transfer on this link) while the
	// link state is mid-update.
	kept := l.active[:0]
	for _, tr := range l.active {
		switch {
		case tr.cancelled:
			// dropped
		case tr.remaining <= 0.5:
			tr.Finished = now
			n.CompletedTransfers++
			n.CompletedBytes += tr.Bytes
			if tr.done != nil {
				tr := tr
				n.eng.After(0, "netsim.done", func() { tr.done(tr) })
			}
		default:
			kept = append(kept, tr)
		}
	}
	l.active = kept

	// Admit from queue.
	qkept := l.queue[:0]
	for _, tr := range l.queue {
		if tr.cancelled {
			continue
		}
		if len(l.active) < n.opts.MaxActivePerLink {
			tr.Started = now
			l.active = append(l.active, tr)
		} else {
			qkept = append(qkept, tr)
		}
	}
	l.queue = qkept

	// Schedule the next wake: earliest completion at the current shared
	// rate, capped at the fluctuation interval so rate changes take effect.
	if l.wake != nil {
		l.wake.Cancel()
		l.wake = nil
	}
	if len(l.active) == 0 {
		return
	}
	per := n.perRate(l, now, len(l.active))
	minRem := math.Inf(1)
	for _, tr := range l.active {
		if tr.remaining < minRem {
			minRem = tr.remaining
		}
	}
	eta := simtime.VTime(math.Ceil(minRem / per))
	if eta < 1 {
		eta = 1
	}
	if eta > n.opts.FluctuationInterval {
		eta = n.opts.FluctuationInterval
	}
	l.wake = n.eng.After(eta, "netsim.wake", func() { n.service(l) })
}

// ActiveTransfers reports how many transfers are currently in flight across
// all links (excluding queued).
func (n *Network) ActiveTransfers() int {
	total := 0
	for _, l := range n.links {
		total += len(l.active)
	}
	return total
}

// QueuedTransfers reports how many transfers are waiting for a link slot.
func (n *Network) QueuedTransfers() int {
	total := 0
	for _, l := range n.links {
		total += len(l.queue)
	}
	return total
}

// LinkCount reports how many directed links have been instantiated.
func (n *Network) LinkCount() int { return len(n.links) }
