package netsim

import (
	"testing"
	"testing/quick"

	"panrucio/internal/simtime"
	"panrucio/internal/topology"
)

func harness(t *testing.T) (*simtime.Engine, *Network) {
	t.Helper()
	eng := simtime.NewEngine(0, 0)
	grid := topology.Default(topology.DefaultSpec{})
	net := New(eng, grid, simtime.NewRNG(1).Split("net"), Options{})
	return eng, net
}

func TestSingleTransferCompletes(t *testing.T) {
	eng, net := harness(t)
	var got *Transfer
	net.Start("CERN-PROD", "BNL-ATLAS", 10e9, func(tr *Transfer) { got = tr })
	eng.Run()
	if got == nil {
		t.Fatal("transfer never completed")
	}
	if got.Finished <= got.Started {
		t.Errorf("finish %d not after start %d", got.Finished, got.Started)
	}
	if got.Throughput() <= 0 {
		t.Error("non-positive throughput")
	}
	if net.CompletedTransfers != 1 || net.CompletedBytes != 10e9 {
		t.Errorf("counters = %d/%d", net.CompletedTransfers, net.CompletedBytes)
	}
}

func TestZeroByteTransferInstant(t *testing.T) {
	eng, net := harness(t)
	done := false
	tr := net.Start("CERN-PROD", "CERN-PROD", 0, func(*Transfer) { done = true })
	if !done || tr.Finished != eng.Now() {
		t.Fatal("zero-byte transfer should complete synchronously")
	}
}

func TestFairSharingSlowsTransfers(t *testing.T) {
	// One transfer alone vs. the same transfer sharing with 7 peers: the
	// shared one must take materially longer. The stream cap is lifted so
	// fair sharing (not the cap) is the binding constraint.
	uncapped := Options{PerTransferCapBps: 1e15}
	solo := func() simtime.VTime {
		eng := simtime.NewEngine(0, 0)
		net := New(eng, topology.Default(topology.DefaultSpec{}), simtime.NewRNG(1).Split("net"), uncapped)
		var d simtime.VTime
		net.Start("CERN-PROD", "BNL-ATLAS", 50e9, func(tr *Transfer) { d = tr.Duration() })
		eng.Run()
		return d
	}()
	shared := func() simtime.VTime {
		eng := simtime.NewEngine(0, 0)
		net := New(eng, topology.Default(topology.DefaultSpec{}), simtime.NewRNG(1).Split("net"), uncapped)
		var d simtime.VTime
		net.Start("CERN-PROD", "BNL-ATLAS", 50e9, func(tr *Transfer) { d = tr.Duration() })
		for i := 0; i < 7; i++ {
			net.Start("CERN-PROD", "BNL-ATLAS", 50e9, nil)
		}
		eng.Run()
		return d
	}()
	if shared < solo*3 {
		t.Errorf("sharing with 7 peers: solo=%ds shared=%ds, want >=3x", solo, shared)
	}
}

func TestConcurrencyCapQueues(t *testing.T) {
	eng := simtime.NewEngine(0, 0)
	grid := topology.Default(topology.DefaultSpec{})
	net := New(eng, grid, simtime.NewRNG(2).Split("net"), Options{MaxActivePerLink: 2})
	var finishes []simtime.VTime
	var queueDelays []simtime.VTime
	for i := 0; i < 6; i++ {
		net.Start("SIGNET", "NDGF-T1", 20e9, func(tr *Transfer) {
			finishes = append(finishes, tr.Finished)
			queueDelays = append(queueDelays, tr.QueueDelay())
		})
	}
	if net.ActiveTransfers() != 2 || net.QueuedTransfers() != 4 {
		t.Fatalf("admission: active=%d queued=%d, want 2/4", net.ActiveTransfers(), net.QueuedTransfers())
	}
	eng.Run()
	if len(finishes) != 6 {
		t.Fatalf("only %d of 6 completed", len(finishes))
	}
	delayed := 0
	for _, d := range queueDelays {
		if d > 0 {
			delayed++
		}
	}
	if delayed < 4 {
		t.Errorf("only %d transfers saw queue delay, want >=4", delayed)
	}
}

func TestLocalFasterThanRemote(t *testing.T) {
	eng := simtime.NewEngine(0, 0)
	net := New(eng, topology.Default(topology.DefaultSpec{}), simtime.NewRNG(1).Split("net"),
		Options{PerTransferCapBps: 1e15})
	var local, remote simtime.VTime
	net.Start("CERN-PROD", "CERN-PROD", 40e9, func(tr *Transfer) { local = tr.Duration() })
	net.Start("SPRACE", "TOKYO-LCG2", 40e9, func(tr *Transfer) { remote = tr.Duration() })
	eng.Run()
	if local >= remote {
		t.Errorf("local (%ds) should beat trans-continental (%ds)", local, remote)
	}
}

func TestCancelQueuedAndActive(t *testing.T) {
	eng := simtime.NewEngine(0, 0)
	grid := topology.Default(topology.DefaultSpec{})
	net := New(eng, grid, simtime.NewRNG(3).Split("net"), Options{MaxActivePerLink: 1})
	activeDone, queuedDone := false, false
	a := net.Start("PIC", "SPRACE", 10e9, func(*Transfer) { activeDone = true })
	q := net.Start("PIC", "SPRACE", 10e9, func(*Transfer) { queuedDone = true })
	net.Cancel(a)
	net.Cancel(q)
	eng.Run()
	if activeDone || queuedDone {
		t.Fatal("cancelled transfers invoked done")
	}
	if net.CompletedTransfers != 0 {
		t.Errorf("completed=%d after cancelling everything", net.CompletedTransfers)
	}
}

func TestCancelPromotesQueued(t *testing.T) {
	eng := simtime.NewEngine(0, 0)
	grid := topology.Default(topology.DefaultSpec{})
	net := New(eng, grid, simtime.NewRNG(4).Split("net"), Options{MaxActivePerLink: 1})
	a := net.Start("PIC", "SPRACE", 100e9, nil)
	var finished bool
	net.Start("PIC", "SPRACE", 1e9, func(*Transfer) { finished = true })
	net.Cancel(a)
	if net.ActiveTransfers() != 1 {
		t.Fatalf("queued transfer not promoted after cancel: active=%d", net.ActiveTransfers())
	}
	eng.Run()
	if !finished {
		t.Fatal("promoted transfer never finished")
	}
}

func TestThroughputVariesAcrossTime(t *testing.T) {
	// Repeated identical transfers spread across a day should not all see
	// the same throughput (AR(1) + diurnal modulation). Uncapped so the
	// link fluctuation, not the stream cap, sets the rate.
	eng := simtime.NewEngine(0, 0)
	net := New(eng, topology.Default(topology.DefaultSpec{}), simtime.NewRNG(1).Split("net"),
		Options{PerTransferCapBps: 1e15})
	var rates []float64
	for i := 0; i < 24; i++ {
		at := simtime.VTime(i) * simtime.Hour
		eng.At(at, "spawn", func() {
			net.Start("SIGNET", "NDGF-T1", 8e9, func(tr *Transfer) {
				rates = append(rates, tr.Throughput())
			})
		})
	}
	eng.Run()
	if len(rates) != 24 {
		t.Fatalf("%d/24 transfers completed", len(rates))
	}
	min, max := rates[0], rates[0]
	for _, r := range rates {
		if r < min {
			min = r
		}
		if r > max {
			max = r
		}
	}
	if max/min < 1.15 {
		t.Errorf("throughput too steady: min=%.0f max=%.0f", min, max)
	}
}

func TestDirectionalAsymmetry(t *testing.T) {
	// A->B and B->A are independent links with independent fluctuation
	// (paper Fig. 7a vs 7b). Verify the two directions are distinct link
	// objects.
	eng, net := harness(t)
	net.Start("SIGNET", "NDGF-T1", 1e9, nil)
	net.Start("NDGF-T1", "SIGNET", 1e9, nil)
	if net.LinkCount() != 2 {
		t.Fatalf("LinkCount=%d, want 2 directed links", net.LinkCount())
	}
	eng.Run()
}

func TestDeterministicForSeed(t *testing.T) {
	run := func() []simtime.VTime {
		eng := simtime.NewEngine(0, 0)
		grid := topology.Default(topology.DefaultSpec{})
		net := New(eng, grid, simtime.NewRNG(7).Split("net"), Options{})
		var out []simtime.VTime
		for i := 0; i < 10; i++ {
			size := int64(5e9 + float64(i)*1e9)
			net.Start("CERN-PROD", "BNL-ATLAS", size, func(tr *Transfer) {
				out = append(out, tr.Finished)
			})
		}
		eng.Run()
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("different completion counts across identical runs")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	o.fill()
	if o.FluctuationInterval != 300 || o.Phi != 0.85 || o.MaxActivePerLink != 16 || o.PerTransferCapBps != 300e6 {
		t.Errorf("defaults not applied: %+v", o)
	}
}

// Property: every completed transfer obeys Enqueued <= Started <= Finished
// and moves exactly its byte count.
func TestTransferInvariantProperty(t *testing.T) {
	prop := func(seed int64, sizes []uint32) bool {
		if len(sizes) > 40 {
			sizes = sizes[:40]
		}
		eng := simtime.NewEngine(0, 0)
		grid := topology.Default(topology.DefaultSpec{})
		net := New(eng, grid, simtime.NewRNG(seed).Split("net"), Options{MaxActivePerLink: 3})
		ok := true
		var total int64
		count := 0
		for i, s := range sizes {
			size := int64(s)%int64(20e9) + 1
			total += size
			src, dst := "CERN-PROD", "BNL-ATLAS"
			if i%3 == 0 {
				dst = "CERN-PROD"
			}
			net.Start(src, dst, size, func(tr *Transfer) {
				count++
				if tr.Enqueued > tr.Started || tr.Started > tr.Finished {
					ok = false
				}
			})
		}
		eng.Run()
		return ok && count == len(sizes) && net.CompletedBytes == total
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestPerTransferCapBindsOnFastLinks(t *testing.T) {
	// A lone 30 GB transfer on a multi-GB/s LAN must still take at least
	// size/cap seconds.
	eng := simtime.NewEngine(0, 0)
	net := New(eng, topology.Default(topology.DefaultSpec{}), simtime.NewRNG(5).Split("net"),
		Options{PerTransferCapBps: 300e6})
	var tr *Transfer
	net.Start("CERN-PROD", "CERN-PROD", 30e9, func(x *Transfer) { tr = x })
	eng.Run()
	if tr == nil {
		t.Fatal("transfer never completed")
	}
	if min := simtime.VTime(30e9 / 300e6); tr.Duration() < min {
		t.Errorf("duration %ds beat the stream cap floor %ds", tr.Duration(), min)
	}
	if tr.Throughput() > 301e6 {
		t.Errorf("throughput %.0f exceeds the 300 MB/s cap", tr.Throughput())
	}
}

func TestOutageSlowsSiteTransfers(t *testing.T) {
	run := func(withOutage bool) simtime.VTime {
		eng := simtime.NewEngine(0, 0)
		net := New(eng, topology.Default(topology.DefaultSpec{}), simtime.NewRNG(6).Split("net"), Options{})
		if withOutage {
			net.InjectOutage("SIGNET", 0, 10*simtime.Hour, 0.01)
		}
		var d simtime.VTime
		net.Start("NDGF-T1", "SIGNET", 20e9, func(tr *Transfer) { d = tr.Duration() })
		eng.Run()
		return d
	}
	normal, degraded := run(false), run(true)
	if degraded < 10*normal {
		t.Errorf("outage too mild: normal=%ds degraded=%ds", normal, degraded)
	}
}

func TestOutageWindowRespected(t *testing.T) {
	eng := simtime.NewEngine(0, 0)
	net := New(eng, topology.Default(topology.DefaultSpec{}), simtime.NewRNG(7).Split("net"), Options{})
	// Outage long past: transfers now are unaffected.
	net.InjectOutage("SIGNET", 100*simtime.Day, 101*simtime.Day, 0.001)
	var d simtime.VTime
	net.Start("NDGF-T1", "SIGNET", 5e9, func(tr *Transfer) { d = tr.Finished })
	eng.Run()
	if d > simtime.Hour {
		t.Errorf("future outage affected a present transfer: finished at %d", d)
	}
	// Other sites unaffected during an active outage.
	eng2 := simtime.NewEngine(0, 0)
	net2 := New(eng2, topology.Default(topology.DefaultSpec{}), simtime.NewRNG(7).Split("net"), Options{})
	net2.InjectOutage("SIGNET", 0, simtime.Day, 0.001)
	var other simtime.VTime
	net2.Start("CERN-PROD", "BNL-ATLAS", 5e9, func(tr *Transfer) { other = tr.Finished })
	eng2.Run()
	if other > simtime.Hour {
		t.Errorf("outage leaked to unrelated link: finished at %d", other)
	}
}

func TestOutageDegenerateArgsIgnored(t *testing.T) {
	eng := simtime.NewEngine(0, 0)
	net := New(eng, topology.Default(topology.DefaultSpec{}), simtime.NewRNG(8).Split("net"), Options{})
	net.InjectOutage("SIGNET", 100, 100, 0.5) // empty window
	net.InjectOutage("SIGNET", 0, 100, -1)    // negative factor
	if len(net.outages) != 0 {
		t.Errorf("degenerate outages stored: %d", len(net.outages))
	}
}

func TestOutageRepricesInFlight(t *testing.T) {
	// A transfer that starts healthy and hits an outage mid-flight slows
	// down after the window opens.
	eng := simtime.NewEngine(0, 0)
	net := New(eng, topology.Default(topology.DefaultSpec{}), simtime.NewRNG(9).Split("net"), Options{})
	var healthyDur simtime.VTime
	net.Start("NDGF-T1", "SIGNET", 60e9, func(tr *Transfer) { healthyDur = tr.Duration() })
	eng.Run()

	eng2 := simtime.NewEngine(0, 0)
	net2 := New(eng2, topology.Default(topology.DefaultSpec{}), simtime.NewRNG(9).Split("net"), Options{})
	// Outage opens halfway through the healthy duration.
	net2.InjectOutage("SIGNET", healthyDur/2, 100*simtime.Day, 0.01)
	var hitDur simtime.VTime
	net2.Start("NDGF-T1", "SIGNET", 60e9, func(tr *Transfer) { hitDur = tr.Duration() })
	eng2.Run()
	if hitDur < healthyDur*5 {
		t.Errorf("mid-flight outage barely slowed the transfer: %ds vs %ds", hitDur, healthyDur)
	}
}
