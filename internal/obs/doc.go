// Package obs is the dependency-free observability core: atomic metric
// primitives behind a named registry, a Prometheus text-format encoder,
// and a structured JSONL run-trace writer. Every instrumented layer —
// metastore ingest, the core matcher, the simulator, the serving front
// end — registers into the process-wide Default registry, which cmd/serve
// exposes at GET /metrics.
//
// The primitives are built for hot paths: Counter.Add, Gauge.Set/Add, and
// Histogram.Observe are allocation-free and safe under -race (plain
// atomics; the histogram sum is a CAS loop over float64 bits). Histograms
// have fixed buckets chosen at registration, so observation is an enabled
// check, a short linear bucket scan, and three atomic updates.
// Registration is get-or-create keyed on (name, sorted labels); labels are
// constant and pre-rendered at registration, never touched on update.
//
// Two invariants the tests pin:
//
//   - Instrumentation must not change behavior. Metrics read the world,
//     never steer it: analysis and serve bodies are byte-identical with
//     updates enabled or disabled (SetEnabled exists only so the overhead
//     benchmarks, bench/BENCH_obs.json, can measure the uninstrumented
//     baseline of the same code path).
//
//   - Encoding is deterministic. WritePrometheus orders families by name,
//     children by rendered label set, and buckets by bound, independent of
//     registration order, so equivalent registries encode byte-identically.
//
// Trace is the run-trace half: JSONL records ("event" and "span" types)
// carrying both a virtual-time stamp from the simulation clock and a
// wall-clock offset, written under a mutex so concurrent emitters
// interleave whole lines. sim.TraceObserver adapts it to the simulator's
// checkpoint seam; cmd/repro and cmd/sweep thread it through -trace.
package obs
