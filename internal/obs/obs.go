package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// enabled gates every hot-path update. Metrics default to on; the overhead
// benchmarks (bench/BENCH_obs.json) flip it off to measure the
// uninstrumented baseline of the same code path. Registration and encoding
// are unaffected — a disabled registry still serves its (frozen) values.
var enabled atomic.Bool

func init() { enabled.Store(true) }

// SetEnabled turns hot-path metric updates on or off globally. Off is for
// overhead measurement only; production callers leave the default.
func SetEnabled(on bool) { enabled.Store(on) }

// Enabled reports whether metric updates are currently recorded.
func Enabled() bool { return enabled.Load() }

// Label is one constant key=value pair attached to a metric at
// registration. Labels are rendered once, at registration, so the hot
// update path never touches them.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing atomic counter. The zero value is
// usable, but counters should be obtained from a Registry so they encode.
// All methods are safe for concurrent use and allocation-free.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (callers must keep counters monotonic; deltas are positive).
func (c *Counter) Add(n int64) {
	if !enabled.Load() {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value. All methods are safe for
// concurrent use and allocation-free.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) {
	if !enabled.Load() {
		return
	}
	g.v.Store(n)
}

// Add adjusts the value by n (negative to decrease).
func (g *Gauge) Add(n int64) {
	if !enabled.Load() {
		return
	}
	g.v.Add(n)
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram: observation counts per
// upper-bound bucket plus a total count and sum, all updated atomically.
// Buckets are fixed at registration, so Observe is allocation-free — an
// enabled check, one linear bucket scan (bucket lists are short), and
// three atomic updates.
type Histogram struct {
	bounds []float64 // sorted inclusive upper bounds, +Inf implicit
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

// DefBuckets spans 10µs to 10s — the latency range of everything this
// module times, from a cache hit to a paper-scale freeze.
var DefBuckets = []float64{
	1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// SizeBuckets is a powers-of-four ladder from 1 to ~1M for row/width
// counts (segment sizes, merge fan-in).
var SizeBuckets = []float64{
	1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144, 1048576,
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if !enabled.Load() {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since t0.
func (h *Histogram) ObserveSince(t0 time.Time) { h.Observe(time.Since(t0).Seconds()) }

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// metric is what a family's children have in common: each renders its
// sample lines given the family name and its own rendered label set.
type metric interface {
	sampleLines(b *strings.Builder, name, labels string)
}

// family is one metric name: its HELP/TYPE header plus one child per
// distinct label set.
type family struct {
	name, help, typ string
	children        map[string]metric // keyed by rendered inner label string
}

// Registry is a named collection of metrics. Registration is get-or-create:
// asking twice for the same (name, labels) returns the same metric, so
// package-level metric variables and per-instance lookups (one histogram
// per endpoint, say) can coexist. Registering an existing name with a
// different metric type panics — that is a programming error, not a
// runtime condition.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// def is the process-wide default registry every instrumented package
// registers into; cmd/serve's /metrics endpoint encodes it.
var def = NewRegistry()

// Default returns the process-wide default registry.
func Default() *Registry { return def }

// Counter registers (or finds) a counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	m := r.metric(name, help, "counter", labels, func() metric { return &Counter{} })
	c, ok := m.(*Counter)
	if !ok {
		panic(fmt.Sprintf("obs: %q registered as %T, requested as counter", name, m))
	}
	return c
}

// Gauge registers (or finds) a gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	m := r.metric(name, help, "gauge", labels, func() metric { return &Gauge{} })
	g, ok := m.(*Gauge)
	if !ok {
		panic(fmt.Sprintf("obs: %q registered as %T, requested as gauge", name, m))
	}
	return g
}

// Histogram registers (or finds) a histogram with the given upper bounds
// (+Inf is implicit). A later request for an existing (name, labels) pair
// returns the existing histogram regardless of the bounds argument.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	m := r.metric(name, help, "histogram", labels, func() metric { return newHistogram(bounds) })
	h, ok := m.(*Histogram)
	if !ok {
		panic(fmt.Sprintf("obs: %q registered as %T, requested as histogram", name, m))
	}
	return h
}

func (r *Registry) metric(name, help, typ string, labels []Label, mk func() metric) metric {
	ls := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, children: map[string]metric{}}
		r.families[name] = f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: %q registered as %s, requested as %s", name, f.typ, typ))
	}
	m, ok := f.children[ls]
	if !ok {
		m = mk()
		f.children[ls] = m
	}
	return m
}

// renderLabels renders a label set to its inner Prometheus form
// (`k1="v1",k2="v2"`, keys sorted, values escaped) once, at registration.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, k int) bool { return ls[i].Key < ls[k].Key })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}
