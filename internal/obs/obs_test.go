package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func encode(t *testing.T, r *Registry) string {
	t.Helper()
	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return b.String()
}

func TestCounterGaugeEncoding(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "total requests")
	c.Add(41)
	c.Inc()
	g := r.Gauge("inflight", "in-flight requests")
	g.Set(7)
	g.Add(-2)

	got := encode(t, r)
	want := "# HELP inflight in-flight requests\n" +
		"# TYPE inflight gauge\n" +
		"inflight 5\n" +
		"# HELP requests_total total requests\n" +
		"# TYPE requests_total counter\n" +
		"requests_total 42\n"
	if got != want {
		t.Fatalf("encoding mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestHistogramEncoding(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 100} {
		h.Observe(v)
	}
	got := encode(t, r)
	// Buckets are cumulative; 0.1 lands in le="0.1" (inclusive upper
	// bound), 100 only in +Inf.
	want := "# HELP lat_seconds latency\n" +
		"# TYPE lat_seconds histogram\n" +
		`lat_seconds_bucket{le="0.1"} 2` + "\n" +
		`lat_seconds_bucket{le="1"} 3` + "\n" +
		`lat_seconds_bucket{le="10"} 4` + "\n" +
		`lat_seconds_bucket{le="+Inf"} 5` + "\n" +
		"lat_seconds_sum 102.65\n" +
		"lat_seconds_count 5\n"
	if got != want {
		t.Fatalf("encoding mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-102.65) > 1e-9 {
		t.Fatalf("Sum = %g, want 102.65", h.Sum())
	}
}

// TestZeroObservationHistogram pins the exposition contract for a
// histogram that has never been observed: every bucket, the _sum, and the
// _count must still be present (at 0). Scrapers compute rates from
// _sum/_count; a family that omits them until the first observation makes
// the first real sample look like an unbounded rate spike.
func TestZeroObservationHistogram(t *testing.T) {
	r := NewRegistry()
	r.Histogram("idle_seconds", "never observed", []float64{0.1, 1})
	got := encode(t, r)
	want := "# HELP idle_seconds never observed\n" +
		"# TYPE idle_seconds histogram\n" +
		`idle_seconds_bucket{le="0.1"} 0` + "\n" +
		`idle_seconds_bucket{le="1"} 0` + "\n" +
		`idle_seconds_bucket{le="+Inf"} 0` + "\n" +
		"idle_seconds_sum 0\n" +
		"idle_seconds_count 0\n"
	if got != want {
		t.Fatalf("zero-observation encoding mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestHistogramLabelEscapingComposesWithLe pins that escaped label values
// (backslashes, newlines) survive composition with the synthetic le label
// on every histogram sample line.
func TestHistogramLabelEscapingComposesWithLe(t *testing.T) {
	r := NewRegistry()
	r.Histogram("h", "", []float64{1}, L("path", "a\\b\nc")).Observe(0.5)
	got := encode(t, r)
	for _, line := range []string{
		`h_bucket{path="a\\b\nc",le="1"} 1`,
		`h_bucket{path="a\\b\nc",le="+Inf"} 1`,
		`h_sum{path="a\\b\nc"} 0.5`,
		`h_count{path="a\\b\nc"} 1`,
	} {
		if !strings.Contains(got, line+"\n") {
			t.Fatalf("missing line %q in:\n%s", line, got)
		}
	}
	// The rendered body must contain no raw newline inside a label value:
	// every line must parse as comment or `name{...} value`.
	for _, line := range strings.Split(strings.TrimSuffix(got, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.Contains(line, " ") || strings.Count(line, `"`)%2 != 0 {
			t.Fatalf("unparseable sample line %q — raw newline leaked from a label value", line)
		}
	}
}

func TestHistogramUnsortedBoundsAreSorted(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("x", "", []float64{10, 1, 0.1})
	h.Observe(0.5)
	got := encode(t, r)
	if !strings.Contains(got, `x_bucket{le="0.1"} 0`) || !strings.Contains(got, `x_bucket{le="1"} 1`) {
		t.Fatalf("bounds not sorted before bucketing:\n%s", got)
	}
}

func TestLabelsAndEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "help with \\ and\nnewline", L("b", `quote " here`), L("a", "line\nbreak\\")).Inc()
	got := encode(t, r)
	want := "# HELP m help with \\\\ and\\nnewline\n" +
		"# TYPE m counter\n" +
		`m{a="line\nbreak\\",b="quote \" here"} 1` + "\n"
	if got != want {
		t.Fatalf("escaping mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestHistogramLabelsComposeWithLe(t *testing.T) {
	r := NewRegistry()
	r.Histogram("lat", "", []float64{1}, L("endpoint", "meta")).Observe(0.5)
	got := encode(t, r)
	for _, line := range []string{
		`lat_bucket{endpoint="meta",le="1"} 1`,
		`lat_bucket{endpoint="meta",le="+Inf"} 1`,
		`lat_sum{endpoint="meta"} 0.5`,
		`lat_count{endpoint="meta"} 1`,
	} {
		if !strings.Contains(got, line+"\n") {
			t.Fatalf("missing line %q in:\n%s", line, got)
		}
	}
}

// TestDeterministicOrdering registers the same metrics in two different
// orders and requires byte-identical encodings.
func TestDeterministicOrdering(t *testing.T) {
	r1 := NewRegistry()
	r1.Counter("zz", "z").Inc()
	r1.Gauge("aa", "a").Set(1)
	r1.Counter("mm", "m", L("x", "2")).Inc()
	r1.Counter("mm", "m", L("x", "1")).Add(2)

	r2 := NewRegistry()
	r2.Counter("mm", "m", L("x", "1")).Add(2)
	r2.Gauge("aa", "a").Set(1)
	r2.Counter("mm", "m", L("x", "2")).Inc()
	r2.Counter("zz", "z").Inc()

	if a, b := encode(t, r1), encode(t, r2); a != b {
		t.Fatalf("registration order changed encoding:\n%s\nvs\n%s", a, b)
	}
}

func TestGetOrCreateSharing(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("shared_total", "x")
	b := r.Counter("shared_total", "x")
	if a != b {
		t.Fatal("same (name, labels) returned distinct counters")
	}
	if c := r.Counter("shared_total", "x", L("k", "v")); c == a {
		t.Fatal("distinct label sets returned the same counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("type-mismatched registration did not panic")
		}
	}()
	r.Gauge("shared_total", "x")
}

func TestSetEnabledFreezesValues(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("frozen_total", "x")
	h := r.Histogram("frozen_lat", "x", []float64{1})
	c.Inc()
	h.Observe(0.5)
	SetEnabled(false)
	c.Inc()
	h.Observe(0.5)
	SetEnabled(true)
	if c.Value() != 1 {
		t.Fatalf("disabled counter advanced to %d", c.Value())
	}
	if h.Count() != 1 {
		t.Fatalf("disabled histogram advanced to %d", h.Count())
	}
}

// TestConcurrentHammer hammers counters, gauges, and histograms from many
// goroutines while the registry encodes continuously — the -race gate for
// the whole package, run as a dedicated CI step.
func TestConcurrentHammer(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hammer_total", "x")
	g := r.Gauge("hammer_gauge", "x")
	h := r.Histogram("hammer_lat", "x", DefBuckets, L("endpoint", "hammer"))

	const workers, iters = 8, 2000
	stop := make(chan struct{})
	var encodes sync.WaitGroup
	encodes.Add(1)
	go func() {
		defer encodes.Done()
		for {
			select {
			case <-stop:
				return
			default:
				var b bytes.Buffer
				if err := r.WritePrometheus(&b); err != nil {
					t.Errorf("encode during hammer: %v", err)
					return
				}
				// Late registration must also be safe mid-encode.
				r.Counter("hammer_total", "x").Value()
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%100) / 1000)
				g.Add(-1)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	encodes.Wait()

	if c.Value() != workers*iters {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*iters)
	}
	if g.Value() != 0 {
		t.Fatalf("gauge = %d, want 0", g.Value())
	}
	if h.Count() != workers*iters {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*iters)
	}
	got := encode(t, r)
	if !strings.Contains(got, "hammer_total "+formatInt(workers*iters)) {
		t.Fatalf("final encode missing settled counter:\n%s", got)
	}
}

func TestTraceJSONL(t *testing.T) {
	var b bytes.Buffer
	tr := NewTrace(&b)
	tr.Event("checkpoint", 3600, map[string]any{"jobs": 12, "events": 340})
	tr.Span("scenario", 7200, 150*time.Millisecond, map[string]any{"id": "s1"})

	lines := strings.Split(strings.TrimSuffix(b.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), b.String())
	}
	var ev, sp TraceRecord
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatalf("line 1 not JSON: %v", err)
	}
	if err := json.Unmarshal([]byte(lines[1]), &sp); err != nil {
		t.Fatalf("line 2 not JSON: %v", err)
	}
	if ev.Type != "event" || ev.Name != "checkpoint" || ev.VTSecs != 3600 {
		t.Fatalf("event record mismatch: %+v", ev)
	}
	if ev.Fields["jobs"] != float64(12) {
		t.Fatalf("event fields mismatch: %+v", ev.Fields)
	}
	if sp.Type != "span" || sp.DurMS != 150 {
		t.Fatalf("span record mismatch: %+v", sp)
	}
	if sp.WallMS < 0 {
		t.Fatalf("wall stamp negative: %+v", sp)
	}

	// A nil trace is a no-op sink, so instrumented call sites never need
	// nil checks.
	var none *Trace
	none.Event("x", 0, nil)
	none.Span("x", 0, 0, nil)
}

func TestObserveAllocationFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("alloc_total", "x")
	h := r.Histogram("alloc_lat", "x", DefBuckets)
	g := r.Gauge("alloc_gauge", "x")
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Set(3)
		h.Observe(0.001)
	}); n != 0 {
		t.Fatalf("hot-path update allocates %.1f per op, want 0", n)
	}
}
