package obs

import (
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus encodes the registry in the Prometheus text exposition
// format (version 0.0.4). Output ordering is deterministic: families sort
// by name, children by rendered label set, histogram buckets by bound —
// independent of registration order, so two equivalent registries encode
// byte-identically. Values are read atomically but without a global lock:
// an encode concurrent with updates sees each sample at some recent value,
// which is the standard scrape contract.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, name := range names {
		fams[i] = r.families[name]
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		b.WriteString("# HELP ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(escapeHelp(f.help))
		b.WriteString("\n# TYPE ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(f.typ)
		b.WriteByte('\n')
		labelSets := make([]string, 0, len(f.children))
		for ls := range f.children {
			labelSets = append(labelSets, ls)
		}
		sort.Strings(labelSets)
		for _, ls := range labelSets {
			f.children[ls].sampleLines(&b, f.name, ls)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Handler returns an http.Handler serving the registry as Prometheus text
// — the GET /metrics endpoint.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

func (c *Counter) sampleLines(b *strings.Builder, name, labels string) {
	writeSample(b, name, labels, "", formatInt(c.Value()))
}

func (g *Gauge) sampleLines(b *strings.Builder, name, labels string) {
	writeSample(b, name, labels, "", formatInt(g.Value()))
}

func (h *Histogram) sampleLines(b *strings.Builder, name, labels string) {
	cum := uint64(0)
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		writeSample(b, name+"_bucket", labels, `le="`+formatFloat(bound)+`"`, formatUint(cum))
	}
	cum += h.counts[len(h.bounds)].Load()
	writeSample(b, name+"_bucket", labels, `le="+Inf"`, formatUint(cum))
	writeSample(b, name+"_sum", labels, "", formatFloat(h.Sum()))
	writeSample(b, name+"_count", labels, "", formatUint(h.Count()))
}

// writeSample renders one `name{labels,extra} value` line; labels and
// extra are pre-rendered inner label strings, either possibly empty.
func writeSample(b *strings.Builder, name, labels, extra, value string) {
	b.WriteString(name)
	if labels != "" || extra != "" {
		b.WriteByte('{')
		b.WriteString(labels)
		if labels != "" && extra != "" {
			b.WriteByte(',')
		}
		b.WriteString(extra)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(value)
	b.WriteByte('\n')
}

func formatInt(v int64) string   { return strconv.FormatInt(v, 10) }
func formatUint(v uint64) string { return strconv.FormatUint(v, 10) }

// formatFloat renders a float the way Prometheus expects: shortest
// round-trip representation, integral values without an exponent.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes a HELP string: backslash and newline.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabelValue escapes a label value: backslash, double quote, newline.
func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
