package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Trace is a structured run-trace writer: one JSON object per line, each
// stamped with the record's virtual time (the simulation clock) and the
// wall-clock milliseconds since the trace started. Writes are serialized
// by a mutex, so concurrent emitters (sweep workers, say) interleave whole
// lines, never bytes. Field maps render through encoding/json, whose map
// keys are sorted — record layout is deterministic even though the wall
// stamps are not.
type Trace struct {
	mu    sync.Mutex
	w     io.Writer
	start time.Time
}

// NewTrace returns a trace writer over w. The caller owns w's lifetime
// (the writer is typically an *os.File the command closes on exit).
func NewTrace(w io.Writer) *Trace {
	return &Trace{w: w, start: time.Now()}
}

// TraceRecord is the JSONL schema of one trace line. Type is "event"
// (instantaneous) or "span" (carries a wall duration); VTSecs is the
// virtual-time stamp in seconds of simulation time, WallMS the wall-clock
// offset from trace start, DurMS a span's wall duration.
type TraceRecord struct {
	Type   string         `json:"type"`
	Name   string         `json:"name"`
	VTSecs int64          `json:"vt_secs"`
	WallMS float64        `json:"wall_ms"`
	DurMS  float64        `json:"dur_ms,omitempty"`
	Fields map[string]any `json:"fields,omitempty"`
}

// Event appends one instantaneous record.
func (t *Trace) Event(name string, vtSecs int64, fields map[string]any) {
	t.emit(TraceRecord{Type: "event", Name: name, VTSecs: vtSecs, Fields: fields})
}

// Span appends one duration-carrying record.
func (t *Trace) Span(name string, vtSecs int64, dur time.Duration, fields map[string]any) {
	t.emit(TraceRecord{
		Type: "span", Name: name, VTSecs: vtSecs,
		DurMS: float64(dur.Microseconds()) / 1e3, Fields: fields,
	})
}

func (t *Trace) emit(rec TraceRecord) {
	if t == nil {
		return
	}
	rec.WallMS = float64(time.Since(t.start).Microseconds()) / 1e3
	b, err := json.Marshal(rec)
	if err != nil {
		return // fields must be marshalable; a bad record is dropped, not fatal
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.w.Write(b)
	t.w.Write([]byte{'\n'})
}
