// Package panda implements the workload-management substrate: JEDI tasks
// and PanDA jobs, data-locality brokerage, per-site pilot slots, the pilot
// stage-in / payload / stage-out lifecycle, and emission of job and file
// metadata records. Together with the rucio package it generates the two
// metadata streams the paper's matching framework correlates.
//
// Entry point: NewSystem binds the manager to an engine, grid, and rucio
// instance, with sinks for the job and JEDI-file records it emits (the
// metastore's PutJob/PutFile in sim.Run). Brokerage is pluggable via the
// BrokerPolicy interface — DataLocalityPolicy is the paper's
// production heuristic, and internal/coopt supplies the shared-awareness
// alternatives. Invariant: job records deliberately carry the pandaid the
// transfer events lack; the asymmetry between the two streams is the
// paper's central data problem, so nothing here may leak job identity
// into rucio's events.
package panda
