package panda

import (
	"fmt"
	"math"

	"panrucio/internal/records"
	"panrucio/internal/rucio"
	"panrucio/internal/simtime"
	"panrucio/internal/topology"
)

// Options tunes job behaviour. Zero fields take the documented defaults.
type Options struct {
	// DirectIOFraction of analysis jobs stream their input during execution
	// (Analysis Download Direct IO) instead of pre-staging (default 0.40).
	DirectIOFraction float64
	// CacheHitProb is the probability that a job's input is already on the
	// worker-local cache (or accessed through a path that bypasses Rucio
	// event emission), producing no download events at all (default 0.85).
	// This is the main reason most jobs have no matched transfers.
	CacheHitProb float64
	// UploadWithJediFraction of user jobs record their output upload with a
	// jeditaskid; the rest are merged asynchronously without one (default
	// 0.01 — Table 1's Analysis Upload row is tiny but matches at ~95 %).
	UploadWithJediFraction float64
	// RedundantPrestageProb triggers a spurious duplicate stage-in at job
	// creation (before the pilot's real fetch) — the paper's Fig. 12
	// redundant-transfer pathology (default 0.04).
	RedundantPrestageProb float64
	// LateStartProb lets the payload start while stage-in is still running,
	// so the transfer spans queue and wall time (Fig. 11; default 0.15).
	LateStartProb float64
	// LateStartFailureBoost is the extra failure probability for jobs whose
	// stage-in bled into execution — the paper's Fig. 11 case ("it remains
	// plausible that the lengthy transfer increased the likelihood of
	// failure"; default 0.45).
	LateStartFailureBoost float64
	// DispatchDelayMean is the mean brokerage + pilot-provisioning latency
	// (exponential) between job creation and entry into the site backlog
	// (default 1200s). This is the queuing-time component unrelated to
	// data movement; it keeps the typical transfer-time fraction small
	// (the paper measures an 8.43 % mean and 1.94 % geometric mean).
	DispatchDelayMean simtime.VTime
	// RemoteBrokerageProb sends a job to a site that does not hold its
	// input even when a data site exists (queue pressure; default 0.05).
	RemoteBrokerageProb float64
	// BaseFailureProb is the staging-independent job failure rate (default 0.11).
	BaseFailureProb float64
	// StagingFailureBoost scales extra failure probability with the
	// fraction of queue time spent transferring (default 0.55), producing
	// Fig. 9's failure / transfer-time correlation.
	StagingFailureBoost float64
	// WalltimeMu/WalltimeSigma parameterize LogNormal payload durations in
	// seconds (defaults ln(5400) and 1.1).
	WalltimeMu, WalltimeSigma float64
	// TaskFailThreshold: a task is failed if more than this fraction of its
	// jobs failed (default 0.15 — JEDI retries are not modeled, and the
	// paper's matched population has ~40 % of its successful jobs inside
	// failed tasks, implying tasks fail on a small failed-job fraction).
	TaskFailThreshold float64
	// Broker overrides the brokerage policy (default: DataLocalityPolicy
	// with RemoteBrokerageProb escape hatch, the paper's PanDA heuristic).
	Broker BrokerPolicy
}

func (o *Options) fill() {
	def := func(p *float64, v float64) {
		if *p == 0 {
			*p = v
		}
	}
	def(&o.DirectIOFraction, 0.40)
	def(&o.CacheHitProb, 0.88)
	def(&o.UploadWithJediFraction, 0.01)
	def(&o.RedundantPrestageProb, 0.04)
	def(&o.LateStartProb, 0.15)
	def(&o.LateStartFailureBoost, 0.45)
	def(&o.RemoteBrokerageProb, 0.05)
	if o.DispatchDelayMean == 0 {
		o.DispatchDelayMean = 1200
	}
	def(&o.BaseFailureProb, 0.11)
	def(&o.StagingFailureBoost, 0.55)
	def(&o.WalltimeMu, math.Log(5400))
	def(&o.WalltimeSigma, 1.1)
	def(&o.TaskFailThreshold, 0.15)
}

// BrokerPolicy selects a computing site for a job. The default is the
// paper's data-centric heuristic (DataLocalityPolicy); the coopt package
// provides the co-optimization alternatives the paper's conclusion calls
// for. Policies must be deterministic given the rng.
type BrokerPolicy interface {
	// Name identifies the policy in experiment reports.
	Name() string
	// Choose returns the computing site for the job. The System exposes
	// read-only state (grid, catalog, per-site load) for scoring. The rng
	// is recycled after the task's jobs are enqueued — draw from it only
	// during the call, never retain it.
	Choose(j *Job, s *System, rng *simtime.RNG) string
}

// JobSink receives the job record when its task completes (the paper's
// query module only reports jobs whose task reached a terminal state inside
// the window).
type JobSink func(*records.JobRecord)

// FileSink receives JEDI file-table rows alongside the job record.
type FileSink func(*records.FileRecord)

// TaskSpec describes a JEDI task to submit.
type TaskSpec struct {
	Label         records.SourceLabel
	InputDatasets []string // catalogued dataset names
	JobCount      int
	FilesPerJob   int // inputs per job, drawn round-robin from the datasets
	OutputScope   string
}

// Task is a submitted JEDI task.
type Task struct {
	JediTaskID int64
	Spec       TaskSpec
	Jobs       []*Job
	doneJobs   int
	failedJobs int
	Status     records.TaskStatus
	OutputDS   string
}

// Job is one PanDA job.
type Job struct {
	PandaID int64
	Task    *Task

	Inputs   []*rucio.FileInfo
	Output   *rucio.FileInfo
	Site     string
	DirectIO bool

	Creation simtime.VTime
	Start    simtime.VTime
	End      simtime.VTime

	Status    records.JobStatus
	ErrorCode int
	ErrorMsg  string

	stagingBegan simtime.VTime
	stagingEnded simtime.VTime
}

// errorTable holds the failure modes observed in the paper's case studies
// plus common PanDA pilot errors. Weights are relative.
var errorTable = []struct {
	code int
	msg  string
	w    float64
}{
	{1305, "Non-zero return code from Overlay (1)", 2},
	{1099, "Stage-in timed out", 3},
	{1137, "Lost heartbeat", 2},
	{1213, "Payload exceeded memory limit", 1.5},
	{1361, "Output file size exceeded quota", 0.5},
	{1150, "Transfer failure: checksum mismatch", 1.5},
}

// siteState is a per-site pilot pool with a FIFO backlog.
type siteState struct {
	name    string
	slots   int
	running int
	backlog []*Job
}

// System is the PanDA instance.
type System struct {
	eng  *simtime.Engine
	grid *topology.Grid
	ruc  *rucio.Rucio
	rng  *simtime.RNG
	opts Options

	jobSink  JobSink
	fileSink FileSink

	sites      map[string]*siteState
	siteNames  []string
	cpuWeights []float64

	// siteBytes is the brokerage scratch map reused by inputBytesBySite
	// (the engine is single-threaded, so one buffer suffices).
	siteBytes map[string]int64

	// rngPool recycles per-entity generators (one stream per task, one per
	// job). Each math/rand source is ~5 KB, and a run splits one per job —
	// recycling dead generators removes that churn without changing any
	// draw sequence, since Reseed restores the exact fresh-source state.
	rngPool []*simtime.RNG

	nextTask int64
	nextJob  int64

	// Counters for quick inspection.
	SubmittedTasks int64
	SubmittedJobs  int64
	FinishedJobs   int64
	FailedJobs     int64
}

// NewSystem wires a PanDA instance over the grid and a Rucio instance.
// Sinks may be nil.
func NewSystem(eng *simtime.Engine, grid *topology.Grid, ruc *rucio.Rucio, rng *simtime.RNG, opts Options, js JobSink, fs FileSink) *System {
	opts.fill()
	s := &System{
		eng: eng, grid: grid, ruc: ruc, rng: rng, opts: opts,
		jobSink: js, fileSink: fs,
		sites:     make(map[string]*siteState),
		siteBytes: make(map[string]int64),
	}
	for _, site := range grid.Sites() {
		s.sites[site.Name] = &siteState{name: site.Name, slots: site.CPUSlots}
		s.siteNames = append(s.siteNames, site.Name)
		s.cpuWeights = append(s.cpuWeights, float64(site.CPUSlots))
	}
	return s
}

// Options reports the effective (defaulted) options.
func (s *System) Options() Options { return s.opts }

// splitRNG derives the child stream for label, reusing a pooled generator
// when one is free. The stream is identical to s.rng.Split(label); callers
// hand the generator back with releaseRNG once no further draws can occur.
func (s *System) splitRNG(label string) *simtime.RNG {
	if n := len(s.rngPool); n > 0 {
		g := s.rngPool[n-1]
		s.rngPool = s.rngPool[:n-1]
		s.rng.SplitInto(g, label)
		return g
	}
	return s.rng.Split(label)
}

// releaseRNG returns a dead generator to the pool. Generators owned by
// jobs the engine horizon cuts off are simply never returned.
func (s *System) releaseRNG(g *simtime.RNG) {
	s.rngPool = append(s.rngPool, g)
}

// nextTaskID allocates JEDI task ids in the paper's 7-digit range.
func (s *System) nextTaskID() int64 {
	s.nextTask++
	return 40_000_000 + s.nextTask
}

// nextPandaID allocates PanDA ids in the paper's 10-digit range.
func (s *System) nextPandaID() int64 {
	s.nextJob++
	return 6_580_000_000 + s.nextJob
}

// SubmitTask creates the task's jobs, brokers each one, and enqueues them.
// It returns the task handle; terminal state is reached asynchronously as
// the simulation runs.
func (s *System) SubmitTask(spec TaskSpec) (*Task, error) {
	if spec.JobCount <= 0 {
		return nil, fmt.Errorf("panda: task needs at least one job")
	}
	if spec.FilesPerJob <= 0 {
		spec.FilesPerJob = 1
	}
	if spec.OutputScope == "" {
		spec.OutputScope = "user.out"
	}
	var pool []*rucio.FileInfo
	for _, dsn := range spec.InputDatasets {
		ds, ok := s.ruc.Catalog().Dataset(dsn)
		if !ok {
			return nil, fmt.Errorf("panda: input dataset %q not in catalog", dsn)
		}
		pool = append(pool, ds.Files...)
	}
	if len(pool) == 0 {
		return nil, fmt.Errorf("panda: task has no input files")
	}
	// JEDI semantics: a task's jobs process disjoint subsets of the input
	// — each file is handled by exactly one job. Cap the job count (and the
	// per-job file count) to the pool size so subsets never overlap;
	// overlapping subsets would let Algorithm 1's per-task candidate set
	// cross-contaminate sibling jobs, which production metadata does not do.
	if spec.FilesPerJob > len(pool) {
		spec.FilesPerJob = len(pool)
	}
	if maxJobs := len(pool) / spec.FilesPerJob; spec.JobCount > maxJobs {
		spec.JobCount = maxJobs
	}
	t := &Task{JediTaskID: s.nextTaskID(), Spec: spec}
	t.OutputDS = fmt.Sprintf("%s.%d.out", spec.OutputScope, t.JediTaskID)
	if _, err := s.ruc.Catalog().CreateDataset(spec.OutputScope, t.OutputDS, ""); err != nil {
		return nil, err
	}
	s.SubmittedTasks++
	// The task stream dies with this loop: brokerage and enqueue draw
	// synchronously, and the dispatch closure captures no rng.
	taskRNG := s.splitRNG(fmt.Sprintf("task/%d", t.JediTaskID))
	defer s.releaseRNG(taskRNG)
	for i := 0; i < spec.JobCount; i++ {
		j := &Job{
			PandaID:  s.nextPandaID(),
			Task:     t,
			Creation: s.eng.Now(),
		}
		for k := 0; k < spec.FilesPerJob; k++ {
			j.Inputs = append(j.Inputs, pool[(i*spec.FilesPerJob+k)%len(pool)])
		}
		j.DirectIO = spec.Label == records.LabelUser && taskRNG.Bool(s.opts.DirectIOFraction)
		j.Site = s.broker(j, taskRNG)
		t.Jobs = append(t.Jobs, j)
		s.SubmittedJobs++
		s.enqueue(j, taskRNG)
	}
	return t, nil
}

// broker dispatches to the configured policy (default: data locality).
func (s *System) broker(j *Job, rng *simtime.RNG) string {
	if s.opts.Broker != nil {
		return s.opts.Broker.Choose(j, s, rng)
	}
	return DataLocalityPolicy{}.Choose(j, s, rng)
}

// DataLocalityPolicy is PanDA's production heuristic (Section 3.1 of the
// paper): assign the job to the site whose primary RSE holds the most
// input bytes, discounted by backlog pressure. With RemoteBrokerageProb
// (or when no site holds any input) the job goes to a CPU-weighted random
// site instead.
type DataLocalityPolicy struct{}

// Name implements BrokerPolicy.
func (DataLocalityPolicy) Name() string { return "data-locality" }

// Choose implements BrokerPolicy.
func (DataLocalityPolicy) Choose(j *Job, s *System, rng *simtime.RNG) string {
	if !rng.Bool(s.opts.RemoteBrokerageProb) {
		bySite := s.inputBytesBySite(j)
		best, bestScore := "", 0.0
		for _, name := range s.siteNames {
			bytes := bySite[name]
			if bytes == 0 {
				continue
			}
			pressure := 1 + float64(s.SiteBacklog(name))/math.Max(1, float64(s.SiteSlots(name)))
			score := float64(bytes) / pressure
			if score > bestScore {
				best, bestScore = name, score
			}
		}
		if best != "" {
			return best
		}
	}
	return s.siteNames[rng.Choice(s.cpuWeights)]
}

// inputBytesBySite computes InputBytesAt for every site in one pass by
// inverting the probe: walk each input file's replica set once and
// attribute its size to the site whose primary RSE holds it, instead of
// re-probing the replica map per (file, site) pair. Returns the reused
// scratch map — valid until the next call; values are identical to calling
// InputBytesAt per site (integer sums are order-insensitive).
func (s *System) inputBytesBySite(j *Job) map[string]int64 {
	clear(s.siteBytes)
	cat := s.ruc.Catalog()
	for _, f := range j.Inputs {
		size := f.Size
		cat.EachAvailableReplica(f.LFN, func(rse string) {
			if site, ok := s.grid.PrimarySite(rse); ok {
				s.siteBytes[site] += size
			}
		})
	}
	return s.siteBytes
}

// InputBytesAt sums the job's input bytes available at a site's primary
// disk RSE (the data-locality signal).
func (s *System) InputBytesAt(j *Job, site string) int64 {
	rse, ok := s.grid.PrimaryRSE(site)
	if !ok {
		return 0
	}
	var bytes int64
	for _, f := range j.Inputs {
		if s.ruc.Catalog().HasReplica(f.LFN, rse.Name) {
			bytes += f.Size
		}
	}
	return bytes
}

// SiteNames lists all brokerage candidates in stable order.
func (s *System) SiteNames() []string { return s.siteNames }

// SiteBacklog reports the queued (not yet piloted) jobs at a site.
func (s *System) SiteBacklog(site string) int {
	if st, ok := s.sites[site]; ok {
		return len(st.backlog)
	}
	return 0
}

// SiteRunning reports the executing pilots at a site.
func (s *System) SiteRunning(site string) int {
	if st, ok := s.sites[site]; ok {
		return st.running
	}
	return 0
}

// SiteSlots reports a site's pilot-pool capacity.
func (s *System) SiteSlots(site string) int {
	if st, ok := s.sites[site]; ok {
		return st.slots
	}
	return 0
}

// Grid exposes the topology for brokerage policies.
func (s *System) Grid() *topology.Grid { return s.grid }

// Rucio exposes the data-management substrate for brokerage policies.
func (s *System) Rucio() *rucio.Rucio { return s.ruc }

// enqueue routes a job through the brokerage/pilot-provisioning delay into
// its site backlog. A redundant prestage may fire immediately at creation
// (Fig. 12 pathology: the file set moves before the pilot's real fetch).
func (s *System) enqueue(j *Job, rng *simtime.RNG) {
	if !j.DirectIO && rng.Bool(s.opts.RedundantPrestageProb) {
		activity := records.AnalysisDownload
		if j.Task.Spec.Label == records.LabelManaged {
			activity = records.ProductionDown
		}
		s.ruc.PilotFetch(j.Inputs, j.Site, activity, j.Task.JediTaskID, nil)
	}
	delay := rng.VExp(s.opts.DispatchDelayMean)
	s.eng.After(delay, "panda.dispatch", func() {
		st := s.sites[j.Site]
		st.backlog = append(st.backlog, j)
		s.pump(st)
	})
}

// pump starts pilots while slots and backlog both remain.
func (s *System) pump(st *siteState) {
	for st.running < st.slots && len(st.backlog) > 0 {
		j := st.backlog[0]
		st.backlog = st.backlog[1:]
		st.running++
		s.beginPilot(j)
	}
}

// beginPilot runs the stage-in phase. The pilot holds its slot through
// stage-in, payload, and stage-out, like a real PanDA pilot.
func (s *System) beginPilot(j *Job) {
	jr := s.splitRNG(fmt.Sprintf("job/%d", j.PandaID))
	j.stagingBegan = s.eng.Now()

	activity := records.AnalysisDownload
	label := j.Task.Spec.Label
	if label == records.LabelManaged {
		activity = records.ProductionDown
	}

	cached := jr.Bool(s.opts.CacheHitProb)
	switch {
	case cached:
		// Input already on worker cache: no transfer events.
		j.stagingEnded = s.eng.Now()
		s.startPayload(j, jr)
	case j.DirectIO:
		// Streaming mode: payload starts now; transfers overlap execution.
		j.stagingEnded = s.eng.Now()
		s.startPayload(j, jr)
		s.ruc.PilotFetch(j.Inputs, j.Site, records.AnalysisDirectIO, j.Task.JediTaskID, nil)
	case len(j.Inputs) > 1 && jr.Bool(s.opts.LateStartProb):
		// Anomalous pilot: the payload launches as soon as the first file
		// lands, while the rest of stage-in continues — producing a
		// transfer that spans queue and wall time (Fig. 11).
		s.ruc.PilotFetchEach(j.Inputs, j.Site, activity, j.Task.JediTaskID,
			func(*records.TransferEvent) { s.startPayload(j, jr) },
			func() { j.stagingEnded = s.eng.Now() })
	default:
		s.ruc.PilotFetch(j.Inputs, j.Site, activity, j.Task.JediTaskID, func() {
			j.stagingEnded = s.eng.Now()
			s.startPayload(j, jr)
		})
	}
}

// startPayload marks execution start and schedules completion.
func (s *System) startPayload(j *Job, jr *simtime.RNG) {
	if j.Start != 0 {
		return // guard against double start in the late-start path
	}
	j.Start = s.eng.Now()
	wall := simtime.VTime(jr.LogNormal(s.opts.WalltimeMu, s.opts.WalltimeSigma))
	if wall < 30 {
		wall = 30
	}
	s.eng.After(wall, "panda.payload", func() { s.finishPayload(j, jr) })
}

// finishPayload decides the outcome, performs stage-out, and finalizes.
func (s *System) finishPayload(j *Job, jr *simtime.RNG) {
	// Every draw from the job stream happens in this body (the upload
	// completion and late-start closures reference j only, and startPayload
	// guards against a late re-entry), so jr is dead once it returns.
	defer s.releaseRNG(jr)
	// Failure probability grows with the fraction of queue time spent
	// staging — the paper's central correlation (Fig. 9).
	queue := (j.Start - j.Creation).Seconds()
	staging := (j.stagingEnded - j.stagingBegan).Seconds()
	frac := 0.0
	if queue > 0 && staging > 0 {
		frac = staging / queue
		if frac > 1 {
			frac = 1
		}
	}
	pFail := s.opts.BaseFailureProb + s.opts.StagingFailureBoost*frac
	if j.stagingEnded == 0 || j.stagingEnded > j.Start {
		// Stage-in bled into execution: the storage path is misbehaving.
		pFail += s.opts.LateStartFailureBoost
	}
	if jr.Bool(pFail) {
		j.Status = records.JobFailed
		e := errorTable[weightedIndex(jr, errorTable)]
		j.ErrorCode, j.ErrorMsg = e.code, e.msg
	} else {
		j.Status = records.JobFinished
	}

	// Stage-out: produce the output file and (for a subset) upload it with
	// jeditaskid before the job is marked terminal.
	outSize := int64(jr.LogNormal(math.Log(8e8), 0.8))
	if outSize < 1e6 {
		outSize = 1e6
	}
	out := &rucio.FileInfo{
		LFN:        fmt.Sprintf("%s._%010d.root", j.Task.OutputDS, j.PandaID),
		Scope:      j.Task.Spec.OutputScope,
		Dataset:    j.Task.OutputDS,
		ProdDBlock: j.Task.OutputDS,
		Size:       outSize,
	}
	if err := s.ruc.Catalog().AddFile(out); err == nil {
		j.Output = out
	}

	finish := func() { s.terminal(j) }
	if j.Output == nil || j.Status == records.JobFailed {
		finish()
		return
	}
	rse, ok := s.grid.PrimaryRSE(j.Site)
	if !ok {
		finish()
		return
	}
	jedi := int64(0)
	activity := records.AnalysisUpload
	if j.Task.Spec.Label == records.LabelManaged {
		jedi = j.Task.JediTaskID
		activity = records.ProductionUp
	} else if jr.Bool(s.opts.UploadWithJediFraction) {
		jedi = j.Task.JediTaskID
	}
	s.ruc.Upload(out, j.Site, rse.Name, activity, jedi, func(*records.TransferEvent) { finish() })
}

// terminal releases the slot, tallies, and — when the whole task is done —
// emits the job and file records for every job of the task.
func (s *System) terminal(j *Job) {
	j.End = s.eng.Now()
	st := s.sites[j.Site]
	st.running--
	s.pump(st)

	t := j.Task
	t.doneJobs++
	if j.Status == records.JobFailed {
		t.failedJobs++
		s.FailedJobs++
	} else {
		s.FinishedJobs++
	}
	if t.doneJobs < len(t.Jobs) {
		return
	}
	if float64(t.failedJobs) > s.opts.TaskFailThreshold*float64(len(t.Jobs)) {
		t.Status = records.TaskFailed
	} else {
		t.Status = records.TaskDone
	}
	s.emitTask(t)
}

// emitTask delivers job and file records for a completed task.
func (s *System) emitTask(t *Task) {
	for _, j := range t.Jobs {
		var inBytes, outBytes int64
		for _, f := range j.Inputs {
			inBytes += f.Size
		}
		if j.Output != nil {
			outBytes = j.Output.Size
		}
		if s.jobSink != nil {
			s.jobSink(&records.JobRecord{
				PandaID:          j.PandaID,
				JediTaskID:       t.JediTaskID,
				ComputingSite:    j.Site,
				Label:            t.Spec.Label,
				CreationTime:     j.Creation,
				StartTime:        j.Start,
				EndTime:          j.End,
				Status:           j.Status,
				TaskStatus:       t.Status,
				NInputFileBytes:  inBytes,
				NOutputFileBytes: outBytes,
				ErrorCode:        j.ErrorCode,
				ErrorMessage:     j.ErrorMsg,
			})
		}
		if s.fileSink != nil {
			for _, f := range j.Inputs {
				s.fileSink(&records.FileRecord{
					PandaID: j.PandaID, JediTaskID: t.JediTaskID,
					LFN: f.LFN, Scope: f.Scope, Dataset: f.Dataset,
					ProdDBlock: f.ProdDBlock, FileSize: f.Size,
					Kind: records.FileInput,
				})
			}
			if j.Output != nil {
				s.fileSink(&records.FileRecord{
					PandaID: j.PandaID, JediTaskID: t.JediTaskID,
					LFN: j.Output.LFN, Scope: j.Output.Scope, Dataset: j.Output.Dataset,
					ProdDBlock: j.Output.ProdDBlock, FileSize: j.Output.Size,
					Kind: records.FileOutput,
				})
			}
		}
	}
}

// Backlog reports the total queued (not yet piloted) jobs across sites.
func (s *System) Backlog() int {
	total := 0
	for _, st := range s.sites {
		total += len(st.backlog)
	}
	return total
}

// Running reports the total currently executing pilots.
func (s *System) Running() int {
	total := 0
	for _, st := range s.sites {
		total += st.running
	}
	return total
}

func weightedIndex(rng *simtime.RNG, tbl []struct {
	code int
	msg  string
	w    float64
}) int {
	w := make([]float64, len(tbl))
	for i := range tbl {
		w[i] = tbl[i].w
	}
	return rng.Choice(w)
}
