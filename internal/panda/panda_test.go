package panda

import (
	"fmt"
	"testing"

	"panrucio/internal/netsim"
	"panrucio/internal/records"
	"panrucio/internal/rucio"
	"panrucio/internal/simtime"
	"panrucio/internal/topology"
)

type fixture struct {
	eng   *simtime.Engine
	grid  *topology.Grid
	ruc   *rucio.Rucio
	sys   *System
	jobs  []*records.JobRecord
	files []*records.FileRecord
	evs   []*records.TransferEvent
}

func newFixture(seed int64, opts Options) *fixture {
	f := &fixture{}
	f.eng = simtime.NewEngine(0, 0)
	f.grid = topology.Default(topology.DefaultSpec{})
	root := simtime.NewRNG(seed)
	net := netsim.New(f.eng, f.grid, root.Split("net"), netsim.Options{})
	f.ruc = rucio.New(f.eng, f.grid, net, root.Split("rucio"), rucio.Options{}, func(ev *records.TransferEvent) {
		f.evs = append(f.evs, ev)
	})
	f.sys = NewSystem(f.eng, f.grid, f.ruc, root.Split("panda"), opts,
		func(j *records.JobRecord) { f.jobs = append(f.jobs, j) },
		func(fr *records.FileRecord) { f.files = append(f.files, fr) },
	)
	return f
}

// seedDataset places a dataset with nfiles files of size each at the named
// site's primary disk RSE.
func (f *fixture) seedDataset(name, site string, nfiles int, size int64) {
	f.ruc.Catalog().CreateDataset("data25", name, "")
	rse, ok := f.grid.PrimaryRSE(site)
	if !ok {
		panic("no RSE at " + site)
	}
	for i := 0; i < nfiles; i++ {
		file := &rucio.FileInfo{
			LFN: fmt.Sprintf("%s.f%04d", name, i), Scope: "data25",
			Dataset: name, ProdDBlock: name, Size: size,
		}
		if err := f.ruc.Catalog().AddFile(file); err != nil {
			panic(err)
		}
		f.ruc.Catalog().SetReplica(file.LFN, rse.Name, rucio.ReplicaAvailable)
	}
}

func TestSubmitTaskValidation(t *testing.T) {
	f := newFixture(1, Options{})
	if _, err := f.sys.SubmitTask(TaskSpec{JobCount: 0}); err == nil {
		t.Error("zero jobs accepted")
	}
	if _, err := f.sys.SubmitTask(TaskSpec{JobCount: 1, InputDatasets: []string{"nope"}}); err == nil {
		t.Error("unknown dataset accepted")
	}
	if _, err := f.sys.SubmitTask(TaskSpec{JobCount: 1}); err == nil {
		t.Error("task without input files accepted")
	}
}

func TestTaskRunsToCompletion(t *testing.T) {
	f := newFixture(2, Options{})
	f.seedDataset("data25.ds1", "CERN-PROD", 20, 2e9)
	task, err := f.sys.SubmitTask(TaskSpec{
		Label: records.LabelUser, InputDatasets: []string{"data25.ds1"},
		JobCount: 10, FilesPerJob: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.eng.Run()
	if task.Status != records.TaskDone && task.Status != records.TaskFailed {
		t.Fatalf("task not terminal: %q", task.Status)
	}
	if len(f.jobs) != 10 {
		t.Fatalf("%d job records, want 10", len(f.jobs))
	}
	for _, j := range f.jobs {
		if j.CreationTime > j.StartTime || j.StartTime > j.EndTime {
			t.Errorf("job %d time order broken: %d/%d/%d", j.PandaID, j.CreationTime, j.StartTime, j.EndTime)
		}
		if j.JediTaskID != task.JediTaskID {
			t.Error("jeditaskid mismatch")
		}
		if j.NInputFileBytes != 2*2e9 {
			t.Errorf("NInputFileBytes = %d", j.NInputFileBytes)
		}
		if j.Status != records.JobFinished && j.Status != records.JobFailed {
			t.Errorf("job status %q", j.Status)
		}
	}
	// File records: 2 inputs per job plus outputs for jobs that produced one.
	inputs, outputs := 0, 0
	for _, fr := range f.files {
		switch fr.Kind {
		case records.FileInput:
			inputs++
		case records.FileOutput:
			outputs++
		}
		if fr.JediTaskID != task.JediTaskID {
			t.Error("file record task id mismatch")
		}
	}
	if inputs != 20 {
		t.Errorf("input file records = %d, want 20", inputs)
	}
	if outputs == 0 {
		t.Error("no output file records")
	}
	if f.sys.Backlog() != 0 || f.sys.Running() != 0 {
		t.Error("pilots leaked")
	}
}

func TestBrokerageFollowsData(t *testing.T) {
	f := newFixture(3, Options{RemoteBrokerageProb: 1e-12, CacheHitProb: 1e-12})
	f.seedDataset("data25.ds2", "TOKYO-LCG2", 8, 1e9)
	task, err := f.sys.SubmitTask(TaskSpec{
		Label: records.LabelUser, InputDatasets: []string{"data25.ds2"},
		JobCount: 8, FilesPerJob: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range task.Jobs {
		if j.Site != "TOKYO-LCG2" {
			t.Errorf("job sent to %s, want data site TOKYO-LCG2", j.Site)
		}
	}
	f.eng.Run()
	// All non-cached stage-ins should be local.
	for _, ev := range f.evs {
		if ev.IsDownload && !ev.IsLocal() {
			t.Errorf("data-local job staged remotely: %s->%s", ev.SourceSite, ev.DestinationSite)
		}
	}
}

func TestRemoteBrokerageProducesRemoteTransfers(t *testing.T) {
	f := newFixture(4, Options{RemoteBrokerageProb: 0.999999, CacheHitProb: 1e-12, DirectIOFraction: 1e-12})
	f.seedDataset("data25.ds3", "CERN-PROD", 4, 1e9)
	f.sys.SubmitTask(TaskSpec{
		Label: records.LabelUser, InputDatasets: []string{"data25.ds3"},
		JobCount: 4, FilesPerJob: 1,
	})
	f.eng.Run()
	remote := 0
	for _, ev := range f.evs {
		if ev.IsDownload && !ev.IsLocal() {
			remote++
		}
	}
	if remote == 0 {
		t.Error("forced remote brokerage produced no remote transfers")
	}
}

func TestDirectIOOverlapsExecution(t *testing.T) {
	f := newFixture(5, Options{DirectIOFraction: 0.999999, CacheHitProb: 1e-12})
	f.seedDataset("data25.ds4", "BNL-ATLAS", 6, 5e9)
	task, _ := f.sys.SubmitTask(TaskSpec{
		Label: records.LabelUser, InputDatasets: []string{"data25.ds4"},
		JobCount: 3, FilesPerJob: 2,
	})
	f.eng.Run()
	var dio []*records.TransferEvent
	for _, ev := range f.evs {
		if ev.Activity == records.AnalysisDirectIO {
			dio = append(dio, ev)
		}
	}
	if len(dio) == 0 {
		t.Fatal("no direct-IO events")
	}
	// Direct-IO transfers begin at/after payload start of their job.
	byTask := map[int64]simtime.VTime{}
	for _, j := range task.Jobs {
		if byTask[j.Task.JediTaskID] == 0 || j.Start < byTask[j.Task.JediTaskID] {
			byTask[j.Task.JediTaskID] = j.Start
		}
	}
	for _, ev := range dio {
		if ev.StartedAt < byTask[ev.JediTaskID] {
			t.Error("direct-IO transfer started before any job start")
		}
	}
}

func TestProductionUsesProductionActivities(t *testing.T) {
	f := newFixture(6, Options{CacheHitProb: 1e-12, DirectIOFraction: 1e-12})
	f.seedDataset("mc25.ds5", "FZK-LCG2", 10, 2e9)
	f.sys.SubmitTask(TaskSpec{
		Label: records.LabelManaged, InputDatasets: []string{"mc25.ds5"},
		JobCount: 5, FilesPerJob: 2, OutputScope: "mc25.out",
	})
	f.eng.Run()
	var down, up int
	for _, ev := range f.evs {
		switch ev.Activity {
		case records.ProductionDown:
			down++
			if ev.JediTaskID == 0 {
				t.Error("production download lost jeditaskid")
			}
		case records.ProductionUp:
			up++
			if ev.JediTaskID == 0 {
				t.Error("production upload lost jeditaskid")
			}
		case records.AnalysisDownload, records.AnalysisUpload, records.AnalysisDirectIO:
			t.Errorf("production task emitted analysis activity %q", ev.Activity)
		}
	}
	if down == 0 {
		t.Error("no production downloads")
	}
	if up == 0 {
		t.Error("no production uploads")
	}
	for _, j := range f.jobs {
		if j.Label != records.LabelManaged {
			t.Error("job record label wrong")
		}
	}
}

func TestCacheHitProducesNoDownloads(t *testing.T) {
	f := newFixture(7, Options{CacheHitProb: 0.999999, DirectIOFraction: 1e-12, UploadWithJediFraction: 1e-12, RedundantPrestageProb: 1e-12})
	f.seedDataset("data25.ds6", "PIC", 4, 1e9)
	f.sys.SubmitTask(TaskSpec{
		Label: records.LabelUser, InputDatasets: []string{"data25.ds6"},
		JobCount: 4, FilesPerJob: 1,
	})
	f.eng.Run()
	for _, ev := range f.evs {
		if ev.IsDownload {
			t.Fatalf("cache-hit job still downloaded: %+v", ev)
		}
	}
}

func TestRedundantPrestageDuplicatesFileSet(t *testing.T) {
	f := newFixture(8, Options{RedundantPrestageProb: 0.999999, CacheHitProb: 1e-12, DirectIOFraction: 1e-12})
	f.seedDataset("data25.ds7", "CERN-PROD", 3, 3e9)
	f.sys.SubmitTask(TaskSpec{
		Label: records.LabelUser, InputDatasets: []string{"data25.ds7"},
		JobCount: 1, FilesPerJob: 3,
	})
	f.eng.Run()
	counts := map[string]int{}
	for _, ev := range f.evs {
		if ev.Activity == records.AnalysisDownload {
			counts[ev.LFN]++
		}
	}
	dup := 0
	for _, c := range counts {
		if c >= 2 {
			dup++
		}
	}
	if dup != 3 {
		t.Errorf("redundant prestage duplicated %d/3 files", dup)
	}
}

func TestLateStartSpansQueueAndWall(t *testing.T) {
	f := newFixture(9, Options{LateStartProb: 0.999999, CacheHitProb: 1e-12, DirectIOFraction: 1e-12, RedundantPrestageProb: 1e-12, RemoteBrokerageProb: 1e-12})
	// Unequal sizes: the payload starts after the small file lands while
	// the big one is still moving.
	f.ruc.Catalog().CreateDataset("data25", "data25.ds8", "")
	rse, _ := f.grid.PrimaryRSE("SIGNET")
	for i, size := range []int64{2e9, 120e9} {
		file := &rucio.FileInfo{
			LFN: fmt.Sprintf("data25.ds8.f%d", i), Scope: "data25",
			Dataset: "data25.ds8", ProdDBlock: "data25.ds8", Size: size,
		}
		f.ruc.Catalog().AddFile(file)
		f.ruc.Catalog().SetReplica(file.LFN, rse.Name, rucio.ReplicaAvailable)
	}
	task, _ := f.sys.SubmitTask(TaskSpec{
		Label: records.LabelUser, InputDatasets: []string{"data25.ds8"},
		JobCount: 1, FilesPerJob: 2,
	})
	f.eng.Run()
	j := task.Jobs[0]
	spans := false
	for _, ev := range f.evs {
		if ev.IsDownload && ev.StartedAt < j.Start && ev.EndedAt > j.Start {
			spans = true
		}
	}
	if !spans {
		t.Error("late-start job has no transfer spanning queue and wall time")
	}
}

func TestUploadJediFraction(t *testing.T) {
	f := newFixture(10, Options{UploadWithJediFraction: 0.999999, CacheHitProb: 0.999999, BaseFailureProb: 1e-12, StagingFailureBoost: 1e-12, RemoteBrokerageProb: 1e-12})
	f.seedDataset("data25.ds9", "MWT2", 4, 1e9)
	f.sys.SubmitTask(TaskSpec{
		Label: records.LabelUser, InputDatasets: []string{"data25.ds9"},
		JobCount: 4, FilesPerJob: 1,
	})
	f.eng.Run()
	uploads := 0
	for _, ev := range f.evs {
		if ev.Activity == records.AnalysisUpload {
			uploads++
			if ev.JediTaskID == 0 {
				t.Error("upload missing jeditaskid despite fraction=1")
			}
			if ev.SourceSite != "MWT2" {
				t.Errorf("upload source %s, want computing site", ev.SourceSite)
			}
		}
	}
	if uploads != 4 {
		t.Errorf("uploads = %d, want 4 (all jobs finished)", uploads)
	}
}

func TestSlotContentionQueuesJobs(t *testing.T) {
	f := newFixture(11, Options{CacheHitProb: 0.999999, RemoteBrokerageProb: 1e-12})
	// Shrink a site to 2 slots to force queueing.
	f.sys.sites["GENOVA-T3"].slots = 2
	f.seedDataset("data25.ds10", "GENOVA-T3", 10, 1e9)
	task, _ := f.sys.SubmitTask(TaskSpec{
		Label: records.LabelUser, InputDatasets: []string{"data25.ds10"},
		JobCount: 10, FilesPerJob: 1,
	})
	for _, j := range task.Jobs {
		if j.Site != "GENOVA-T3" {
			t.Fatalf("job escaped to %s", j.Site)
		}
	}
	if got := f.sys.sites["GENOVA-T3"].running; got > 2 {
		t.Errorf("running=%d exceeds 2 slots", got)
	}
	f.eng.Run()
	if task.Status == "" {
		t.Error("task never finished under contention")
	}
	// Later jobs must have waited: at least one job with queue time > 0.
	waited := false
	for _, j := range f.jobs {
		if j.QueueTime() > 0 {
			waited = true
		}
	}
	if !waited {
		t.Error("no job experienced queue delay despite 10 jobs on 2 slots")
	}
}

func TestFailedJobsGetErrorCodes(t *testing.T) {
	f := newFixture(12, Options{BaseFailureProb: 0.999999, CacheHitProb: 0.999999})
	f.seedDataset("data25.ds11", "LAPP-T2", 5, 1e9)
	f.sys.SubmitTask(TaskSpec{
		Label: records.LabelUser, InputDatasets: []string{"data25.ds11"},
		JobCount: 5, FilesPerJob: 1,
	})
	f.eng.Run()
	for _, j := range f.jobs {
		if j.Status != records.JobFailed {
			t.Fatalf("job %d not failed despite p=1", j.PandaID)
		}
		if j.ErrorCode == 0 || j.ErrorMessage == "" {
			t.Error("failed job lacks error code/message")
		}
		if j.TaskStatus != records.TaskFailed {
			t.Error("all-failed task not marked failed")
		}
	}
	if f.sys.FailedJobs != 5 {
		t.Errorf("FailedJobs = %d", f.sys.FailedJobs)
	}
}

func TestIDRangesAndDeterminism(t *testing.T) {
	run := func() []int64 {
		f := newFixture(13, Options{})
		f.seedDataset("data25.ds12", "CERN-PROD", 6, 1e9)
		task, _ := f.sys.SubmitTask(TaskSpec{
			Label: records.LabelUser, InputDatasets: []string{"data25.ds12"},
			JobCount: 6, FilesPerJob: 1,
		})
		f.eng.Run()
		_ = task
		var out []int64
		for _, j := range f.jobs {
			out = append(out, j.PandaID, int64(j.EndTime))
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("nondeterministic record count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
	f := newFixture(14, Options{})
	if id := f.sys.nextPandaID(); id <= 6_580_000_000 {
		t.Errorf("pandaid %d outside paper-like range", id)
	}
	if id := f.sys.nextTaskID(); id <= 40_000_000 {
		t.Errorf("jeditaskid %d outside paper-like range", id)
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	o.fill()
	if o.DirectIOFraction != 0.40 || o.CacheHitProb != 0.88 || o.TaskFailThreshold != 0.15 {
		t.Errorf("defaults not applied: %+v", o)
	}
}
