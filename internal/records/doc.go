// Package records defines the metadata record schema shared by the PanDA
// and Rucio substrates, the metastore, and the matching framework. The
// fields mirror the attributes the paper's Algorithm 1 consumes: PanDA job
// records (JobRecord), JEDI file records (FileRecord), and Rucio transfer
// events (TransferEvent). Transfer events deliberately carry no pandaid —
// the absence of that link is the paper's central data problem.
//
// The package is schema only: plain structs, the Activity and SourceLabel
// vocabularies, and small derived accessors (IsLocal, HasTaskID, and the
// QueueTime/WallTime/Duration intervals). It imports nothing but simtime, so
// every layer can share it without dependency cycles. Records are created
// by the substrates, ingested by the metastore, and treated as immutable
// from then on — the corruption layer is the single sanctioned mutator,
// and it runs before ingestion. The structs are plain value types by
// design: the metastore copies them into its columnar arenas at ingest
// (producers may reuse their structs after Put), so a record must never
// carry hidden reference semantics beyond its string fields.
package records
