package records

import "panrucio/internal/simtime"

// Activity is the Rucio transfer activity label (paper Table 1).
type Activity string

// Transfer activities. The first five are the job-correlated activities of
// Table 1; the rest are background data-management traffic that dominates
// Fig. 3's volume but carries no jeditaskid.
const (
	AnalysisDownload Activity = "Analysis Download"
	AnalysisUpload   Activity = "Analysis Upload"
	AnalysisDirectIO Activity = "Analysis Download Direct IO"
	ProductionDown   Activity = "Production Download"
	ProductionUp     Activity = "Production Upload"

	DataRebalancing   Activity = "Data Rebalancing"
	DataConsolidation Activity = "Data Consolidation"
	TierExport        Activity = "T0 Export"
	UserSubscription  Activity = "User Subscriptions"
)

// JobActivities lists the five activities that can carry a jeditaskid and
// therefore participate in matching, in Table 1 row order.
var JobActivities = []Activity{
	AnalysisDownload,
	AnalysisUpload,
	AnalysisDirectIO,
	ProductionUp,
	ProductionDown,
}

// JobStatus is the terminal state of a PanDA job.
type JobStatus string

// Job terminal states ("D" and "F" in the paper's Fig. 5 labels).
const (
	JobFinished JobStatus = "finished"
	JobFailed   JobStatus = "failed"
)

// TaskStatus is the terminal state of a JEDI task.
type TaskStatus string

// Task terminal states.
const (
	TaskDone   TaskStatus = "done"
	TaskFailed TaskStatus = "failed"
)

// SourceLabel distinguishes user analysis jobs from managed production.
type SourceLabel string

// Job source labels. The paper's 8-day query set contains user jobs only,
// which is why Production activities match at 0 % in Table 1.
const (
	LabelUser    SourceLabel = "user"
	LabelManaged SourceLabel = "managed"
)

// JobRecord is a PanDA job metadata record as returned by the query module.
type JobRecord struct {
	PandaID       int64
	JediTaskID    int64
	ComputingSite string
	Label         SourceLabel

	CreationTime simtime.VTime // job submitted
	StartTime    simtime.VTime // payload execution began
	EndTime      simtime.VTime // terminal state reached

	Status     JobStatus
	TaskStatus TaskStatus

	NInputFileBytes  int64
	NOutputFileBytes int64

	ErrorCode    int
	ErrorMessage string
}

// QueueTime is the paper's queuing time: creation to execution start.
func (j *JobRecord) QueueTime() simtime.VTime { return j.StartTime - j.CreationTime }

// WallTime is the execution period: start to completion.
func (j *JobRecord) WallTime() simtime.VTime { return j.EndTime - j.StartTime }

// Lifetime is creation to completion.
func (j *JobRecord) Lifetime() simtime.VTime { return j.EndTime - j.CreationTime }

// FileKind marks a file record as job input or output.
type FileKind string

// File kinds in the JEDI file table.
const (
	FileInput  FileKind = "input"
	FileOutput FileKind = "output"
)

// FileRecord is a JEDI file-table row: the bridge between jobs and
// transfers. It carries both pandaid and the file attributes that transfer
// events also carry.
type FileRecord struct {
	PandaID    int64
	JediTaskID int64

	LFN        string
	Scope      string
	Dataset    string
	ProdDBlock string
	FileSize   int64
	Kind       FileKind
}

// TransferEvent is a Rucio file-transfer completion event. There is no
// pandaid field by design; jeditaskid is present only for job-correlated
// activities and may be lost to corruption (0 = absent).
type TransferEvent struct {
	EventID int64

	LFN        string
	Scope      string
	Dataset    string
	ProdDBlock string
	FileSize   int64

	SourceRSE       string
	DestinationRSE  string
	SourceSite      string // may be topology.UnknownSite after corruption
	DestinationSite string // may be topology.UnknownSite after corruption

	Activity   Activity
	IsDownload bool
	IsUpload   bool

	JediTaskID int64 // 0 = not recorded

	SubmittedAt simtime.VTime
	StartedAt   simtime.VTime
	EndedAt     simtime.VTime

	ThroughputBps float64
}

// Duration is the active transfer time.
func (t *TransferEvent) Duration() simtime.VTime { return t.EndedAt - t.StartedAt }

// IsLocal reports whether source and destination site labels agree (the
// diagonal cells of Fig. 3). Transfers with an UNKNOWN endpoint are not
// local unless both endpoints are UNKNOWN, mirroring the paper's Fig. 3
// aggregation.
func (t *TransferEvent) IsLocal() bool { return t.SourceSite == t.DestinationSite }

// HasTaskID reports whether the event retained a valid jeditaskid.
func (t *TransferEvent) HasTaskID() bool { return t.JediTaskID != 0 }
