package records

import (
	"testing"

	"panrucio/internal/simtime"
	"panrucio/internal/topology"
)

func TestJobRecordTimes(t *testing.T) {
	j := &JobRecord{CreationTime: 100, StartTime: 400, EndTime: 1000}
	if j.QueueTime() != 300 {
		t.Errorf("QueueTime = %d", j.QueueTime())
	}
	if j.WallTime() != 600 {
		t.Errorf("WallTime = %d", j.WallTime())
	}
	if j.Lifetime() != 900 {
		t.Errorf("Lifetime = %d", j.Lifetime())
	}
}

func TestTransferEventHelpers(t *testing.T) {
	ev := &TransferEvent{SourceSite: "A", DestinationSite: "A", StartedAt: 10, EndedAt: 40}
	if !ev.IsLocal() {
		t.Error("same-site transfer should be local")
	}
	if ev.Duration() != 30 {
		t.Errorf("Duration = %d", ev.Duration())
	}
	ev.DestinationSite = "B"
	if ev.IsLocal() {
		t.Error("cross-site transfer should be remote")
	}
	ev.SourceSite = topology.UnknownSite
	ev.DestinationSite = topology.UnknownSite
	if !ev.IsLocal() {
		t.Error("double-UNKNOWN counts as diagonal per Fig. 3 aggregation")
	}
	if ev.HasTaskID() {
		t.Error("zero jeditaskid must read as absent")
	}
	ev.JediTaskID = 77
	if !ev.HasTaskID() {
		t.Error("nonzero jeditaskid must read as present")
	}
}

func TestJobActivitiesOrder(t *testing.T) {
	want := []Activity{AnalysisDownload, AnalysisUpload, AnalysisDirectIO, ProductionUp, ProductionDown}
	if len(JobActivities) != len(want) {
		t.Fatal("JobActivities length changed")
	}
	for i := range want {
		if JobActivities[i] != want[i] {
			t.Errorf("JobActivities[%d] = %q, want %q (Table 1 row order)", i, JobActivities[i], want[i])
		}
	}
}

func TestVTimeZeroValues(t *testing.T) {
	var j JobRecord
	if j.QueueTime() != 0 || j.WallTime() != 0 {
		t.Error("zero record should have zero durations")
	}
	_ = simtime.VTime(0)
}
