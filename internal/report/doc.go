// Package report renders analysis outputs as fixed-width ASCII tables,
// CSV, and text sparklines — the presentation layer for the table and
// figure regenerators. Keeping rendering separate from computation lets
// the bench harness validate numbers without parsing text.
//
// Entry points: Table (Render / CSV), Series with Sparkline, and
// RenderSeries for labelled sparkline blocks. Rendering is deterministic:
// output is a pure function of the table or series contents (column
// widths derive from the cells, never from terminal state), which is what
// lets cmd/repro diffs, the equivalence tests, and the sweep engine's
// byte-identical-report guarantee treat rendered text as a stable
// artifact.
package report
