package report

import (
	"fmt"
	"strings"
)

// Table is a titled grid of string cells.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	for len(cells) < len(t.Columns) {
		cells = append(cells, "")
	}
	t.Rows = append(t.Rows, cells)
}

// Render produces an aligned ASCII view.
func (t *Table) Render() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	line := func(cells []string) {
		for i := range t.Columns {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			fmt.Fprintf(&b, "| %-*s ", widths[i], cell)
		}
		b.WriteString("|\n")
	}
	line(t.Columns)
	for i, w := range widths {
		if i == 0 {
			b.WriteString("|")
		}
		b.WriteString(strings.Repeat("-", w+2))
		b.WriteString("|")
	}
	b.WriteString("\n")
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// CSV produces a comma-separated view with minimal quoting.
func (t *Table) CSV() string {
	var b strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	row := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(esc(c))
		}
		b.WriteByte('\n')
	}
	row(t.Columns)
	for _, r := range t.Rows {
		row(r)
	}
	return b.String()
}

// Point is one (x, y) sample of a figure series.
type Point struct {
	X float64
	Y float64
}

// Series is a named sequence of points (one line of a figure).
type Series struct {
	Name   string
	XLabel string
	YLabel string
	Points []Point
}

// MaxY returns the largest Y value, or 0 for an empty series.
func (s *Series) MaxY() float64 {
	m := 0.0
	for _, p := range s.Points {
		if p.Y > m {
			m = p.Y
		}
	}
	return m
}

// Sparkline renders the series as a single text line of height-8 block
// glyphs, downsampled (by max) to the given width.
func (s *Series) Sparkline(width int) string {
	if width <= 0 || len(s.Points) == 0 {
		return ""
	}
	glyphs := []rune(" ▁▂▃▄▅▆▇█")
	maxY := s.MaxY()
	if maxY == 0 {
		return strings.Repeat(" ", width)
	}
	out := make([]rune, width)
	per := float64(len(s.Points)) / float64(width)
	for i := 0; i < width; i++ {
		lo := int(float64(i) * per)
		hi := int(float64(i+1) * per)
		if hi <= lo {
			hi = lo + 1
		}
		if hi > len(s.Points) {
			hi = len(s.Points)
		}
		bucket := 0.0
		for _, p := range s.Points[lo:hi] {
			if p.Y > bucket {
				bucket = p.Y
			}
		}
		g := int(bucket / maxY * float64(len(glyphs)-1))
		if g < 0 {
			g = 0
		}
		if g >= len(glyphs) {
			g = len(glyphs) - 1
		}
		out[i] = glyphs[g]
	}
	return string(out)
}

// RenderSeries renders a labelled sparkline block for several series.
func RenderSeries(title string, width int, series []*Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", title)
	nameW := 0
	for _, s := range series {
		if len(s.Name) > nameW {
			nameW = len(s.Name)
		}
	}
	for _, s := range series {
		fmt.Fprintf(&b, "%-*s |%s| max=%.3g\n", nameW, s.Name, s.Sparkline(width), s.MaxY())
	}
	return b.String()
}
