package report

import (
	"strings"
	"testing"
)

func TestTableRenderAlignment(t *testing.T) {
	tbl := &Table{Title: "T", Columns: []string{"a", "bee"}}
	tbl.AddRow("longer", "x")
	tbl.AddRow("s") // short row padded
	out := tbl.Render()
	if !strings.Contains(out, "== T ==") {
		t.Error("title missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	// All data lines equal width.
	if len(lines[1]) != len(lines[3]) || len(lines[3]) != len(lines[4]) {
		t.Errorf("misaligned rows:\n%s", out)
	}
}

func TestTableCSVEscaping(t *testing.T) {
	tbl := &Table{Columns: []string{"a", "b"}}
	tbl.AddRow(`say "hi"`, "x,y")
	csv := tbl.CSV()
	if !strings.Contains(csv, `"say ""hi"""`) {
		t.Errorf("quote escaping wrong: %q", csv)
	}
	if !strings.Contains(csv, `"x,y"`) {
		t.Errorf("comma escaping wrong: %q", csv)
	}
	if !strings.HasPrefix(csv, "a,b\n") {
		t.Errorf("header wrong: %q", csv)
	}
}

func TestSparkline(t *testing.T) {
	s := &Series{Name: "x"}
	for i := 0; i < 100; i++ {
		s.Points = append(s.Points, Point{X: float64(i), Y: float64(i % 10)})
	}
	line := s.Sparkline(20)
	if len([]rune(line)) != 20 {
		t.Fatalf("width = %d", len([]rune(line)))
	}
	if s.Sparkline(0) != "" {
		t.Error("zero width should be empty")
	}
	empty := &Series{}
	if empty.Sparkline(5) != "" {
		t.Error("empty series should render empty")
	}
	flat := &Series{Points: []Point{{0, 0}, {1, 0}}}
	if got := flat.Sparkline(4); got != "    " {
		t.Errorf("flat zero series = %q", got)
	}
}

func TestMaxYAndRenderSeries(t *testing.T) {
	s := &Series{Name: "conn", Points: []Point{{0, 1}, {1, 5}, {2, 3}}}
	if s.MaxY() != 5 {
		t.Errorf("MaxY = %g", s.MaxY())
	}
	out := RenderSeries("F", 10, []*Series{s})
	if !strings.Contains(out, "== F ==") || !strings.Contains(out, "conn") {
		t.Errorf("RenderSeries output: %q", out)
	}
	if !strings.Contains(out, "max=5") {
		t.Errorf("max annotation missing: %q", out)
	}
}
