package rucio

import (
	"fmt"

	"panrucio/internal/records"
	"panrucio/internal/simtime"
	"panrucio/internal/topology"
)

// BackgroundConfig tunes the non-job data-management traffic: Tier-0
// export, inter-site rebalancing, intra-site consolidation (tape/disk
// movement, the source of Fig. 3's huge diagonal cells), and user
// subscriptions. Every interval is a mean exponential inter-arrival time;
// zero fields take defaults.
type BackgroundConfig struct {
	ExportInterval        simtime.VTime // T0 -> Tier-1 export bursts (default 1800s)
	RebalanceInterval     simtime.VTime // cross-site rebalancing (default 1200s)
	ConsolidationInterval simtime.VTime // same-site tape<->disk (default 600s)
	SubscriptionInterval  simtime.VTime // user-driven replication (default 2400s)

	// Dataset shape for rebalancing traffic: file count is
	// 1+Poisson(MeanFiles-1); file sizes are LogNormal(SizeMu, SizeSigma)
	// bytes with a Pareto tail. The other activities use scaled profiles
	// derived from this one (consolidation bulky and heavy-tailed,
	// subscriptions tiny), which is what produces Fig. 3's five-orders-of-
	// magnitude spread between the mean and geometric-mean cell volumes.
	MeanFiles int     // default 6
	SizeMu    float64 // default log(2.5 GB)
	SizeSigma float64 // default 0.9
}

// Scaled returns the config with defaults filled and the background event
// rate multiplied by f (every mean inter-arrival interval shrinks by f).
// f <= 0 or 1 only fills defaults. Dataset shape is left alone: scaling
// grows the number of movements, not their size.
func (c BackgroundConfig) Scaled(f float64) BackgroundConfig {
	c.fill()
	if f <= 0 || f == 1 {
		return c
	}
	for _, iv := range []*simtime.VTime{
		&c.ExportInterval, &c.RebalanceInterval, &c.ConsolidationInterval, &c.SubscriptionInterval,
	} {
		scaled := simtime.VTime(float64(*iv) / f)
		if scaled < 1 {
			scaled = 1
		}
		*iv = scaled
	}
	return c
}

func (c *BackgroundConfig) fill() {
	if c.ExportInterval == 0 {
		c.ExportInterval = 1800
	}
	if c.RebalanceInterval == 0 {
		c.RebalanceInterval = 1200
	}
	if c.ConsolidationInterval == 0 {
		c.ConsolidationInterval = 600
	}
	if c.SubscriptionInterval == 0 {
		c.SubscriptionInterval = 2400
	}
	if c.MeanFiles == 0 {
		c.MeanFiles = 6
	}
	if c.SizeMu == 0 {
		c.SizeMu = 21.64 // ln(2.5e9)
	}
	if c.SizeSigma == 0 {
		c.SizeSigma = 0.9
	}
}

// sizeProfile shapes one activity's dataset generation.
type sizeProfile struct {
	meanFiles int
	mu, sigma float64
	tailProb  float64
	tailScale float64
	tailAlpha float64
}

// profiles derives the per-activity dataset shapes from the config.
func (c *BackgroundConfig) profiles() (export, rebalance, consolidate, subscribe sizeProfile) {
	rebalance = sizeProfile{
		meanFiles: (2*c.MeanFiles + 2) / 3, mu: c.SizeMu - 0.3, sigma: c.SizeSigma,
		tailProb: 0.02, tailScale: 20e9, tailAlpha: 1.2,
	}
	export = sizeProfile{
		meanFiles: 2 * c.MeanFiles, mu: c.SizeMu + 0.7, sigma: c.SizeSigma,
		tailProb: 0.04, tailScale: 30e9, tailAlpha: 1.1,
	}
	// Consolidation is the bulk tape/disk movement behind the paper's
	// >30 PB diagonal outliers: many large files, fat Pareto tail.
	consolidate = sizeProfile{
		meanFiles: 4 * c.MeanFiles, mu: c.SizeMu + 2.1, sigma: c.SizeSigma + 0.1,
		tailProb: 0.12, tailScale: 60e9, tailAlpha: 1.05,
	}
	// Subscriptions are small user requests scattered across many site
	// pairs — they populate Fig. 3's sea of tiny cells and keep the
	// geometric-mean cell volume orders of magnitude below the mean.
	subscribe = sizeProfile{
		meanFiles: 2, mu: c.SizeMu - 1.2, sigma: c.SizeSigma - 0.1,
		tailProb: 0.005, tailScale: 10e9, tailAlpha: 1.4,
	}
	return
}

// Background drives the non-job transfer activities. It accounts for most
// of the grid's byte volume, matching the paper's observation that only a
// small fraction of transfer events is job-correlated.
type Background struct {
	r    *Rucio
	cfg  BackgroundConfig
	rng  *simtime.RNG
	next int64

	t1s []string
	t2s []string

	// consolidationWeight concentrates intra-site traffic at Tier-0/1
	// sites, with NDGF-T1 dominating — reproducing Fig. 3's 446 PB
	// diagonal outlier at the North-Europe Tier-1.
	consolidationSites   []string
	consolidationWeights []float64
}

// StartBackground installs the background daemons on the engine and returns
// the driver. Traffic generation stops at the engine horizon.
func StartBackground(r *Rucio, rng *simtime.RNG, cfg BackgroundConfig) *Background {
	cfg.fill()
	b := &Background{r: r, cfg: cfg, rng: rng}
	b.t1s = r.grid.SitesByTier(topology.Tier1)
	b.t2s = r.grid.SitesByTier(topology.Tier2)
	for _, s := range r.grid.Sites() {
		var w float64
		switch {
		case s.Name == "NDGF-T1":
			w = 60 // the paper's dominant diagonal outlier
		case s.Tier == topology.Tier0:
			w = 14
		case s.Tier == topology.Tier1:
			w = 6
		case s.Tier == topology.Tier2:
			w = 0.7
		default:
			w = 0.1
		}
		b.consolidationSites = append(b.consolidationSites, s.Name)
		b.consolidationWeights = append(b.consolidationWeights, w)
	}
	b.loop("export", cfg.ExportInterval, b.export)
	b.loop("rebalance", cfg.RebalanceInterval, b.rebalance)
	b.loop("consolidate", cfg.ConsolidationInterval, b.consolidate)
	b.loop("subscribe", cfg.SubscriptionInterval, b.subscribe)
	return b
}

func (b *Background) loop(name string, mean simtime.VTime, fn func()) {
	var tick func()
	tick = func() {
		fn()
		b.r.eng.After(b.rng.VExp(mean), "bg."+name, tick)
	}
	b.r.eng.After(b.rng.VExp(mean), "bg."+name, tick)
}

// makeDataset creates a fresh background dataset with replicas available at
// srcRSE, and returns its files.
func (b *Background) makeDataset(prefix, srcRSE string, p sizeProfile) []*FileInfo {
	b.next++
	name := fmt.Sprintf("ops.%s.%08d", prefix, b.next)
	ds, err := b.r.catalog.CreateDataset("ops", name, "")
	if err != nil {
		return nil
	}
	n := 1 + b.rng.Poisson(float64(p.meanFiles-1))
	for i := 0; i < n; i++ {
		size := int64(b.rng.LogNormal(p.mu, p.sigma))
		if b.rng.Bool(p.tailProb) {
			size = int64(b.rng.Pareto(p.tailScale, p.tailAlpha)) // very large file
		}
		if size < 1e6 {
			size = 1e6
		}
		f := &FileInfo{
			LFN:        fmt.Sprintf("%s._%06d.root", name, i),
			Scope:      "ops",
			Dataset:    name,
			ProdDBlock: name,
			Size:       size,
		}
		if err := b.r.catalog.AddFile(f); err != nil {
			continue
		}
		b.r.catalog.SetReplica(f.LFN, srcRSE, ReplicaAvailable)
	}
	return ds.Files
}

func rseOf(g *topology.Grid, site string) (string, bool) {
	r, ok := g.PrimaryRSE(site)
	if !ok {
		return "", false
	}
	return r.Name, true
}

// export ships freshly recorded data from the Tier-0 to a Tier-1.
func (b *Background) export() {
	if len(b.t1s) == 0 {
		return
	}
	src, ok := rseOf(b.r.grid, "CERN-PROD")
	if !ok {
		return
	}
	dstSite := b.t1s[b.rng.Intn(len(b.t1s))]
	dst, ok := rseOf(b.r.grid, dstSite)
	if !ok {
		return
	}
	exportP, _, _, _ := b.cfg.profiles()
	files := b.makeDataset("export", src, exportP)
	b.r.EnsureReplicas(files, dst, records.TierExport, 0, nil)
}

// rebalance moves a dataset between two distinct sites.
func (b *Background) rebalance() {
	pool := append(append([]string{}, b.t1s...), b.t2s...)
	if len(pool) < 2 {
		return
	}
	si := b.rng.Intn(len(pool))
	di := b.rng.Intn(len(pool))
	if si == di {
		di = (di + 1) % len(pool)
	}
	src, okS := rseOf(b.r.grid, pool[si])
	dst, okD := rseOf(b.r.grid, pool[di])
	if !okS || !okD {
		return
	}
	_, rebalanceP, _, _ := b.cfg.profiles()
	files := b.makeDataset("rebalance", src, rebalanceP)
	b.r.EnsureReplicas(files, dst, records.DataRebalancing, 0, nil)
}

// consolidate performs intra-site movement (tape staging / disk
// consolidation): source and destination site coincide, producing the
// heavy diagonal of Fig. 3.
func (b *Background) consolidate() {
	site := b.consolidationSites[b.rng.Choice(b.consolidationWeights)]
	s, ok := b.r.grid.Site(site)
	if !ok || len(s.RSEs) == 0 {
		return
	}
	// Prefer tape->disk when the site has tape; otherwise disk->disk
	// (represented as a same-RSE-pair LAN move through the site link).
	var srcRSE string
	for _, rn := range s.RSEs {
		if x, _ := b.r.grid.RSE(rn); x != nil && x.Kind == topology.Tape {
			srcRSE = rn
			break
		}
	}
	dst, okD := rseOf(b.r.grid, site)
	if !okD {
		return
	}
	if srcRSE == "" {
		srcRSE = dst
	}
	_, _, consolidateP, _ := b.cfg.profiles()
	files := b.makeDataset("consolidate", srcRSE, consolidateP)
	if srcRSE == dst {
		// Same-RSE consolidation still moves bytes over the site LAN; model
		// it as a pilot-style local fetch so events are emitted.
		b.r.PilotFetch(files, site, records.DataConsolidation, 0, nil)
		return
	}
	b.r.EnsureReplicas(files, dst, records.DataConsolidation, 0, nil)
}

// subscribe replicates a small dataset to an arbitrary site on user demand.
func (b *Background) subscribe() {
	sites := b.r.grid.Sites()
	src := sites[b.rng.Intn(len(sites))].Name
	dstSite := sites[b.rng.Intn(len(sites))].Name
	srcRSE, okS := rseOf(b.r.grid, src)
	dstRSE, okD := rseOf(b.r.grid, dstSite)
	if !okS || !okD || srcRSE == dstRSE {
		return
	}
	_, _, _, subscribeP := b.cfg.profiles()
	files := b.makeDataset("subs", srcRSE, subscribeP)
	b.r.EnsureReplicas(files, dstRSE, records.UserSubscription, 0, nil)
}
