package rucio

import (
	"fmt"
	"sort"

	"panrucio/internal/topology"
)

// FileInfo describes one catalogued file (the smallest DID unit).
type FileInfo struct {
	LFN        string
	Scope      string
	Dataset    string // owning dataset DID name
	ProdDBlock string // block-level data identifier (paper Algorithm 1)
	Size       int64
}

// Dataset groups files for bulk operations.
type Dataset struct {
	Name      string
	Scope     string
	Container string
	Files     []*FileInfo
}

// TotalBytes sums the file sizes in the dataset.
func (d *Dataset) TotalBytes() int64 {
	var total int64
	for _, f := range d.Files {
		total += f.Size
	}
	return total
}

// ReplicaState is the lifecycle state of one file copy at one RSE.
type ReplicaState int

// Replica states.
const (
	ReplicaCopying ReplicaState = iota
	ReplicaAvailable
)

// Catalog is the Rucio namespace: files, datasets, containers, replicas.
// Single-goroutine, like the rest of the DES.
type Catalog struct {
	files      map[string]*FileInfo // keyed by LFN (globally unique here)
	datasets   map[string]*Dataset
	containers map[string][]string // container -> dataset names

	// replicas[lfn][rse] = state
	replicas map[string]map[string]ReplicaState
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{
		files:      make(map[string]*FileInfo),
		datasets:   make(map[string]*Dataset),
		containers: make(map[string][]string),
		replicas:   make(map[string]map[string]ReplicaState),
	}
}

// CreateDataset registers an empty dataset DID. Creating an existing
// dataset is an error.
func (c *Catalog) CreateDataset(scope, name, container string) (*Dataset, error) {
	if _, dup := c.datasets[name]; dup {
		return nil, fmt.Errorf("rucio: dataset %q exists", name)
	}
	d := &Dataset{Name: name, Scope: scope, Container: container}
	c.datasets[name] = d
	if container != "" {
		c.containers[container] = append(c.containers[container], name)
	}
	return d, nil
}

// AddFile attaches a new file to an existing dataset. LFNs are globally
// unique.
func (c *Catalog) AddFile(f *FileInfo) error {
	if f.LFN == "" {
		return fmt.Errorf("rucio: empty LFN")
	}
	if _, dup := c.files[f.LFN]; dup {
		return fmt.Errorf("rucio: file %q exists", f.LFN)
	}
	d, ok := c.datasets[f.Dataset]
	if !ok {
		return fmt.Errorf("rucio: dataset %q not found for file %q", f.Dataset, f.LFN)
	}
	c.files[f.LFN] = f
	d.Files = append(d.Files, f)
	return nil
}

// File resolves an LFN.
func (c *Catalog) File(lfn string) (*FileInfo, bool) {
	f, ok := c.files[lfn]
	return f, ok
}

// Dataset resolves a dataset name.
func (c *Catalog) Dataset(name string) (*Dataset, bool) {
	d, ok := c.datasets[name]
	return d, ok
}

// ContainerDatasets lists the dataset names attached to a container.
func (c *Catalog) ContainerDatasets(name string) []string { return c.containers[name] }

// NumFiles reports the catalogued file count.
func (c *Catalog) NumFiles() int { return len(c.files) }

// NumDatasets reports the catalogued dataset count.
func (c *Catalog) NumDatasets() int { return len(c.datasets) }

// SetReplica records a file copy at an RSE in the given state, upgrading
// any existing entry.
func (c *Catalog) SetReplica(lfn, rse string, st ReplicaState) {
	m, ok := c.replicas[lfn]
	if !ok {
		m = make(map[string]ReplicaState, 2)
		c.replicas[lfn] = m
	}
	m[rse] = st
}

// DropReplica removes a file copy record.
func (c *Catalog) DropReplica(lfn, rse string) {
	if m, ok := c.replicas[lfn]; ok {
		delete(m, rse)
	}
}

// HasReplica reports whether an available replica of lfn exists at rse.
func (c *Catalog) HasReplica(lfn, rse string) bool {
	return c.replicas[lfn][rse] == ReplicaAvailable && c.hasEntry(lfn, rse)
}

func (c *Catalog) hasEntry(lfn, rse string) bool {
	_, ok := c.replicas[lfn][rse]
	return ok
}

// FileRSEs returns the RSEs holding an available replica of lfn, sorted for
// determinism.
func (c *Catalog) FileRSEs(lfn string) []string {
	var out []string
	for rse, st := range c.replicas[lfn] {
		if st == ReplicaAvailable {
			out = append(out, rse)
		}
	}
	sort.Strings(out)
	return out
}

// DatasetCompleteAt reports whether every file of the dataset has an
// available replica at the RSE.
func (c *Catalog) DatasetCompleteAt(ds *Dataset, rse string) bool {
	if len(ds.Files) == 0 {
		return false
	}
	for _, f := range ds.Files {
		if !c.HasReplica(f.LFN, rse) {
			return false
		}
	}
	return true
}

// DatasetBytesAt sums the bytes of the dataset's files that have available
// replicas at the RSE (used by locality-weighted brokerage).
func (c *Catalog) DatasetBytesAt(ds *Dataset, rse string) int64 {
	var total int64
	for _, f := range ds.Files {
		if c.HasReplica(f.LFN, rse) {
			total += f.Size
		}
	}
	return total
}

// DatasetSites returns the sites whose primary disk RSE holds the complete
// dataset, sorted for determinism.
func (c *Catalog) DatasetSites(ds *Dataset, grid *topology.Grid) []string {
	var out []string
	for _, s := range grid.Sites() {
		rse, ok := grid.PrimaryRSE(s.Name)
		if !ok {
			continue
		}
		if c.DatasetCompleteAt(ds, rse.Name) {
			out = append(out, s.Name)
		}
	}
	sort.Strings(out)
	return out
}
