package rucio

import (
	"fmt"
	"sort"

	"panrucio/internal/topology"
)

// FileInfo describes one catalogued file (the smallest DID unit).
type FileInfo struct {
	LFN        string
	Scope      string
	Dataset    string // owning dataset DID name
	ProdDBlock string // block-level data identifier (paper Algorithm 1)
	Size       int64
}

// Dataset groups files for bulk operations.
type Dataset struct {
	Name      string
	Scope     string
	Container string
	Files     []*FileInfo
}

// TotalBytes sums the file sizes in the dataset.
func (d *Dataset) TotalBytes() int64 {
	var total int64
	for _, f := range d.Files {
		total += f.Size
	}
	return total
}

// ReplicaState is the lifecycle state of one file copy at one RSE.
type ReplicaState int

// Replica states.
const (
	ReplicaCopying ReplicaState = iota
	ReplicaAvailable
)

// replicaEntry is one file copy in the compact per-LFN replica list: an
// interned RSE id plus the state, 4 bytes and pointer-free. Files have a
// handful of replicas, so a linear scan beats a string-keyed map and the
// GC never has to walk the (large, long-lived) replica table.
type replicaEntry struct {
	rse   uint16
	state uint8
}

// Catalog is the Rucio namespace: files, datasets, containers, replicas.
// Single-goroutine, like the rest of the DES.
type Catalog struct {
	files      map[string]*FileInfo // keyed by LFN (globally unique here)
	datasets   map[string]*Dataset
	containers map[string][]string // container -> dataset names

	// replicas[lfn] lists the file's copies in insertion order.
	replicas map[string][]replicaEntry

	// RSE name interning for replicaEntry (a grid has at most a few
	// hundred RSEs, far under the uint16 ceiling).
	rseIDs   map[string]uint16
	rseNames []string
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{
		files:      make(map[string]*FileInfo),
		datasets:   make(map[string]*Dataset),
		containers: make(map[string][]string),
		replicas:   make(map[string][]replicaEntry),
		rseIDs:     make(map[string]uint16),
	}
}

// rseID interns an RSE name.
func (c *Catalog) rseID(rse string) uint16 {
	if id, ok := c.rseIDs[rse]; ok {
		return id
	}
	id := uint16(len(c.rseNames))
	c.rseIDs[rse] = id
	c.rseNames = append(c.rseNames, rse)
	return id
}

// CreateDataset registers an empty dataset DID. Creating an existing
// dataset is an error.
func (c *Catalog) CreateDataset(scope, name, container string) (*Dataset, error) {
	if _, dup := c.datasets[name]; dup {
		return nil, fmt.Errorf("rucio: dataset %q exists", name)
	}
	d := &Dataset{Name: name, Scope: scope, Container: container}
	c.datasets[name] = d
	if container != "" {
		c.containers[container] = append(c.containers[container], name)
	}
	return d, nil
}

// AddFile attaches a new file to an existing dataset. LFNs are globally
// unique.
func (c *Catalog) AddFile(f *FileInfo) error {
	if f.LFN == "" {
		return fmt.Errorf("rucio: empty LFN")
	}
	if _, dup := c.files[f.LFN]; dup {
		return fmt.Errorf("rucio: file %q exists", f.LFN)
	}
	d, ok := c.datasets[f.Dataset]
	if !ok {
		return fmt.Errorf("rucio: dataset %q not found for file %q", f.Dataset, f.LFN)
	}
	c.files[f.LFN] = f
	d.Files = append(d.Files, f)
	return nil
}

// File resolves an LFN.
func (c *Catalog) File(lfn string) (*FileInfo, bool) {
	f, ok := c.files[lfn]
	return f, ok
}

// Dataset resolves a dataset name.
func (c *Catalog) Dataset(name string) (*Dataset, bool) {
	d, ok := c.datasets[name]
	return d, ok
}

// ContainerDatasets lists the dataset names attached to a container.
func (c *Catalog) ContainerDatasets(name string) []string { return c.containers[name] }

// NumFiles reports the catalogued file count.
func (c *Catalog) NumFiles() int { return len(c.files) }

// NumDatasets reports the catalogued dataset count.
func (c *Catalog) NumDatasets() int { return len(c.datasets) }

// SetReplica records a file copy at an RSE in the given state, upgrading
// any existing entry.
func (c *Catalog) SetReplica(lfn, rse string, st ReplicaState) {
	id := c.rseID(rse)
	entries := c.replicas[lfn]
	for i := range entries {
		if entries[i].rse == id {
			entries[i].state = uint8(st)
			return
		}
	}
	c.replicas[lfn] = append(entries, replicaEntry{rse: id, state: uint8(st)})
}

// DropReplica removes a file copy record.
func (c *Catalog) DropReplica(lfn, rse string) {
	id, ok := c.rseIDs[rse]
	if !ok {
		return
	}
	entries := c.replicas[lfn]
	for i := range entries {
		if entries[i].rse == id {
			c.replicas[lfn] = append(entries[:i], entries[i+1:]...)
			return
		}
	}
}

// HasReplica reports whether an available replica of lfn exists at rse.
func (c *Catalog) HasReplica(lfn, rse string) bool {
	id, ok := c.rseIDs[rse]
	if !ok {
		return false
	}
	for _, e := range c.replicas[lfn] {
		if e.rse == id {
			return e.state == uint8(ReplicaAvailable)
		}
	}
	return false
}

// EachAvailableReplica calls fn for every RSE holding an available replica
// of lfn, in insertion order. The intended use is order-insensitive
// accumulation, e.g. summing per-site input bytes with one replica-list
// walk per file instead of one HasReplica probe per (file, site) pair.
func (c *Catalog) EachAvailableReplica(lfn string, fn func(rse string)) {
	for _, e := range c.replicas[lfn] {
		if e.state == uint8(ReplicaAvailable) {
			fn(c.rseNames[e.rse])
		}
	}
}

// FileRSEs returns the RSEs holding an available replica of lfn, sorted for
// determinism.
func (c *Catalog) FileRSEs(lfn string) []string {
	var out []string
	for _, e := range c.replicas[lfn] {
		if e.state == uint8(ReplicaAvailable) {
			out = append(out, c.rseNames[e.rse])
		}
	}
	sort.Strings(out)
	return out
}

// DatasetCompleteAt reports whether every file of the dataset has an
// available replica at the RSE.
func (c *Catalog) DatasetCompleteAt(ds *Dataset, rse string) bool {
	if len(ds.Files) == 0 {
		return false
	}
	for _, f := range ds.Files {
		if !c.HasReplica(f.LFN, rse) {
			return false
		}
	}
	return true
}

// DatasetBytesAt sums the bytes of the dataset's files that have available
// replicas at the RSE (used by locality-weighted brokerage).
func (c *Catalog) DatasetBytesAt(ds *Dataset, rse string) int64 {
	var total int64
	for _, f := range ds.Files {
		if c.HasReplica(f.LFN, rse) {
			total += f.Size
		}
	}
	return total
}

// DatasetSites returns the sites whose primary disk RSE holds the complete
// dataset, sorted for determinism.
func (c *Catalog) DatasetSites(ds *Dataset, grid *topology.Grid) []string {
	var out []string
	for _, s := range grid.Sites() {
		rse, ok := grid.PrimaryRSE(s.Name)
		if !ok {
			continue
		}
		if c.DatasetCompleteAt(ds, rse.Name) {
			out = append(out, s.Name)
		}
	}
	sort.Strings(out)
	return out
}
