package rucio

import (
	"fmt"
	"testing"
	"testing/quick"

	"panrucio/internal/topology"
)

func TestCatalogDatasetLifecycle(t *testing.T) {
	c := NewCatalog()
	if _, err := c.CreateDataset("user", "user.ds1", "cont1"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateDataset("user", "user.ds1", ""); err == nil {
		t.Error("duplicate dataset accepted")
	}
	f := &FileInfo{LFN: "f1", Scope: "user", Dataset: "user.ds1", ProdDBlock: "user.ds1", Size: 100}
	if err := c.AddFile(f); err != nil {
		t.Fatal(err)
	}
	if err := c.AddFile(f); err == nil {
		t.Error("duplicate LFN accepted")
	}
	if err := c.AddFile(&FileInfo{LFN: "f2", Dataset: "nope"}); err == nil {
		t.Error("file with missing dataset accepted")
	}
	if err := c.AddFile(&FileInfo{Dataset: "user.ds1"}); err == nil {
		t.Error("empty LFN accepted")
	}
	ds, ok := c.Dataset("user.ds1")
	if !ok || len(ds.Files) != 1 || ds.TotalBytes() != 100 {
		t.Fatalf("dataset state wrong: %+v", ds)
	}
	if got := c.ContainerDatasets("cont1"); len(got) != 1 || got[0] != "user.ds1" {
		t.Errorf("container listing = %v", got)
	}
	if c.NumFiles() != 1 || c.NumDatasets() != 1 {
		t.Error("counts wrong")
	}
	if _, ok := c.File("f1"); !ok {
		t.Error("File lookup failed")
	}
}

func TestReplicaStates(t *testing.T) {
	c := NewCatalog()
	c.CreateDataset("user", "d", "")
	c.AddFile(&FileInfo{LFN: "f", Dataset: "d", Size: 1})
	if c.HasReplica("f", "RSE_A") {
		t.Error("phantom replica")
	}
	c.SetReplica("f", "RSE_A", ReplicaCopying)
	if c.HasReplica("f", "RSE_A") {
		t.Error("copying replica reported available")
	}
	c.SetReplica("f", "RSE_A", ReplicaAvailable)
	if !c.HasReplica("f", "RSE_A") {
		t.Error("available replica not found")
	}
	c.SetReplica("f", "RSE_B", ReplicaAvailable)
	rses := c.FileRSEs("f")
	if len(rses) != 2 || rses[0] != "RSE_A" || rses[1] != "RSE_B" {
		t.Errorf("FileRSEs = %v, want sorted available pair", rses)
	}
	c.DropReplica("f", "RSE_A")
	if c.HasReplica("f", "RSE_A") {
		t.Error("dropped replica still present")
	}
	c.DropReplica("ghost", "RSE_A") // must not panic
}

func TestDatasetCompleteness(t *testing.T) {
	c := NewCatalog()
	c.CreateDataset("user", "d", "")
	for i := 0; i < 3; i++ {
		c.AddFile(&FileInfo{LFN: fmt.Sprintf("f%d", i), Dataset: "d", Size: 10})
	}
	ds, _ := c.Dataset("d")
	if c.DatasetCompleteAt(ds, "R") {
		t.Error("empty-replica dataset reported complete")
	}
	c.SetReplica("f0", "R", ReplicaAvailable)
	c.SetReplica("f1", "R", ReplicaAvailable)
	if c.DatasetCompleteAt(ds, "R") {
		t.Error("partial dataset reported complete")
	}
	if got := c.DatasetBytesAt(ds, "R"); got != 20 {
		t.Errorf("DatasetBytesAt = %d, want 20", got)
	}
	c.SetReplica("f2", "R", ReplicaAvailable)
	if !c.DatasetCompleteAt(ds, "R") {
		t.Error("complete dataset reported incomplete")
	}
	empty, _ := c.CreateDataset("user", "empty", "")
	if c.DatasetCompleteAt(empty, "R") {
		t.Error("empty dataset must never be complete")
	}
}

func TestDatasetSites(t *testing.T) {
	grid := topology.Default(topology.DefaultSpec{})
	c := NewCatalog()
	c.CreateDataset("user", "d", "")
	c.AddFile(&FileInfo{LFN: "f", Dataset: "d", Size: 10})
	cern, _ := grid.PrimaryRSE("CERN-PROD")
	bnl, _ := grid.PrimaryRSE("BNL-ATLAS")
	c.SetReplica("f", cern.Name, ReplicaAvailable)
	c.SetReplica("f", bnl.Name, ReplicaAvailable)
	ds, _ := c.Dataset("d")
	sites := c.DatasetSites(ds, grid)
	if len(sites) != 2 || sites[0] != "BNL-ATLAS" || sites[1] != "CERN-PROD" {
		t.Errorf("DatasetSites = %v", sites)
	}
}

// Property: after setting replicas at k distinct RSEs, FileRSEs returns
// exactly those RSEs sorted.
func TestFileRSEsProperty(t *testing.T) {
	prop := func(ids []uint8) bool {
		c := NewCatalog()
		c.CreateDataset("s", "d", "")
		c.AddFile(&FileInfo{LFN: "f", Dataset: "d", Size: 1})
		want := map[string]bool{}
		for _, id := range ids {
			rse := fmt.Sprintf("RSE%03d", id)
			c.SetReplica("f", rse, ReplicaAvailable)
			want[rse] = true
		}
		got := c.FileRSEs("f")
		if len(got) != len(want) {
			return false
		}
		for i, rse := range got {
			if !want[rse] {
				return false
			}
			if i > 0 && got[i-1] >= rse {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
