// Package rucio implements the data-management substrate: a three-level
// DID namespace (files, datasets, containers), replicas on Rucio Storage
// Elements, replication rules to destination RSEs, pilot
// stage-in/stage-out transfers, and background data-management traffic.
// Completed transfers are emitted as records.TransferEvent through a
// pluggable sink — the same event stream the paper queries from
// OpenSearch.
//
// Entry points: New binds the catalog to an engine, grid, network, and
// event sink (sim.Run interposes the corruption layer there);
// StartBackground adds the non-job traffic — Tier-0 export, rebalancing,
// consolidation, subscriptions — that dominates event volume but carries
// no jeditaskid. Invariants: every emitted event reflects a transfer the
// network actually completed in virtual time, events carry a jeditaskid
// only when caused by a pilot acting for a task, and all randomness comes
// from the package's RNG split, so one seed reproduces the event stream
// exactly.
package rucio
