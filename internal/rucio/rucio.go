package rucio

import (
	"sort"

	"panrucio/internal/netsim"
	"panrucio/internal/records"
	"panrucio/internal/simtime"
	"panrucio/internal/topology"
)

// EventSink receives completed transfer events. The metastore installs a
// sink that applies metadata corruption and indexes the record.
type EventSink func(*records.TransferEvent)

// Options tunes the Rucio substrate.
type Options struct {
	// TapeStageLatency is the extra mount/positioning delay applied before
	// a transfer whose source RSE is tape (default 900s).
	TapeStageLatency simtime.VTime
	// SequentialSiteFraction is the fraction of sites whose storage
	// front-end serves pilot downloads one file at a time (paper Fig. 10
	// observes sequential, non-parallel stage-in at some sites).
	// Default 0.35.
	SequentialSiteFraction float64
}

func (o *Options) fill() {
	if o.TapeStageLatency == 0 {
		o.TapeStageLatency = 900
	}
	if o.SequentialSiteFraction == 0 {
		o.SequentialSiteFraction = 0.35
	}
}

// Rucio is the data-management system instance.
type Rucio struct {
	eng  *simtime.Engine
	grid *topology.Grid
	net  *netsim.Network
	rng  *simtime.RNG
	opts Options

	catalog *Catalog
	sink    EventSink

	nextEventID int64

	// sequentialSite caches the per-site stage-in discipline.
	sequentialSite map[string]bool

	// EmittedEvents counts events delivered to the sink.
	EmittedEvents int64
}

// New constructs the Rucio substrate. sink may be nil (events dropped).
func New(eng *simtime.Engine, grid *topology.Grid, net *netsim.Network, rng *simtime.RNG, opts Options, sink EventSink) *Rucio {
	opts.fill()
	return &Rucio{
		eng: eng, grid: grid, net: net, rng: rng, opts: opts,
		catalog:        NewCatalog(),
		sink:           sink,
		sequentialSite: make(map[string]bool),
	}
}

// Catalog exposes the DID namespace.
func (r *Rucio) Catalog() *Catalog { return r.catalog }

// SetSink replaces the event sink (used by tests and by the metastore when
// it attaches after construction).
func (r *Rucio) SetSink(s EventSink) { r.sink = s }

// SequentialSite reports (memoizing a deterministic draw) whether a site's
// storage serves pilot downloads sequentially.
func (r *Rucio) SequentialSite(site string) bool {
	if v, ok := r.sequentialSite[site]; ok {
		return v
	}
	v := r.rng.Split("seq/" + site).Bool(r.opts.SequentialSiteFraction)
	r.sequentialSite[site] = v
	return v
}

func (r *Rucio) emit(ev *records.TransferEvent) {
	r.nextEventID++
	ev.EventID = r.nextEventID
	r.EmittedEvents++
	if r.sink != nil {
		r.sink(ev)
	}
}

// siteOfRSE maps an RSE name to its site, or UNKNOWN for unrecognized RSEs.
func (r *Rucio) siteOfRSE(rse string) string {
	if x, ok := r.grid.RSE(rse); ok {
		return x.Site
	}
	return topology.UnknownSite
}

// chooseSource picks the best available source RSE for a file destined for
// dstSite: prefer an RSE at the destination site, then the highest-bandwidth
// link, breaking ties deterministically by name.
func (r *Rucio) chooseSource(lfn, dstSite string) (string, bool) {
	rses := r.catalog.FileRSEs(lfn)
	if len(rses) == 0 {
		return "", false
	}
	best := ""
	bestScore := -1.0
	for _, rse := range rses {
		site := r.siteOfRSE(rse)
		score := topology.LinkGbps(r.grid, site, dstSite)
		if site == dstSite {
			score += 1e6 // local replicas always win
			if x, _ := r.grid.RSE(rse); x != nil && x.Kind == topology.Tape {
				score -= 5e5 // but disk beats tape
			}
		}
		if score > bestScore {
			best, bestScore = rse, score
		}
	}
	return best, true
}

// transferSpec is the internal unit the transfer engine executes.
type transferSpec struct {
	file     *FileInfo
	srcRSE   string
	dstRSE   string // empty for worker-scratch downloads
	dstSite  string
	activity records.Activity
	jedi     int64
	register bool // register a replica at dstRSE on completion
	download bool
	upload   bool
	onDone   func(ev *records.TransferEvent)
}

// execute runs one file transfer through the network and emits its event.
func (r *Rucio) execute(sp transferSpec) {
	srcSite := r.siteOfRSE(sp.srcRSE)
	submitted := r.eng.Now()
	start := func() {
		r.net.Start(srcSite, sp.dstSite, sp.file.Size, func(tr *netsim.Transfer) {
			if sp.register && sp.dstRSE != "" {
				r.catalog.SetReplica(sp.file.LFN, sp.dstRSE, ReplicaAvailable)
			}
			ev := &records.TransferEvent{
				LFN:             sp.file.LFN,
				Scope:           sp.file.Scope,
				Dataset:         sp.file.Dataset,
				ProdDBlock:      sp.file.ProdDBlock,
				FileSize:        sp.file.Size,
				SourceRSE:       sp.srcRSE,
				DestinationRSE:  sp.dstRSE,
				SourceSite:      srcSite,
				DestinationSite: sp.dstSite,
				Activity:        sp.activity,
				IsDownload:      sp.download,
				IsUpload:        sp.upload,
				JediTaskID:      sp.jedi,
				SubmittedAt:     submitted,
				StartedAt:       tr.Started,
				EndedAt:         tr.Finished,
				ThroughputBps:   tr.Throughput(),
			}
			r.emit(ev)
			if sp.onDone != nil {
				sp.onDone(ev)
			}
		})
	}
	// Tape sources pay a staging latency before the network movement.
	if x, ok := r.grid.RSE(sp.srcRSE); ok && x.Kind == topology.Tape {
		r.eng.After(r.rng.VExp(r.opts.TapeStageLatency), "rucio.tapestage", start)
	} else {
		start()
	}
}

// EnsureReplicas applies a replication-rule evaluation: every file of the
// set missing from dstRSE is transferred there and registered. onComplete
// (may be nil) fires when all files are available. Files with no source
// replica anywhere are counted in the returned missing count and skipped.
func (r *Rucio) EnsureReplicas(files []*FileInfo, dstRSE string, activity records.Activity, jedi int64, onComplete func()) (missing int) {
	dstSite := r.siteOfRSE(dstRSE)
	var pending int
	var fired bool
	finish := func() {
		if pending == 0 && !fired {
			fired = true
			if onComplete != nil {
				onComplete()
			}
		}
	}
	for _, f := range files {
		if r.catalog.HasReplica(f.LFN, dstRSE) {
			continue
		}
		src, ok := r.chooseSource(f.LFN, dstSite)
		if !ok {
			missing++
			continue
		}
		pending++
		r.catalog.SetReplica(f.LFN, dstRSE, ReplicaCopying)
		r.execute(transferSpec{
			file: f, srcRSE: src, dstRSE: dstRSE, dstSite: dstSite,
			activity: activity, jedi: jedi, register: true, download: true,
			onDone: func(*records.TransferEvent) {
				pending--
				finish()
			},
		})
	}
	finish()
	return missing
}

// PilotFetch performs worker-node stage-in at a site: each file is copied
// from its best source replica to the site (scratch space; no replica is
// registered). Sites with a sequential storage front-end fetch one file at
// a time; others fetch in parallel. onComplete fires when all files have
// arrived; files with no replica anywhere are skipped and counted.
func (r *Rucio) PilotFetch(files []*FileInfo, site string, activity records.Activity, jedi int64, onComplete func()) (missing int) {
	return r.PilotFetchEach(files, site, activity, jedi, nil, onComplete)
}

// PilotFetchEach is PilotFetch with an additional per-file callback fired
// as each transfer event completes (used by the late-start pilot path,
// which launches the payload after the first file lands).
func (r *Rucio) PilotFetchEach(files []*FileInfo, site string, activity records.Activity, jedi int64, onFile func(*records.TransferEvent), onComplete func()) (missing int) {
	var specs []transferSpec
	for _, f := range files {
		src, ok := r.chooseSource(f.LFN, site)
		if !ok {
			missing++
			continue
		}
		specs = append(specs, transferSpec{
			file: f, srcRSE: src, dstSite: site,
			activity: activity, jedi: jedi, download: true,
		})
	}
	if len(specs) == 0 {
		if onComplete != nil {
			onComplete()
		}
		return missing
	}
	remaining := len(specs)
	onEach := func(ev *records.TransferEvent) {
		remaining--
		if onFile != nil {
			onFile(ev)
		}
		if remaining == 0 && onComplete != nil {
			onComplete()
		}
	}
	if r.SequentialSite(site) {
		// Chain: each completion launches the next file.
		var launch func(i int)
		launch = func(i int) {
			sp := specs[i]
			sp.onDone = func(ev *records.TransferEvent) {
				onEach(ev)
				if i+1 < len(specs) {
					launch(i + 1)
				}
			}
			r.execute(sp)
		}
		launch(0)
	} else {
		for i := range specs {
			sp := specs[i]
			sp.onDone = onEach
			r.execute(sp)
		}
	}
	return missing
}

// Upload registers a freshly produced file and copies it from the producing
// site to dstRSE, emitting an upload event. The file must already be in the
// catalog (attached to its output dataset).
func (r *Rucio) Upload(f *FileInfo, fromSite, dstRSE string, activity records.Activity, jedi int64, onComplete func(ev *records.TransferEvent)) {
	dstSite := r.siteOfRSE(dstRSE)
	submitted := r.eng.Now()
	r.catalog.SetReplica(f.LFN, dstRSE, ReplicaCopying)
	r.net.Start(fromSite, dstSite, f.Size, func(tr *netsim.Transfer) {
		r.catalog.SetReplica(f.LFN, dstRSE, ReplicaAvailable)
		ev := &records.TransferEvent{
			LFN:             f.LFN,
			Scope:           f.Scope,
			Dataset:         f.Dataset,
			ProdDBlock:      f.ProdDBlock,
			FileSize:        f.Size,
			DestinationRSE:  dstRSE,
			SourceSite:      fromSite,
			DestinationSite: dstSite,
			Activity:        activity,
			IsUpload:        true,
			JediTaskID:      jedi,
			SubmittedAt:     submitted,
			StartedAt:       tr.Started,
			EndedAt:         tr.Finished,
			ThroughputBps:   tr.Throughput(),
		}
		r.emit(ev)
		if onComplete != nil {
			onComplete(ev)
		}
	})
}

// DiskRSEs lists all disk RSE names, sorted (helper for placement draws).
func (r *Rucio) DiskRSEs() []string {
	var out []string
	for _, x := range r.grid.RSEs() {
		if x.Kind == topology.Disk {
			out = append(out, x.Name)
		}
	}
	sort.Strings(out)
	return out
}
