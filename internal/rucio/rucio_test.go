package rucio

import (
	"fmt"
	"testing"

	"panrucio/internal/netsim"
	"panrucio/internal/records"
	"panrucio/internal/simtime"
	"panrucio/internal/topology"
)

type fixture struct {
	eng    *simtime.Engine
	grid   *topology.Grid
	net    *netsim.Network
	r      *Rucio
	events []*records.TransferEvent
}

func newFixture(seed int64) *fixture {
	f := &fixture{}
	f.eng = simtime.NewEngine(0, 0)
	f.grid = topology.Default(topology.DefaultSpec{})
	root := simtime.NewRNG(seed)
	f.net = netsim.New(f.eng, f.grid, root.Split("net"), netsim.Options{})
	f.r = New(f.eng, f.grid, f.net, root.Split("rucio"), Options{}, func(ev *records.TransferEvent) {
		f.events = append(f.events, ev)
	})
	return f
}

func (f *fixture) addDataset(name string, sizes []int64, rse string) []*FileInfo {
	f.r.Catalog().CreateDataset("user", name, "")
	for i, s := range sizes {
		file := &FileInfo{
			LFN: fmt.Sprintf("%s.f%d", name, i), Scope: "user",
			Dataset: name, ProdDBlock: name, Size: s,
		}
		if err := f.r.Catalog().AddFile(file); err != nil {
			panic(err)
		}
		if rse != "" {
			f.r.Catalog().SetReplica(file.LFN, rse, ReplicaAvailable)
		}
	}
	ds, _ := f.r.Catalog().Dataset(name)
	return ds.Files
}

func TestEnsureReplicasCopiesMissing(t *testing.T) {
	f := newFixture(1)
	cern, _ := f.grid.PrimaryRSE("CERN-PROD")
	bnl, _ := f.grid.PrimaryRSE("BNL-ATLAS")
	files := f.addDataset("user.ds1", []int64{2e9, 3e9}, cern.Name)
	// Pre-place one file at the destination: only the other should move.
	f.r.Catalog().SetReplica(files[0].LFN, bnl.Name, ReplicaAvailable)
	done := false
	missing := f.r.EnsureReplicas(files, bnl.Name, records.DataRebalancing, 0, func() { done = true })
	if missing != 0 {
		t.Fatalf("missing=%d", missing)
	}
	f.eng.Run()
	if !done {
		t.Fatal("completion callback never fired")
	}
	if len(f.events) != 1 {
		t.Fatalf("%d events, want 1 (only the missing file moves)", len(f.events))
	}
	ev := f.events[0]
	if ev.SourceSite != "CERN-PROD" || ev.DestinationSite != "BNL-ATLAS" {
		t.Errorf("route %s->%s", ev.SourceSite, ev.DestinationSite)
	}
	if ev.Activity != records.DataRebalancing || !ev.IsDownload {
		t.Errorf("activity/%v download/%v", ev.Activity, ev.IsDownload)
	}
	if !f.r.Catalog().HasReplica(files[1].LFN, bnl.Name) {
		t.Error("replica not registered after transfer")
	}
	if ev.JediTaskID != 0 {
		t.Error("background transfer must not carry jeditaskid")
	}
}

func TestEnsureReplicasAllPresentCompletesSynchronously(t *testing.T) {
	f := newFixture(2)
	bnl, _ := f.grid.PrimaryRSE("BNL-ATLAS")
	files := f.addDataset("user.ds2", []int64{1e9}, bnl.Name)
	done := false
	f.r.EnsureReplicas(files, bnl.Name, records.DataRebalancing, 0, func() { done = true })
	if !done {
		t.Fatal("all-present rule should complete immediately")
	}
	if len(f.events) != 0 {
		t.Error("no transfers expected")
	}
}

func TestEnsureReplicasMissingSource(t *testing.T) {
	f := newFixture(3)
	bnl, _ := f.grid.PrimaryRSE("BNL-ATLAS")
	files := f.addDataset("user.ds3", []int64{1e9}, "") // no replica anywhere
	done := false
	missing := f.r.EnsureReplicas(files, bnl.Name, records.DataRebalancing, 7, func() { done = true })
	if missing != 1 || !done {
		t.Fatalf("missing=%d done=%v, want 1/true", missing, done)
	}
}

func TestPilotFetchEmitsLocalDownloads(t *testing.T) {
	f := newFixture(4)
	cern, _ := f.grid.PrimaryRSE("CERN-PROD")
	files := f.addDataset("user.ds4", []int64{2e9, 2e9, 2e9}, cern.Name)
	done := false
	f.r.PilotFetch(files, "CERN-PROD", records.AnalysisDownload, 42, func() { done = true })
	f.eng.Run()
	if !done || len(f.events) != 3 {
		t.Fatalf("done=%v events=%d", done, len(f.events))
	}
	for _, ev := range f.events {
		if !ev.IsLocal() {
			t.Errorf("local fetch produced remote event %s->%s", ev.SourceSite, ev.DestinationSite)
		}
		if ev.JediTaskID != 42 {
			t.Error("jeditaskid not propagated")
		}
		if ev.DestinationRSE != "" {
			t.Error("scratch download must not name a destination RSE")
		}
		if ev.ThroughputBps <= 0 {
			t.Error("throughput missing")
		}
	}
}

func TestPilotFetchRemoteSource(t *testing.T) {
	f := newFixture(5)
	cern, _ := f.grid.PrimaryRSE("CERN-PROD")
	files := f.addDataset("user.ds5", []int64{2e9}, cern.Name)
	f.r.PilotFetch(files, "BNL-ATLAS", records.AnalysisDownload, 9, nil)
	f.eng.Run()
	if len(f.events) != 1 || f.events[0].IsLocal() {
		t.Fatalf("expected one remote event, got %+v", f.events)
	}
	if f.events[0].SourceSite != "CERN-PROD" || f.events[0].DestinationSite != "BNL-ATLAS" {
		t.Errorf("route %s->%s", f.events[0].SourceSite, f.events[0].DestinationSite)
	}
}

func TestPilotFetchSequentialSiteSerializes(t *testing.T) {
	f := newFixture(6)
	// Force the discipline decision for a site, then verify ordering.
	f.r.sequentialSite["CERN-PROD"] = true
	cern, _ := f.grid.PrimaryRSE("CERN-PROD")
	files := f.addDataset("user.ds6", []int64{4e9, 4e9, 4e9}, cern.Name)
	f.r.PilotFetch(files, "CERN-PROD", records.AnalysisDownload, 1, nil)
	f.eng.Run()
	if len(f.events) != 3 {
		t.Fatalf("events=%d", len(f.events))
	}
	for i := 1; i < len(f.events); i++ {
		if f.events[i].StartedAt < f.events[i-1].EndedAt {
			t.Errorf("sequential site overlapped transfers: %d starts %d, prev ends %d",
				i, f.events[i].StartedAt, f.events[i-1].EndedAt)
		}
	}
}

func TestPilotFetchParallelSiteOverlaps(t *testing.T) {
	f := newFixture(7)
	f.r.sequentialSite["CERN-PROD"] = false
	cern, _ := f.grid.PrimaryRSE("CERN-PROD")
	files := f.addDataset("user.ds7", []int64{40e9, 40e9, 40e9}, cern.Name)
	f.r.PilotFetch(files, "CERN-PROD", records.AnalysisDownload, 1, nil)
	f.eng.Run()
	overlap := false
	for i := 1; i < len(f.events); i++ {
		if f.events[i].StartedAt < f.events[0].EndedAt {
			overlap = true
		}
	}
	if !overlap {
		t.Error("parallel site never overlapped transfers")
	}
}

func TestChooseSourcePrefersLocalDisk(t *testing.T) {
	f := newFixture(8)
	cernDisk, _ := f.grid.PrimaryRSE("CERN-PROD")
	files := f.addDataset("user.ds8", []int64{1e9}, cernDisk.Name)
	// Also place at remote and at local tape; local disk must win.
	f.r.Catalog().SetReplica(files[0].LFN, "BNL-ATLAS_DATADISK", ReplicaAvailable)
	f.r.Catalog().SetReplica(files[0].LFN, "CERN-PROD_MCTAPE", ReplicaAvailable)
	src, ok := f.r.chooseSource(files[0].LFN, "CERN-PROD")
	if !ok || src != cernDisk.Name {
		t.Errorf("chooseSource = %q, want local disk", src)
	}
	// Without a local replica, the best-connected remote wins over a weak one.
	f.r.Catalog().DropReplica(files[0].LFN, cernDisk.Name)
	f.r.Catalog().DropReplica(files[0].LFN, "CERN-PROD_MCTAPE")
	f.r.Catalog().SetReplica(files[0].LFN, "WEIZMANN-T3_DATADISK", ReplicaAvailable)
	src, _ = f.r.chooseSource(files[0].LFN, "CERN-PROD")
	if src != "BNL-ATLAS_DATADISK" {
		t.Errorf("chooseSource = %q, want best-connected remote", src)
	}
}

func TestUploadRegistersAndEmits(t *testing.T) {
	f := newFixture(9)
	f.r.Catalog().CreateDataset("user", "user.out1", "")
	out := &FileInfo{LFN: "user.out1.f0", Scope: "user", Dataset: "user.out1", ProdDBlock: "user.out1", Size: 5e8}
	f.r.Catalog().AddFile(out)
	bnl, _ := f.grid.PrimaryRSE("BNL-ATLAS")
	var got *records.TransferEvent
	f.r.Upload(out, "BNL-ATLAS", bnl.Name, records.AnalysisUpload, 11, func(ev *records.TransferEvent) { got = ev })
	f.eng.Run()
	if got == nil {
		t.Fatal("upload never completed")
	}
	if !got.IsUpload || got.IsDownload {
		t.Error("upload flags wrong")
	}
	if got.SourceSite != "BNL-ATLAS" || got.DestinationSite != "BNL-ATLAS" {
		t.Errorf("route %s->%s", got.SourceSite, got.DestinationSite)
	}
	if !f.r.Catalog().HasReplica(out.LFN, bnl.Name) {
		t.Error("output replica not registered")
	}
}

func TestTapeSourceAddsLatency(t *testing.T) {
	f := newFixture(10)
	f.r.Catalog().CreateDataset("ops", "ops.tape1", "")
	file := &FileInfo{LFN: "ops.tape1.f0", Scope: "ops", Dataset: "ops.tape1", ProdDBlock: "ops.tape1", Size: 1e9}
	f.r.Catalog().AddFile(file)
	f.r.Catalog().SetReplica(file.LFN, "CERN-PROD_MCTAPE", ReplicaAvailable)
	bnl, _ := f.grid.PrimaryRSE("BNL-ATLAS")
	f.r.EnsureReplicas([]*FileInfo{file}, bnl.Name, records.DataConsolidation, 0, nil)
	f.eng.Run()
	if len(f.events) != 1 {
		t.Fatal("no event")
	}
	// Staging delay appears between submission and network start.
	if f.events[0].StartedAt-f.events[0].SubmittedAt < 1 {
		t.Error("tape source showed no staging latency")
	}
}

func TestEventIDsMonotonic(t *testing.T) {
	f := newFixture(11)
	cern, _ := f.grid.PrimaryRSE("CERN-PROD")
	files := f.addDataset("user.ds9", []int64{1e9, 1e9, 1e9, 1e9}, cern.Name)
	f.r.PilotFetch(files, "CERN-PROD", records.AnalysisDownload, 1, nil)
	f.eng.Run()
	for i := 1; i < len(f.events); i++ {
		if f.events[i].EventID <= f.events[i-1].EventID {
			t.Fatal("event IDs not monotonic")
		}
	}
	if f.r.EmittedEvents != int64(len(f.events)) {
		t.Error("EmittedEvents counter mismatch")
	}
}

func TestSequentialSiteMemoized(t *testing.T) {
	f := newFixture(12)
	first := f.r.SequentialSite("TOKYO-LCG2")
	for i := 0; i < 10; i++ {
		if f.r.SequentialSite("TOKYO-LCG2") != first {
			t.Fatal("SequentialSite not memoized")
		}
	}
}

func TestBackgroundGeneratesTraffic(t *testing.T) {
	f := newFixture(13)
	f.eng = simtime.NewEngine(0, 2*simtime.Day)
	root := simtime.NewRNG(13)
	f.net = netsim.New(f.eng, f.grid, root.Split("net"), netsim.Options{})
	f.r = New(f.eng, f.grid, f.net, root.Split("rucio"), Options{}, func(ev *records.TransferEvent) {
		f.events = append(f.events, ev)
	})
	StartBackground(f.r, root.Split("bg"), BackgroundConfig{})
	f.eng.Run()
	if len(f.events) < 100 {
		t.Fatalf("background produced only %d events over 2 days", len(f.events))
	}
	byAct := map[records.Activity]int{}
	local := 0
	for _, ev := range f.events {
		byAct[ev.Activity]++
		if ev.IsLocal() {
			local++
		}
		if ev.JediTaskID != 0 {
			t.Fatal("background event carries jeditaskid")
		}
	}
	for _, act := range []records.Activity{records.TierExport, records.DataRebalancing, records.DataConsolidation, records.UserSubscription} {
		if byAct[act] == 0 {
			t.Errorf("no %s events", act)
		}
	}
	if local == 0 {
		t.Error("consolidation should produce same-site (diagonal) events")
	}
}

func TestDiskRSEsSorted(t *testing.T) {
	f := newFixture(14)
	rses := f.r.DiskRSEs()
	if len(rses) == 0 {
		t.Fatal("no disk RSEs")
	}
	for i := 1; i < len(rses); i++ {
		if rses[i-1] >= rses[i] {
			t.Fatal("DiskRSEs not sorted")
		}
	}
}
