package rucio

import (
	"fmt"
	"sort"

	"panrucio/internal/records"
	"panrucio/internal/simtime"
)

// Rule is a replication rule (paper Section 2.2): it pins the files of a
// DID at an RSE until it expires. While at least one live rule protects a
// replica, the deletion reaper must not reclaim it.
type Rule struct {
	ID        int64
	Dataset   string
	RSE       string
	CreatedAt simtime.VTime
	// ExpiresAt is the retention deadline; zero means the rule never
	// expires (pinned data, e.g. the workload's initial placements).
	ExpiresAt simtime.VTime

	files []*FileInfo
}

// Expired reports whether the rule's retention has lapsed at time t.
func (r *Rule) Expired(t simtime.VTime) bool {
	return r.ExpiresAt != 0 && t >= r.ExpiresAt
}

// RuleEngine manages replication rules and the deletion reaper over one
// Rucio instance. It is optional: simulations that do not need retention
// semantics simply never construct one.
type RuleEngine struct {
	r      *Rucio
	nextID int64
	rules  map[int64]*Rule
	// protection[lfn][rse] = live rule count
	protection map[string]map[string]int

	// Counters.
	RulesCreated   int64
	RulesExpired   int64
	ReplicasReaped int64
}

// NewRuleEngine attaches a rule engine to a Rucio instance.
func NewRuleEngine(r *Rucio) *RuleEngine {
	return &RuleEngine{
		r:          r,
		rules:      make(map[int64]*Rule),
		protection: make(map[string]map[string]int),
	}
}

// AddRule creates a rule for a catalogued dataset at an RSE with the given
// lifetime (0 = forever), triggers the transfers needed to satisfy it, and
// returns the rule. The transfer activity tags the rule's purpose.
func (e *RuleEngine) AddRule(dataset, rse string, lifetime simtime.VTime, activity records.Activity, onSatisfied func()) (*Rule, error) {
	ds, ok := e.r.Catalog().Dataset(dataset)
	if !ok {
		return nil, fmt.Errorf("rucio: rule on unknown dataset %q", dataset)
	}
	e.nextID++
	rule := &Rule{
		ID: e.nextID, Dataset: dataset, RSE: rse,
		CreatedAt: e.r.eng.Now(),
		files:     append([]*FileInfo(nil), ds.Files...),
	}
	if lifetime > 0 {
		rule.ExpiresAt = e.r.eng.Now() + lifetime
	}
	e.rules[rule.ID] = rule
	e.RulesCreated++
	for _, f := range rule.files {
		m := e.protection[f.LFN]
		if m == nil {
			m = make(map[string]int, 1)
			e.protection[f.LFN] = m
		}
		m[rse]++
	}
	e.r.EnsureReplicas(rule.files, rse, activity, 0, onSatisfied)
	return rule, nil
}

// Protected reports whether any live rule pins lfn at rse at time t.
// Expired rules do not protect, even before the reaper removes them.
func (e *RuleEngine) Protected(lfn, rse string, t simtime.VTime) bool {
	if e.protection[lfn][rse] == 0 {
		return false
	}
	// Count only live rules (protection holds raw counts; verify).
	for _, rule := range e.rules {
		if rule.RSE != rse || rule.Expired(t) {
			continue
		}
		for _, f := range rule.files {
			if f.LFN == lfn {
				return true
			}
		}
	}
	return false
}

// LiveRules returns the non-expired rules at time t, sorted by ID.
func (e *RuleEngine) LiveRules(t simtime.VTime) []*Rule {
	var out []*Rule
	for _, rule := range e.rules {
		if !rule.Expired(t) {
			out = append(out, rule)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Sweep performs one reaper pass at the current virtual time: expired
// rules are retired and their replicas dropped from the catalog unless
// another live rule still protects them. It returns the number of replicas
// reclaimed in this pass.
func (e *RuleEngine) Sweep() int {
	now := e.r.eng.Now()
	reaped := 0
	for id, rule := range e.rules {
		if !rule.Expired(now) {
			continue
		}
		for _, f := range rule.files {
			if m := e.protection[f.LFN]; m != nil {
				m[rule.RSE]--
				if m[rule.RSE] <= 0 {
					delete(m, rule.RSE)
				}
			}
			if !e.Protected(f.LFN, rule.RSE, now) && e.r.Catalog().HasReplica(f.LFN, rule.RSE) {
				e.r.Catalog().DropReplica(f.LFN, rule.RSE)
				reaped++
			}
		}
		delete(e.rules, id)
		e.RulesExpired++
	}
	e.ReplicasReaped += int64(reaped)
	return reaped
}

// StartReaper schedules periodic sweeps until the engine horizon.
func (e *RuleEngine) StartReaper(interval simtime.VTime) {
	if interval <= 0 {
		interval = simtime.Hour
	}
	var tick func()
	tick = func() {
		e.Sweep()
		e.r.eng.After(interval, "rucio.reaper", tick)
	}
	e.r.eng.After(interval, "rucio.reaper", tick)
}
