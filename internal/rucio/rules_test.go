package rucio

import (
	"testing"

	"panrucio/internal/netsim"
	"panrucio/internal/records"
	"panrucio/internal/simtime"
)

func TestAddRuleTriggersTransfersAndProtects(t *testing.T) {
	f := newFixture(20)
	cern, _ := f.grid.PrimaryRSE("CERN-PROD")
	bnl, _ := f.grid.PrimaryRSE("BNL-ATLAS")
	f.addDataset("data25.rule1", []int64{1e9, 2e9}, cern.Name)

	e := NewRuleEngine(f.r)
	done := false
	rule, err := e.AddRule("data25.rule1", bnl.Name, 2*simtime.Hour, records.DataRebalancing, func() { done = true })
	if err != nil {
		t.Fatal(err)
	}
	if rule.ExpiresAt != 2*simtime.Hour {
		t.Errorf("ExpiresAt = %d", rule.ExpiresAt)
	}
	f.eng.Run()
	if !done {
		t.Fatal("rule never satisfied")
	}
	if len(f.events) != 2 {
		t.Fatalf("events = %d, want 2 transfers", len(f.events))
	}
	ds, _ := f.r.Catalog().Dataset("data25.rule1")
	if !f.r.Catalog().DatasetCompleteAt(ds, bnl.Name) {
		t.Fatal("dataset not replicated by rule")
	}
	for _, file := range ds.Files {
		if !e.Protected(file.LFN, bnl.Name, f.eng.Now()) {
			t.Errorf("file %s unprotected under a live rule", file.LFN)
		}
	}
	if _, err := e.AddRule("nope", bnl.Name, 0, records.DataRebalancing, nil); err == nil {
		t.Error("rule on unknown dataset accepted")
	}
}

func TestRuleExpiryAndReaping(t *testing.T) {
	f := newFixture(21)
	cern, _ := f.grid.PrimaryRSE("CERN-PROD")
	bnl, _ := f.grid.PrimaryRSE("BNL-ATLAS")
	f.addDataset("data25.rule2", []int64{1e9}, cern.Name)
	ds, _ := f.r.Catalog().Dataset("data25.rule2")
	lfn := ds.Files[0].LFN

	e := NewRuleEngine(f.r)
	e.AddRule("data25.rule2", bnl.Name, simtime.Hour, records.DataRebalancing, nil)
	f.eng.RunUntil(30 * simtime.Minute)
	if got := e.Sweep(); got != 0 {
		t.Fatalf("reaper reclaimed %d replicas before expiry", got)
	}
	if !f.r.Catalog().HasReplica(lfn, bnl.Name) {
		t.Fatal("replica missing before expiry")
	}
	f.eng.RunUntil(2 * simtime.Hour)
	if !e.rules[1].Expired(f.eng.Now()) {
		t.Fatal("rule should be expired")
	}
	if e.Protected(lfn, bnl.Name, f.eng.Now()) {
		t.Error("expired rule still protects")
	}
	if got := e.Sweep(); got != 1 {
		t.Fatalf("reaper reclaimed %d, want 1", got)
	}
	if f.r.Catalog().HasReplica(lfn, bnl.Name) {
		t.Fatal("replica survived reaping")
	}
	// Source replica is untouched (no rule ever covered it... and no rule
	// expired there).
	if !f.r.Catalog().HasReplica(lfn, cern.Name) {
		t.Fatal("reaper deleted the source replica")
	}
	if e.RulesExpired != 1 || e.ReplicasReaped != 1 {
		t.Errorf("counters: expired=%d reaped=%d", e.RulesExpired, e.ReplicasReaped)
	}
}

func TestOverlappingRulesKeepProtection(t *testing.T) {
	f := newFixture(22)
	cern, _ := f.grid.PrimaryRSE("CERN-PROD")
	bnl, _ := f.grid.PrimaryRSE("BNL-ATLAS")
	f.addDataset("data25.rule3", []int64{1e9}, cern.Name)
	ds, _ := f.r.Catalog().Dataset("data25.rule3")
	lfn := ds.Files[0].LFN

	e := NewRuleEngine(f.r)
	e.AddRule("data25.rule3", bnl.Name, simtime.Hour, records.DataRebalancing, nil)
	e.AddRule("data25.rule3", bnl.Name, 10*simtime.Hour, records.DataRebalancing, nil)
	f.eng.RunUntil(2 * simtime.Hour) // first rule expired, second live
	if got := e.Sweep(); got != 0 {
		t.Fatalf("reaper reclaimed %d despite a live overlapping rule", got)
	}
	if !f.r.Catalog().HasReplica(lfn, bnl.Name) {
		t.Fatal("protected replica deleted")
	}
	if !e.Protected(lfn, bnl.Name, f.eng.Now()) {
		t.Error("live rule not protecting")
	}
	if len(e.LiveRules(f.eng.Now())) != 1 {
		t.Error("LiveRules wrong after partial expiry")
	}
}

func TestPermanentRuleNeverExpires(t *testing.T) {
	f := newFixture(23)
	cern, _ := f.grid.PrimaryRSE("CERN-PROD")
	f.addDataset("data25.rule4", []int64{1e9}, cern.Name)
	e := NewRuleEngine(f.r)
	rule, _ := e.AddRule("data25.rule4", cern.Name, 0, records.DataRebalancing, nil)
	if rule.Expired(1 << 60) {
		t.Error("zero-lifetime rule must never expire")
	}
}

func TestReaperDaemonSweepsPeriodically(t *testing.T) {
	f := newFixture(24)
	f.eng = simtime.NewEngine(0, 6*simtime.Hour)
	root := simtime.NewRNG(24)
	f.net = netsim.New(f.eng, f.grid, root.Split("net"), netsim.Options{})
	f.r = New(f.eng, f.grid, f.net, root.Split("rucio"), Options{}, nil)
	cern, _ := f.grid.PrimaryRSE("CERN-PROD")
	bnl, _ := f.grid.PrimaryRSE("BNL-ATLAS")
	f.addDataset("data25.rule5", []int64{1e9}, cern.Name)
	ds, _ := f.r.Catalog().Dataset("data25.rule5")

	e := NewRuleEngine(f.r)
	e.AddRule("data25.rule5", bnl.Name, simtime.Hour, records.DataRebalancing, nil)
	e.StartReaper(30 * simtime.Minute)
	f.eng.Run()
	if f.r.Catalog().HasReplica(ds.Files[0].LFN, bnl.Name) {
		t.Fatal("reaper daemon never reclaimed the expired replica")
	}
	if e.ReplicasReaped != 1 {
		t.Errorf("reaped = %d", e.ReplicasReaped)
	}
}
