package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"panrucio/internal/sim"
)

// benchServer builds one frozen quick-scenario server, shared across the
// benchmarks in this file.
var benchSrv *Server

func getBenchServer(b *testing.B) *Server {
	if benchSrv == nil {
		benchSrv = NewFrozen(sim.Run(sim.QuickConfig(11)), Options{})
	}
	return benchSrv
}

func benchGet(b *testing.B, s *Server, path string) []byte {
	w := httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest(http.MethodGet, path, nil))
	if w.Code != http.StatusOK {
		b.Fatalf("GET %s = %d: %s", path, w.Code, w.Body.String())
	}
	return w.Body.Bytes()
}

// BenchmarkServeCachedExperiment measures a cached analysis hit — the
// serving layer's O(1) repeat path — and reports how much the epoch-keyed
// cache buys over the cold computation (the issue's bar is 10x).
func BenchmarkServeCachedExperiment(b *testing.B) {
	s := NewFrozen(sim.Run(sim.QuickConfig(11)), Options{})
	t0 := time.Now()
	benchGet(b, s, "/api/experiments/summary") // cold: builds the suite
	cold := time.Since(t0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchGet(b, s, "/api/experiments/summary")
	}
	b.StopTimer()
	hot := b.Elapsed() / time.Duration(b.N)
	b.ReportMetric(float64(cold.Microseconds()), "cold_us")
	b.ReportMetric(float64(hot.Microseconds()), "hot_us")
	if hot > 0 {
		b.ReportMetric(float64(cold)/float64(hot), "speedup")
	}
}

// BenchmarkServeMatchLookup measures the uncached single-job probe: one
// store lookup plus one live Algorithm 1 pass per request.
func BenchmarkServeMatchLookup(b *testing.B) {
	s := getBenchServer(b)
	var ids struct {
		PandaIDs []int64 `json:"pandaids"`
	}
	if err := json.Unmarshal(benchGet(b, s, "/api/pandaids?limit=64"), &ids); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchGet(b, s, fmt.Sprintf("/api/match?panda=%d", ids.PandaIDs[i%len(ids.PandaIDs)]))
	}
}

// BenchmarkServeConcurrentMixed drives a mixed read workload from all
// procs at once — the in-process analogue of the cmd/loadgen smoke,
// reporting aggregate request throughput.
func BenchmarkServeConcurrentMixed(b *testing.B) {
	s := getBenchServer(b)
	benchGet(b, s, "/api/experiments/rates") // prime the cache
	paths := []string{
		"/api/meta",
		"/api/experiments/rates",
		"/api/pandaids?limit=8",
		"/api/experiments",
	}
	var n atomic.Int64
	start := time.Now()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			benchGet(b, s, paths[i%len(paths)])
			i++
			n.Add(1)
		}
	})
	b.StopTimer()
	if secs := time.Since(start).Seconds(); secs > 0 {
		b.ReportMetric(float64(n.Load())/secs, "req/sec")
	}
}
