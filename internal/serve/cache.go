package serve

import (
	"container/list"
	"sync"
)

// cacheKey addresses one cached response body. epoch 0 is reserved for
// store-independent results (sweep launches, E14), which stay valid as
// the live store's epoch advances; every store-derived body carries the
// epoch it was computed at and is stranded — then pruned — the moment a
// checkpoint publishes a newer epoch.
type cacheKey struct {
	digest string
	epoch  uint64
	id     string
}

// cacheEntry is one body, or one in-flight computation of it: ready is
// closed once body/err are set, and concurrent misses for the same key
// wait on it instead of recomputing.
type cacheEntry struct {
	key   cacheKey
	ready chan struct{}
	body  []byte
	err   error
	elem  *list.Element
}

// CacheStats is the cache's observability counter set, reported by
// /api/meta/layout.
type CacheStats struct {
	Entries   int   `json:"entries"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Pruned    int64 `json:"pruned"`
}

// resultCache is the concurrency-safe, epoch-aware LRU body cache. The
// mutex guards only the map and list — computations run outside it, so a
// slow cold body never blocks hits for other keys.
type resultCache struct {
	mu    sync.Mutex
	max   int
	m     map[cacheKey]*cacheEntry
	order *list.List // front = most recently used
	stats CacheStats
}

func newResultCache(max int) *resultCache {
	if max < 1 {
		max = 256
	}
	return &resultCache{max: max, m: make(map[cacheKey]*cacheEntry), order: list.New()}
}

// get returns the body for key, computing it via fn on a miss. Exactly
// one caller computes per key; the rest wait for it. A failed computation
// is not cached — the entry is dropped so a later call retries. The third
// return reports whether this call was served from cache (it waited on
// nobody and computed nothing).
func (c *resultCache) get(key cacheKey, fn func() ([]byte, error)) ([]byte, error, bool) {
	c.mu.Lock()
	if e, ok := c.m[key]; ok {
		c.order.MoveToFront(e.elem)
		c.stats.Hits++
		mCacheHits.Inc()
		c.mu.Unlock()
		select {
		case <-e.ready:
		default:
			// The body is still being computed by another caller — this is
			// the singleflight path, counted separately from settled hits.
			mCacheSingleflight.Inc()
			<-e.ready
		}
		return e.body, e.err, true
	}
	e := &cacheEntry{key: key, ready: make(chan struct{})}
	e.elem = c.order.PushFront(e)
	c.m[key] = e
	c.stats.Misses++
	mCacheMisses.Inc()
	c.evictLocked()
	c.mu.Unlock()

	e.body, e.err = fn()
	close(e.ready)
	if e.err != nil {
		c.mu.Lock()
		// The entry may already have been evicted or pruned; delete is
		// conditional on identity so a fresh entry under the same key
		// survives.
		if cur, ok := c.m[key]; ok && cur == e {
			delete(c.m, key)
			c.order.Remove(e.elem)
		}
		c.mu.Unlock()
	}
	return e.body, e.err, false
}

// evictLocked trims the LRU tail down to max entries. Waiters on an
// evicted in-flight entry still get their body — eviction only forgets
// the key, it never cancels the computation.
func (c *resultCache) evictLocked() {
	for len(c.m) > c.max {
		back := c.order.Back()
		if back == nil {
			return
		}
		e := back.Value.(*cacheEntry)
		c.order.Remove(back)
		delete(c.m, e.key)
		c.stats.Evictions++
		mCacheEvictions.Inc()
	}
}

// prune drops every store-derived entry below the epoch (epoch-0 entries
// are store-independent and stay). Called at each publish, so stale
// bodies are released as soon as new segments make them unreachable.
func (c *resultCache) prune(epoch uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for key, e := range c.m {
		if key.epoch != 0 && key.epoch < epoch {
			delete(c.m, key)
			c.order.Remove(e.elem)
			c.stats.Pruned++
			mCachePruned.Inc()
		}
	}
}

// snapshot returns the current counters.
func (c *resultCache) snapshot() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	st.Entries = len(c.m)
	return st
}
