package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestCacheSingleflight(t *testing.T) {
	c := newResultCache(8)
	key := cacheKey{digest: "d", epoch: 1, id: "x"}
	var calls atomic.Int64
	gate := make(chan struct{})
	var wg sync.WaitGroup
	bodies := make([][]byte, 10)
	for i := range bodies {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b, err, _ := c.get(key, func() ([]byte, error) {
				calls.Add(1)
				<-gate
				return []byte("body"), nil
			})
			if err != nil {
				t.Errorf("get: %v", err)
			}
			bodies[i] = b
		}(i)
	}
	close(gate)
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want 1", n)
	}
	for i, b := range bodies {
		if string(b) != "body" {
			t.Fatalf("caller %d got %q", i, b)
		}
	}
	st := c.snapshot()
	if st.Misses != 1 || st.Hits != 9 {
		t.Fatalf("stats = %+v, want 1 miss / 9 hits", st)
	}
}

func TestCacheErrorNotCached(t *testing.T) {
	c := newResultCache(8)
	key := cacheKey{digest: "d", epoch: 1, id: "x"}
	calls := 0
	_, err, _ := c.get(key, func() ([]byte, error) {
		calls++
		return nil, errors.New("boom")
	})
	if err == nil {
		t.Fatal("first get: want error")
	}
	b, err, cached := c.get(key, func() ([]byte, error) {
		calls++
		return []byte("ok"), nil
	})
	if err != nil || string(b) != "ok" || cached {
		t.Fatalf("retry = (%q, %v, cached=%v), want fresh ok", b, err, cached)
	}
	if calls != 2 {
		t.Fatalf("compute ran %d times, want 2 (errors are not cached)", calls)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := newResultCache(2)
	mk := func(id string) cacheKey { return cacheKey{digest: "d", epoch: 1, id: id} }
	body := func(id string) func() ([]byte, error) {
		return func() ([]byte, error) { return []byte(id), nil }
	}
	c.get(mk("a"), body("a"))
	c.get(mk("b"), body("b"))
	c.get(mk("a"), body("a")) // refresh a; b becomes LRU
	c.get(mk("c"), body("c")) // evicts b
	if _, _, cached := c.get(mk("a"), body("a2")); !cached {
		t.Fatal("a should have survived eviction")
	}
	if _, _, cached := c.get(mk("b"), body("b2")); cached {
		t.Fatal("b should have been evicted")
	}
	if st := c.snapshot(); st.Evictions < 1 {
		t.Fatalf("stats = %+v, want >= 1 eviction", st)
	}
}

func TestCachePruneKeepsEpochZero(t *testing.T) {
	c := newResultCache(8)
	body := func() ([]byte, error) { return []byte("x"), nil }
	c.get(cacheKey{digest: "d", epoch: 0, id: "sweep"}, body)
	c.get(cacheKey{digest: "d", epoch: 1, id: "old"}, body)
	c.get(cacheKey{digest: "d", epoch: 2, id: "cur"}, body)
	c.prune(2)
	cases := []struct {
		key  cacheKey
		want bool
	}{
		{cacheKey{digest: "d", epoch: 0, id: "sweep"}, true},
		{cacheKey{digest: "d", epoch: 1, id: "old"}, false},
		{cacheKey{digest: "d", epoch: 2, id: "cur"}, true},
	}
	for _, tc := range cases {
		_, _, cached := c.get(tc.key, body)
		if cached != tc.want {
			t.Errorf("after prune(2), key %+v cached = %v, want %v", tc.key, cached, tc.want)
		}
	}
	if st := c.snapshot(); st.Pruned != 1 {
		t.Fatalf("stats = %+v, want exactly 1 pruned", st)
	}
}

func TestCacheConcurrentMixedKeys(t *testing.T) {
	c := newResultCache(4)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				id := fmt.Sprintf("k%d", (w+i)%6)
				key := cacheKey{digest: "d", epoch: uint64(i%3 + 1), id: id}
				b, err, _ := c.get(key, func() ([]byte, error) { return []byte(id), nil })
				if err != nil || string(b) != id {
					t.Errorf("get(%v) = (%q, %v)", key, b, err)
					return
				}
				if i%10 == 0 {
					c.prune(uint64(i%3 + 1))
				}
			}
		}(w)
	}
	wg.Wait()
}
