// Package serve is the query-serving front end over the metastore: an
// HTTP/JSON handler layer exposing the paper's experiment analyses
// (E1–E14), match lookups by pandaid and jeditaskid, store and segment
// statistics, and sweep launches — the ROADMAP's "millions of users"
// direction made concrete and measurable (cmd/loadgen drives it at high
// concurrency and reports latency/QPS metrics).
//
// A Server wraps either a frozen store (NewFrozen: a completed sim.Result)
// or a live one (NewLive: the scenario runs in the background and
// publishes the live store at every sim.RunWithObserver checkpoint).
// Three invariants carry the rest of the design:
//
//   - Epoch windows. The live scenario's goroutine holds the server's
//     write lock while ingesting; each observer checkpoint bumps the store
//     epoch and opens a read window in which queued request handlers run
//     concurrently against the quiescent store — reads never interleave
//     with ingest, and readers never serialize against each other (the
//     metastore's lazy tail views publish through atomic pointers). The
//     final checkpoint freezes the store and leaves the window open for
//     good, which is also the degenerate state NewFrozen starts in.
//
//   - Epoch-keyed caching. Analysis bodies are cached under (config
//     digest, experiment id, store epoch), so a repeated query is one map
//     hit — and a cached body can never leak across epochs: sealing new
//     segments advances the epoch, which strands the old entries (pruned
//     on publish). Store-independent bodies (sweep launches, E14) cache
//     under epoch 0 and survive epoch advances. Concurrent misses for the
//     same key collapse into one computation (the rest wait).
//
//   - Deterministic bodies. Every response body except /api/meta/layout
//     (which deliberately reports the physical layout) is byte-identical
//     for any shard count, segment size, and matcher worker count — the
//     sweep engine's output discipline extended to the network: the
//     config digest itself zeroes the performance-only knobs so
//     equivalent deployments share cache keys. Pinned by the golden-body
//     suite in serve_test.go.
package serve
