package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"panrucio/internal/analysis"
	"panrucio/internal/core"
	"panrucio/internal/metastore"
	"panrucio/internal/obs"
	"panrucio/internal/records"
	"panrucio/internal/report"
	"panrucio/internal/sim"
	"panrucio/internal/simtime"
	"panrucio/internal/sweep"
	"panrucio/internal/verify"
)

// Body is the uniform JSON envelope of the analysis endpoints: exactly
// one payload field is set per experiment. Marshaling a fixed struct (no
// maps) keeps bodies byte-identical run to run.
type Body struct {
	Experiment string                 `json:"experiment"`
	Digest     string                 `json:"digest"`
	Epoch      uint64                 `json:"epoch"`
	Rates      []analysis.MethodRates `json:"rates,omitempty"`
	Table      *report.Table          `json:"table,omitempty"`
	Tables     []*report.Table        `json:"tables,omitempty"`
	Series     []*report.Series       `json:"series,omitempty"`
	Checks     []analysis.Check       `json:"checks,omitempty"`
	Sweep      *sweep.Report          `json:"sweep,omitempty"`
	Note       string                 `json:"note,omitempty"`
}

// Experiments lists the valid /api/experiments/{id} ids, in E-number
// order. E14 runs the canned robustness sweep and E15 the canned
// detection sweep (both store-independent, cached under epoch 0);
// everything else derives from the serving store.
var Experiments = []string{
	"summary", "rates", "fig2", "fig3", "table1", "table2a", "table2b",
	"fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
	"checks", "anomaly", "e14", "e15",
}

var experimentSet = func() map[string]bool {
	m := make(map[string]bool, len(Experiments))
	for _, id := range Experiments {
		m[id] = true
	}
	return m
}()

func (s *Server) routes() {
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", timed("healthz", s.handleHealthz))
	s.mux.Handle("GET /metrics", obs.Handler(obs.Default()))
	s.mux.HandleFunc("GET /api/meta", timed("meta", s.handleMeta))
	s.mux.HandleFunc("GET /api/meta/layout", timed("layout", s.handleLayout))
	s.mux.HandleFunc("GET /api/experiments", timed("experiments", s.handleExperimentList))
	s.mux.HandleFunc("GET /api/experiments/{id}", timed("experiment", s.handleExperiment))
	s.mux.HandleFunc("GET /api/job", timed("job", s.handleJob))
	s.mux.HandleFunc("GET /api/match", timed("match", s.handleMatch))
	s.mux.HandleFunc("GET /api/task", timed("task", s.handleTask))
	s.mux.HandleFunc("GET /api/pandaids", timed("pandaids", s.handlePandaIDs))
	s.mux.HandleFunc("GET /api/verify", timed("verify", s.handleVerify))
	s.mux.HandleFunc("POST /api/sweep", timed("sweep", s.handleSweep))
}

func writeJSON(w http.ResponseWriter, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		http.Error(w, "marshal: "+err.Error(), http.StatusInternalServerError)
		return
	}
	writeBody(w, b)
}

func writeBody(w http.ResponseWriter, b []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Write(b)
	w.Write([]byte("\n"))
}

// handleHealthz answers without touching the store or any lock, so it
// works even while a live scenario is mid-ingest.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeBody(w, []byte(fmt.Sprintf(`{"ok":true,"epoch":%d}`, s.Epoch())))
}

// handleMeta reports the semantic view of the serving state: digest,
// epoch, window, and record counts. Byte-identical for any shard count or
// segment size (those live in /api/meta/layout).
func (s *Server) handleMeta(w http.ResponseWriter, r *http.Request) {
	st := s.snapshot()
	defer s.release()
	res := st.res
	writeJSON(w, struct {
		Digest         string `json:"digest"`
		Epoch          uint64 `json:"epoch"`
		Final          bool   `json:"final"`
		WindowFromSecs int64  `json:"window_from_secs"`
		WindowToSecs   int64  `json:"window_to_secs"`
		Jobs           int    `json:"jobs"`
		Files          int    `json:"files"`
		Transfers      int    `json:"transfers"`
		WithTaskID     int    `json:"transfers_with_taskid"`
	}{
		Digest:         s.digest,
		Epoch:          st.epoch,
		Final:          st.final,
		WindowFromSecs: int64(res.WindowFrom),
		WindowToSecs:   int64(res.WindowTo),
		Jobs:           res.Store.JobCount(),
		Files:          res.Store.FileCount(),
		Transfers:      res.Store.TransferCount(),
		WithTaskID:     res.Store.TransfersWithTaskID(),
	})
}

// handleLayout reports the physical layout and runtime counters — the one
// endpoint whose body legitimately depends on the performance knobs
// (shards, segment size) and on request history (cache stats).
func (s *Server) handleLayout(w http.ResponseWriter, r *http.Request) {
	st := s.snapshot()
	defer s.release()
	store := st.res.Store
	writeJSON(w, struct {
		Shards          int        `json:"shards"`
		SegmentRows     int        `json:"segment_rows"`
		SealedSegments  int        `json:"sealed_segments"`
		InternedStrings int        `json:"interned_strings"`
		Cache           CacheStats `json:"cache"`
	}{
		Shards:          store.ShardCount(),
		SegmentRows:     store.SegmentRows(),
		SealedSegments:  store.SealedSegments(),
		InternedStrings: store.InternedStrings(),
		Cache:           s.CacheStats(),
	})
}

func (s *Server) handleExperimentList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, struct {
		Experiments []string `json:"experiments"`
	}{Experiments})
}

// handleExperiment serves one cached analysis body. The first request of
// an epoch pays the matching passes; every later one — and every
// concurrent duplicate — is a cache hit.
func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !experimentSet[id] {
		http.Error(w, fmt.Sprintf("unknown experiment %q", id), http.StatusNotFound)
		return
	}
	st := s.snapshot()
	defer s.release()
	key := cacheKey{digest: s.digest, epoch: st.epoch, id: id}
	if id == "e14" || id == "e15" {
		key.epoch = 0 // store-independent: survives epoch advances
	}
	body, err, _ := s.cache.get(key, func() ([]byte, error) {
		return s.renderExperiment(st, id, key.epoch)
	})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeBody(w, body)
}

// renderExperiment computes one experiment's body at one epoch.
func (s *Server) renderExperiment(st *state, id string, epoch uint64) ([]byte, error) {
	b := &Body{Experiment: id, Digest: s.digest, Epoch: epoch}
	if id == "e14" {
		rep := experimentsRobustness(st.res.Config, s.opt.MatchWorkers)
		b.Sweep = rep
		return json.Marshal(b)
	}
	if id == "e15" {
		b.Sweep = experimentsDetection(st.res.Config, s.opt.MatchWorkers)
		b.Table = experimentsOnline(st.res.Config)
		return json.Marshal(b)
	}
	suite := st.getSuite(s.opt.MatchWorkers)
	caseBody := func(cs *analysis.CaseStudy, withSummary bool) {
		if cs == nil {
			b.Note = "case study not present for this seed"
			return
		}
		b.Table = cs.TimelineTable()
		if withSummary {
			b.Tables = []*report.Table{cs.TransferSummaryTable()}
		}
	}
	switch id {
	case "summary":
		b.Table = suite.SummaryTable()
	case "rates":
		b.Rates = suite.Cmp.Summary()
	case "fig2":
		b.Table = analysis.GrowthReport(suite.Fig2())
	case "fig3":
		b.Table = suite.Fig3().Report(6)
	case "table1":
		b.Table = analysis.ActivityTable(suite.Table1())
	case "table2a":
		b.Table = suite.Cmp.TransferCountTable()
	case "table2b":
		b.Table = suite.Cmp.JobCountTable()
	case "fig5":
		b.Table = analysis.TopJobsTable("Fig. 5 — top local-transfer jobs", suite.Fig5())
	case "fig6":
		b.Table = analysis.TopJobsTable("Fig. 6 — top remote-transfer jobs", suite.Fig6())
	case "fig7":
		b.Series = suite.Fig7()
	case "fig8":
		b.Series = suite.Fig8()
	case "fig9":
		b.Table = suite.Fig9().Table()
	case "fig10":
		caseBody(suite.Fig10(), false)
	case "fig11":
		caseBody(suite.Fig11(), false)
	case "fig12":
		caseBody(suite.Fig12(), true)
	case "checks":
		res := suite.Result
		b.Checks = analysis.ShapeChecks(res.Store, res.Grid, res.WindowFrom, res.WindowTo, suite.Cmp)
	case "anomaly":
		b.Table = suite.Anomalies().Table(5)
	default:
		return nil, fmt.Errorf("unhandled experiment %q", id)
	}
	return json.Marshal(b)
}

// jobView is the match-lookup payload: the job row plus its matched
// transfers under one method, flattened to values.
type jobView struct {
	Job       records.JobRecord       `json:"job"`
	Method    string                  `json:"method,omitempty"`
	Matched   int                     `json:"matched,omitempty"`
	Transfers []records.TransferEvent `json:"transfers,omitempty"`
	Files     []records.FileRecord    `json:"files,omitempty"`
}

func parseID(r *http.Request, name string) (int64, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return 0, fmt.Errorf("missing %q parameter", name)
	}
	id, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad %q parameter: %v", name, err)
	}
	return id, nil
}

// handleJob resolves a pandaid to its job row and JEDI file rows.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	panda, err := parseID(r, "panda")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	st := s.snapshot()
	defer s.release()
	j, ok := st.res.Store.Job(panda)
	if !ok {
		http.Error(w, fmt.Sprintf("no job with pandaid %d", panda), http.StatusNotFound)
		return
	}
	v := jobView{Job: *j}
	for _, f := range st.res.Store.FilesForJob(j.PandaID, j.JediTaskID) {
		v.Files = append(v.Files, *f)
	}
	writeJSON(w, v)
}

// handleMatch runs one matching probe live: the paper's Algorithm 1 on a
// single job, method-selectable, straight off the (frozen or mid-run)
// join indices. Not cached — the probe is a single-shard lookup.
func (s *Server) handleMatch(w http.ResponseWriter, r *http.Request) {
	panda, err := parseID(r, "panda")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var method core.Method
	switch m := r.URL.Query().Get("method"); m {
	case "", "rm2":
		method = core.RM2
	case "rm1":
		method = core.RM1
	case "exact":
		method = core.Exact
	default:
		http.Error(w, fmt.Sprintf("unknown method %q (want exact, rm1, or rm2)", m), http.StatusBadRequest)
		return
	}
	st := s.snapshot()
	defer s.release()
	j, ok := st.res.Store.Job(panda)
	if !ok {
		http.Error(w, fmt.Sprintf("no job with pandaid %d", panda), http.StatusNotFound)
		return
	}
	evs := core.NewMatcher(st.res.Store).MatchJob(j, method)
	v := jobView{Job: *j, Method: method.String(), Matched: len(evs)}
	for _, ev := range evs {
		v.Transfers = append(v.Transfers, *ev)
	}
	writeJSON(w, v)
}

// handleTask lists a JEDI task's transfer events (ingestion order,
// capped by limit, default 256).
func (s *Server) handleTask(w http.ResponseWriter, r *http.Request) {
	jedi, err := parseID(r, "jedi")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	limit := 256
	if v := r.URL.Query().Get("limit"); v != "" {
		limit, err = strconv.Atoi(v)
		if err != nil || limit < 1 {
			http.Error(w, "bad \"limit\" parameter", http.StatusBadRequest)
			return
		}
	}
	st := s.snapshot()
	defer s.release()
	evs := st.res.Store.TransfersByTaskID(jedi)
	total := len(evs)
	if len(evs) > limit {
		evs = evs[:limit]
	}
	out := struct {
		JediTaskID int64                   `json:"jeditaskid"`
		Total      int                     `json:"total"`
		Transfers  []records.TransferEvent `json:"transfers"`
	}{JediTaskID: jedi, Total: total, Transfers: make([]records.TransferEvent, len(evs))}
	for i, ev := range evs {
		out.Transfers[i] = *ev
	}
	writeJSON(w, out)
}

// handlePandaIDs returns the first `limit` pandaids of the window's user
// jobs — the deterministic id sample cmd/loadgen seeds its match-lookup
// schedule from.
func (s *Server) handlePandaIDs(w http.ResponseWriter, r *http.Request) {
	limit := 256
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			http.Error(w, "bad \"limit\" parameter", http.StatusBadRequest)
			return
		}
		if n > 10000 {
			n = 10000
		}
		limit = n
	}
	st := s.snapshot()
	defer s.release()
	res := st.res
	jobs := res.Store.Jobs(res.WindowFrom, res.WindowTo, records.LabelUser)
	if len(jobs) > limit {
		jobs = jobs[:limit]
	}
	ids := make([]int64, len(jobs))
	for i, j := range jobs {
		ids[i] = j.PandaID
	}
	writeJSON(w, struct {
		PandaIDs []int64 `json:"pandaids"`
	}{ids})
}

// handleSweep launches a canned scenario grid through the sweep engine
// and returns its full JSON report. The report depends only on (grid,
// seed, scenarios) — never on the serving store or the worker count — so
// it caches under epoch 0 and repeated launches are free.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	gridName := q.Get("grid")
	if gridName == "" {
		gridName = "robustness"
	}
	seed := int64(1)
	if v := q.Get("seed"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			http.Error(w, "bad \"seed\" parameter", http.StatusBadRequest)
			return
		}
		seed = n
	}
	scenarios := 0
	if v := q.Get("scenarios"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			http.Error(w, "bad \"scenarios\" parameter", http.StatusBadRequest)
			return
		}
		scenarios = n
	}
	workers := 0
	if v := q.Get("workers"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			http.Error(w, "bad \"workers\" parameter", http.StatusBadRequest)
			return
		}
		workers = n
	}
	base := sim.QuickConfig(seed)
	var grid []sweep.Scenario
	switch gridName {
	case "robustness":
		grid = sweep.CorruptionRamp(base, sweep.DefaultRampRates())
	case "seeds":
		grid = sweep.SeedFanOut(base, 8)
	case "mix":
		grid = sweep.MixGrid(base)
	case "verify":
		grid = sweep.VerifyGrid(base, sweep.DefaultVerifyProb)
	default:
		http.Error(w, fmt.Sprintf("unknown grid %q (want robustness, seeds, mix, or verify)", gridName), http.StatusBadRequest)
		return
	}
	if scenarios == 0 || scenarios > s.opt.SweepScenarioCap {
		scenarios = s.opt.SweepScenarioCap
	}
	if scenarios < len(grid) {
		grid = grid[:scenarios]
	}
	key := cacheKey{
		digest: s.digest,
		epoch:  0,
		id:     fmt.Sprintf("sweep?grid=%s&seed=%d&scenarios=%d", gridName, seed, len(grid)),
	}
	body, err, _ := s.cache.get(key, func() ([]byte, error) {
		rep := sweep.Run(grid, sweep.Options{Workers: workers})
		return json.Marshal(struct {
			Grid      string        `json:"grid"`
			Seed      int64         `json:"seed"`
			Scenarios int           `json:"scenarios"`
			Report    *sweep.Report `json:"report"`
		}{gridName, seed, len(grid), rep})
	})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeBody(w, body)
}

// experimentsRobustness is the E14 renderer: the canned corruption-ramp
// sweep at the serving config's seed. Kept behind a function var so the
// golden-body tests can scale it down.
var experimentsRobustness = func(cfg sim.Config, workers int) *sweep.Report {
	return sweep.Run(
		sweep.CorruptionRamp(sim.QuickConfig(cfg.Seed), sweep.DefaultRampRates()),
		sweep.Options{Workers: workers})
}

// experimentsDetection and experimentsOnline are the two halves of the E15
// renderer — the per-channel tamper-detection sweep and the online
// detect-and-repair loop — at the serving config's seed. Function vars for
// the same reason as experimentsRobustness.
var experimentsDetection = func(cfg sim.Config, workers int) *sweep.Report {
	return sweep.Run(
		sweep.VerifyGrid(sim.QuickConfig(cfg.Seed), sweep.DefaultVerifyProb),
		sweep.Options{Workers: workers})
}

var experimentsOnline = func(cfg sim.Config) *report.Table {
	return verify.RunOnline(sim.QuickConfig(cfg.Seed), verify.OnlineOptions{
		Tamper: &verify.TamperConfig{Prob: sweep.DefaultVerifyProb, Seed: cfg.Seed},
	}).Table()
}

// violationView flattens a metastore.Violation for the /api/verify body.
type violationView struct {
	Segment string `json:"segment"`
	Row     int    `json:"row"`
	Kind    string `json:"kind"`
	Detail  string `json:"detail"`
}

// maxVerifyViolations caps how many violation details one /api/verify body
// carries; the count field is always exact.
const maxVerifyViolations = 32

// handleVerify re-audits the serving store against its segment commitments
// — full by default, or just the transfer rows in [from, to) seconds of
// virtual time with ?from/?to. Never cached: re-running the verification
// on every request is the point of the endpoint (a cached "clean" would
// not cover tamper that happened after the cache fill). Like
// /api/meta/layout, the body is layout-dependent (segment refs name
// physical shards), but the clean/violation verdict and the commitment
// digest are layout-independent.
func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	windowed := q.Get("from") != "" || q.Get("to") != ""
	var from, to int64
	var err error
	if v := q.Get("from"); v != "" {
		if from, err = strconv.ParseInt(v, 10, 64); err != nil {
			http.Error(w, "bad \"from\" parameter", http.StatusBadRequest)
			return
		}
	}
	if v := q.Get("to"); v != "" {
		if to, err = strconv.ParseInt(v, 10, 64); err != nil {
			http.Error(w, "bad \"to\" parameter", http.StatusBadRequest)
			return
		}
	}
	if windowed && to <= from {
		http.Error(w, "empty window: need from < to", http.StatusBadRequest)
		return
	}

	st := s.snapshot()
	defer s.release()
	store := st.res.Store
	var rep metastore.AuditReport
	if windowed {
		rep = store.AuditTransfersWindow(simtime.VTime(from), simtime.VTime(to))
	} else {
		rep = store.AuditSealed()
	}
	views := make([]violationView, 0, min(len(rep.Violations), maxVerifyViolations))
	for _, v := range rep.Violations {
		if len(views) == maxVerifyViolations {
			break
		}
		views = append(views, violationView{
			Segment: v.Ref.String(), Row: v.Row, Kind: string(v.Kind), Detail: v.Detail,
		})
	}
	writeJSON(w, struct {
		Digest     string          `json:"digest"`
		Epoch      uint64          `json:"epoch"`
		Windowed   bool            `json:"windowed"`
		Commitment string          `json:"commitment"`
		Segments   int             `json:"segments_audited"`
		Rows       int             `json:"rows_audited"`
		Clean      bool            `json:"clean"`
		Violations int             `json:"violations"`
		Details    []violationView `json:"details,omitempty"`
	}{
		Digest:     s.digest,
		Epoch:      st.epoch,
		Windowed:   windowed,
		Commitment: store.StoreCommitment().Digest(),
		Segments:   rep.Segments,
		Rows:       rep.Rows,
		Clean:      rep.Clean(),
		Violations: len(rep.Violations),
		Details:    views,
	})
}
