package serve

import (
	"net/http"
	"time"

	"panrucio/internal/obs"
)

// Process-wide serving metrics. Per-endpoint request latency is one
// histogram family labeled by endpoint name (the histograms are resolved
// at route construction, so the request path does a map-free closure call,
// two gauge updates, and one observation). Cache counters mirror the
// per-server CacheStats struct into the scrapeable registry; with several
// servers in one process (tests) they aggregate, which is the standard
// process-wide metrics contract.
var (
	mInFlight = obs.Default().Gauge("serve_inflight_requests",
		"requests currently being handled")
	mRequests = obs.Default().Counter("serve_requests_total",
		"requests handled (all endpoints)")
	mCacheHits = obs.Default().Counter("serve_cache_hits_total",
		"result-cache hits (including singleflight waits)")
	mCacheMisses = obs.Default().Counter("serve_cache_misses_total",
		"result-cache misses (body computed)")
	mCacheEvictions = obs.Default().Counter("serve_cache_evictions_total",
		"result-cache LRU evictions")
	mCachePruned = obs.Default().Counter("serve_cache_pruned_total",
		"result-cache entries pruned at epoch publish")
	mCacheSingleflight = obs.Default().Counter("serve_cache_singleflight_waits_total",
		"cache hits that waited on another caller's in-flight computation")
	mWindows = obs.Default().Counter("serve_windows_total",
		"live epoch read-windows opened (final publish excluded)")
	mWindowSeconds = obs.Default().Histogram("serve_window_open_seconds",
		"how long each live read window stayed open before ingest resumed", obs.DefBuckets)
	mEpoch = obs.Default().Gauge("serve_epoch",
		"store epoch of the most recent publish")
)

// timed wraps one endpoint's handler with the request instrumentation:
// in-flight gauge, total counter, and the endpoint's latency histogram.
func timed(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	hist := obs.Default().Histogram("serve_request_seconds",
		"request latency by endpoint", obs.DefBuckets, obs.L("endpoint", endpoint))
	return func(w http.ResponseWriter, r *http.Request) {
		mInFlight.Add(1)
		t0 := time.Now()
		h(w, r)
		hist.ObserveSince(t0)
		mInFlight.Add(-1)
		mRequests.Inc()
	}
}
