package serve

import (
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"panrucio/internal/obs"
	"panrucio/internal/sim"
)

// TestMetricsEndpoint drives a little traffic through a frozen server and
// checks GET /metrics returns well-formed Prometheus text carrying the
// serve-layer families: every sample line parses as `name value`, and the
// latency histogram plus the cache counters are present.
func TestMetricsEndpoint(t *testing.T) {
	s := NewFrozen(sim.Run(sim.QuickConfig(11)), Options{})
	get(t, s, "/api/meta")
	get(t, s, "/api/meta") // second hit exercises the cache-hit counter
	get(t, s, "/healthz")

	w := httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	body := w.Body.String()
	if body == "" {
		t.Fatal("empty /metrics body")
	}
	for _, want := range []string{
		"# TYPE serve_request_seconds histogram",
		`serve_request_seconds_bucket{endpoint="meta",le="+Inf"}`,
		"# TYPE serve_cache_hits_total counter",
		"serve_cache_hits_total",
		"serve_cache_misses_total",
		"serve_requests_total",
		"serve_inflight_requests",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	for _, line := range strings.Split(strings.TrimSuffix(body, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		if _, err := strconv.ParseFloat(line[i+1:], 64); err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
	}
}

// TestInstrumentationDoesNotChangeBodies is the PR's hard invariant:
// every response body is byte-identical whether metrics collection is
// enabled or disabled. Two servers run the identical scenario, one with
// obs gated off, and their bodies are compared path by path.
func TestInstrumentationDoesNotChangeBodies(t *testing.T) {
	stubSweepExperiments(t)
	fetch := func() map[string]string {
		s := NewFrozen(sim.Run(sim.QuickConfig(11)), Options{MatchWorkers: 2})
		paths := []string{
			"/api/meta",
			"/api/experiments",
			"/api/pandaids?limit=8",
		}
		for _, id := range Experiments {
			paths = append(paths, "/api/experiments/"+id)
		}
		bodies := make(map[string]string, len(paths))
		for _, p := range paths {
			bodies[p] = string(get(t, s, p))
		}
		return bodies
	}

	if !obs.Enabled() {
		t.Fatal("obs should be enabled by default")
	}
	on := fetch()
	obs.SetEnabled(false)
	defer obs.SetEnabled(true)
	off := fetch()

	if len(on) < 5 {
		t.Fatalf("only %d paths compared", len(on))
	}
	for p, want := range on {
		if got := off[p]; got != want {
			t.Errorf("%s: body changed with metrics disabled:\n%s\nvs\n%s",
				p, want, got)
		}
	}
}
