package serve

import (
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"panrucio/internal/experiments"
	"panrucio/internal/metastore"
	"panrucio/internal/sim"
	"panrucio/internal/simtime"
)

// Options tunes a Server. The zero value is serviceable.
type Options struct {
	// MatchWorkers is the matcher fan-out used when an experiment body
	// needs the three matching passes (<= 0 selects GOMAXPROCS). Bodies
	// are byte-identical for any value.
	MatchWorkers int
	// CacheEntries bounds the result cache (<= 0 selects 256).
	CacheEntries int
	// SweepScenarioCap bounds how many scenarios one /api/sweep launch may
	// run (<= 0 selects 16) — the server-side guard against a request
	// asking for an unbounded amount of compute.
	SweepScenarioCap int
}

func (o *Options) fill() {
	if o.CacheEntries <= 0 {
		o.CacheEntries = 256
	}
	if o.SweepScenarioCap <= 0 {
		o.SweepScenarioCap = 16
	}
}

// state is one published snapshot of the world: the store (live or
// frozen) plus everything analyses need, at one epoch. The suite — jobs
// and the three matching passes — is built lazily on the first experiment
// request of the epoch and shared by all of them.
type state struct {
	res   *sim.Result
	epoch uint64
	final bool

	suiteOnce sync.Once
	suite     *experiments.Suite
}

func (st *state) getSuite(workers int) *experiments.Suite {
	st.suiteOnce.Do(func() { st.suite = experiments.Build(st.res, workers) })
	return st.suite
}

// Server is the HTTP/JSON front end over one scenario's store. Handlers
// acquire the read half of mu for their whole request; the live
// scenario's goroutine holds the write half while ingesting and releases
// it at every observer checkpoint, so reads run in windows where the
// store is quiescent — concurrently with each other, never with ingest.
// For a frozen server the write half is never taken and reads are
// unrestricted.
type Server struct {
	opt    Options
	digest string
	cache  *resultCache
	mux    *http.ServeMux

	mu sync.RWMutex
	st *state

	epoch atomic.Uint64 // mirror of st.epoch for the lock-free /healthz
	done  chan struct{} // closed once the final (frozen) state is published
}

// NewFrozen serves a completed run: the store is frozen, the epoch is
// fixed at 1, and every read is lock-free in practice (the write lock has
// no writer). This is cmd/serve's default mode.
func NewFrozen(res *sim.Result, opt Options) *Server {
	s := newServer(res.Config.Digest(), opt)
	s.st = &state{res: res, epoch: 1, final: true}
	s.epoch.Store(1)
	close(s.done)
	return s
}

// NewLive starts the scenario in the background and serves the live store
// between ingest bursts: every `every` of virtual time the run checkpoints,
// bumps the epoch, and opens a read window (queued requests drain against
// the quiescent mid-run store, then ingestion resumes); the run's end
// publishes the final frozen state and leaves the window open for good.
// Requests arriving before the first checkpoint block until it opens.
// The returned server is usable immediately; Done reports run completion.
func NewLive(cfg sim.Config, every simtime.VTime, opt Options) *Server {
	s := newServer(cfg.Digest(), opt)
	grid := sim.GridFor(cfg)
	warmup := simtime.VTime(cfg.WarmupDays) * simtime.Day
	s.mu.Lock() // hold the write half until the first checkpoint
	go func() {
		res := sim.RunWithObserver(cfg, every, func(now simtime.VTime, store *metastore.Store) {
			s.publish(&sim.Result{
				Config:     cfg,
				Grid:       grid,
				Store:      store,
				WindowFrom: warmup,
				WindowTo:   now,
			}, false)
		})
		s.publish(res, true)
		close(s.done)
	}()
	return s
}

func newServer(digest string, opt Options) *Server {
	opt.fill()
	s := &Server{
		opt:    opt,
		digest: digest,
		cache:  newResultCache(opt.CacheEntries),
		done:   make(chan struct{}),
	}
	s.routes()
	return s
}

// publish swaps in a new state and opens a read window. It runs on the
// scenario goroutine with the write lock held; for a non-final state it
// re-acquires the lock before returning control to the event engine, so
// ingestion never overlaps a read. Pending readers are woken by the
// Unlock and drain before the Lock re-acquires.
//
// The store is frozen before the window opens — an incremental freeze
// that seals and merges only the records ingested since the last
// checkpoint. Freezing here, on the ingest thread, is what makes the
// window read-only in the strong sense: handlers that reach a
// freeze-on-entry path (the parallel matcher) hit the idempotent fast
// path instead of reorganizing the store under concurrent readers.
func (s *Server) publish(res *sim.Result, final bool) {
	res.Store.Freeze()
	epoch := s.epoch.Add(1)
	s.st = &state{res: res, epoch: epoch, final: final}
	s.cache.prune(epoch)
	mEpoch.Set(int64(epoch))
	t0 := time.Now()
	s.mu.Unlock()
	if !final {
		// The window is open from the Unlock until the Lock re-acquires —
		// queued readers drain in between, so the elapsed time is exactly
		// how long this epoch's read window stayed open.
		s.mu.Lock()
		mWindows.Inc()
		mWindowSeconds.ObserveSince(t0)
	}
}

// Done is closed once the backing run has completed and the final frozen
// state is being served (immediately for NewFrozen).
func (s *Server) Done() <-chan struct{} { return s.done }

// Epoch reports the current store epoch without taking any lock: 0 before
// a live server's first checkpoint, monotonically increasing after.
func (s *Server) Epoch() uint64 { return s.epoch.Load() }

// Digest reports the semantic config digest every cached body is keyed
// under.
func (s *Server) Digest() string { return s.digest }

// CacheStats reports the result cache's counters.
func (s *Server) CacheStats() CacheStats { return s.cache.snapshot() }

// Handler returns the server's HTTP handler (also reachable through
// ServeHTTP — Server is itself an http.Handler).
func (s *Server) Handler() http.Handler { return s.mux }

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// snapshot acquires a read window and returns the current state. The
// caller must call release (RUnlock) when done with every store-derived
// value — record pointers must not be used past the window.
func (s *Server) snapshot() *state {
	s.mu.RLock()
	return s.st
}

func (s *Server) release() { s.mu.RUnlock() }
