package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"panrucio/internal/report"
	"panrucio/internal/sim"
	"panrucio/internal/simtime"
	"panrucio/internal/sweep"
)

// do performs one in-process request against the server and returns the
// status code and body.
func do(t *testing.T, s *Server, method, target string) (int, []byte) {
	t.Helper()
	w := httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest(method, target, nil))
	return w.Code, w.Body.Bytes()
}

func get(t *testing.T, s *Server, target string) []byte {
	t.Helper()
	code, body := do(t, s, http.MethodGet, target)
	if code != http.StatusOK {
		t.Fatalf("GET %s = %d: %s", target, code, body)
	}
	return body
}

// stubSweepExperiments replaces the E14/E15 renderers with cheap canned
// reports for the duration of the test (the real ones run full sweep grids
// plus, for E15, an extra online simulation).
func stubSweepExperiments(t *testing.T) {
	t.Helper()
	origRobust, origDetect, origOnline := experimentsRobustness, experimentsDetection, experimentsOnline
	experimentsRobustness = func(cfg sim.Config, workers int) *sweep.Report {
		return &sweep.Report{}
	}
	experimentsDetection = func(cfg sim.Config, workers int) *sweep.Report {
		return &sweep.Report{}
	}
	experimentsOnline = func(cfg sim.Config) *report.Table {
		return &report.Table{Title: "E15 — online detect-and-repair loop (stub)"}
	}
	t.Cleanup(func() {
		experimentsRobustness, experimentsDetection, experimentsOnline = origRobust, origDetect, origOnline
	})
}

// TestGoldenBodiesAcrossLayouts pins the serving determinism contract:
// every response body except /api/meta/layout is byte-identical for any
// shard count, segment size, and matcher worker count.
func TestGoldenBodiesAcrossLayouts(t *testing.T) {
	stubSweepExperiments(t)
	layouts := []struct {
		shards, segrows, workers int
	}{
		{1, 64, 1},
		{8, 64, 4},
		{8, 0, 1}, // 0 = default segment size
		{1, 0, 4},
	}

	type golden struct {
		name   string
		bodies map[string][]byte
	}
	var runs []golden
	for _, l := range layouts {
		cfg := sim.QuickConfig(11)
		cfg.Shards = l.shards
		cfg.SegmentRows = l.segrows
		s := NewFrozen(sim.Run(cfg), Options{MatchWorkers: l.workers})

		// Seed the id-dependent paths from the server's own deterministic
		// id sample.
		var ids struct {
			PandaIDs []int64 `json:"pandaids"`
		}
		if err := json.Unmarshal(get(t, s, "/api/pandaids?limit=8"), &ids); err != nil {
			t.Fatal(err)
		}
		if len(ids.PandaIDs) == 0 {
			t.Fatal("no pandaids in the quick scenario window")
		}
		panda := ids.PandaIDs[0]
		var jv struct {
			Job struct{ JediTaskID int64 }
		}
		if err := json.Unmarshal(get(t, s, fmt.Sprintf("/api/job?panda=%d", panda)), &jv); err != nil {
			t.Fatal(err)
		}

		paths := []string{
			"/api/meta",
			"/api/experiments",
			fmt.Sprintf("/api/job?panda=%d", panda),
			fmt.Sprintf("/api/match?panda=%d", panda),
			fmt.Sprintf("/api/match?panda=%d&method=exact", panda),
			fmt.Sprintf("/api/match?panda=%d&method=rm1", panda),
			fmt.Sprintf("/api/task?jedi=%d&limit=16", jv.Job.JediTaskID),
			"/api/pandaids?limit=8",
		}
		for _, id := range Experiments {
			paths = append(paths, "/api/experiments/"+id)
		}

		g := golden{
			name:   fmt.Sprintf("shards=%d,segrows=%d,workers=%d", l.shards, l.segrows, l.workers),
			bodies: make(map[string][]byte),
		}
		for _, p := range paths {
			g.bodies[p] = get(t, s, p)
		}
		code, body := do(t, s, http.MethodPost, "/api/sweep?grid=robustness&scenarios=1&seed=3")
		if code != http.StatusOK {
			t.Fatalf("[%s] POST /api/sweep = %d: %s", g.name, code, body)
		}
		g.bodies["POST /api/sweep"] = body
		runs = append(runs, g)
	}

	base := runs[0]
	for _, g := range runs[1:] {
		for p, want := range base.bodies {
			if got := string(g.bodies[p]); got != string(want) {
				t.Errorf("%s: body diverged between %s and %s:\n%s\nvs\n%s",
					p, base.name, g.name, want, got)
			}
		}
	}
}

// TestLayoutEndpointReflectsLayout checks the one deliberately
// layout-dependent endpoint actually reports the layout.
func TestLayoutEndpointReflectsLayout(t *testing.T) {
	cfg := sim.QuickConfig(11)
	cfg.Shards = 3
	cfg.SegmentRows = 64
	s := NewFrozen(sim.Run(cfg), Options{})
	var v struct {
		Shards      int `json:"shards"`
		SegmentRows int `json:"segment_rows"`
	}
	if err := json.Unmarshal(get(t, s, "/api/meta/layout"), &v); err != nil {
		t.Fatal(err)
	}
	if v.Shards != 3 || v.SegmentRows != 64 {
		t.Fatalf("layout = %+v, want shards=3 segment_rows=64", v)
	}
}

// TestCacheSpeedup pins the O(1)-repeat contract: a cached experiment hit
// must be far faster than the cold computation (the issue's bar is 10x on
// p99 under load; 3x on a single pair keeps the test robust on slow CI).
func TestCacheSpeedup(t *testing.T) {
	s := NewFrozen(sim.Run(sim.QuickConfig(11)), Options{})
	t0 := time.Now()
	cold := get(t, s, "/api/experiments/summary")
	coldDur := time.Since(t0)
	t0 = time.Now()
	hot := get(t, s, "/api/experiments/summary")
	hotDur := time.Since(t0)
	if string(cold) != string(hot) {
		t.Fatal("cached body differs from cold body")
	}
	if st := s.CacheStats(); st.Hits < 1 {
		t.Fatalf("cache stats = %+v, want >= 1 hit", st)
	}
	if hotDur > coldDur/3 {
		t.Errorf("cached hit took %v vs cold %v, want >= 3x faster", hotDur, coldDur)
	}
}

// TestLiveServeUnderIngest is the tentpole race proof: N goroutines hammer
// every endpoint while the scenario ingests in the background, with -race
// watching. Reads are batched into observer windows; none may observe a
// mid-ingest store.
func TestLiveServeUnderIngest(t *testing.T) {
	stubSweepExperiments(t)
	cfg := sim.QuickConfig(11)
	cfg.Shards = 4
	cfg.SegmentRows = 64
	s := NewLive(cfg, 6*simtime.Hour, Options{})

	paths := []string{
		"/healthz",
		"/api/meta",
		"/api/meta/layout",
		"/api/experiments",
		"/api/experiments/rates",
		"/api/experiments/table2a",
		"/api/experiments/checks",
		"/api/pandaids?limit=4",
	}
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	stop := make(chan struct{})
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				p := paths[(w+i)%len(paths)]
				code, body := do(t, s, http.MethodGet, p)
				if code != http.StatusOK {
					select {
					case errs <- fmt.Sprintf("GET %s = %d: %s", p, code, body):
					default:
					}
					return
				}
				// Chase a real id through the lookup paths.
				if strings.HasPrefix(p, "/api/pandaids") {
					var ids struct {
						PandaIDs []int64 `json:"pandaids"`
					}
					if json.Unmarshal(body, &ids) == nil && len(ids.PandaIDs) > 0 {
						id := ids.PandaIDs[w%len(ids.PandaIDs)]
						do(t, s, http.MethodGet, fmt.Sprintf("/api/job?panda=%d", id))
						do(t, s, http.MethodGet, fmt.Sprintf("/api/match?panda=%d", id))
					}
				}
			}
		}(w)
	}

	<-s.Done()
	close(stop)
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}

	if s.Epoch() < 2 {
		t.Fatalf("epoch = %d, want >= 2 (mid-run checkpoints plus final)", s.Epoch())
	}

	// The final live state must agree semantically with a plain frozen run
	// of the same config (epoch differs by construction, so compare the
	// semantic fields, not bytes).
	frozen := NewFrozen(sim.Run(cfg), Options{})
	type meta struct {
		Digest    string `json:"digest"`
		Final     bool   `json:"final"`
		Jobs      int    `json:"jobs"`
		Files     int    `json:"files"`
		Transfers int    `json:"transfers"`
	}
	var live, want meta
	if err := json.Unmarshal(get(t, s, "/api/meta"), &live); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(get(t, frozen, "/api/meta"), &want); err != nil {
		t.Fatal(err)
	}
	if !live.Final || live != want {
		t.Fatalf("final live meta %+v != frozen meta %+v", live, want)
	}
}

// TestLiveEpochInvalidation checks that a body cached at a mid-run epoch
// is not served once the store has advanced.
func TestLiveEpochInvalidation(t *testing.T) {
	cfg := sim.QuickConfig(11)
	s := NewLive(cfg, 12*simtime.Hour, Options{})

	var first struct {
		Epoch     uint64 `json:"epoch"`
		Transfers int    `json:"transfers"`
	}
	if err := json.Unmarshal(get(t, s, "/api/meta"), &first); err != nil {
		t.Fatal(err)
	}
	firstRates := get(t, s, "/api/experiments/rates")

	<-s.Done()
	var last struct {
		Epoch     uint64 `json:"epoch"`
		Transfers int    `json:"transfers"`
	}
	if err := json.Unmarshal(get(t, s, "/api/meta"), &last); err != nil {
		t.Fatal(err)
	}
	if last.Epoch <= first.Epoch {
		t.Fatalf("epoch did not advance: %d -> %d", first.Epoch, last.Epoch)
	}
	if last.Transfers < first.Transfers {
		t.Fatalf("transfer count shrank across epochs: %d -> %d", first.Transfers, last.Transfers)
	}
	lastRates := get(t, s, "/api/experiments/rates")
	var a, b Body
	if err := json.Unmarshal(firstRates, &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(lastRates, &b); err != nil {
		t.Fatal(err)
	}
	if a.Epoch == b.Epoch {
		t.Fatalf("experiment body served at stale epoch %d after store advanced", a.Epoch)
	}
}

func TestErrorPaths(t *testing.T) {
	s := NewFrozen(sim.Run(sim.QuickConfig(11)), Options{})
	cases := []struct {
		method, target string
		want           int
	}{
		{http.MethodGet, "/api/experiments/nosuch", http.StatusNotFound},
		{http.MethodGet, "/api/job", http.StatusBadRequest},
		{http.MethodGet, "/api/job?panda=abc", http.StatusBadRequest},
		{http.MethodGet, "/api/job?panda=999999999", http.StatusNotFound},
		{http.MethodGet, "/api/match?panda=1&method=bogus", http.StatusBadRequest},
		{http.MethodGet, "/api/task?jedi=1&limit=0", http.StatusBadRequest},
		{http.MethodGet, "/api/pandaids?limit=-1", http.StatusBadRequest},
		{http.MethodPost, "/api/sweep?grid=nosuch", http.StatusBadRequest},
		{http.MethodPost, "/api/sweep?seed=x", http.StatusBadRequest},
		{http.MethodGet, "/api/sweep", http.StatusMethodNotAllowed},
		{http.MethodPost, "/api/meta", http.StatusMethodNotAllowed},
	}
	for _, tc := range cases {
		code, body := do(t, s, tc.method, tc.target)
		if code != tc.want {
			t.Errorf("%s %s = %d (%s), want %d", tc.method, tc.target, code, body, tc.want)
		}
	}
}

// TestSweepScenarioCap checks the server-side compute guard.
func TestSweepScenarioCap(t *testing.T) {
	s := NewFrozen(sim.Run(sim.QuickConfig(11)), Options{SweepScenarioCap: 1})
	code, body := do(t, s, http.MethodPost, "/api/sweep?grid=robustness&scenarios=50&seed=3")
	if code != http.StatusOK {
		t.Fatalf("POST /api/sweep = %d: %s", code, body)
	}
	var rep struct {
		Scenarios int `json:"scenarios"`
	}
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Scenarios != 1 {
		t.Fatalf("scenarios = %d, want capped to 1", rep.Scenarios)
	}
	// A repeat launch is an epoch-0 cache hit.
	before := s.CacheStats().Hits
	do(t, s, http.MethodPost, "/api/sweep?grid=robustness&scenarios=50&seed=3")
	if s.CacheStats().Hits <= before {
		t.Fatal("repeated sweep launch missed the cache")
	}
}
