package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"

	"panrucio/internal/sim"
	"panrucio/internal/simtime"
	"panrucio/internal/verify"
)

// verifyBody mirrors the /api/verify response envelope.
type verifyBody struct {
	Digest     string `json:"digest"`
	Epoch      uint64 `json:"epoch"`
	Windowed   bool   `json:"windowed"`
	Commitment string `json:"commitment"`
	Segments   int    `json:"segments_audited"`
	Rows       int    `json:"rows_audited"`
	Clean      bool   `json:"clean"`
	Violations int    `json:"violations"`
	Details    []struct {
		Segment string `json:"segment"`
		Row     int    `json:"row"`
		Kind    string `json:"kind"`
		Detail  string `json:"detail"`
	} `json:"details"`
}

func getVerify(t *testing.T, s *Server, target string) verifyBody {
	t.Helper()
	var v verifyBody
	if err := json.Unmarshal(get(t, s, target), &v); err != nil {
		t.Fatal(err)
	}
	return v
}

// TestVerifyEndpointClean pins the endpoint's honest-store behavior: the
// full audit covers every sealed row and reports clean, the windowed form
// audits a subset, and bad parameters are rejected.
func TestVerifyEndpointClean(t *testing.T) {
	cfg := sim.QuickConfig(11)
	cfg.Shards = 4
	cfg.SegmentRows = 64
	res := sim.Run(cfg)
	s := NewFrozen(res, Options{})

	full := getVerify(t, s, "/api/verify")
	if !full.Clean || full.Violations != 0 {
		t.Fatalf("clean store: %+v", full)
	}
	if full.Rows == 0 || full.Segments == 0 {
		t.Fatalf("full audit covered nothing: %+v", full)
	}
	if full.Commitment == "" || full.Windowed {
		t.Fatalf("bad envelope: %+v", full)
	}

	win := getVerify(t, s, fmt.Sprintf("/api/verify?from=%d&to=%d",
		int64(res.WindowFrom), int64(res.WindowFrom+6*simtime.Hour)))
	if !win.Windowed || !win.Clean {
		t.Fatalf("windowed audit: %+v", win)
	}
	if win.Rows == 0 || win.Rows >= full.Rows {
		t.Fatalf("windowed audit rows %d, want in (0, %d)", win.Rows, full.Rows)
	}

	for _, target := range []string{
		"/api/verify?from=abc",
		"/api/verify?to=abc",
		"/api/verify?from=100&to=100",
		"/api/verify?from=200&to=100",
	} {
		if code, _ := do(t, s, http.MethodGet, target); code != http.StatusBadRequest {
			t.Errorf("GET %s = %d, want 400", target, code)
		}
	}
}

// TestVerifyEndpointDetectsTamper pins the reason the endpoint exists and
// is never cached: tamper applied to the serving store between requests is
// visible to the next request.
func TestVerifyEndpointDetectsTamper(t *testing.T) {
	cfg := sim.QuickConfig(11)
	cfg.Shards = 4
	cfg.SegmentRows = 64
	res := sim.Run(cfg)
	s := NewFrozen(res, Options{})

	if v := getVerify(t, s, "/api/verify"); !v.Clean {
		t.Fatalf("dirty before tamper: %+v", v)
	}

	log := verify.TamperStore(res.Store, verify.TamperConfig{Prob: 0.02, Seed: 7})
	if log.RowsTampered+log.SegmentsTruncated == 0 {
		t.Fatal("tamper seam injected nothing")
	}

	v := getVerify(t, s, "/api/verify")
	if v.Clean {
		t.Fatal("endpoint reported clean after tamper — a cached verdict?")
	}
	if v.Violations != log.RowsTampered+log.SegmentsTruncated {
		t.Fatalf("violations = %d, want %d tampered + %d truncated",
			v.Violations, log.RowsTampered, log.SegmentsTruncated)
	}
	if len(v.Details) == 0 || len(v.Details) > maxVerifyViolations {
		t.Fatalf("details length %d, want in [1, %d]", len(v.Details), maxVerifyViolations)
	}
	for _, d := range v.Details {
		if d.Segment == "" || d.Kind == "" {
			t.Fatalf("empty detail fields: %+v", d)
		}
	}
}

// TestLiveVerifyUnderIngest races the verify scan against live serving:
// goroutines re-audit through /api/verify (full and windowed) while the
// scenario ingests and other readers hit the match paths — the -race
// extension the commitment scheme demands, since audits re-hash the same
// sealed rows the matcher and ingest loop share.
func TestLiveVerifyUnderIngest(t *testing.T) {
	stubSweepExperiments(t)
	cfg := sim.QuickConfig(11)
	cfg.Shards = 4
	cfg.SegmentRows = 64
	s := NewLive(cfg, 6*simtime.Hour, Options{})

	paths := []string{
		"/api/verify",
		"/api/verify?from=0&to=86400",
		"/api/meta",
		"/api/experiments/rates",
	}
	var wg sync.WaitGroup
	errs := make(chan string, 16)
	stop := make(chan struct{})
	sawRows := make(chan int, 1)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				p := paths[(w+i)%len(paths)]
				code, body := do(t, s, http.MethodGet, p)
				if code != http.StatusOK {
					select {
					case errs <- fmt.Sprintf("GET %s = %d: %s", p, code, body):
					default:
					}
					return
				}
				if p == "/api/verify" {
					var v verifyBody
					if json.Unmarshal(body, &v) == nil {
						if !v.Clean {
							select {
							case errs <- fmt.Sprintf("mid-run audit dirty: %d violations", v.Violations):
							default:
							}
							return
						}
						if v.Rows > 0 {
							select {
							case sawRows <- v.Rows:
							default:
							}
						}
					}
				}
			}
		}(w)
	}

	<-s.Done()
	close(stop)
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	select {
	case <-sawRows:
	default:
		t.Error("verify audits never covered a sealed row during the live run")
	}
}
