// Package sim assembles the full simulated stack — grid topology, network,
// Rucio, PanDA, workload generation, background traffic, metadata
// corruption, and the metastore — and runs it over a study window. It is
// the single entry point used by the command-line tools, the examples, the
// sweep engine, and the benchmark harness.
//
// Entry points: Run executes one Config to its horizon and returns the
// populated, frozen metastore plus run statistics; RunReusing is Run with
// a caller-provided store (Reset first) so sweep workers reuse index-map
// capacity across scenarios; QuickConfig and PaperConfig are the two
// canned scenarios.
//
// Determinism is the package's load-bearing invariant: a Result is a pure
// function of its Config, seed included. The root RNG is split per
// subsystem (corruption, net, rucio, panda, workload, background), so
// adding draws in one subsystem never perturbs another, and Run freezes
// the store before returning so every downstream analysis starts from a
// read-only, concurrently-queryable snapshot.
package sim
