package sim

import (
	"testing"

	"panrucio/internal/core"
	"panrucio/internal/metastore"
	"panrucio/internal/simtime"
)

// TestRunWithObserverSeesMonotoneLiveStore drives the mid-run checkpoint
// hook over a quick scenario with small segments: every checkpoint must
// see a queryable live store whose counts never go backwards, and the
// matcher must run against it without a Freeze.
func TestRunWithObserverSeesMonotoneLiveStore(t *testing.T) {
	cfg := QuickConfig(5)
	cfg.SegmentRows = 2048 // force mid-run seals at quick-run volume

	var (
		calls      int
		lastNow    simtime.VTime
		lastEvents int
		matched    int
	)
	res := RunWithObserver(cfg, 6*simtime.Hour, func(now simtime.VTime, s *metastore.Store) {
		calls++
		if now <= lastNow {
			t.Fatalf("checkpoint %d: time went backwards (%v after %v)", calls, now, lastNow)
		}
		lastNow = now
		if n := s.TransferCount(); n < lastEvents {
			t.Fatalf("checkpoint %d: TransferCount shrank mid-run (%d after %d)", calls, n, lastEvents)
		} else {
			lastEvents = n
		}

		// The live store answers windowed queries and full matcher probes.
		if evs := s.Transfers(0, now); len(evs) > 0 && evs[len(evs)-1].StartedAt >= now {
			t.Fatalf("checkpoint %d: windowed query leaked a future event", calls)
		}
		m := core.NewMatcher(s)
		for _, j := range s.Jobs(0, now, "") {
			if len(m.MatchJob(j, core.RM2)) > 0 {
				matched++
			}
		}
	})

	if want := 2*4 - 1; calls != want { // 2 days at 6h cadence, minus the horizon tick
		t.Fatalf("observer ran %d times, want %d", calls, want)
	}
	if matched == 0 {
		t.Fatal("no job ever matched mid-run")
	}
	if res.Store.SealedSegments() == 0 {
		t.Fatal("small segments never sealed during the run")
	}

	// The observer is read-only: the run's outcome must be identical to a
	// plain Run of the same config.
	plain := Run(cfg)
	if res.SubmittedJobs != plain.SubmittedJobs || res.FinishedJobs != plain.FinishedJobs ||
		res.EmittedEvents != plain.EmittedEvents || res.MovedBytes != plain.MovedBytes ||
		res.Store.TransferCount() != plain.Store.TransferCount() ||
		res.Store.JobCount() != plain.Store.JobCount() {
		t.Fatal("observed run diverged from plain Run")
	}
	a, b := res.Store.Transfers(0, 0), plain.Store.Transfers(0, 0)
	if len(a) != len(b) {
		t.Fatalf("frozen stores diverged: %d vs %d events", len(a), len(b))
	}
	for i := range a {
		if a[i].EventID != b[i].EventID {
			t.Fatalf("frozen stores diverged at event %d", i)
		}
	}
}

// TestRunWithObserverDegeneratesToRun pins the guard rails: a nil observer
// or non-positive cadence is plain Run.
func TestRunWithObserverDegeneratesToRun(t *testing.T) {
	cfg := QuickConfig(3)
	plain := Run(cfg)
	for _, every := range []simtime.VTime{0, -simtime.Hour} {
		res := RunWithObserver(cfg, every, func(simtime.VTime, *metastore.Store) {
			t.Fatal("observer fired despite non-positive cadence")
		})
		if res.StoredEvents != plain.StoredEvents || res.MovedBytes != plain.MovedBytes {
			t.Fatalf("every=%v: result diverged from Run", every)
		}
	}
	res := RunWithObserver(cfg, simtime.Hour, nil)
	if res.StoredEvents != plain.StoredEvents {
		t.Fatal("nil observer: result diverged from Run")
	}
}
