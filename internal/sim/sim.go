package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"time"

	"panrucio/internal/corruption"
	"panrucio/internal/metastore"
	"panrucio/internal/netsim"
	"panrucio/internal/obs"
	"panrucio/internal/panda"
	"panrucio/internal/records"
	"panrucio/internal/rucio"
	"panrucio/internal/simtime"
	"panrucio/internal/topology"
	"panrucio/internal/workload"
)

// Process-wide simulator metrics. Everything here updates at run or
// checkpoint granularity — never per event — so the event engine's hot
// loop carries no instrumentation cost at all.
var (
	mRuns = obs.Default().Counter("sim_runs_total",
		"completed scenario runs (Run, RunReusing, RunWithObserver)")
	mRunSeconds = obs.Default().Histogram("sim_run_wall_seconds",
		"wall time of one scenario run (simulation + final freeze)", obs.DefBuckets)
	mEventsPerSec = obs.Default().Gauge("sim_events_per_sec",
		"emitted events per wall second of the most recently completed run")
	mCheckpoints = obs.Default().Counter("sim_checkpoints_total",
		"observer checkpoints fired across all runs")
	mCheckpointSeconds = obs.Default().Histogram("sim_checkpoint_wall_seconds",
		"wall time from one observer checkpoint to the next (observer included)", obs.DefBuckets)
)

// Config selects the simulation scenario. Zero sub-configs take each
// package's defaults; Seed 0 means seed 1.
type Config struct {
	Seed int64
	// Days is the study-window length (default 8, the paper's main window).
	Days int
	// WarmupDays run before the window opens so the grid reaches steady
	// state; records emitted during warmup are ingested too, but analyses
	// window on [warmup, warmup+days) (default 0 for speed; the paper's
	// window semantics are preserved either way).
	WarmupDays int

	Grid       topology.DefaultSpec
	Net        netsim.Options
	Rucio      rucio.Options
	Panda      panda.Options
	Background rucio.BackgroundConfig
	Corruption corruption.Config
	Workload   workload.Config

	// DisableBackground turns off non-job traffic (useful in unit-scale
	// experiments that only need job-correlated events).
	DisableBackground bool

	// CPUScale multiplies every site's pilot-slot count (0 = 1.0). The
	// default grid is heavily over-provisioned, like the real WLCG for an
	// average week; contention studies (coopt) scale it down so brokerage
	// policy choices matter.
	CPUScale float64

	// Scale multiplies the scenario's event volume: task arrival rates,
	// background traffic rates, and the seeded catalog all grow by Scale
	// (applied on top of the filled defaults of Workload and Background —
	// explicitly-set fields scale too). The default scenario is calibrated
	// to roughly 1/20 of the paper's production volume, so Scale 20 is a
	// paper-scale (1x) run and Scale 200 the 10x stress case. 0 or 1 leaves
	// the scenario untouched, so default outputs are bit-for-bit unchanged.
	Scale float64

	// Shards selects the metastore shard count for Run (0 picks
	// metastore.DefaultShards). Purely a performance knob: outputs are
	// byte-identical for any value.
	Shards int

	// SegmentRows selects the metastore's per-shard segment-seal threshold
	// (0 picks metastore.DefaultSegmentRows). Like Shards, purely a
	// performance knob: outputs are byte-identical for any value.
	SegmentRows int
}

func (c *Config) fill() {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Days == 0 {
		c.Days = 8
	}
}

// Digest returns a short hex digest of the scenario's semantic content —
// the cache key the serving layer uses for result bodies. The two
// performance-only knobs (Shards, SegmentRows) are zeroed before hashing:
// query results are byte-identical for any value of either (the
// equivalence suites pin this), so two configs differing only there must
// share cached results. Defaults are filled first, so Seed 0 and Seed 1
// digest identically, as they run identically. Every Config field is
// plain value data, which keeps the %+v rendering — and therefore the
// digest — deterministic across processes.
func (c Config) Digest() string {
	c.fill()
	c.Shards = 0
	c.SegmentRows = 0
	sum := sha256.Sum256([]byte(fmt.Sprintf("%+v", c)))
	return hex.EncodeToString(sum[:8])
}

// Result bundles everything an analysis needs after a run.
type Result struct {
	Config Config
	Grid   *topology.Grid
	Store  *metastore.Store

	// WindowFrom/WindowTo delimit the study window in virtual time.
	WindowFrom, WindowTo simtime.VTime

	// Corruption reports what the degradation layer did.
	Corruption corruption.Stats

	// Totals.
	SubmittedTasks int64
	SubmittedJobs  int64
	FinishedJobs   int64
	FailedJobs     int64
	EmittedEvents  int64
	StoredEvents   int64
	MovedBytes     int64
}

// Run executes the scenario to its horizon and returns the populated
// metastore plus run statistics. Deterministic for a given Config.
func Run(cfg Config) *Result {
	return RunReusing(cfg, metastore.NewShardedSegmented(cfg.Shards, cfg.SegmentRows))
}

// Observer is a mid-run checkpoint callback: it receives the virtual time
// of the checkpoint and the live, un-frozen store, which answers every
// query over exactly the records ingested so far (sealed segments + tail).
// Observers must not ingest records or retain record pointers past the run
// (the store is reset on reuse). Calling Seal or Freeze from the callback
// is allowed — both are content-preserving reorganizations, and the
// serving layer freezes at every checkpoint so its read windows serve a
// store with no mutation paths reachable from queries.
type Observer func(now simtime.VTime, store *metastore.Store)

// RunWithObserver is Run with a periodic mid-run checkpoint: every `every`
// of virtual time, obs is called with the live store. The observer rides
// the scenario's own event engine but mutates nothing, so the simulation
// trajectory — and the returned Result — is identical to Run's for the
// same Config. every <= 0 or a nil obs degenerates to plain Run.
func RunWithObserver(cfg Config, every simtime.VTime, obs Observer) *Result {
	store := metastore.NewShardedSegmented(cfg.Shards, cfg.SegmentRows)
	return runReusing(cfg, store, every, obs)
}

// RunReusing is Run with a caller-provided metastore: the store is Reset
// first, so its index maps' capacity carries over from previous runs. This
// is the entry point of the sweep engine, whose workers each own one store
// across many scenarios. The returned Result is identical to Run's for the
// same Config, but any records or query results obtained from the store
// before the call are invalidated.
func RunReusing(cfg Config, store *metastore.Store) *Result {
	return runReusing(cfg, store, 0, nil)
}

// RunReusingObserved combines RunReusing and RunWithObserver: a
// caller-provided store plus periodic mid-run checkpoints. The sweep
// engine uses it to emit run traces from its worker-owned stores; the
// Result (and every query output) is identical to RunReusing's for the
// same Config.
func RunReusingObserved(cfg Config, store *metastore.Store, every simtime.VTime, obs Observer) *Result {
	return runReusing(cfg, store, every, obs)
}

// GridFor builds the topology grid the scenario runs on — the same
// deterministic construction runReusing performs, including the CPUScale
// adjustment. The serving layer uses it to give mid-run observers a grid
// for analyses without extending the Observer signature.
func GridFor(cfg Config) *topology.Grid {
	grid := topology.Default(cfg.Grid)
	if cfg.CPUScale > 0 && cfg.CPUScale != 1 {
		for _, s := range grid.Sites() {
			s.CPUSlots = int(float64(s.CPUSlots) * cfg.CPUScale)
			if s.CPUSlots < 1 {
				s.CPUSlots = 1
			}
		}
	}
	return grid
}

func runReusing(cfg Config, store *metastore.Store, every simtime.VTime, obs Observer) *Result {
	store.Reset()
	cfg.fill()
	if cfg.Scale > 0 && cfg.Scale != 1 {
		cfg.Workload = cfg.Workload.Scaled(cfg.Scale)
		cfg.Background = cfg.Background.Scaled(cfg.Scale)
	}
	horizon := simtime.VTime(cfg.WarmupDays+cfg.Days) * simtime.Day
	eng := simtime.NewEngine(0, horizon)
	grid := GridFor(cfg)
	root := simtime.NewRNG(cfg.Seed)

	corr := corruption.New(root.Split("corruption"), cfg.Corruption)

	net := netsim.New(eng, grid, root.Split("net"), cfg.Net)
	ruc := rucio.New(eng, grid, net, root.Split("rucio"), cfg.Rucio, func(ev *records.TransferEvent) {
		if corr.Transfer(ev) {
			store.PutTransfer(ev)
		}
	})
	pan := panda.NewSystem(eng, grid, ruc, root.Split("panda"), cfg.Panda,
		store.PutJob, store.PutFile)
	workload.Start(eng, grid, ruc, pan, root.Split("workload"), cfg.Workload)
	if !cfg.DisableBackground {
		rucio.StartBackground(ruc, root.Split("background"), cfg.Background)
	}
	start := time.Now()
	if obs != nil && every > 0 {
		// The checkpoint event reschedules itself until the horizon. It only
		// reads the store, so it cannot perturb the trajectory of the
		// scenario's own events.
		last := start
		var tick func()
		tick = func() {
			obs(eng.Now(), store)
			now := time.Now()
			mCheckpoints.Inc()
			mCheckpointSeconds.Observe(now.Sub(last).Seconds())
			last = now
			if eng.Now()+every < horizon {
				eng.After(every, "observer", tick)
			}
		}
		eng.After(every, "observer", tick)
	}

	eng.Run()
	// Ingestion is complete: build the sorted time indices now so the
	// analyses (and the matcher's parallel workers) start from a frozen,
	// read-only store.
	store.Freeze()
	wall := time.Since(start)
	mRuns.Inc()
	mRunSeconds.Observe(wall.Seconds())
	if secs := wall.Seconds(); secs > 0 {
		mEventsPerSec.Set(int64(float64(ruc.EmittedEvents) / secs))
	}

	return &Result{
		Config:         cfg,
		Grid:           grid,
		Store:          store,
		WindowFrom:     simtime.VTime(cfg.WarmupDays) * simtime.Day,
		WindowTo:       horizon,
		Corruption:     corr.Stats,
		SubmittedTasks: pan.SubmittedTasks,
		SubmittedJobs:  pan.SubmittedJobs,
		FinishedJobs:   pan.FinishedJobs,
		FailedJobs:     pan.FailedJobs,
		EmittedEvents:  ruc.EmittedEvents,
		StoredEvents:   int64(store.TransferCount()),
		MovedBytes:     net.CompletedBytes,
	}
}

// QuickConfig returns a small, fast scenario (2 days, reduced arrival
// rates) for tests and the quickstart example.
func QuickConfig(seed int64) Config {
	return Config{
		Seed: seed,
		Days: 2,
		Workload: workload.Config{
			InitialDatasets:  120,
			UserTaskInterval: 600,
			ProdTaskInterval: 1800,
			UserJobsMean:     10,
			ProdJobsMean:     20,
		},
		Background: rucio.BackgroundConfig{
			ExportInterval:        3600,
			RebalanceInterval:     2400,
			ConsolidationInterval: 1200,
			SubscriptionInterval:  4800,
		},
	}
}

// PaperConfig returns the 8-day scenario whose scale mirrors the paper's
// study window at roughly 1/20 of production volume (see DESIGN.md).
func PaperConfig(seed int64) Config {
	return Config{Seed: seed, Days: 8}
}
