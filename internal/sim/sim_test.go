package sim

import (
	"testing"

	"panrucio/internal/metastore"
	"panrucio/internal/records"
	"panrucio/internal/simtime"
	"panrucio/internal/topology"
)

func TestQuickRunProducesAllRecordStreams(t *testing.T) {
	res := Run(QuickConfig(1))
	if res.Store.JobCount() == 0 {
		t.Fatal("no job records")
	}
	if res.Store.FileCount() == 0 {
		t.Fatal("no file records")
	}
	if res.Store.TransferCount() == 0 {
		t.Fatal("no transfer events")
	}
	if res.Store.TransfersWithTaskID() == 0 {
		t.Fatal("no job-correlated transfers")
	}
	if res.Store.TransfersWithTaskID() >= res.Store.TransferCount() {
		t.Error("background traffic missing: every event carries a task id")
	}
	if res.SubmittedJobs == 0 || res.FinishedJobs+res.FailedJobs == 0 {
		t.Error("no jobs ran")
	}
	if res.MovedBytes == 0 {
		t.Error("no bytes moved")
	}
	if res.Corruption.Seen == 0 {
		t.Error("corruptor saw nothing")
	}
	if res.EmittedEvents < res.StoredEvents {
		t.Error("stored more events than emitted")
	}
}

func TestRunDeterministic(t *testing.T) {
	a := Run(QuickConfig(7))
	b := Run(QuickConfig(7))
	if a.Store.JobCount() != b.Store.JobCount() ||
		a.Store.TransferCount() != b.Store.TransferCount() ||
		a.MovedBytes != b.MovedBytes ||
		a.FailedJobs != b.FailedJobs {
		t.Fatalf("identical configs diverged: %+v vs %+v", a, b)
	}
	// Different seeds must diverge.
	c := Run(QuickConfig(8))
	if c.MovedBytes == a.MovedBytes && c.Store.TransferCount() == a.Store.TransferCount() {
		t.Error("different seeds produced identical runs (suspicious)")
	}
}

func TestWindowSemantics(t *testing.T) {
	res := Run(QuickConfig(2))
	if res.WindowFrom != 0 || res.WindowTo != 2*simtime.Day {
		t.Errorf("window [%d,%d), want [0, 2d)", res.WindowFrom, res.WindowTo)
	}
	// Every reported job completed inside the window.
	for _, j := range res.Store.Jobs(res.WindowFrom, res.WindowTo, "") {
		if j.EndTime < res.WindowFrom || j.EndTime >= res.WindowTo {
			t.Fatal("job outside window returned by windowed query")
		}
	}
}

func TestUserAndProductionPopulations(t *testing.T) {
	res := Run(QuickConfig(3))
	users := res.Store.Jobs(res.WindowFrom, res.WindowTo, records.LabelUser)
	prods := res.Store.Jobs(res.WindowFrom, res.WindowTo, records.LabelManaged)
	if len(users) == 0 || len(prods) == 0 {
		t.Fatalf("user=%d prod=%d, want both populated", len(users), len(prods))
	}
	// Paper-shape check (Table 1 counts transfers **with** a jeditaskid):
	// production uploads dominate that population; analysis uploads with a
	// task id are rare.
	var prodUp, anaUp int
	for _, ev := range res.Store.Transfers(0, 0) {
		if !ev.HasTaskID() {
			continue
		}
		switch ev.Activity {
		case records.ProductionUp:
			prodUp++
		case records.AnalysisUpload:
			anaUp++
		}
	}
	if prodUp == 0 {
		t.Error("no production uploads")
	}
	if anaUp >= prodUp {
		t.Errorf("task-id analysis uploads (%d) should be much rarer than production uploads (%d)", anaUp, prodUp)
	}
}

func TestCorruptionVisibleInStore(t *testing.T) {
	res := Run(QuickConfig(4))
	unknown := 0
	for _, ev := range res.Store.Transfers(0, 0) {
		if ev.SourceSite == topology.UnknownSite || ev.DestinationSite == topology.UnknownSite {
			unknown++
		}
	}
	if unknown == 0 {
		t.Error("no UNKNOWN-site events in store despite default corruption")
	}
}

func TestDisableBackground(t *testing.T) {
	cfg := QuickConfig(5)
	cfg.DisableBackground = true
	res := Run(cfg)
	for _, ev := range res.Store.Transfers(0, 0) {
		switch ev.Activity {
		case records.TierExport, records.DataRebalancing, records.DataConsolidation, records.UserSubscription:
			t.Fatalf("background activity %q with background disabled", ev.Activity)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	c.fill()
	if c.Seed != 1 || c.Days != 8 {
		t.Errorf("defaults: %+v", c)
	}
	p := PaperConfig(3)
	if p.Days != 8 || p.Seed != 3 {
		t.Errorf("PaperConfig: %+v", p)
	}
}

func TestCPUScaleShrinksSlots(t *testing.T) {
	cfg := QuickConfig(9)
	cfg.CPUScale = 0.01
	res := Run(cfg)
	total := res.Grid.TotalCPUSlots()
	full := Run(QuickConfig(9)).Grid.TotalCPUSlots()
	if total >= full/50 {
		t.Errorf("CPUScale 0.01: %d slots vs full %d", total, full)
	}
	// Contention shows up as longer queue times.
	var scaled, normal float64
	for _, j := range res.Store.Jobs(res.WindowFrom, res.WindowTo, "") {
		scaled += j.QueueTime().Seconds()
	}
	base := Run(QuickConfig(9))
	for _, j := range base.Store.Jobs(base.WindowFrom, base.WindowTo, "") {
		normal += j.QueueTime().Seconds()
	}
	if res.Store.JobCount() > 0 && base.Store.JobCount() > 0 {
		if scaled/float64(res.Store.JobCount()) <= normal/float64(base.Store.JobCount()) {
			t.Error("CPU starvation did not lengthen queues")
		}
	}
}

func TestWarmupShiftsWindow(t *testing.T) {
	cfg := QuickConfig(10)
	cfg.WarmupDays = 1
	res := Run(cfg)
	if res.WindowFrom != simtime.Day || res.WindowTo != 3*simtime.Day {
		t.Errorf("window [%d,%d), want [1d,3d)", res.WindowFrom, res.WindowTo)
	}
	if len(res.Store.Jobs(res.WindowFrom, res.WindowTo, "")) == 0 {
		t.Error("no jobs in post-warmup window")
	}
}

func TestCorruptionDisableFlows(t *testing.T) {
	cfg := QuickConfig(11)
	cfg.Corruption.Disable = true
	res := Run(cfg)
	if res.Corruption.Dropped != 0 || res.Corruption.SiteUnknowns != 0 || res.Corruption.JoinBroken != 0 {
		t.Errorf("corruption acted despite Disable: %+v", res.Corruption)
	}
	for _, ev := range res.Store.Transfers(0, 0) {
		if ev.SourceSite == topology.UnknownSite || ev.DestinationSite == topology.UnknownSite {
			t.Fatal("UNKNOWN site with corruption disabled")
		}
	}
}

// TestRunReusingShardedStore is TestRunReusingMatchesRun on a non-default
// shard count: a reused sharded store (with its intern table and arena
// high-water marks reset between scenarios) must reproduce a fresh run.
func TestRunReusingShardedStore(t *testing.T) {
	fresh := Run(QuickConfig(3))

	store := metastore.NewSharded(4)
	RunReusing(QuickConfig(7), store) // dirty the store with another scenario
	interned := store.InternedStrings()
	reused := RunReusing(QuickConfig(3), store)

	if fresh.Store.TransferCount() != reused.Store.TransferCount() ||
		fresh.Store.JobCount() != reused.Store.JobCount() ||
		fresh.MovedBytes != reused.MovedBytes {
		t.Fatal("sharded reused store diverged from fresh run")
	}
	if interned > 0 && reused.Store.InternedStrings() == 0 {
		t.Fatal("reused store interned nothing")
	}
	fe := fresh.Store.Transfers(0, 0)
	re := reused.Store.Transfers(0, 0)
	for i := range fe {
		if *fe[i] != *re[i] {
			t.Fatalf("event %d diverged: %+v vs %+v", i, *fe[i], *re[i])
		}
	}
}

// TestScaleGrowsVolume pins the -scale contract: Scale > 1 multiplies the
// event volume, Scale 1 (and 0) are exact no-ops on the output.
func TestScaleGrowsVolume(t *testing.T) {
	base := Run(QuickConfig(6))

	unit := QuickConfig(6)
	unit.Scale = 1
	if got := Run(unit); got.StoredEvents != base.StoredEvents || got.MovedBytes != base.MovedBytes {
		t.Fatal("Scale=1 changed the run")
	}

	scaled := QuickConfig(6)
	scaled.Scale = 3
	got := Run(scaled)
	// Arrival rates tripled; allow slack for slot contention and dedupe.
	if got.StoredEvents < base.StoredEvents*2 {
		t.Fatalf("Scale=3 stored %d events vs base %d, want ≥2x", got.StoredEvents, base.StoredEvents)
	}
	if got.SubmittedTasks < base.SubmittedTasks*2 {
		t.Fatalf("Scale=3 submitted %d tasks vs base %d, want ≥2x", got.SubmittedTasks, base.SubmittedTasks)
	}
}

func TestRunReusingMatchesRun(t *testing.T) {
	fresh := Run(QuickConfig(3))

	store := metastore.New()
	RunReusing(QuickConfig(7), store) // dirty the store with another scenario
	reused := RunReusing(QuickConfig(3), store)

	if fresh.Store.TransferCount() != reused.Store.TransferCount() ||
		fresh.Store.JobCount() != reused.Store.JobCount() ||
		fresh.Store.TransfersWithTaskID() != reused.Store.TransfersWithTaskID() {
		t.Fatalf("reused store diverged: %d/%d/%d vs %d/%d/%d",
			fresh.Store.TransferCount(), fresh.Store.JobCount(), fresh.Store.TransfersWithTaskID(),
			reused.Store.TransferCount(), reused.Store.JobCount(), reused.Store.TransfersWithTaskID())
	}
	if fresh.SubmittedJobs != reused.SubmittedJobs || fresh.MovedBytes != reused.MovedBytes ||
		fresh.Corruption != reused.Corruption {
		t.Fatalf("run statistics diverged: %+v vs %+v", fresh, reused)
	}
	fj := fresh.Store.Jobs(fresh.WindowFrom, fresh.WindowTo, records.LabelUser)
	rj := reused.Store.Jobs(reused.WindowFrom, reused.WindowTo, records.LabelUser)
	if len(fj) != len(rj) {
		t.Fatalf("windowed job sets diverged: %d vs %d", len(fj), len(rj))
	}
	for i := range fj {
		if fj[i].PandaID != rj[i].PandaID || fj[i].EndTime != rj[i].EndTime {
			t.Fatalf("job %d diverged: %+v vs %+v", i, fj[i], rj[i])
		}
	}
}
