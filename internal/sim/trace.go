package sim

import (
	"time"

	"panrucio/internal/metastore"
	"panrucio/internal/obs"
	"panrucio/internal/simtime"
)

// TraceObserver adapts a run-trace writer to the simulator's checkpoint
// seam: the returned Observer emits one "event" record per checkpoint,
// named name, carrying the store's record counts, the segment-lifecycle
// state, and the wall-clock ingest rate since the previous checkpoint.
// The observer only reads the store, so — like any Observer — it cannot
// perturb the run's trajectory; a nil tr yields records into the void
// (obs.Trace methods are nil-safe), so call sites need no branching.
//
// cmd/repro wires it through -trace; the sweep engine tags name with the
// scenario id so interleaved worker records stay attributable.
func TraceObserver(tr *obs.Trace, name string) Observer {
	last := time.Now()
	lastEvents := 0
	return func(now simtime.VTime, store *metastore.Store) {
		wall := time.Now()
		events := store.TransferCount()
		rate := 0.0
		if secs := wall.Sub(last).Seconds(); secs > 0 {
			rate = float64(events-lastEvents) / secs
		}
		tr.Event(name, int64(now), map[string]any{
			"jobs":                  store.JobCount(),
			"files":                 store.FileCount(),
			"transfers":             events,
			"transfers_with_taskid": store.TransfersWithTaskID(),
			"sealed_segments":       store.SealedSegments(),
			"events_per_sec":        rate,
		})
		last = wall
		lastEvents = events
	}
}
