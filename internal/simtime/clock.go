package simtime

import (
	"fmt"
	"time"
)

// VTime is virtual simulation time, measured in whole seconds from the
// simulation epoch. Using an integer type keeps event ordering exact and
// platform-independent (no float drift across architectures).
type VTime int64

// Epoch is the calendar anchor for VTime 0. The paper's main study window is
// 2025-04-01 to 2025-04-09; anchoring at the window start makes the emitted
// metadata timestamps directly comparable to the paper's figures.
var Epoch = time.Date(2025, time.April, 1, 0, 0, 0, 0, time.UTC)

// Common durations in seconds.
const (
	Second VTime = 1
	Minute VTime = 60
	Hour   VTime = 3600
	Day    VTime = 86400
)

// Wall converts a virtual time to a calendar time.
func (t VTime) Wall() time.Time { return Epoch.Add(time.Duration(t) * time.Second) }

// String renders the virtual time as its calendar equivalent.
func (t VTime) String() string { return t.Wall().UTC().Format("2006-01-02 15:04:05") }

// Duration converts a VTime delta to a time.Duration.
func (t VTime) Duration() time.Duration { return time.Duration(t) * time.Second }

// FromWall converts a calendar time to virtual time, truncating sub-second
// precision.
func FromWall(w time.Time) VTime { return VTime(w.Sub(Epoch) / time.Second) }

// Seconds returns the raw second count; a convenience for arithmetic with
// float-valued rates.
func (t VTime) Seconds() float64 { return float64(t) }

// Clock tracks the current virtual time of a simulation.
type Clock struct {
	now VTime
}

// NewClock returns a clock positioned at the given start time.
func NewClock(start VTime) *Clock { return &Clock{now: start} }

// Now reports the current virtual time.
func (c *Clock) Now() VTime { return c.now }

// advance moves the clock forward. It panics on backwards movement, which
// would indicate a corrupted event queue.
func (c *Clock) advance(to VTime) {
	if to < c.now {
		panic(fmt.Sprintf("simtime: clock moved backwards: %d -> %d", c.now, to))
	}
	c.now = to
}
