// Package simtime provides the discrete-event simulation kernel used by
// all panrucio substrates: a virtual clock (VTime), a binary-heap event
// queue (Engine), and deterministic, splittable random-number helpers
// (RNG).
//
// The kernel is intentionally single-goroutine: a simulation advances by
// popping the earliest scheduled event and running its callback, which may
// schedule further events. Determinism is a hard requirement (DESIGN.md);
// for one seed the whole experiment suite reproduces bit-for-bit, so there
// is no wall-clock or goroutine-ordering dependence anywhere in the
// kernel. Ties at the same virtual time are broken by schedule order, and
// RNG.Split derives independent named streams so each subsystem owns its
// randomness.
//
// Entry points: NewEngine(start, horizon) then Run; NewRNG(seed) and
// RNG.Split(name) for the per-subsystem streams.
package simtime
