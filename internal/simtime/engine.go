package simtime

import (
	"container/heap"
	"errors"
	"math"
)

// Event is a scheduled callback. Events fire in (time, sequence) order;
// the sequence number makes same-instant events deterministic (FIFO by
// scheduling order), which is essential for reproducibility.
type Event struct {
	At   VTime
	Run  func()
	Name string // optional label for debugging and tracing

	seq       uint64
	index     int
	cancelled bool
}

// Cancel marks an event so the engine skips it when popped. Cancelling an
// already-fired event is a no-op.
func (e *Event) Cancel() { e.cancelled = true }

// Cancelled reports whether the event was cancelled before firing.
func (e *Event) Cancelled() bool { return e.cancelled }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// ErrPastEvent is returned when scheduling before the current virtual time.
var ErrPastEvent = errors.New("simtime: cannot schedule event in the past")

// Engine is the discrete-event simulation driver. The zero value is not
// usable; construct with NewEngine.
type Engine struct {
	clock   *Clock
	queue   eventHeap
	nextSeq uint64
	fired   uint64
	horizon VTime // exclusive end of simulation; events at/after it never run
}

// NewEngine creates an engine starting at virtual time start and running
// until the horizon (exclusive). A zero horizon means "no horizon" (the
// engine runs until the queue drains).
func NewEngine(start, horizon VTime) *Engine {
	if horizon == 0 {
		horizon = VTime(math.MaxInt64)
	}
	return &Engine{clock: NewClock(start), horizon: horizon}
}

// Now reports the current virtual time.
func (e *Engine) Now() VTime { return e.clock.Now() }

// Horizon reports the exclusive simulation end time.
func (e *Engine) Horizon() VTime { return e.horizon }

// Pending reports the number of events waiting in the queue, including
// cancelled ones not yet reaped.
func (e *Engine) Pending() int { return len(e.queue) }

// Fired reports how many events have executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// At schedules fn to run at absolute virtual time t and returns the event
// handle (usable for cancellation). Scheduling in the past is an error.
func (e *Engine) At(t VTime, name string, fn func()) (*Event, error) {
	if t < e.clock.Now() {
		return nil, ErrPastEvent
	}
	ev := &Event{At: t, Run: fn, Name: name, seq: e.nextSeq}
	e.nextSeq++
	heap.Push(&e.queue, ev)
	return ev, nil
}

// After schedules fn to run d seconds from now. Negative delays clamp to 0
// (run at the current instant, after already-queued same-instant events).
func (e *Engine) After(d VTime, name string, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	ev, err := e.At(e.clock.Now()+d, name, fn)
	if err != nil {
		// Unreachable: now+nonnegative is never in the past.
		panic(err)
	}
	return ev
}

// Step fires the single earliest pending event. It returns false when the
// queue is empty or the next event lies at/after the horizon (in which case
// the clock advances to the horizon).
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.cancelled {
			continue
		}
		if ev.At >= e.horizon {
			e.clock.advance(e.horizon)
			return false
		}
		e.clock.advance(ev.At)
		e.fired++
		ev.Run()
		return true
	}
	return false
}

// Run drives the simulation until the queue drains or the horizon is
// reached, returning the number of events fired.
func (e *Engine) Run() uint64 {
	start := e.fired
	for e.Step() {
	}
	return e.fired - start
}

// RunUntil drives the simulation until the given virtual time (exclusive);
// events scheduled at or after t remain queued. The clock ends at min(t,
// next-event-time, horizon) — i.e. it does not jump past t.
func (e *Engine) RunUntil(t VTime) {
	if t > e.horizon {
		t = e.horizon
	}
	for len(e.queue) > 0 {
		ev := e.queue[0]
		if ev.cancelled {
			heap.Pop(&e.queue)
			continue
		}
		if ev.At >= t {
			break
		}
		e.Step()
	}
	if e.clock.Now() < t {
		e.clock.advance(t)
	}
}
