package simtime

import (
	"testing"
	"testing/quick"
	"time"
)

func TestVTimeWallRoundTrip(t *testing.T) {
	for _, v := range []VTime{0, 1, Hour, Day, 92 * Day} {
		if got := FromWall(v.Wall()); got != v {
			t.Errorf("FromWall(Wall(%d)) = %d", v, got)
		}
	}
}

func TestVTimeString(t *testing.T) {
	if got := VTime(0).String(); got != "2025-04-01 00:00:00" {
		t.Errorf("VTime(0) = %q, want epoch string", got)
	}
	if got := (Day + Hour).String(); got != "2025-04-02 01:00:00" {
		t.Errorf("Day+Hour = %q", got)
	}
}

func TestVTimeDuration(t *testing.T) {
	if Hour.Duration() != time.Hour {
		t.Errorf("Hour.Duration() = %v", Hour.Duration())
	}
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine(0, 0)
	var order []int
	e.After(30, "c", func() { order = append(order, 3) })
	e.After(10, "a", func() { order = append(order, 1) })
	e.After(20, "b", func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events fired out of order: %v", order)
	}
	if e.Now() != 30 {
		t.Errorf("clock = %d, want 30", e.Now())
	}
}

func TestEngineSameInstantFIFO(t *testing.T) {
	e := NewEngine(0, 0)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.After(5, "x", func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events not FIFO: %v", order)
		}
	}
}

func TestEngineCascade(t *testing.T) {
	e := NewEngine(0, 0)
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 100 {
			e.After(1, "tick", tick)
		}
	}
	e.After(1, "tick", tick)
	fired := e.Run()
	if count != 100 || fired != 100 {
		t.Fatalf("count=%d fired=%d, want 100", count, fired)
	}
	if e.Now() != 100 {
		t.Errorf("clock = %d, want 100", e.Now())
	}
}

func TestEngineHorizon(t *testing.T) {
	e := NewEngine(0, 50)
	ran := 0
	e.After(10, "in", func() { ran++ })
	e.After(60, "out", func() { ran++ })
	e.Run()
	if ran != 1 {
		t.Fatalf("ran=%d, want 1 (event past horizon must not fire)", ran)
	}
	if e.Now() != 50 {
		t.Errorf("clock = %d, want horizon 50", e.Now())
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine(0, 0)
	ran := false
	ev := e.After(10, "x", func() { ran = true })
	ev.Cancel()
	e.Run()
	if ran {
		t.Fatal("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Fatal("Cancelled() = false after Cancel")
	}
}

func TestEnginePastEvent(t *testing.T) {
	e := NewEngine(100, 0)
	if _, err := e.At(50, "past", func() {}); err != ErrPastEvent {
		t.Fatalf("At(past) err = %v, want ErrPastEvent", err)
	}
}

func TestEngineNegativeDelayClamps(t *testing.T) {
	e := NewEngine(100, 0)
	ran := false
	e.After(-5, "neg", func() { ran = true })
	e.Run()
	if !ran || e.Now() != 100 {
		t.Fatalf("negative delay should fire at current instant; ran=%v now=%d", ran, e.Now())
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine(0, 0)
	var fired []VTime
	for _, at := range []VTime{5, 15, 25} {
		at := at
		e.After(at, "x", func() { fired = append(fired, at) })
	}
	e.RunUntil(20)
	if len(fired) != 2 {
		t.Fatalf("fired=%v, want events at 5 and 15 only", fired)
	}
	if e.Now() != 20 {
		t.Errorf("clock = %d, want 20", e.Now())
	}
	e.Run()
	if len(fired) != 3 {
		t.Fatalf("remaining event did not fire: %v", fired)
	}
}

func TestEngineRunUntilEmptyQueueAdvancesClock(t *testing.T) {
	e := NewEngine(0, 0)
	e.RunUntil(40)
	if e.Now() != 40 {
		t.Errorf("clock = %d, want 40", e.Now())
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced diverging streams")
		}
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	root := NewRNG(7)
	a := root.Split("alpha")
	b := root.Split("beta")
	a2 := NewRNG(7).Split("alpha")
	same := 0
	for i := 0; i < 50; i++ {
		av, bv, av2 := a.Float64(), b.Float64(), a2.Float64()
		if av == bv {
			same++
		}
		if av != av2 {
			t.Fatal("Split not deterministic for identical (seed,label)")
		}
	}
	if same > 5 {
		t.Fatalf("sibling streams coincide too often: %d/50", same)
	}
}

func TestRNGBoolEdges(t *testing.T) {
	g := NewRNG(1)
	for i := 0; i < 20; i++ {
		if g.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !g.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestRNGPoissonMean(t *testing.T) {
	g := NewRNG(3)
	for _, lambda := range []float64{0.5, 4, 50} {
		sum := 0
		n := 20000
		for i := 0; i < n; i++ {
			sum += g.Poisson(lambda)
		}
		mean := float64(sum) / float64(n)
		if mean < lambda*0.9 || mean > lambda*1.1 {
			t.Errorf("Poisson(%g) sample mean %g out of band", lambda, mean)
		}
	}
	if g.Poisson(0) != 0 || g.Poisson(-1) != 0 {
		t.Error("Poisson of non-positive lambda must be 0")
	}
}

func TestRNGParetoLowerBound(t *testing.T) {
	g := NewRNG(9)
	for i := 0; i < 1000; i++ {
		if v := g.Pareto(2.0, 1.5); v < 2.0 {
			t.Fatalf("Pareto draw %g below scale", v)
		}
	}
}

func TestRNGExponentialNonNegative(t *testing.T) {
	g := NewRNG(11)
	for i := 0; i < 1000; i++ {
		if g.Exponential(10) < 0 {
			t.Fatal("negative exponential draw")
		}
	}
	if g.Exponential(0) != 0 || g.Exponential(-3) != 0 {
		t.Error("Exponential of non-positive mean must be 0")
	}
}

func TestRNGChoiceWeights(t *testing.T) {
	g := NewRNG(13)
	w := []float64{0, 0, 1, 0}
	for i := 0; i < 100; i++ {
		if g.Choice(w) != 2 {
			t.Fatal("Choice ignored zero weights")
		}
	}
	if g.Choice([]float64{0, 0}) != 0 {
		t.Error("Choice of all-zero weights should return 0")
	}
	// Negative weights are treated as zero.
	wneg := []float64{-5, 1}
	for i := 0; i < 100; i++ {
		if g.Choice(wneg) != 1 {
			t.Fatal("Choice selected negative-weight index")
		}
	}
}

func TestRNGVExpAtLeastOne(t *testing.T) {
	g := NewRNG(17)
	for i := 0; i < 1000; i++ {
		if g.VExp(1) < 1 {
			t.Fatal("VExp below 1s")
		}
	}
}

// Property: scheduling any set of non-negative delays fires them all in
// non-decreasing time order.
func TestEngineOrderProperty(t *testing.T) {
	prop := func(delays []uint16) bool {
		e := NewEngine(0, 0)
		var fired []VTime
		for _, d := range delays {
			d := VTime(d)
			e.After(d, "p", func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Uniform(lo,hi) stays inside [lo,hi) for ordered bounds.
func TestRNGUniformBoundsProperty(t *testing.T) {
	g := NewRNG(23)
	prop := func(a, b float64) bool {
		if a != a || b != b { // NaN
			return true
		}
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		if hi-lo <= 0 || hi-lo > 1e12 {
			return true
		}
		v := g.Uniform(lo, hi)
		return v >= lo && v < hi
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
