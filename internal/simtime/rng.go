package simtime

import (
	"hash/fnv"
	"math"
	"math/rand"
)

// RNG wraps a seeded math/rand source with the distribution helpers the
// simulation needs. It is deliberately splittable: Split derives an
// independent child stream from a label, so adding randomness to one
// subsystem never perturbs the draw sequence of another. That property is
// what keeps experiment outputs stable as the codebase grows.
type RNG struct {
	seed int64
	r    *rand.Rand
}

// NewRNG returns a deterministic generator for the given seed.
func NewRNG(seed int64) *RNG {
	return &RNG{seed: seed, r: rand.New(rand.NewSource(seed))}
}

// Seed reports the seed this generator was created with.
func (g *RNG) Seed() int64 { return g.seed }

// Split derives an independent child generator keyed by label. Identical
// (seed, label) pairs always produce identical streams.
func (g *RNG) Split(label string) *RNG {
	return NewRNG(g.splitSeed(label))
}

// splitSeed is the derivation behind Split: the parent seed xor an FNV-1a
// hash of the label, avoiding the degenerate all-zero seed.
func (g *RNG) splitSeed(label string) int64 {
	h := fnv.New64a()
	h.Write([]byte(label))
	child := g.seed ^ int64(h.Sum64())
	if child == 0 {
		child = int64(h.Sum64()) | 1
	}
	return child
}

// Reseed re-initializes the generator in place to the exact state NewRNG
// would give it — the allocation-free form for pooled reuse. The underlying
// math/rand source is 4.9 KB, so callers that split per entity (one stream
// per job, say) and can bound the stream's lifetime should recycle dead
// generators through Reseed/SplitInto instead of allocating a new source
// each time.
func (g *RNG) Reseed(seed int64) {
	g.seed = seed
	g.r.Seed(seed)
}

// SplitInto is Split with the child's allocation recycled: it re-seeds
// child to the exact stream Split(label) would return. The child must not
// be in use — recycling a generator that can still be drawn from corrupts
// determinism silently.
func (g *RNG) SplitInto(child *RNG, label string) {
	child.Reseed(g.splitSeed(label))
}

// Float64 returns a uniform draw in [0,1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform draw in [0,n). n must be positive.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63n returns a uniform draw in [0,n). n must be positive.
func (g *RNG) Int63n(n int64) int64 { return g.r.Int63n(n) }

// Bool returns true with probability p (clamped to [0,1]).
func (g *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return g.r.Float64() < p
}

// Uniform returns a uniform draw in [lo,hi).
func (g *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*g.r.Float64()
}

// Normal returns a Gaussian draw with the given mean and standard deviation.
func (g *RNG) Normal(mean, stddev float64) float64 {
	return mean + stddev*g.r.NormFloat64()
}

// LogNormal returns a draw whose logarithm is Normal(mu, sigma). Heavy-tailed
// file and dataset sizes in the workload generator use this.
func (g *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(g.Normal(mu, sigma))
}

// Exponential returns a draw from an exponential distribution with the given
// mean (inter-arrival times).
func (g *RNG) Exponential(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return g.r.ExpFloat64() * mean
}

// Pareto returns a draw from a (Type-I) Pareto distribution with scale xm and
// shape alpha. Used for the rare huge datasets that produce Fig. 3's >30 PB
// outlier cells.
func (g *RNG) Pareto(xm, alpha float64) float64 {
	u := g.r.Float64()
	for u == 0 {
		u = g.r.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// Poisson returns a draw from a Poisson distribution with the given mean,
// using Knuth's method for small lambda and a normal approximation above
// 30 (adequate for arrival counts; exactness is not required there).
func (g *RNG) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		n := int(math.Round(g.Normal(lambda, math.Sqrt(lambda))))
		if n < 0 {
			n = 0
		}
		return n
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= g.r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Perm returns a deterministic random permutation of [0,n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Choice returns a uniformly chosen index weighted by w (all weights must be
// non-negative; if they sum to zero the first index is returned).
func (g *RNG) Choice(w []float64) int {
	total := 0.0
	for _, x := range w {
		if x > 0 {
			total += x
		}
	}
	if total <= 0 {
		return 0
	}
	target := g.r.Float64() * total
	acc := 0.0
	for i, x := range w {
		if x > 0 {
			acc += x
		}
		if target < acc {
			return i
		}
	}
	return len(w) - 1
}

// VExp returns an exponential inter-arrival delay as a VTime, at least 1s.
func (g *RNG) VExp(mean VTime) VTime {
	d := VTime(math.Round(g.Exponential(float64(mean))))
	if d < 1 {
		d = 1
	}
	return d
}
