// Package stats provides the small numeric toolkit the analysis layer
// needs: means, geometric means, percentiles, histograms, and byte
// formatting (FormatBytes).
//
// Everything is allocation-light and deterministic — pure functions of
// their inputs with no global state — so the analyses and shape checks
// built on top inherit the repo-wide reproducibility guarantee for free.
// Percentile-style functions sort copies rather than their arguments;
// callers' slices are never reordered.
package stats
