package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of the positive entries, or 0 when
// none are positive. (The paper quotes geometric means over site-pair
// volumes, which include many near-zero cells; zeros are excluded exactly
// as a log-domain mean must.)
func GeoMean(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Percentile returns the p-th percentile (0..100) using linear
// interpolation between closest ranks; it copies and sorts the input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Max returns the maximum, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Sum returns the total.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Histogram is a fixed-width bin counter over [Lo, Hi); values outside the
// range land in the first/last bin.
type Histogram struct {
	Lo, Hi float64
	Counts []int
}

// NewHistogram creates a histogram with n bins covering [lo, hi). n must be
// positive and hi > lo.
func NewHistogram(lo, hi float64, n int) (*Histogram, error) {
	if n <= 0 || hi <= lo {
		return nil, fmt.Errorf("stats: invalid histogram [%g,%g)/%d", lo, hi, n)
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, n)}, nil
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	n := len(h.Counts)
	i := int(float64(n) * (x - h.Lo) / (h.Hi - h.Lo))
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	h.Counts[i]++
}

// Total returns the number of recorded observations.
func (h *Histogram) Total() int {
	t := 0
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// FormatBytes renders a byte count with a binary-free SI-style unit, the
// way the paper quotes volumes (TB, PB, EB at 10^12/10^15/10^18).
func FormatBytes(b float64) string {
	abs := math.Abs(b)
	switch {
	case abs >= 1e18:
		return fmt.Sprintf("%.2f EB", b/1e18)
	case abs >= 1e15:
		return fmt.Sprintf("%.2f PB", b/1e15)
	case abs >= 1e12:
		return fmt.Sprintf("%.2f TB", b/1e12)
	case abs >= 1e9:
		return fmt.Sprintf("%.2f GB", b/1e9)
	case abs >= 1e6:
		return fmt.Sprintf("%.2f MB", b/1e6)
	case abs >= 1e3:
		return fmt.Sprintf("%.2f kB", b/1e3)
	}
	return fmt.Sprintf("%.0f B", b)
}

// FormatRate renders bytes/s in the paper's MBps style.
func FormatRate(bps float64) string {
	return FormatBytes(bps) + "/s"
}
