package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %g", got)
	}
}

func TestGeoMean(t *testing.T) {
	if GeoMean(nil) != 0 || GeoMean([]float64{0, 0}) != 0 {
		t.Error("GeoMean of no positives should be 0")
	}
	got := GeoMean([]float64{1, 100})
	if math.Abs(got-10) > 1e-9 {
		t.Errorf("GeoMean(1,100) = %g, want 10", got)
	}
	// Zeros excluded.
	got = GeoMean([]float64{0, 1, 100, 0})
	if math.Abs(got-10) > 1e-9 {
		t.Errorf("GeoMean with zeros = %g, want 10", got)
	}
	// Geometric mean <= arithmetic mean on positives (AM-GM).
	xs := []float64{3, 7, 19, 0.5, 2}
	if GeoMean(xs) > Mean(xs) {
		t.Error("AM-GM violated")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	cases := map[float64]float64{0: 1, 100: 4, 50: 2.5, 25: 1.75}
	for p, want := range cases {
		if got := Percentile(xs, p); math.Abs(got-want) > 1e-9 {
			t.Errorf("P%g = %g, want %g", p, got, want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("Percentile(nil) != 0")
	}
	if Percentile(xs, -5) != 1 || Percentile(xs, 150) != 4 {
		t.Error("out-of-range percentiles should clamp")
	}
}

func TestMinMaxSum(t *testing.T) {
	xs := []float64{3, -1, 7}
	if Max(xs) != 7 || Min(xs) != -1 || Sum(xs) != 9 {
		t.Error("Min/Max/Sum wrong")
	}
	if Max(nil) != 0 || Min(nil) != 0 || Sum(nil) != 0 {
		t.Error("empty-slice behaviour wrong")
	}
}

func TestHistogram(t *testing.T) {
	if _, err := NewHistogram(0, 0, 5); err == nil {
		t.Error("degenerate range accepted")
	}
	if _, err := NewHistogram(0, 1, 0); err == nil {
		t.Error("zero bins accepted")
	}
	h, err := NewHistogram(0, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	h.Add(0.5)
	h.Add(9.5)
	h.Add(-3)  // clamps to first
	h.Add(100) // clamps to last
	if h.Counts[0] != 2 || h.Counts[9] != 2 {
		t.Errorf("counts = %v", h.Counts)
	}
	if h.Total() != 4 {
		t.Errorf("Total = %d", h.Total())
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[float64]string{
		1e18:  "1.00 EB",
		5e15:  "5.00 PB",
		77e12: "77.00 TB",
		2.5e9: "2.50 GB",
		3e6:   "3.00 MB",
		4e3:   "4.00 kB",
		12:    "12 B",
	}
	for in, want := range cases {
		if got := FormatBytes(in); got != want {
			t.Errorf("FormatBytes(%g) = %q, want %q", in, got, want)
		}
	}
	if !strings.HasSuffix(FormatRate(1e6), "/s") {
		t.Error("FormatRate missing /s suffix")
	}
}

func TestPercentileMonotoneProperty(t *testing.T) {
	prop := func(raw []float64, aRaw, bRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
		}
		a := float64(aRaw) / 255 * 100
		b := float64(bRaw) / 255 * 100
		if a > b {
			a, b = b, a
		}
		return Percentile(raw, a) <= Percentile(raw, b)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
