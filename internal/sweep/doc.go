// Package sweep runs grids of simulation scenarios concurrently and
// aggregates their matching results into one deterministic report — the
// scaffolding for every multi-scenario study (robustness ramps, seed
// fan-outs, workload and topology sweeps) on top of the single-scenario
// pipeline.
//
// A grid is a cross product of Axis values over a base sim.Config,
// built with Expand or one of the canned constructors (CorruptionRamp —
// experiment E14 —, SeedFanOut, MixGrid). Run executes the scenarios over
// a bounded worker pool; each worker goroutine owns one metastore that
// sim.RunReusing resets between scenarios, so index-map capacity is
// reused instead of reallocated. Per scenario the engine runs the three
// matching passes (analysis.CompareMethodsParallel) against the frozen
// store and evaluates analysis.ShapeChecks.
//
// Determinism invariant: a Report is a pure function of the scenario
// list. Outcomes land at their scenario's index regardless of worker
// count or completion order, outcomes hold value data only (never store
// pointers), and renderings iterate slices, never maps — so Markdown and
// JSON output are byte-identical for -workers 1 and -workers N. cmd/sweep
// is the command-line front end; experiments.RobustnessSweep wires the
// canned ramp in as E14.
package sweep
