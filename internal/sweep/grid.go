package sweep

import (
	"fmt"

	"panrucio/internal/corruption"
	"panrucio/internal/sim"
	"panrucio/internal/simtime"
	"panrucio/internal/topology"
	"panrucio/internal/verify"
)

// Scenario is one point of a sweep grid: a fully specified sim.Config plus
// a stable identifier. IDs are unique within a grid and carry the varied
// knobs ("corr=10%/seed=3"), so a report row is self-describing.
type Scenario struct {
	// ID names the scenario; report rows and JSON objects are keyed by it.
	ID string
	// X is the scenario's coordinate on the swept axis (the corruption
	// rate, the seed, ...) — the x value of the match-rate curves. Grids
	// built from more than one axis fall back to the scenario index.
	X float64
	// Config is the complete scenario; the engine never mutates it.
	Config sim.Config
	// Tamper, when non-nil, mutates the store's sealed segments at rest
	// AFTER the run and its matching passes, then audits: the integrity
	// half of E15. The matching rates above measure tolerance of ingest
	// corruption; the Detection outcome measures detection of post-seal
	// tamper.
	Tamper *verify.TamperConfig
}

// Variation is one value of an axis: a label fragment for the scenario ID,
// the numeric coordinate, and the config mutation it stands for.
type Variation struct {
	Label string
	X     float64
	Apply func(*sim.Config)
}

// Axis is one swept dimension of a grid.
type Axis struct {
	Name   string
	Points []Variation
}

// Expand builds the cross product of the axes over a base config, in
// deterministic order: the last axis varies fastest, mirroring nested
// loops. Scenario IDs join the point labels with "/"; X is the point's
// coordinate for a single axis and the scenario index otherwise.
func Expand(base sim.Config, axes ...Axis) []Scenario {
	scenarios := []Scenario{{Config: base}}
	for _, ax := range axes {
		var next []Scenario
		for _, sc := range scenarios {
			for _, pt := range ax.Points {
				cfg := sc.Config
				if pt.Apply != nil {
					pt.Apply(&cfg)
				}
				id := pt.Label
				if sc.ID != "" {
					id = sc.ID + "/" + pt.Label
				}
				next = append(next, Scenario{ID: id, X: pt.X, Config: cfg})
			}
		}
		scenarios = next
	}
	if len(axes) != 1 {
		for i := range scenarios {
			scenarios[i].X = float64(i)
		}
	}
	return scenarios
}

// zeroable maps a swept probability onto corruption.Config's convention
// that zero means "use the calibrated default": a literal 0 becomes the
// negative sentinel the config clamps to exactly zero.
func zeroable(p float64) float64 {
	if p == 0 {
		return -1
	}
	return p
}

// DefaultRampRates is the corruption ramp of the canned robustness sweep
// (experiment E14): 0 % to 50 % in 10-point steps.
func DefaultRampRates() []float64 { return []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5} }

// CorruptionAxis sweeps the job-correlated corruption channels — the
// per-pilot-batch site-label loss and the per-event jeditaskid drop — over
// the given rates. Rate 0 turns both channels fully off (the clean-metadata
// end of E14); the calibrated defaults sit at 0.40 and 0.02.
func CorruptionAxis(rates []float64) Axis {
	ax := Axis{Name: "corruption"}
	for _, r := range rates {
		rate := r
		ax.Points = append(ax.Points, Variation{
			Label: fmt.Sprintf("corr=%d%%", int(rate*100+0.5)),
			X:     rate,
			Apply: func(cfg *sim.Config) {
				cfg.Corruption.UnknownSiteProbTaskID = zeroable(rate)
				cfg.Corruption.DropTaskIDProb = zeroable(rate)
			},
		})
	}
	return ax
}

// SeedAxis sweeps the root seed: the fan-out for variance estimation.
func SeedAxis(seeds ...int64) Axis {
	ax := Axis{Name: "seed"}
	for _, s := range seeds {
		seed := s
		ax.Points = append(ax.Points, Variation{
			Label: fmt.Sprintf("seed=%d", seed),
			X:     float64(seed),
			Apply: func(cfg *sim.Config) { cfg.Seed = seed },
		})
	}
	return ax
}

// WorkloadMixAxis sweeps the user/production task mix by setting the mean
// task inter-arrival times explicitly: analysis-heavy, the quick-scenario
// balance, and production-heavy arrivals.
func WorkloadMixAxis() Axis {
	set := func(user, prod simtime.VTime) func(*sim.Config) {
		return func(cfg *sim.Config) {
			cfg.Workload.UserTaskInterval = user
			cfg.Workload.ProdTaskInterval = prod
		}
	}
	return Axis{Name: "mix", Points: []Variation{
		{Label: "mix=user-heavy", X: 0, Apply: set(300, 3600)},
		{Label: "mix=balanced", X: 1, Apply: set(600, 1800)},
		{Label: "mix=prod-heavy", X: 2, Apply: set(1200, 900)},
	}}
}

// BackgroundAxis sweeps the non-job traffic intensity. Scale 0 disables
// background traffic entirely; scale s > 0 multiplies every background
// arrival rate by s (by dividing the configured mean intervals, which must
// be set on the base config — sim.QuickConfig sets all four).
func BackgroundAxis(scales ...float64) Axis {
	ax := Axis{Name: "background"}
	for _, s := range scales {
		scale := s
		v := Variation{Label: fmt.Sprintf("bg=%gx", scale), X: scale}
		if scale == 0 {
			v.Label = "bg=off"
			v.Apply = func(cfg *sim.Config) { cfg.DisableBackground = true }
		} else {
			v.Apply = func(cfg *sim.Config) {
				b := &cfg.Background
				for _, iv := range []*simtime.VTime{
					&b.ExportInterval, &b.RebalanceInterval,
					&b.ConsolidationInterval, &b.SubscriptionInterval,
				} {
					if *iv > 0 {
						*iv = simtime.VTime(float64(*iv) / scale)
						if *iv < 1 {
							*iv = 1
						}
					}
				}
			}
		}
		ax.Points = append(ax.Points, v)
	}
	return ax
}

// GridSizeAxis sweeps the topology scale: a compact grid (named exemplar
// sites plus a handful of generics), the paper-scale default (~111 sites),
// and a wide grid half again as large.
func GridSizeAxis() Axis {
	spec := func(t2, t3 int) func(*sim.Config) {
		return func(cfg *sim.Config) {
			cfg.Grid = topology.DefaultSpec{ExtraTier2: t2, ExtraTier3: t3}
		}
	}
	return Axis{Name: "grid", Points: []Variation{
		{Label: "grid=compact", X: 0, Apply: spec(10, 4)},
		{Label: "grid=default", X: 1, Apply: func(cfg *sim.Config) { cfg.Grid = topology.DefaultSpec{} }},
		{Label: "grid=wide", X: 2, Apply: spec(100, 46)},
	}}
}

// CorruptionRamp is the canned robustness sweep behind experiment E14:
// the base scenario with the job-correlated corruption channels ramped
// over the given rates (see CorruptionAxis). Exact matching degrades as
// the ramp climbs while RM2 holds — the paper's robustness ordering,
// measured rather than asserted.
func CorruptionRamp(base sim.Config, rates []float64) []Scenario {
	return Expand(base, CorruptionAxis(rates))
}

// SeedFanOut is the canned variance sweep: n scenarios differing only in
// seed, starting at the base config's (filled) seed.
func SeedFanOut(base sim.Config, n int) []Scenario {
	start := base.Seed
	if start == 0 {
		start = 1
	}
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = start + int64(i)
	}
	return Expand(base, SeedAxis(seeds...))
}

// MixGrid is the canned workload-shape sweep: task mix crossed with
// background-traffic intensity (off / calibrated / doubled).
func MixGrid(base sim.Config) []Scenario {
	return Expand(base, WorkloadMixAxis(), BackgroundAxis(0, 1, 2))
}

// DefaultVerifyProb is the per-row tamper probability of the canned
// verify grid — the E15 acceptance point (detection must be complete for
// any p >= 0.05).
const DefaultVerifyProb = 0.05

// soloChannel builds a corruption config with exactly one channel active
// at rate p: every other probability is forced to the negative sentinel
// (exactly zero after fill), so the tolerance columns isolate the channel.
func soloChannel(ch verify.Channel, p float64) corruption.Config {
	c := corruption.Config{
		DropTransferProb:      -1,
		DropTaskIDProb:        -1,
		JoinBreakProb:         -1,
		UnknownSiteProb:       -1,
		UnknownSiteProbTaskID: -1,
		GarbleSiteProb:        -1,
		SizeJitterProb:        -1,
	}
	switch ch {
	case verify.ChannelDrop:
		c.DropTransferProb = zeroable(p)
	case verify.ChannelTaskID:
		c.DropTaskIDProb = zeroable(p)
	case verify.ChannelJoin:
		c.JoinBreakProb = zeroable(p)
	case verify.ChannelSite:
		c.UnknownSiteProb = zeroable(p)
		c.UnknownSiteProbTaskID = zeroable(p)
	case verify.ChannelGarble:
		c.GarbleSiteProb = zeroable(p)
	case verify.ChannelSize:
		c.SizeJitterProb = zeroable(p)
	}
	return c
}

// VerifyGrid is the canned integrity sweep behind experiment E15: one
// scenario per corruption channel, each pairing the channel's PRE-INGEST
// corruption at rate p (every other channel off — the tolerance columns,
// E14's axis isolated per channel) with the same channel's POST-SEAL
// at-rest tamper at rate p (the detection column), plus a clean control
// scenario asserting zero false positives. Ingest corruption is invisible
// to commitments (it happens before sealing) and tamper is invisible to
// the matching rates (it happens after them) — the grid shows both sides
// of that line: RM1/RM2 tolerate the former, the audits detect 100% of
// the latter.
func VerifyGrid(base sim.Config, p float64) []Scenario {
	if p <= 0 {
		p = DefaultVerifyProb
	}
	clean := base
	clean.Corruption = corruption.Config{Disable: true}
	scenarios := []Scenario{{ID: "clean", X: 0, Config: clean,
		Tamper: &verify.TamperConfig{Prob: -1, Seed: base.Seed}}}
	for i, ch := range verify.Channels() {
		cfg := base
		cfg.Corruption = soloChannel(ch, p)
		scenarios = append(scenarios, Scenario{
			ID:     fmt.Sprintf("tamper=%s", ch),
			X:      float64(i + 1),
			Config: cfg,
			Tamper: &verify.TamperConfig{Prob: p, Channels: []verify.Channel{ch}, Seed: base.Seed},
		})
	}
	return scenarios
}
