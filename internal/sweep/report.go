package sweep

import (
	"encoding/json"
	"fmt"
	"strings"

	"panrucio/internal/report"
)

// Report is the aggregate result of one sweep, with outcomes in scenario
// (grid) order. Every rendering is a pure function of the outcomes — no
// timestamps, worker counts, or map iteration — so two runs of the same
// grid produce byte-identical reports regardless of Options.
type Report struct {
	Outcomes []Outcome `json:"scenarios"`
}

// JSON renders the full report (E3–E5 numbers and every shape check per
// scenario) as indented JSON.
func (r *Report) JSON() string {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		// Outcome is a closed tree of marshalable value types.
		panic("sweep: report marshal: " + err.Error())
	}
	return string(b) + "\n"
}

// MatchRateCurves returns the per-method matched-transfer percentage as
// series over the scenarios' X coordinates — the E14 robustness curves.
func (r *Report) MatchRateCurves() []*report.Series {
	sel := func(name string, f func(Outcome) float64) *report.Series {
		s := &report.Series{Name: name, XLabel: "scenario", YLabel: "matched %"}
		for _, o := range r.Outcomes {
			s.Points = append(s.Points, report.Point{X: o.X, Y: f(o)})
		}
		return s
	}
	return []*report.Series{
		sel("exact", func(o Outcome) float64 { return o.Exact.TransferPct }),
		sel("rm1", func(o Outcome) float64 { return o.RM1.TransferPct }),
		sel("rm2", func(o Outcome) float64 { return o.RM2.TransferPct }),
	}
}

// TransferTable is the sweep-wide E4 analogue: matched-transfer counts and
// percentages per scenario and method.
func (r *Report) TransferTable() *report.Table {
	t := &report.Table{
		Title: "Sweep — matched transfers by scenario (E4)",
		Columns: []string{"scenario", "events", "with taskid",
			"exact", "rm1", "rm2", "exact %", "rm1 %", "rm2 %"},
	}
	for _, o := range r.Outcomes {
		t.AddRow(o.ID,
			fmt.Sprintf("%d", o.StoredEvents),
			fmt.Sprintf("%d", o.TransfersWithTaskID),
			fmt.Sprintf("%d", o.Exact.MatchedTransfers),
			fmt.Sprintf("%d", o.RM1.MatchedTransfers),
			fmt.Sprintf("%d", o.RM2.MatchedTransfers),
			fmt.Sprintf("%.2f%%", o.Exact.TransferPct),
			fmt.Sprintf("%.2f%%", o.RM1.TransferPct),
			fmt.Sprintf("%.2f%%", o.RM2.TransferPct))
	}
	return t
}

// JobTable is the sweep-wide E5 analogue: matched-job counts and
// percentages per scenario and method.
func (r *Report) JobTable() *report.Table {
	t := &report.Table{
		Title: "Sweep — matched jobs by scenario (E5)",
		Columns: []string{"scenario", "user jobs",
			"exact", "rm1", "rm2", "exact %", "rm1 %", "rm2 %", "checks"},
	}
	for _, o := range r.Outcomes {
		t.AddRow(o.ID,
			fmt.Sprintf("%d", o.UserJobs),
			fmt.Sprintf("%d", o.Exact.MatchedJobs),
			fmt.Sprintf("%d", o.RM1.MatchedJobs),
			fmt.Sprintf("%d", o.RM2.MatchedJobs),
			fmt.Sprintf("%.2f%%", o.Exact.JobPct),
			fmt.Sprintf("%.2f%%", o.RM1.JobPct),
			fmt.Sprintf("%.2f%%", o.RM2.JobPct),
			fmt.Sprintf("%d/%d", o.ChecksPassed, o.ChecksPassed+o.ChecksFailed))
	}
	return t
}

// DetectionTable is the E15 table: per scenario, what the tamper seam
// injected into sealed segments and what the commitment audit caught,
// next to the RM2 tolerance of the matching layer. Nil when no scenario
// carried a tamper config (non-verify grids).
func (r *Report) DetectionTable() *report.Table {
	any := false
	for _, o := range r.Outcomes {
		if o.Detection != nil {
			any = true
			break
		}
	}
	if !any {
		return nil
	}
	t := &report.Table{
		Title: "Sweep — at-rest tamper detection by channel (E15)",
		Columns: []string{"scenario", "rows tampered", "rows detected",
			"segs rolled back", "rollbacks detected", "detection %", "rm2 %"},
	}
	for _, o := range r.Outcomes {
		if o.Detection == nil {
			continue
		}
		d := o.Detection
		t.AddRow(o.ID,
			fmt.Sprintf("%d", d.RowsTampered),
			fmt.Sprintf("%d", d.RowsDetected),
			fmt.Sprintf("%d", d.SegmentsTruncated),
			fmt.Sprintf("%d", d.TruncsDetected),
			fmt.Sprintf("%.1f%%", 100*d.Rate()),
			fmt.Sprintf("%.2f%%", o.RM2.TransferPct))
	}
	return t
}

// Markdown renders the human-readable report: the E4/E5 scenario tables,
// the E15 detection table when present, the match-rate curves, and every
// failed shape check (failures under extreme scenarios are the robustness
// signal, so they are listed rather than hidden).
func (r *Report) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# Scenario sweep — %d scenario(s)\n\n", len(r.Outcomes))

	md := func(t *report.Table) {
		fmt.Fprintf(&b, "## %s\n\n", t.Title)
		b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
		b.WriteString(strings.Repeat("|---", len(t.Columns)) + "|\n")
		for _, row := range t.Rows {
			b.WriteString("| " + strings.Join(row, " | ") + " |\n")
		}
		b.WriteString("\n")
	}
	md(r.TransferTable())
	md(r.JobTable())
	if dt := r.DetectionTable(); dt != nil {
		md(dt)
	}

	b.WriteString("## Match-rate curves (matched-transfer % across scenarios)\n\n```\n")
	b.WriteString(report.RenderSeries("exact / rm1 / rm2", 48, r.MatchRateCurves()))
	b.WriteString("```\n\n")

	failures := 0
	for _, o := range r.Outcomes {
		for _, c := range o.Checks {
			if !c.OK {
				if failures == 0 {
					b.WriteString("## Shape-check failures\n\n")
				}
				fmt.Fprintf(&b, "- `%s`: %s\n", o.ID, c.String())
				failures++
			}
		}
	}
	if failures == 0 {
		b.WriteString("## Shape checks\n\nAll checks passed in every scenario.\n")
	}
	return b.String()
}
