package sweep

import (
	"runtime"
	"sync"
	"time"

	"panrucio/internal/analysis"
	"panrucio/internal/core"
	"panrucio/internal/metastore"
	"panrucio/internal/obs"
	"panrucio/internal/records"
	"panrucio/internal/sim"
	"panrucio/internal/simtime"
	"panrucio/internal/verify"
)

// Options tunes the engine's fan-out. The two knobs multiply: Workers
// scenarios run concurrently, each sharding its matching passes across
// MatchWorkers goroutines. The defaults (all cores × serial matching) fit
// grids with at least as many scenarios as cores; invert them for a
// single huge scenario.
type Options struct {
	// Workers bounds the number of concurrently running scenarios
	// (<= 0 selects GOMAXPROCS). The report is identical for any value.
	Workers int
	// MatchWorkers is the per-scenario matcher fan-out passed to
	// analysis.CompareMethodsParallel (<= 0 runs the passes inline).
	MatchWorkers int
	// Shards selects the shard count of each worker's metastore (<= 0
	// picks metastore.DefaultShards). Purely a performance knob: the
	// report is byte-identical for any value.
	Shards int
	// SegmentRows selects the per-shard segment-seal threshold of each
	// worker's metastore (<= 0 picks metastore.DefaultSegmentRows). Like
	// Shards, the report is byte-identical for any value.
	SegmentRows int
	// Trace, when non-nil, receives one checkpoint event per TraceEvery of
	// virtual time per scenario (named by scenario id) plus one span per
	// scenario. The trace writer serializes concurrent workers' records;
	// the report itself stays byte-identical with tracing on.
	Trace *obs.Trace
	// TraceEvery is the virtual time between trace checkpoints (<= 0
	// selects 6 hours). Ignored without Trace.
	TraceEvery simtime.VTime
}

func (o *Options) fill(scenarios int) {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Workers > scenarios {
		o.Workers = scenarios
	}
	if o.MatchWorkers <= 0 {
		o.MatchWorkers = 1
	}
	if o.TraceEvery <= 0 {
		o.TraceEvery = 6 * simtime.Hour
	}
}

// Rate is one matching pass's outcome for one scenario — the E4/E5 row.
type Rate struct {
	MatchedTransfers int     `json:"matched_transfers"`
	MatchedJobs      int     `json:"matched_jobs"`
	LocalTransfers   int     `json:"local_transfers"`
	RemoteTransfers  int     `json:"remote_transfers"`
	JobsAllLocal     int     `json:"jobs_all_local"`
	JobsAllRemote    int     `json:"jobs_all_remote"`
	JobsMixed        int     `json:"jobs_mixed"`
	TransferPct      float64 `json:"transfer_pct"`
	JobPct           float64 `json:"job_pct"`
}

func rate(r *core.Result) Rate {
	return Rate{
		MatchedTransfers: r.MatchedTransfers,
		MatchedJobs:      r.MatchedJobs,
		LocalTransfers:   r.LocalTransfers,
		RemoteTransfers:  r.RemoteTransfers,
		JobsAllLocal:     r.JobsAllLocal,
		JobsAllRemote:    r.JobsAllRemote,
		JobsMixed:        r.JobsMixed,
		TransferPct:      r.MatchedTransferPct(),
		JobPct:           r.MatchedJobPct(),
	}
}

// ActivityCount is one E3 row: matched vs. total task-carrying transfers
// for one activity under exact matching.
type ActivityCount struct {
	Activity string `json:"activity"`
	Matched  int    `json:"matched"`
	Total    int    `json:"total"`
}

// Outcome aggregates everything the sweep report keeps per scenario. It is
// pure value data — no store, grid, or record pointers — because the
// worker's store is reset and reused by the next scenario.
type Outcome struct {
	ID                  string           `json:"id"`
	X                   float64          `json:"x"`
	UserJobs            int              `json:"user_jobs"`
	StoredEvents        int              `json:"stored_events"`
	TransfersWithTaskID int              `json:"transfers_with_task_id"`
	Exact               Rate             `json:"exact"`
	RM1                 Rate             `json:"rm1"`
	RM2                 Rate             `json:"rm2"`
	Activity            []ActivityCount  `json:"activity"`
	Checks              []analysis.Check `json:"checks"`
	ChecksPassed        int              `json:"checks_passed"`
	ChecksFailed        int              `json:"checks_failed"`

	// Detection is set for scenarios carrying a Tamper config (the E15
	// verify grid): at-rest tamper reconciled against the post-tamper
	// commitment audit.
	Detection *verify.Detection `json:"detection,omitempty"`
	Tamper    *verify.TamperLog `json:"tamper,omitempty"`
}

// Run executes every scenario over a bounded worker pool and aggregates
// the per-scenario outcomes into one report. Each worker goroutine owns a
// single metastore reused (via sim.RunReusing) across the scenarios it
// draws, so index-map capacity survives from one scenario to the next.
//
// The report depends only on the scenario list: outcomes land at their
// scenario's index regardless of which worker computes them or in which
// order they finish, so the rendered output is byte-identical for any
// Options.Workers — the same guarantee core's Run/RunParallel give within
// one scenario.
func Run(scenarios []Scenario, opt Options) *Report {
	opt.fill(len(scenarios))
	outcomes := make([]Outcome, len(scenarios))

	if opt.Workers <= 1 {
		store := metastore.NewShardedSegmented(opt.Shards, opt.SegmentRows)
		for i, sc := range scenarios {
			outcomes[i] = evaluate(sc, store, opt)
		}
		return &Report{Outcomes: outcomes}
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < opt.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			store := metastore.NewShardedSegmented(opt.Shards, opt.SegmentRows)
			for i := range idx {
				outcomes[i] = evaluate(scenarios[i], store, opt)
			}
		}()
	}
	for i := range scenarios {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return &Report{Outcomes: outcomes}
}

// evaluate runs one scenario end to end on the worker's store: simulate,
// freeze, run the three matching passes, evaluate the shape checks, and
// flatten everything into value data. With Options.Trace set, the run is
// observed through the checkpoint seam (records named by scenario id) and
// wrapped in a per-scenario span — the Outcome is identical either way.
func evaluate(sc Scenario, store *metastore.Store, opt Options) Outcome {
	var res *sim.Result
	if opt.Trace != nil {
		t0 := time.Now()
		res = sim.RunReusingObserved(sc.Config, store, opt.TraceEvery,
			sim.TraceObserver(opt.Trace, sc.ID))
		opt.Trace.Span(sc.ID, int64(res.WindowTo), time.Since(t0), map[string]any{
			"x":             sc.X,
			"stored_events": res.Store.TransferCount(),
		})
	} else {
		res = sim.RunReusing(sc.Config, store)
	}
	jobs := res.Store.Jobs(res.WindowFrom, res.WindowTo, records.LabelUser)
	cmp := analysis.CompareMethodsParallel(core.NewMatcher(res.Store), jobs, opt.MatchWorkers)
	checks := analysis.ShapeChecks(res.Store, res.Grid, res.WindowFrom, res.WindowTo, cmp)

	// The integrity half of E15: with the matching passes done (tolerance
	// measured against ingest corruption), tamper the sealed segments at
	// rest and reconcile the commitment audit against the ground-truth
	// log. The pre-tamper audit pins zero false positives. The store is
	// mutated, but the next scenario Resets it, so nothing leaks.
	var det *verify.Detection
	var tlog *verify.TamperLog
	if sc.Tamper != nil {
		cleanBefore := res.Store.AuditSealed().Clean()
		log := verify.TamperStore(res.Store, *sc.Tamper)
		d := verify.Detect(log, res.Store.AuditSealed())
		det, tlog = &d, &log
		checks = append(checks, analysis.DetectionChecks(
			log.RowsTampered, d.RowsDetected,
			log.SegmentsTruncated, d.TruncsDetected, cleanBefore)...)
	}

	out := Outcome{
		ID:                  sc.ID,
		X:                   sc.X,
		UserJobs:            len(jobs),
		StoredEvents:        res.Store.TransferCount(),
		TransfersWithTaskID: res.Store.TransfersWithTaskID(),
		Exact:               rate(cmp.Exact),
		RM1:                 rate(cmp.RM1),
		RM2:                 rate(cmp.RM2),
		Checks:              checks,
		Detection:           det,
		Tamper:              tlog,
	}
	for _, row := range analysis.ActivityBreakdown(res.Store, cmp.Exact) {
		out.Activity = append(out.Activity, ActivityCount{
			Activity: string(row.Activity), Matched: row.Matched, Total: row.Total,
		})
	}
	for _, c := range checks {
		if c.OK {
			out.ChecksPassed++
		} else {
			out.ChecksFailed++
		}
	}
	return out
}
