package sweep

import (
	"strings"
	"testing"

	"panrucio/internal/sim"
)

// rampConfig is a reduced base scenario so sweep tests stay fast.
func rampConfig(seed int64) sim.Config {
	cfg := sim.QuickConfig(seed)
	cfg.Days = 1
	return cfg
}

func TestExpandCrossProduct(t *testing.T) {
	scenarios := Expand(rampConfig(1), WorkloadMixAxis(), BackgroundAxis(0, 1))
	if len(scenarios) != 6 {
		t.Fatalf("expanded %d scenarios, want 6", len(scenarios))
	}
	seen := map[string]bool{}
	for i, sc := range scenarios {
		if sc.ID == "" || seen[sc.ID] {
			t.Fatalf("scenario %d has empty or duplicate id %q", i, sc.ID)
		}
		seen[sc.ID] = true
		if sc.X != float64(i) {
			t.Errorf("multi-axis X should be the index: scenario %d has X=%v", i, sc.X)
		}
	}
	if scenarios[0].ID != "mix=user-heavy/bg=off" {
		t.Errorf("last axis should vary fastest, got first id %q", scenarios[0].ID)
	}
	if !scenarios[0].Config.DisableBackground || scenarios[1].Config.DisableBackground {
		t.Error("bg=off variation must disable background on its scenarios only")
	}
}

func TestCorruptionRampZeroMeansOff(t *testing.T) {
	scenarios := CorruptionRamp(rampConfig(1), []float64{0, 0.25})
	if len(scenarios) != 2 {
		t.Fatalf("ramp built %d scenarios", len(scenarios))
	}
	if got := scenarios[0].Config.Corruption.UnknownSiteProbTaskID; got >= 0 {
		t.Errorf("rate 0 must map to the negative force-zero sentinel, got %v", got)
	}
	if got := scenarios[1].Config.Corruption.UnknownSiteProbTaskID; got != 0.25 {
		t.Errorf("rate 0.25 mangled to %v", got)
	}
	if scenarios[0].X != 0 || scenarios[1].X != 0.25 {
		t.Errorf("single-axis X should be the rate, got %v/%v", scenarios[0].X, scenarios[1].X)
	}
}

func TestSweepByteIdenticalAcrossWorkers(t *testing.T) {
	scenarios := CorruptionRamp(rampConfig(1), []float64{0, 0.5})
	serial := Run(scenarios, Options{Workers: 1})
	parallel := Run(scenarios, Options{Workers: 8, MatchWorkers: 4})

	if a, b := serial.Markdown(), parallel.Markdown(); a != b {
		t.Errorf("markdown diverged across worker counts:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", a, b)
	}
	if a, b := serial.JSON(), parallel.JSON(); a != b {
		t.Error("JSON diverged across worker counts")
	}
}

// The sweep report must also be byte-identical for any metastore shard
// count — the per-worker store's layout is a performance knob, never an
// output parameter.
func TestSweepByteIdenticalAcrossShards(t *testing.T) {
	scenarios := CorruptionRamp(rampConfig(1), []float64{0, 0.5})
	one := Run(scenarios, Options{Workers: 2, Shards: 1})
	eight := Run(scenarios, Options{Workers: 2, MatchWorkers: 2, Shards: 8})

	if a, b := one.Markdown(), eight.Markdown(); a != b {
		t.Errorf("markdown diverged across shard counts:\n--- shards=1 ---\n%s\n--- shards=8 ---\n%s", a, b)
	}
	if a, b := one.JSON(), eight.JSON(); a != b {
		t.Error("JSON diverged across shard counts")
	}
}

func TestRampOutcomesCarryTheRobustnessSignal(t *testing.T) {
	rep := Run(CorruptionRamp(rampConfig(1), []float64{0, 0.5}), Options{Workers: 2})
	if len(rep.Outcomes) != 2 {
		t.Fatalf("%d outcomes", len(rep.Outcomes))
	}
	clean, worst := rep.Outcomes[0], rep.Outcomes[1]
	for _, o := range rep.Outcomes {
		if o.UserJobs == 0 || o.StoredEvents == 0 {
			t.Fatalf("scenario %s ran empty: %+v", o.ID, o)
		}
		if o.RM2.MatchedTransfers < o.Exact.MatchedTransfers {
			t.Errorf("scenario %s violates exact <= rm2", o.ID)
		}
		if len(o.Checks) == 0 || len(o.Activity) == 0 {
			t.Errorf("scenario %s missing checks or activity rows", o.ID)
		}
	}
	// Site-label loss at 50% must cost exact matches; RM2 ignores the site
	// condition, so its matched set must hold up better than exact's.
	if worst.Exact.MatchedJobs >= clean.Exact.MatchedJobs {
		t.Errorf("corruption ramp did not degrade exact matching: %d -> %d",
			clean.Exact.MatchedJobs, worst.Exact.MatchedJobs)
	}
	if worst.RM2.MatchedJobs <= worst.Exact.MatchedJobs {
		t.Errorf("RM2 should out-match exact under heavy corruption: rm2 %d vs exact %d",
			worst.RM2.MatchedJobs, worst.Exact.MatchedJobs)
	}
	md := rep.Markdown()
	if !strings.Contains(md, "corr=0%") || !strings.Contains(md, "corr=50%") {
		t.Error("markdown lost the scenario ids")
	}
}
