package topology

import "fmt"

// DefaultSpec controls the size of the generated default grid. The zero
// value is replaced by the paper-scale defaults in Default().
type DefaultSpec struct {
	// ExtraTier2 and ExtraTier3 pad the grid with generic sites beyond the
	// named exemplars, to approach the paper's 111-transfer-active sites.
	ExtraTier2 int
	ExtraTier3 int
}

// regionRoster enumerates the generic-site regions in a fixed order so grid
// construction is deterministic.
var regionRoster = []struct {
	region, country string
}{
	{"US-East", "USA"},
	{"US-Midwest", "USA"},
	{"US-West", "USA"},
	{"UK", "United Kingdom"},
	{"FR", "France"},
	{"DE", "Germany"},
	{"IT", "Italy"},
	{"ES", "Spain"},
	{"NorthEU", "Nordic"},
	{"EastEU", "Czechia"},
	{"CH", "Switzerland"},
	{"IL", "Israel"},
	{"JP", "Japan"},
	{"CA", "Canada"},
	{"AU", "Australia"},
	{"BR", "Brazil"},
	{"SI", "Slovenia"},
	{"TW", "Taiwan"},
}

// namedSites are the exemplar sites the paper's figures reference. The
// tier/region assignments mirror the paper: CERN Tier-0, BNL (NY, USA)
// Tier-1, NDGF (North Europe) Tier-1 — the dominant Fig. 3 outlier —
// plus the sites appearing in Figs. 7, 8 and the case studies.
var namedSites = []*Site{
	{Name: "CERN-PROD", Tier: Tier0, Region: "CH", Country: "Switzerland", CPUSlots: 9000, WANGbps: 400, LANGbps: 200},
	{Name: "BNL-ATLAS", Tier: Tier1, Region: "US-East", Country: "USA", CPUSlots: 6000, WANGbps: 200, LANGbps: 120},
	{Name: "NDGF-T1", Tier: Tier1, Region: "NorthEU", Country: "Nordic", CPUSlots: 5200, WANGbps: 200, LANGbps: 120},
	{Name: "RAL-LCG2", Tier: Tier1, Region: "UK", Country: "United Kingdom", CPUSlots: 4800, WANGbps: 160, LANGbps: 100},
	{Name: "IN2P3-CC", Tier: Tier1, Region: "FR", Country: "France", CPUSlots: 4500, WANGbps: 160, LANGbps: 100},
	{Name: "FZK-LCG2", Tier: Tier1, Region: "DE", Country: "Germany", CPUSlots: 4500, WANGbps: 160, LANGbps: 100},
	{Name: "INFN-T1", Tier: Tier1, Region: "IT", Country: "Italy", CPUSlots: 4000, WANGbps: 120, LANGbps: 100},
	{Name: "PIC", Tier: Tier1, Region: "ES", Country: "Spain", CPUSlots: 3000, WANGbps: 100, LANGbps: 80},
	{Name: "TRIUMF-LCG2", Tier: Tier1, Region: "CA", Country: "Canada", CPUSlots: 3000, WANGbps: 100, LANGbps: 80},
	{Name: "CERN-T2", Tier: Tier2, Region: "CH", Country: "Switzerland", CPUSlots: 2400, WANGbps: 100, LANGbps: 80},
	{Name: "LAPP-T2", Tier: Tier2, Region: "FR", Country: "France", CPUSlots: 2200, WANGbps: 80, LANGbps: 60},
	{Name: "AGLT2", Tier: Tier2, Region: "US-Midwest", Country: "USA", CPUSlots: 2000, WANGbps: 80, LANGbps: 60},
	{Name: "MWT2", Tier: Tier2, Region: "US-Midwest", Country: "USA", CPUSlots: 2200, WANGbps: 80, LANGbps: 60},
	{Name: "SIGNET", Tier: Tier2, Region: "SI", Country: "Slovenia", CPUSlots: 1200, WANGbps: 40, LANGbps: 40},
	{Name: "TOKYO-LCG2", Tier: Tier2, Region: "JP", Country: "Japan", CPUSlots: 1800, WANGbps: 60, LANGbps: 60},
	{Name: "MILANO-T2", Tier: Tier2, Region: "IT", Country: "Italy", CPUSlots: 1400, WANGbps: 40, LANGbps: 40},
	{Name: "TECHNION-T2", Tier: Tier2, Region: "IL", Country: "Israel", CPUSlots: 900, WANGbps: 30, LANGbps: 30},
	{Name: "SPRACE", Tier: Tier2, Region: "BR", Country: "Brazil", CPUSlots: 900, WANGbps: 20, LANGbps: 30},
	{Name: "UKI-NORTHGRID", Tier: Tier2, Region: "UK", Country: "United Kingdom", CPUSlots: 1600, WANGbps: 60, LANGbps: 50},
	{Name: "UKI-SOUTHGRID", Tier: Tier2, Region: "UK", Country: "United Kingdom", CPUSlots: 1400, WANGbps: 50, LANGbps: 50},
	{Name: "GENOVA-T3", Tier: Tier3, Region: "IT", Country: "Italy", CPUSlots: 300, WANGbps: 10, LANGbps: 20},
	{Name: "WEIZMANN-T3", Tier: Tier3, Region: "IL", Country: "Israel", CPUSlots: 250, WANGbps: 10, LANGbps: 20},
}

// Default builds the paper-scale grid: the named exemplar sites plus enough
// generic Tier-2/Tier-3 sites to reach ~120 sites, each with a disk RSE
// (Tier-0/1 additionally get tape). Construction is fully deterministic.
func Default(spec DefaultSpec) *Grid {
	if spec.ExtraTier2 == 0 {
		spec.ExtraTier2 = 68
	}
	if spec.ExtraTier3 == 0 {
		spec.ExtraTier3 = 30
	}
	sites := make([]*Site, 0, len(namedSites)+spec.ExtraTier2+spec.ExtraTier3)
	for _, s := range namedSites {
		c := *s // copy so callers can build multiple independent grids
		c.RSEs = nil
		sites = append(sites, &c)
	}
	for i := 0; i < spec.ExtraTier2; i++ {
		r := regionRoster[i%len(regionRoster)]
		sites = append(sites, &Site{
			Name:     fmt.Sprintf("T2-%s-%02d", r.region, i),
			Tier:     Tier2,
			Region:   r.region,
			Country:  r.country,
			CPUSlots: 600 + 90*(i%7),
			WANGbps:  20 + float64(i%5)*10,
			LANGbps:  30 + float64(i%4)*10,
		})
	}
	for i := 0; i < spec.ExtraTier3; i++ {
		r := regionRoster[(i*5+3)%len(regionRoster)]
		sites = append(sites, &Site{
			Name:     fmt.Sprintf("T3-%s-%02d", r.region, i),
			Tier:     Tier3,
			Region:   r.region,
			Country:  r.country,
			CPUSlots: 80 + 40*(i%4),
			WANGbps:  5 + float64(i%3)*5,
			LANGbps:  10 + float64(i%3)*10,
		})
	}
	var rses []*RSE
	for _, s := range sites {
		rses = append(rses, &RSE{
			Name:          s.Name + "_DATADISK",
			Site:          s.Name,
			Kind:          Disk,
			CapacityBytes: int64(s.CPUSlots) * 40e9,
		})
		if s.Tier == Tier0 || s.Tier == Tier1 {
			rses = append(rses, &RSE{
				Name:          s.Name + "_MCTAPE",
				Site:          s.Name,
				Kind:          Tape,
				CapacityBytes: int64(s.CPUSlots) * 400e9,
			})
		}
	}
	g, err := NewGrid(sites, rses)
	if err != nil {
		// The generated roster is static and valid by construction.
		panic(err)
	}
	return g
}

// LinkGbps returns the nominal bandwidth of the directed link src→dst in
// gigabits per second. Local (same-site) movement uses the LAN rate; remote
// movement is bounded by the smaller WAN endpoint, discounted for
// inter-region distance. Links to or from unknown endpoints get a modest
// default so corrupted metadata still corresponds to simulable transfers.
func LinkGbps(g *Grid, src, dst string) float64 {
	if src == dst {
		if s, ok := g.Site(src); ok {
			return s.LANGbps
		}
		return 10
	}
	ss, okS := g.Site(src)
	ds, okD := g.Site(dst)
	if !okS || !okD {
		return 5
	}
	bw := ss.WANGbps
	if ds.WANGbps < bw {
		bw = ds.WANGbps
	}
	if ss.Region != ds.Region {
		bw *= 0.35 // inter-region paths share trans-continental capacity
	}
	if bw < 1 {
		bw = 1
	}
	return bw
}
