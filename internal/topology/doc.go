// Package topology models the static structure of the simulated WLCG:
// computing sites organized in tiers 0–3, their regions, CPU capacity,
// Rucio Storage Elements (RSEs), and the nominal network capacities
// between sites. It is the shared vocabulary of the PanDA and Rucio
// substrates and of the analysis layer.
//
// Entry point: Default(spec) builds the paper-scale grid — the named
// exemplar sites the figures reference (CERN-PROD, BNL-ATLAS, NDGF-T1,
// ...) padded with generic Tier-2/Tier-3 sites to ~111, the paper's
// transfer-active count; DefaultSpec shrinks or grows the padding (the
// sweep engine's grid-size axis). Construction is deterministic — sites
// and links come out in a fixed order for a given spec — and the special
// UnknownSite is the destination label corrupted events carry, never a
// real site in the grid.
package topology
