package topology

import (
	"fmt"
	"sort"
)

// Tier is the WLCG tier of a computing site (Section 2.1 of the paper).
type Tier int

// WLCG tiers. Tier-0 is CERN; Tier-1 are national labs; Tier-2 are
// universities; Tier-3 are small local facilities.
const (
	Tier0 Tier = iota
	Tier1
	Tier2
	Tier3
)

func (t Tier) String() string {
	switch t {
	case Tier0:
		return "Tier-0"
	case Tier1:
		return "Tier-1"
	case Tier2:
		return "Tier-2"
	case Tier3:
		return "Tier-3"
	}
	return fmt.Sprintf("Tier(%d)", int(t))
}

// UnknownSite is the pseudo-site name used when metadata records lose their
// source or destination label. The paper's Fig. 3 aggregates such transfers
// into a dedicated "unknown" row/column (site index 101 in the paper).
const UnknownSite = "UNKNOWN"

// StorageKind distinguishes disk from tape endpoints.
type StorageKind int

// Storage kinds. Tape RSEs add staging latency in the Rucio substrate.
const (
	Disk StorageKind = iota
	Tape
)

func (k StorageKind) String() string {
	if k == Tape {
		return "TAPE"
	}
	return "DISK"
}

// RSE is a Rucio Storage Element: a logical storage endpoint at a site.
type RSE struct {
	Name string
	Site string
	Kind StorageKind
	// CapacityBytes is advisory; the simulator does not enforce quota but
	// the rebalancing daemon uses it to decide where secondary replicas go.
	CapacityBytes int64
}

// Site is a WLCG computing site.
type Site struct {
	Name    string
	Tier    Tier
	Region  string // coarse geographic region, e.g. "CH", "US-East", "NorthEU"
	Country string
	// CPUSlots is the number of concurrently running payload jobs the site
	// sustains (its pilot pool size in PanDA terms).
	CPUSlots int
	// WANGbps is the site's nominal wide-area bandwidth in gigabits/s.
	WANGbps float64
	// LANGbps is the nominal storage-to-worker LAN bandwidth in gigabits/s;
	// local "transfers" (stage-in from the site RSE to the worker node) are
	// bounded by this.
	LANGbps float64
	RSEs    []string
}

// Grid is an immutable site catalog with index lookups. Build one with
// NewGrid; the Default() constructor produces the 120-site topology used by
// all experiments.
type Grid struct {
	sites   []*Site
	rses    []*RSE
	byName  map[string]*Site
	rseByNm map[string]*RSE
	order   map[string]int // site name -> stable index (heatmap axes)

	// primary/primaryOf cache the site <-> primary-RSE relation, which is
	// fixed at construction (RSE membership never changes after NewGrid).
	// PrimaryRSE sits on the brokerage hot path — every job scores every
	// candidate site — so it must not rescan the site's RSE list per call.
	primary   map[string]*RSE   // site name -> its primary RSE
	primaryOf map[string]string // RSE name -> site it is primary for
}

// NewGrid builds a grid from a site list. Site names must be unique; RSE
// names must be unique and reference existing sites.
func NewGrid(sites []*Site, rses []*RSE) (*Grid, error) {
	g := &Grid{
		byName:  make(map[string]*Site, len(sites)),
		rseByNm: make(map[string]*RSE, len(rses)),
		order:   make(map[string]int, len(sites)+1),
	}
	for _, s := range sites {
		if s.Name == "" {
			return nil, fmt.Errorf("topology: site with empty name")
		}
		if s.Name == UnknownSite {
			return nil, fmt.Errorf("topology: %q is reserved", UnknownSite)
		}
		if _, dup := g.byName[s.Name]; dup {
			return nil, fmt.Errorf("topology: duplicate site %q", s.Name)
		}
		g.byName[s.Name] = s
		g.sites = append(g.sites, s)
	}
	for _, r := range rses {
		if _, dup := g.rseByNm[r.Name]; dup {
			return nil, fmt.Errorf("topology: duplicate RSE %q", r.Name)
		}
		site, ok := g.byName[r.Site]
		if !ok {
			return nil, fmt.Errorf("topology: RSE %q references unknown site %q", r.Name, r.Site)
		}
		site.RSEs = append(site.RSEs, r.Name)
		g.rseByNm[r.Name] = r
		g.rses = append(g.rses, r)
	}
	for i, s := range g.sites {
		g.order[s.Name] = i
	}
	g.order[UnknownSite] = len(g.sites)
	g.primary = make(map[string]*RSE, len(g.sites))
	g.primaryOf = make(map[string]string, len(g.sites))
	for _, s := range g.sites {
		if r, ok := g.findPrimaryRSE(s); ok {
			g.primary[s.Name] = r
			g.primaryOf[r.Name] = s.Name
		}
	}
	return g, nil
}

// findPrimaryRSE is the construction-time scan behind the primary cache:
// the site's first disk RSE, or its first RSE of any kind.
func (g *Grid) findPrimaryRSE(s *Site) (*RSE, bool) {
	for _, rn := range s.RSEs {
		r := g.rseByNm[rn]
		if r.Kind == Disk {
			return r, true
		}
	}
	if len(s.RSEs) > 0 {
		return g.rseByNm[s.RSEs[0]], true
	}
	return nil, false
}

// Sites returns all sites in stable index order.
func (g *Grid) Sites() []*Site { return g.sites }

// RSEs returns all storage elements.
func (g *Grid) RSEs() []*RSE { return g.rses }

// Site looks up a site by name; ok is false for unknown names (including
// the UNKNOWN pseudo-site, which is not a real site).
func (g *Grid) Site(name string) (*Site, bool) {
	s, ok := g.byName[name]
	return s, ok
}

// RSE looks up a storage element by name.
func (g *Grid) RSE(name string) (*RSE, bool) {
	r, ok := g.rseByNm[name]
	return r, ok
}

// SiteIndex returns the stable axis index for a site name; the UNKNOWN
// pseudo-site maps to len(Sites()). Unrecognized names also map to the
// UNKNOWN index, mirroring the paper's aggregation of unidentified
// endpoints.
func (g *Grid) SiteIndex(name string) int {
	if i, ok := g.order[name]; ok {
		return i
	}
	return g.order[UnknownSite]
}

// NumAxes returns the number of heatmap axes: all sites plus UNKNOWN.
func (g *Grid) NumAxes() int { return len(g.sites) + 1 }

// AxisLabel returns the display label for axis index i.
func (g *Grid) AxisLabel(i int) string {
	if i >= 0 && i < len(g.sites) {
		return g.sites[i].Name
	}
	return UnknownSite
}

// PrimaryRSE returns the first disk RSE of a site (every generated site has
// one), or ok=false for sites without storage. Served from the
// construction-time cache.
func (g *Grid) PrimaryRSE(site string) (*RSE, bool) {
	r, ok := g.primary[site]
	return r, ok
}

// PrimarySite returns the site for which the named RSE is the primary RSE,
// or ok=false when it is primary for none — the inverse of PrimaryRSE, used
// to invert per-site replica probes into per-replica site attribution.
func (g *Grid) PrimarySite(rse string) (string, bool) {
	s, ok := g.primaryOf[rse]
	return s, ok
}

// SitesByTier returns the names of all sites of the given tier, sorted.
func (g *Grid) SitesByTier(t Tier) []string {
	var out []string
	for _, s := range g.sites {
		if s.Tier == t {
			out = append(out, s.Name)
		}
	}
	sort.Strings(out)
	return out
}

// TotalCPUSlots sums CPU slots over all sites.
func (g *Grid) TotalCPUSlots() int {
	total := 0
	for _, s := range g.sites {
		total += s.CPUSlots
	}
	return total
}
