package topology

import (
	"strings"
	"testing"
)

func TestNewGridValidation(t *testing.T) {
	mk := func() []*Site {
		return []*Site{{Name: "A", Tier: Tier1}, {Name: "B", Tier: Tier2}}
	}
	if _, err := NewGrid(mk(), nil); err != nil {
		t.Fatalf("valid grid rejected: %v", err)
	}
	if _, err := NewGrid([]*Site{{Name: ""}}, nil); err == nil {
		t.Error("empty site name accepted")
	}
	if _, err := NewGrid([]*Site{{Name: "A"}, {Name: "A"}}, nil); err == nil {
		t.Error("duplicate site accepted")
	}
	if _, err := NewGrid([]*Site{{Name: UnknownSite}}, nil); err == nil {
		t.Error("reserved UNKNOWN site name accepted")
	}
	if _, err := NewGrid(mk(), []*RSE{{Name: "X", Site: "NOPE"}}); err == nil {
		t.Error("RSE with unknown site accepted")
	}
	if _, err := NewGrid(mk(), []*RSE{{Name: "X", Site: "A"}, {Name: "X", Site: "B"}}); err == nil {
		t.Error("duplicate RSE accepted")
	}
}

func TestGridLookupsAndIndexes(t *testing.T) {
	g, err := NewGrid(
		[]*Site{{Name: "A", Tier: Tier0}, {Name: "B", Tier: Tier2}},
		[]*RSE{{Name: "A_DISK", Site: "A", Kind: Disk}, {Name: "A_TAPE", Site: "A", Kind: Tape}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if s, ok := g.Site("A"); !ok || s.Tier != Tier0 {
		t.Error("Site lookup failed")
	}
	if _, ok := g.Site(UnknownSite); ok {
		t.Error("UNKNOWN resolved to a real site")
	}
	if g.SiteIndex("A") != 0 || g.SiteIndex("B") != 1 {
		t.Error("site indexes not in construction order")
	}
	if g.SiteIndex(UnknownSite) != 2 || g.SiteIndex("garbage") != 2 {
		t.Error("unknown names must map to the UNKNOWN axis")
	}
	if g.NumAxes() != 3 {
		t.Errorf("NumAxes = %d, want 3", g.NumAxes())
	}
	if g.AxisLabel(2) != UnknownSite || g.AxisLabel(0) != "A" {
		t.Error("axis labels wrong")
	}
	if r, ok := g.PrimaryRSE("A"); !ok || r.Name != "A_DISK" {
		t.Error("PrimaryRSE should prefer disk")
	}
	if _, ok := g.PrimaryRSE("B"); ok {
		t.Error("PrimaryRSE for storage-less site should fail")
	}
	if _, ok := g.RSE("A_TAPE"); !ok {
		t.Error("RSE lookup failed")
	}
}

func TestTierString(t *testing.T) {
	for tier, want := range map[Tier]string{Tier0: "Tier-0", Tier1: "Tier-1", Tier2: "Tier-2", Tier3: "Tier-3"} {
		if tier.String() != want {
			t.Errorf("%d.String() = %q", tier, tier.String())
		}
	}
	if !strings.Contains(Tier(9).String(), "9") {
		t.Error("out-of-range tier string should include the value")
	}
	if Disk.String() != "DISK" || Tape.String() != "TAPE" {
		t.Error("StorageKind strings wrong")
	}
}

func TestDefaultGridShape(t *testing.T) {
	g := Default(DefaultSpec{})
	n := len(g.Sites())
	if n < 110 || n > 130 {
		t.Fatalf("default grid has %d sites, want ~120", n)
	}
	if len(g.SitesByTier(Tier0)) != 1 {
		t.Error("exactly one Tier-0 expected")
	}
	if len(g.SitesByTier(Tier1)) < 5 {
		t.Error("too few Tier-1 sites")
	}
	// Paper exemplar sites must exist.
	for _, name := range []string{"CERN-PROD", "BNL-ATLAS", "NDGF-T1", "SIGNET", "TOKYO-LCG2", "MILANO-T2", "GENOVA-T3", "PIC", "SPRACE", "AGLT2", "MWT2"} {
		if _, ok := g.Site(name); !ok {
			t.Errorf("exemplar site %s missing", name)
		}
	}
	// Every site has a primary disk RSE.
	for _, s := range g.Sites() {
		r, ok := g.PrimaryRSE(s.Name)
		if !ok || r.Kind != Disk {
			t.Errorf("site %s lacks a disk RSE", s.Name)
		}
	}
	// Tier-0/1 get tape.
	for _, name := range append(g.SitesByTier(Tier0), g.SitesByTier(Tier1)...) {
		s, _ := g.Site(name)
		hasTape := false
		for _, rn := range s.RSEs {
			if r, _ := g.RSE(rn); r.Kind == Tape {
				hasTape = true
			}
		}
		if !hasTape {
			t.Errorf("site %s (tier %v) lacks tape", name, s.Tier)
		}
	}
	if g.TotalCPUSlots() < 50000 {
		t.Errorf("grid CPU capacity suspiciously low: %d", g.TotalCPUSlots())
	}
}

func TestDefaultGridDeterminism(t *testing.T) {
	a, b := Default(DefaultSpec{}), Default(DefaultSpec{})
	if len(a.Sites()) != len(b.Sites()) {
		t.Fatal("non-deterministic site count")
	}
	for i := range a.Sites() {
		if a.Sites()[i].Name != b.Sites()[i].Name {
			t.Fatal("non-deterministic site ordering")
		}
	}
	// Grids are independent copies: mutating one must not leak.
	a.Sites()[0].CPUSlots = 1
	if b.Sites()[0].CPUSlots == 1 {
		t.Fatal("Default() grids share site structs")
	}
}

func TestLinkGbps(t *testing.T) {
	g := Default(DefaultSpec{})
	cern, _ := g.Site("CERN-PROD")
	if got := LinkGbps(g, "CERN-PROD", "CERN-PROD"); got != cern.LANGbps {
		t.Errorf("local link = %g, want LAN %g", got, cern.LANGbps)
	}
	// Cross-region discounted below both endpoints' WAN.
	bnl, _ := g.Site("BNL-ATLAS")
	x := LinkGbps(g, "CERN-PROD", "BNL-ATLAS")
	if x >= bnl.WANGbps {
		t.Errorf("cross-region link %g not discounted below WAN %g", x, bnl.WANGbps)
	}
	if x <= 0 {
		t.Error("link bandwidth must be positive")
	}
	// Same-region remote link is bounded by min WAN, undiscounted.
	y := LinkGbps(g, "RAL-LCG2", "UKI-NORTHGRID")
	uki, _ := g.Site("UKI-NORTHGRID")
	if y != uki.WANGbps {
		t.Errorf("same-region link = %g, want min WAN %g", y, uki.WANGbps)
	}
	if LinkGbps(g, "nope", "CERN-PROD") != 5 {
		t.Error("unknown endpoint should get default bandwidth")
	}
	if LinkGbps(g, "nope", "nope") != 10 {
		t.Error("unknown local link should get default LAN")
	}
}

func TestSitesByTierSorted(t *testing.T) {
	g := Default(DefaultSpec{})
	t2 := g.SitesByTier(Tier2)
	for i := 1; i < len(t2); i++ {
		if t2[i-1] > t2[i] {
			t.Fatal("SitesByTier not sorted")
		}
	}
}
