// Package verify closes the integrity loop over the metastore's segment
// commitments (ROADMAP item 5): where internal/corruption degrades events
// BEFORE ingest — damage the RM1/RM2 methods tolerate — this package
// models tamper of data at rest AFTER it has been sealed and committed,
// and detects it through the commitment audits the store exposes
// (metastore commit.go).
//
// The package provides three layers:
//
//   - TamperStore: the fault injector. It replays each corruption channel
//     (dataset join-break, site loss, garbling, size jitter, taskid drop)
//     as an in-place mutation of sealed rows, plus segment truncation for
//     the drop channel — the VDS rollback attack. Every applied mutation
//     is guaranteed to actually change the row (eligibility filter), so
//     the tamper log is exact ground truth for the audit.
//   - Detect: the verdict. It reconciles an AuditReport against the tamper
//     log into a Detection — tampered vs. detected rows, truncated vs.
//     detected segments — the E15 detection-rate numbers.
//   - RunOnline: the online loop. A sim.RunWithObserver checkpoint that
//     seals, audits incrementally (only segments sealed since the last
//     mark), re-audits the recent read window, scans fresh jobs for
//     anomalies via live RM2 matching, and optionally plants mid-run
//     tamper for the next checkpoint to catch; after the run it audits
//     everything and applies core.RepairStore — detect and repair, not
//     just tolerate.
//
// Experiment E15 (detection rate vs. corruption channel, alongside the
// E14 tolerance columns) is assembled from these pieces by the sweep
// engine's VerifyGrid and served as /api/experiment/e15 and /api/verify.
package verify
