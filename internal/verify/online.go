package verify

import (
	"fmt"

	"panrucio/internal/anomaly"
	"panrucio/internal/core"
	"panrucio/internal/metastore"
	"panrucio/internal/records"
	"panrucio/internal/report"
	"panrucio/internal/sim"
	"panrucio/internal/simtime"
)

// OnlineOptions tunes the online detect-and-repair loop.
type OnlineOptions struct {
	// Every is the checkpoint interval (default 6 hours of virtual time).
	Every simtime.VTime
	// Tamper, when non-nil, plants at-rest tamper at each checkpoint —
	// restricted to the just-closed window, so the NEXT checkpoint's
	// windowed audit is what catches it. Nil runs the loop cleanly (the
	// false-positive control).
	Tamper *TamperConfig
}

// OnlineReport summarizes one online run: what the incremental audits
// covered, how much of the planted tamper was caught mid-run vs. by the
// final audit, what the anomaly scans surfaced, and what repair fixed.
// Pure value data.
type OnlineReport struct {
	Checkpoints int `json:"checkpoints"`

	// Incremental audit coverage: segments/rows audited exactly once each,
	// at the checkpoint that sealed them.
	IncSegments int `json:"inc_segments"`
	IncRows     int `json:"inc_rows"`

	// Windowed re-audit coverage and mid-run catches: rows re-checked in
	// the trailing two-checkpoint window, and the violations those audits
	// surfaced before the run ended.
	WindowRows     int `json:"window_rows"`
	MidRunDetected int `json:"mid_run_detected"`

	// Mid-run anomaly scanning over freshly ended user jobs (live RM2
	// matching — no freeze, so segment audit marks stay valid).
	JobsScanned int `json:"jobs_scanned"`
	Findings    int `json:"findings"`

	Tamper    TamperLog `json:"tamper"`
	Detection Detection `json:"detection"`

	// Final full audit and the repair pass that closes the loop.
	FinalRows       int              `json:"final_rows"`
	FinalViolations int              `json:"final_violations"`
	Repair          core.RepairStats `json:"repair"`

	StoredEvents int `json:"stored_events"`
}

// RunOnline executes the scenario with the verify loop riding the
// observer seam: at every checkpoint it seals the store, audits the
// segments sealed since the previous checkpoint (incremental — each
// sealed row is audit-hashed exactly once mid-run), re-audits the
// trailing read window (which is what catches tamper planted after a
// segment's own incremental audit), and anomaly-scans the window's
// freshly ended user jobs through live RM2 matching. With opt.Tamper set,
// each checkpoint also plants window-restricted tamper for the next one
// to find. After the run: a full audit reconciled against the tamper
// ground truth, an RM2 anomaly scan, and a core.RepairStore pass.
//
// The observer only reads and reorganizes (Seal is content-preserving),
// so the simulation trajectory is identical to sim.Run for the same
// Config — except for the planted tamper, which by design touches only
// sealed, already-matched-against content.
func RunOnline(cfg sim.Config, opt OnlineOptions) *OnlineReport {
	if opt.Every <= 0 {
		opt.Every = 6 * simtime.Hour
	}
	rep := &OnlineReport{}
	var mark metastore.AuditMark
	grid := sim.GridFor(cfg)

	res := sim.RunWithObserver(cfg, opt.Every, func(now simtime.VTime, store *metastore.Store) {
		rep.Checkpoints++
		mOnlineCheckpoints.Inc()
		store.Seal()

		// Incremental: only the segments this checkpoint's seal produced
		// (plus any auto-sealed since the last one).
		inc, m2 := store.AuditSealedSince(mark)
		mark = m2
		rep.IncSegments += inc.Segments
		rep.IncRows += inc.Rows
		rep.MidRunDetected += len(inc.Violations)

		// Windowed: re-audit the trailing two intervals. Tamper planted at
		// checkpoint k hits rows in [t_k - every, t_k), which this window
		// covers at checkpoint k+1 — mid-run detection, one interval late.
		win := store.AuditTransfersWindow(now-2*opt.Every, now)
		rep.WindowRows += win.Rows
		rep.MidRunDetected += len(win.Violations)

		// Anomaly scan of the window's freshly ended user jobs via live
		// RM2 matching — MatchJob works mid-run and never freezes, so the
		// audit marks above stay valid.
		jobs := store.Jobs(now-opt.Every, now, records.LabelUser)
		if len(jobs) > 0 {
			matcher := core.NewMatcher(store)
			mres := &core.Result{Method: core.RM2}
			for _, j := range jobs {
				if evs := matcher.MatchJob(j, core.RM2); len(evs) > 0 {
					mres.Matches = append(mres.Matches, core.Match{Job: j, Transfers: evs})
				}
			}
			rep.JobsScanned += len(jobs)
			findings := len(anomaly.NewScanner(grid).Scan(mres).Findings)
			rep.Findings += findings
			mOnlineFindings.Add(int64(findings))
		}

		// Plant tamper for the NEXT checkpoint (and the final audit) to
		// catch: window-restricted to the just-closed interval, seed
		// varied per checkpoint so each plants fresh damage.
		if opt.Tamper != nil {
			tc := *opt.Tamper
			tc.From, tc.To = now-opt.Every, now
			tc.Seed = tc.Seed + int64(rep.Checkpoints)
			rep.Tamper.absorb(TamperStore(store, tc))
		}
	})

	// Final reckoning: the full audit sees every sealed row — compaction
	// at the run's final Freeze carries commitments, so tamper planted
	// mid-run is still exposed here.
	final := res.Store.AuditSealed()
	rep.FinalRows = final.Rows
	rep.FinalViolations = len(final.Violations)
	rep.Detection = Detect(rep.Tamper, final)

	// Close the loop: RM2-match the window's user jobs, scan, repair.
	jobs := res.Store.Jobs(res.WindowFrom, res.WindowTo, records.LabelUser)
	rm2 := core.NewMatcher(res.Store).Run(jobs, core.RM2)
	rep.Findings += len(anomaly.NewScanner(res.Grid).Scan(rm2).Findings)
	_, st := core.RepairStore(res.Store, res.Grid, rm2)
	rep.Repair = st
	mRepairedLabels.Add(int64(st.LabelsRepaired))
	rep.StoredEvents = res.Store.TransferCount()
	return rep
}

// Table renders the online-loop summary for the E15 report.
func (r *OnlineReport) Table() *report.Table {
	t := &report.Table{
		Title:   "E15 — online detect-and-repair loop",
		Columns: []string{"metric", "value"},
	}
	add := func(k, v string) { t.AddRow(k, v) }
	add("checkpoints", fmt.Sprintf("%d", r.Checkpoints))
	add("segments audited incrementally", fmt.Sprintf("%d", r.IncSegments))
	add("rows audited incrementally", fmt.Sprintf("%d", r.IncRows))
	add("rows re-audited in trailing windows", fmt.Sprintf("%d", r.WindowRows))
	add("rows tampered mid-run", fmt.Sprintf("%d", r.Tamper.RowsTampered))
	add("segments rolled back mid-run", fmt.Sprintf("%d", r.Tamper.SegmentsTruncated))
	add("violations caught mid-run", fmt.Sprintf("%d", r.MidRunDetected))
	add("final-audit rows", fmt.Sprintf("%d", r.FinalRows))
	add("final-audit violations", fmt.Sprintf("%d", r.FinalViolations))
	add("detection rate", fmt.Sprintf("%.1f%%", 100*r.Detection.Rate()))
	add("jobs anomaly-scanned mid-run", fmt.Sprintf("%d", r.JobsScanned))
	add("anomaly findings (mid-run + final)", fmt.Sprintf("%d", r.Findings))
	add("labels repaired", fmt.Sprintf("%d", r.Repair.LabelsRepaired))
	add("stored events", fmt.Sprintf("%d", r.StoredEvents))
	return t
}
