package verify

import (
	"testing"

	"panrucio/internal/sim"
)

// TestRunOnlineClean pins the false-positive control: a clean online run
// audits every sealed row, finds zero violations mid-run and at the end,
// and still does real scanning work.
func TestRunOnlineClean(t *testing.T) {
	rep := RunOnline(sim.QuickConfig(1), OnlineOptions{})
	if rep.Checkpoints == 0 {
		t.Fatal("observer never fired")
	}
	if rep.MidRunDetected != 0 {
		t.Fatalf("clean run detected %d mid-run violations", rep.MidRunDetected)
	}
	if rep.FinalViolations != 0 {
		t.Fatalf("clean run's final audit found %d violations", rep.FinalViolations)
	}
	if rep.Tamper.RowsTampered != 0 || rep.Tamper.SegmentsTruncated != 0 {
		t.Fatalf("clean run logged tamper: %+v", rep.Tamper)
	}
	if rep.Detection.Rate() != 1 {
		t.Fatalf("clean run detection rate %g, want vacuous 1", rep.Detection.Rate())
	}
	if rep.IncRows == 0 || rep.IncSegments == 0 {
		t.Fatalf("incremental audits covered nothing: %+v", rep)
	}
	if rep.JobsScanned == 0 {
		t.Fatal("online loop never anomaly-scanned a job")
	}
	if rep.StoredEvents == 0 {
		t.Fatal("run stored no events")
	}
}

// TestRunOnlineTampered pins the detection half: tamper planted at each
// checkpoint is caught mid-run by the trailing-window audits AND fully
// reconciled by the final audit (100% detection, no false positives).
func TestRunOnlineTampered(t *testing.T) {
	rep := RunOnline(sim.QuickConfig(1), OnlineOptions{
		Tamper: &TamperConfig{Prob: 0.05, Seed: 1},
	})
	if rep.Tamper.RowsTampered == 0 {
		t.Fatal("online tamper planted nothing at p=0.05")
	}
	if rep.MidRunDetected == 0 {
		t.Fatal("trailing-window audits caught nothing mid-run")
	}
	if !rep.Detection.Complete() {
		t.Fatalf("final detection incomplete: %+v", rep.Detection)
	}
	if rep.FinalViolations != rep.Tamper.RowsTampered+rep.Tamper.SegmentsTruncated {
		t.Fatalf("final audit found %d violations for %d tampered rows + %d truncations",
			rep.FinalViolations, rep.Tamper.RowsTampered, rep.Tamper.SegmentsTruncated)
	}

	// The report table must render every metric without panicking.
	if tab := rep.Table(); len(tab.Rows) == 0 {
		t.Fatal("empty online-report table")
	}
}

// TestRunOnlineTrajectoryPreserved pins that the verify loop is a pure
// observer: the simulation under it stores exactly what a plain run does
// (tamper only mutates sealed copies of already-written rows, and the
// clean loop touches nothing at all).
func TestRunOnlineTrajectoryPreserved(t *testing.T) {
	plain := sim.Run(sim.QuickConfig(2))
	rep := RunOnline(sim.QuickConfig(2), OnlineOptions{})
	if rep.StoredEvents != plain.Store.TransferCount() {
		t.Fatalf("online run stored %d events, plain run %d",
			rep.StoredEvents, plain.Store.TransferCount())
	}
}
