package verify

import (
	"fmt"

	"panrucio/internal/metastore"
	"panrucio/internal/obs"
	"panrucio/internal/records"
	"panrucio/internal/simtime"
	"panrucio/internal/topology"
)

// Process-wide integrity-loop metrics: what the tamper seam injected and
// what the audits caught, across every store in the process. The
// metastore's own metastore_audit_* family counts rows and violations at
// the audit layer; these count them at the detection layer, where a
// violation is matched back to known ground truth.
var (
	mTamperedRows = obs.Default().Counter("verify_tampered_rows_total",
		"sealed rows mutated at rest by the tamper seam (fault injection)")
	mTruncatedSegs = obs.Default().Counter("verify_truncated_segments_total",
		"sealed segments rolled back by the tamper seam (fault injection)")
	mDetectedRows = obs.Default().Counter("verify_detected_rows_total",
		"tampered rows caught by a commitment audit")
	mDetectedTruncs = obs.Default().Counter("verify_detected_truncations_total",
		"rolled-back segments caught by a commitment audit")
	mOnlineCheckpoints = obs.Default().Counter("verify_online_checkpoints_total",
		"online verify-loop checkpoints (seal + incremental audit + scan)")
	mOnlineFindings = obs.Default().Counter("verify_online_findings_total",
		"anomaly findings surfaced by the online loop's mid-run scans")
	mRepairedLabels = obs.Default().Counter("verify_repaired_labels_total",
		"endpoint labels rewritten by the online loop's repair pass")
)

// Channel names one at-rest tamper channel. Each mirrors the
// internal/corruption channel of the same flavor, replayed against sealed
// rows instead of in-flight events.
type Channel string

// The tamper channels. Drop is the odd one out: corruption drops events
// before ingest, so its at-rest analogue is segment truncation — the
// rollback attack of the VDS scheme.
const (
	ChannelDrop   Channel = "drop"   // truncate sealed segments
	ChannelTaskID Channel = "taskid" // clear jeditaskid
	ChannelJoin   Channel = "join"   // rewrite dataset with a _tid suffix
	ChannelSite   Channel = "site"   // lose an endpoint label to UNKNOWN
	ChannelGarble Channel = "garble" // invalid-URL site label
	ChannelSize   Channel = "size"   // jitter the recorded file size
)

// Channels lists every tamper channel in report order.
func Channels() []Channel {
	return []Channel{ChannelDrop, ChannelTaskID, ChannelJoin, ChannelSite, ChannelGarble, ChannelSize}
}

// TamperConfig drives one tamper pass over a store's sealed segments.
type TamperConfig struct {
	// Prob is the per-row mutation probability (per-segment for the drop
	// channel). <= 0 tampers nothing.
	Prob float64
	// Channels selects which channels run; nil means all of them.
	Channels []Channel
	// Seed makes the pass deterministic.
	Seed int64
	// From/To restrict tamper to rows with StartedAt in [From, To) when
	// To > From — the online loop uses this to hit only the most recent
	// checkpoint window. Zero values tamper everywhere.
	From, To simtime.VTime
}

func (c TamperConfig) windowed() bool { return c.To > c.From }

func (c TamperConfig) channels() []Channel {
	if len(c.Channels) == 0 {
		return Channels()
	}
	return c.Channels
}

// TamperLog is the ground truth of one tamper pass: exactly which damage
// was done, as value data. Every counted row mutation actually changed the
// row's committed content (no-op draws are skipped), so a complete audit
// must report exactly RowsTampered row violations and SegmentsTruncated
// truncation violations.
type TamperLog struct {
	RowsSeen          int             `json:"rows_seen"`
	RowsTampered      int             `json:"rows_tampered"`
	SegmentsTruncated int             `json:"segments_truncated"`
	RowsTruncated     int             `json:"rows_truncated"`
	ByChannel         map[Channel]int `json:"by_channel,omitempty"`
}

func (l *TamperLog) count(ch Channel) {
	if l.ByChannel == nil {
		l.ByChannel = map[Channel]int{}
	}
	l.ByChannel[ch]++
}

// absorb accumulates another pass's log into this one (the online loop
// tampers once per checkpoint).
func (l *TamperLog) absorb(o TamperLog) {
	l.RowsSeen += o.RowsSeen
	l.RowsTampered += o.RowsTampered
	l.SegmentsTruncated += o.SegmentsTruncated
	l.RowsTruncated += o.RowsTruncated
	for ch, n := range o.ByChannel {
		if l.ByChannel == nil {
			l.ByChannel = map[Channel]int{}
		}
		l.ByChannel[ch] += n
	}
}

// mutate applies one channel's mutation to a sealed event row, returning
// false when the row is ineligible (the mutation would not change its
// committed content — e.g. the site label is already UNKNOWN). The
// eligibility filter is what makes the tamper log exact ground truth.
func mutate(ch Channel, ev *records.TransferEvent, rng *simtime.RNG) bool {
	switch ch {
	case ChannelTaskID:
		if ev.JediTaskID == 0 {
			return false
		}
		ev.JediTaskID = 0
	case ChannelJoin:
		ev.Dataset = ev.Dataset + fmt.Sprintf("_tid%08d", rng.Int63n(1e8))
	case ChannelSite:
		switch {
		case ev.DestinationSite != topology.UnknownSite:
			ev.DestinationSite = topology.UnknownSite
		case ev.SourceSite != topology.UnknownSite:
			ev.SourceSite = topology.UnknownSite
		default:
			return false
		}
	case ChannelGarble:
		ev.SourceSite = "gsiftp://invalid/" + ev.SourceSite
	case ChannelSize:
		delta := rng.Int63n(8192) - 4096
		if delta == 0 {
			delta = 1
		}
		ev.FileSize += delta
	default:
		return false
	}
	return true
}

// TamperStore mutates the store's sealed event segments in place per the
// config and returns the exact log of what it did. The store's commitments
// are NOT updated — that is the point: the divergence between content and
// commitment is what the audits detect. Only sealed rows are touched (the
// tail is uncommitted, so tampering it would be undetectable by design).
func TamperStore(s *metastore.Store, cfg TamperConfig) TamperLog {
	var log TamperLog
	if cfg.Prob <= 0 {
		return log
	}
	rng := simtime.NewRNG(cfg.Seed + 1)
	chans := cfg.channels()
	rowChans := make([]Channel, 0, len(chans))
	truncate := false
	for _, ch := range chans {
		if ch == ChannelDrop {
			truncate = true
		} else {
			rowChans = append(rowChans, ch)
		}
	}

	s.SealedEventSegments(func(ref metastore.SegmentRef, rows []*records.TransferEvent) {
		// Rollback: drop a Prob-fraction of each segment's committed rows
		// (stochastically rounded, so small segments still truncate
		// sometimes), mirroring the drop channel's per-event rate.
		// Skipped for windowed tamper — truncation has no time coordinate
		// to restrict by.
		if truncate && !cfg.windowed() && len(rows) >= 2 {
			drop := int(cfg.Prob*float64(len(rows)) + rng.Float64())
			if drop > len(rows)/2 {
				drop = len(rows) / 2
			}
			if drop > 0 {
				if n := s.TruncateSealed(ref, drop); n > 0 {
					log.SegmentsTruncated++
					log.RowsTruncated += n
					log.count(ChannelDrop)
					rows = rows[:len(rows)-n]
				}
			}
		}
		if len(rowChans) == 0 {
			log.RowsSeen += len(rows)
			return
		}
		for _, ev := range rows {
			log.RowsSeen++
			if cfg.windowed() && (ev.StartedAt < cfg.From || ev.StartedAt >= cfg.To) {
				continue
			}
			if !rng.Bool(cfg.Prob) {
				continue
			}
			ch := rowChans[rng.Intn(len(rowChans))]
			if mutate(ch, ev, rng) {
				log.RowsTampered++
				log.count(ch)
			}
		}
	})
	mTamperedRows.Add(int64(log.RowsTampered))
	mTruncatedSegs.Add(int64(log.SegmentsTruncated))
	return log
}

// Detection reconciles an audit against the tamper ground truth — the E15
// detection-rate row.
type Detection struct {
	RowsTampered      int `json:"rows_tampered"`
	RowsDetected      int `json:"rows_detected"`
	SegmentsTruncated int `json:"segments_truncated"`
	TruncsDetected    int `json:"truncs_detected"`
}

// Rate is the fraction of injected damage (row mutations + rollbacks) the
// audit caught; 1 when nothing was injected (vacuously complete).
func (d Detection) Rate() float64 {
	total := d.RowsTampered + d.SegmentsTruncated
	if total == 0 {
		return 1
	}
	return float64(d.RowsDetected+d.TruncsDetected) / float64(total)
}

// Complete reports whether every injected mutation was detected and
// nothing else was (violation counts exactly match the ground truth).
func (d Detection) Complete() bool {
	return d.RowsDetected == d.RowsTampered && d.TruncsDetected == d.SegmentsTruncated
}

// Detect reconciles the audit report with the tamper log. Row-tamper
// violations are counted against mutated rows, truncation violations
// against rolled-back segments; the eligibility filter in TamperStore
// guarantees the counts can only match or expose a miss, never overcount
// honest rows.
func Detect(log TamperLog, rep metastore.AuditReport) Detection {
	d := Detection{
		RowsTampered:      log.RowsTampered,
		SegmentsTruncated: log.SegmentsTruncated,
	}
	for _, v := range rep.Violations {
		switch v.Kind {
		case metastore.RowTamper:
			d.RowsDetected++
		case metastore.Truncation:
			d.TruncsDetected++
		}
	}
	mDetectedRows.Add(int64(d.RowsDetected))
	mDetectedTruncs.Add(int64(d.TruncsDetected))
	return d
}
