package verify

import (
	"testing"

	"panrucio/internal/metastore"
	"panrucio/internal/metastore/storetest"
	"panrucio/internal/records"
	"panrucio/internal/simtime"
	"panrucio/internal/topology"
)

// sealedStore builds a small sharded store with sealed segments — the
// substrate every tamper test works against.
func sealedStore(t *testing.T) *metastore.Store {
	t.Helper()
	s := metastore.NewShardedSegmented(4, 64)
	storetest.Make(3, 2000).Ingest(s)
	s.Seal()
	return s
}

// TestTamperGroundTruth pins the core E15 invariant: the tamper log is
// exact ground truth, so a full audit reports exactly the logged damage —
// per channel, including the truncation channel.
func TestTamperGroundTruth(t *testing.T) {
	for _, ch := range Channels() {
		t.Run(string(ch), func(t *testing.T) {
			s := sealedStore(t)
			if rep := s.AuditSealed(); !rep.Clean() {
				t.Fatalf("store dirty before tamper: %d violations", len(rep.Violations))
			}
			log := TamperStore(s, TamperConfig{Prob: 0.05, Channels: []Channel{ch}, Seed: 7})
			if log.RowsTampered == 0 && log.SegmentsTruncated == 0 {
				t.Fatalf("channel %s injected nothing at p=0.05", ch)
			}
			d := Detect(log, s.AuditSealed())
			if !d.Complete() {
				t.Fatalf("channel %s: detection incomplete: tampered=%d detected=%d truncated=%d truncs detected=%d",
					ch, d.RowsTampered, d.RowsDetected, d.SegmentsTruncated, d.TruncsDetected)
			}
			if d.Rate() != 1 {
				t.Fatalf("channel %s: detection rate %.3f, want 1", ch, d.Rate())
			}
		})
	}
}

// TestTamperAllChannels runs every channel in one pass and checks the
// per-channel breakdown accounts for every counted mutation.
func TestTamperAllChannels(t *testing.T) {
	s := sealedStore(t)
	log := TamperStore(s, TamperConfig{Prob: 0.1, Seed: 3})
	total := 0
	for _, n := range log.ByChannel {
		total += n
	}
	if total != log.RowsTampered+log.SegmentsTruncated {
		t.Fatalf("by-channel sum %d != tampered %d + truncated %d",
			total, log.RowsTampered, log.SegmentsTruncated)
	}
	if d := Detect(log, s.AuditSealed()); !d.Complete() {
		t.Fatalf("mixed-channel detection incomplete: %+v", d)
	}
}

// TestTamperDisabled pins that Prob <= 0 is the no-tamper control: nothing
// mutated, store still audits clean.
func TestTamperDisabled(t *testing.T) {
	s := sealedStore(t)
	before := s.StoreCommitment()
	for _, p := range []float64{0, -1} {
		log := TamperStore(s, TamperConfig{Prob: p, Seed: 1})
		if log.RowsTampered != 0 || log.SegmentsTruncated != 0 || log.RowsSeen != 0 {
			t.Fatalf("p=%g tampered: %+v", p, log)
		}
	}
	if s.StoreCommitment() != before {
		t.Fatal("disabled tamper moved the store commitment")
	}
	if rep := s.AuditSealed(); !rep.Clean() {
		t.Fatal("store dirty after disabled tamper")
	}
}

// TestTamperDeterministic pins that the same seed does the same damage.
func TestTamperDeterministic(t *testing.T) {
	logA := TamperStore(sealedStore(t), TamperConfig{Prob: 0.05, Seed: 11})
	logB := TamperStore(sealedStore(t), TamperConfig{Prob: 0.05, Seed: 11})
	if logA.RowsTampered != logB.RowsTampered ||
		logA.SegmentsTruncated != logB.SegmentsTruncated ||
		logA.RowsTruncated != logB.RowsTruncated {
		t.Fatalf("same seed, different damage: %+v vs %+v", logA, logB)
	}
}

// TestTamperWindowRestriction pins that a windowed config touches only
// rows whose StartedAt falls in [From, To), and skips truncation entirely.
func TestTamperWindowRestriction(t *testing.T) {
	s := sealedStore(t)

	// Find the sealed time range, then tamper only its middle third.
	var lo, hi = int64(1 << 62), int64(-1 << 62)
	s.SealedEventSegments(func(_ metastore.SegmentRef, rows []*records.TransferEvent) {
		for _, ev := range rows {
			if int64(ev.StartedAt) < lo {
				lo = int64(ev.StartedAt)
			}
			if int64(ev.StartedAt) > hi {
				hi = int64(ev.StartedAt)
			}
		}
	})
	if lo >= hi {
		t.Fatal("degenerate sealed time range")
	}
	from := simtime.VTime(lo + (hi-lo)/3)
	to := simtime.VTime(lo + 2*(hi-lo)/3)

	log := TamperStore(s, TamperConfig{Prob: 0.5, Seed: 5, From: from, To: to})
	if log.SegmentsTruncated != 0 {
		t.Fatalf("windowed tamper truncated %d segments, want 0", log.SegmentsTruncated)
	}
	if log.RowsTampered == 0 {
		t.Fatal("windowed tamper at p=0.5 touched nothing")
	}

	// Every violation must point at a row inside the window.
	rep := s.AuditSealed()
	if d := Detect(log, rep); !d.Complete() {
		t.Fatalf("windowed detection incomplete: %+v", d)
	}
	s.SealedEventSegments(func(ref metastore.SegmentRef, rows []*records.TransferEvent) {
		for _, v := range rep.Violations {
			if v.Ref == ref && v.Row < len(rows) {
				ev := rows[v.Row]
				// Garble/site/size mutations don't move StartedAt, so the
				// violated row's time still reflects its original window.
				if ev.StartedAt < from || ev.StartedAt >= to {
					t.Errorf("violation at %s row %d: StartedAt %d outside window [%d, %d)",
						ref, v.Row, ev.StartedAt, from, to)
				}
			}
		}
	})
}

// TestMutateEligibility pins the eligibility filter: a mutation that would
// not change committed content returns false and leaves the row alone.
func TestMutateEligibility(t *testing.T) {
	rng := simtime.NewRNG(1)

	ev := &records.TransferEvent{JediTaskID: 0}
	if mutate(ChannelTaskID, ev, rng) {
		t.Error("taskid mutation on zero taskid reported a change")
	}

	ev = &records.TransferEvent{SourceSite: topology.UnknownSite, DestinationSite: topology.UnknownSite}
	if mutate(ChannelSite, ev, rng) {
		t.Error("site mutation with both sites UNKNOWN reported a change")
	}

	ev = &records.TransferEvent{JediTaskID: 42}
	if !mutate(ChannelTaskID, ev, rng) || ev.JediTaskID != 0 {
		t.Error("taskid mutation on nonzero taskid did not clear it")
	}

	ev = &records.TransferEvent{FileSize: 1000}
	if !mutate(ChannelSize, ev, rng) || ev.FileSize == 1000 {
		t.Error("size mutation left FileSize unchanged")
	}
}

// TestDetectionRateVacuous pins Rate() == 1 for a no-injection run (the
// clean control divides by zero otherwise).
func TestDetectionRateVacuous(t *testing.T) {
	d := Detection{}
	if d.Rate() != 1 || !d.Complete() {
		t.Fatalf("empty detection: rate=%g complete=%v", d.Rate(), d.Complete())
	}
}
