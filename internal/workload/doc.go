// Package workload generates the synthetic ATLAS-like load: an initial
// catalog of input datasets distributed across the grid, plus Poisson
// arrivals of user-analysis and managed-production tasks over the study
// window. Dataset popularity is Zipf-like, dataset sizes are heavy-tailed,
// and placement is tier-weighted — the ingredients behind the paper's
// spatially imbalanced transfer matrix (Fig. 3).
//
// Entry point: Start wires the generator into an engine, grid, rucio, and
// panda instance with its own RNG split; Config's zero fields take the
// calibrated defaults, and the sweep engine's workload-mix axis varies the
// user/production arrival intervals explicitly. All arrivals are scheduled
// on the single-goroutine engine from the split RNG, so the task stream is
// reproducible per seed.
package workload
