package workload

import (
	"fmt"
	"math"

	"panrucio/internal/panda"
	"panrucio/internal/records"
	"panrucio/internal/rucio"
	"panrucio/internal/simtime"
	"panrucio/internal/topology"
)

// Config tunes the generator. Zero fields take the documented defaults.
type Config struct {
	// InitialDatasets seeds the catalog before any task arrives (default 400).
	InitialDatasets int
	// DatasetMeanFiles is the mean file count per dataset (default 60).
	// Dataset size bounds task width: jobs within a task process disjoint
	// file subsets, so a task can have at most files/files-per-job jobs.
	DatasetMeanFiles int
	// FileSizeMu/FileSizeSigma parameterize LogNormal file sizes in bytes
	// (defaults ln(3 GB), 1.0).
	FileSizeMu, FileSizeSigma float64
	// MaxReplicas is the maximum initial replica count per dataset (default 3).
	MaxReplicas int
	// UserTaskInterval is the mean inter-arrival of user tasks (default 240s).
	UserTaskInterval simtime.VTime
	// ProdTaskInterval is the mean inter-arrival of production tasks (default 600s).
	ProdTaskInterval simtime.VTime
	// UserJobsMean / ProdJobsMean are mean jobs per task (defaults 18, 45).
	UserJobsMean, ProdJobsMean int
	// MaxFilesPerJob bounds the per-job input count (default 4).
	MaxFilesPerJob int
	// ZipfExponent shapes dataset popularity (default 1.1).
	ZipfExponent float64
}

// Scaled returns the config with defaults filled and the arrival volume
// multiplied by f: task inter-arrival intervals shrink by f (rates grow)
// and the seeded catalog grows by f so dataset popularity keeps its shape.
// f <= 0 or 1 only fills defaults. The default scenario sits near 1/20 of
// the paper's production volume, so f = 20 reproduces paper scale.
func (c Config) Scaled(f float64) Config {
	c.fill()
	if f <= 0 || f == 1 {
		return c
	}
	c.InitialDatasets = int(float64(c.InitialDatasets)*f + 0.5)
	c.UserTaskInterval = scaleInterval(c.UserTaskInterval, f)
	c.ProdTaskInterval = scaleInterval(c.ProdTaskInterval, f)
	return c
}

// scaleInterval divides a mean inter-arrival time by f, clamping at one
// tick so extreme scales stay valid.
func scaleInterval(v simtime.VTime, f float64) simtime.VTime {
	scaled := simtime.VTime(float64(v) / f)
	if scaled < 1 {
		return 1
	}
	return scaled
}

func (c *Config) fill() {
	if c.InitialDatasets == 0 {
		c.InitialDatasets = 400
	}
	if c.DatasetMeanFiles == 0 {
		c.DatasetMeanFiles = 60
	}
	if c.FileSizeMu == 0 {
		c.FileSizeMu = math.Log(3e9)
	}
	if c.FileSizeSigma == 0 {
		c.FileSizeSigma = 1.0
	}
	if c.MaxReplicas == 0 {
		c.MaxReplicas = 3
	}
	if c.UserTaskInterval == 0 {
		c.UserTaskInterval = 240
	}
	if c.ProdTaskInterval == 0 {
		c.ProdTaskInterval = 600
	}
	if c.UserJobsMean == 0 {
		c.UserJobsMean = 18
	}
	if c.ProdJobsMean == 0 {
		c.ProdJobsMean = 45
	}
	if c.MaxFilesPerJob == 0 {
		c.MaxFilesPerJob = 4
	}
	if c.ZipfExponent == 0 {
		c.ZipfExponent = 1.1
	}
}

// Generator owns the dataset pool and the task-arrival loops.
type Generator struct {
	eng  *simtime.Engine
	grid *topology.Grid
	ruc  *rucio.Rucio
	pan  *panda.System
	rng  *simtime.RNG
	cfg  Config

	datasets  []string
	dsWeights []float64

	placementSites   []string
	placementWeights []float64

	// Counters.
	UserTasks int64
	ProdTasks int64
	Errors    int64
}

// Start seeds the catalog and installs the arrival loops on the engine.
func Start(eng *simtime.Engine, grid *topology.Grid, ruc *rucio.Rucio, pan *panda.System, rng *simtime.RNG, cfg Config) *Generator {
	cfg.fill()
	g := &Generator{eng: eng, grid: grid, ruc: ruc, pan: pan, rng: rng, cfg: cfg}
	for _, s := range grid.Sites() {
		var w float64
		switch s.Tier {
		case topology.Tier0:
			w = 10
		case topology.Tier1:
			w = 6
		case topology.Tier2:
			w = 1.5
		default:
			w = 0.1
		}
		g.placementSites = append(g.placementSites, s.Name)
		g.placementWeights = append(g.placementWeights, w)
	}
	g.seedCatalog()
	g.arrivalLoop("user", cfg.UserTaskInterval, g.submitUser)
	g.arrivalLoop("prod", cfg.ProdTaskInterval, g.submitProd)
	return g
}

// seedCatalog creates the initial dataset pool with tier-weighted replica
// placement and Zipf popularity weights.
func (g *Generator) seedCatalog() {
	for i := 0; i < g.cfg.InitialDatasets; i++ {
		scope := "data25"
		if i%3 == 0 {
			scope = "mc25"
		}
		name := fmt.Sprintf("%s.13p6TeV.%08d.physics_Main.DAOD.r%05d", scope, 100000+i, i)
		if _, err := g.ruc.Catalog().CreateDataset(scope, name, ""); err != nil {
			g.Errors++
			continue
		}
		nfiles := 1 + g.rng.Poisson(float64(g.cfg.DatasetMeanFiles-1))
		for f := 0; f < nfiles; f++ {
			size := int64(g.rng.LogNormal(g.cfg.FileSizeMu, g.cfg.FileSizeSigma))
			if size < 1e6 {
				size = 1e6
			}
			file := &rucio.FileInfo{
				LFN:        fmt.Sprintf("%s._%06d.pool.root", name, f),
				Scope:      scope,
				Dataset:    name,
				ProdDBlock: name,
				Size:       size,
			}
			if err := g.ruc.Catalog().AddFile(file); err != nil {
				g.Errors++
				continue
			}
		}
		// Place 1..MaxReplicas complete replicas at tier-weighted sites.
		nrep := 1 + g.rng.Intn(g.cfg.MaxReplicas)
		placed := map[string]bool{}
		ds, _ := g.ruc.Catalog().Dataset(name)
		for r := 0; r < nrep; r++ {
			site := g.placementSites[g.rng.Choice(g.placementWeights)]
			if placed[site] {
				continue
			}
			placed[site] = true
			rse, ok := g.grid.PrimaryRSE(site)
			if !ok {
				continue
			}
			for _, file := range ds.Files {
				g.ruc.Catalog().SetReplica(file.LFN, rse.Name, rucio.ReplicaAvailable)
			}
		}
		g.datasets = append(g.datasets, name)
		g.dsWeights = append(g.dsWeights, 1/math.Pow(float64(i+1), g.cfg.ZipfExponent))
	}
}

func (g *Generator) arrivalLoop(name string, mean simtime.VTime, fn func()) {
	var tick func()
	tick = func() {
		fn()
		g.eng.After(g.rng.VExp(mean), "workload."+name, tick)
	}
	g.eng.After(g.rng.VExp(mean), "workload."+name, tick)
}

// pickDatasets draws 1-2 distinct datasets by popularity.
func (g *Generator) pickDatasets() []string {
	if len(g.datasets) == 0 {
		return nil
	}
	first := g.rng.Choice(g.dsWeights)
	out := []string{g.datasets[first]}
	if g.rng.Bool(0.25) {
		second := g.rng.Choice(g.dsWeights)
		if second != first {
			out = append(out, g.datasets[second])
		}
	}
	return out
}

func (g *Generator) jobCount(mean int) int {
	n := 1 + g.rng.Poisson(float64(mean-1))
	// Heavy tail: a few percent of tasks are very large.
	if g.rng.Bool(0.03) {
		n *= 5
	}
	return n
}

func (g *Generator) submitUser() {
	ds := g.pickDatasets()
	if ds == nil {
		return
	}
	_, err := g.pan.SubmitTask(panda.TaskSpec{
		Label:         records.LabelUser,
		InputDatasets: ds,
		JobCount:      g.jobCount(g.cfg.UserJobsMean),
		FilesPerJob:   1 + g.rng.Intn(g.cfg.MaxFilesPerJob),
		OutputScope:   "user.out",
	})
	if err != nil {
		g.Errors++
		return
	}
	g.UserTasks++
}

func (g *Generator) submitProd() {
	ds := g.pickDatasets()
	if ds == nil {
		return
	}
	_, err := g.pan.SubmitTask(panda.TaskSpec{
		Label:         records.LabelManaged,
		InputDatasets: ds,
		JobCount:      g.jobCount(g.cfg.ProdJobsMean),
		FilesPerJob:   1 + g.rng.Intn(g.cfg.MaxFilesPerJob),
		OutputScope:   "mc25.out",
	})
	if err != nil {
		g.Errors++
		return
	}
	g.ProdTasks++
}

// DatasetNames exposes the generated pool (read-only).
func (g *Generator) DatasetNames() []string { return g.datasets }
