package workload

import (
	"testing"

	"panrucio/internal/netsim"
	"panrucio/internal/panda"
	"panrucio/internal/records"
	"panrucio/internal/rucio"
	"panrucio/internal/simtime"
	"panrucio/internal/topology"
)

func harness(seed int64, horizon simtime.VTime) (*simtime.Engine, *topology.Grid, *rucio.Rucio, *panda.System, *simtime.RNG, *[]*records.JobRecord) {
	eng := simtime.NewEngine(0, horizon)
	grid := topology.Default(topology.DefaultSpec{})
	root := simtime.NewRNG(seed)
	net := netsim.New(eng, grid, root.Split("net"), netsim.Options{})
	ruc := rucio.New(eng, grid, net, root.Split("rucio"), rucio.Options{}, nil)
	var jobs []*records.JobRecord
	pan := panda.NewSystem(eng, grid, ruc, root.Split("panda"), panda.Options{},
		func(j *records.JobRecord) { jobs = append(jobs, j) }, nil)
	return eng, grid, ruc, pan, root.Split("workload"), &jobs
}

func TestSeedCatalogShape(t *testing.T) {
	eng, grid, ruc, pan, rng, _ := harness(1, simtime.Hour)
	g := Start(eng, grid, ruc, pan, rng, Config{InitialDatasets: 50})
	if len(g.DatasetNames()) != 50 {
		t.Fatalf("datasets = %d", len(g.DatasetNames()))
	}
	if ruc.Catalog().NumDatasets() < 50 {
		t.Error("catalog missing datasets")
	}
	// Every dataset has at least one complete replica somewhere.
	for _, name := range g.DatasetNames() {
		ds, ok := ruc.Catalog().Dataset(name)
		if !ok || len(ds.Files) == 0 {
			t.Fatalf("dataset %s empty", name)
		}
		if sites := ruc.Catalog().DatasetSites(ds, grid); len(sites) == 0 {
			t.Errorf("dataset %s has no complete replica", name)
		}
	}
}

func TestArrivalsSubmitTasks(t *testing.T) {
	eng, grid, ruc, pan, rng, jobs := harness(2, 12*simtime.Hour)
	g := Start(eng, grid, ruc, pan, rng, Config{
		InitialDatasets:  40,
		UserTaskInterval: 600,
		ProdTaskInterval: 1200,
	})
	eng.Run()
	if g.UserTasks == 0 || g.ProdTasks == 0 {
		t.Fatalf("user=%d prod=%d tasks", g.UserTasks, g.ProdTasks)
	}
	if g.UserTasks <= g.ProdTasks {
		t.Errorf("user tasks (%d) should outnumber production (%d) at these rates", g.UserTasks, g.ProdTasks)
	}
	if pan.SubmittedJobs == 0 {
		t.Fatal("no jobs submitted")
	}
	if len(*jobs) == 0 {
		t.Fatal("no jobs completed in 12h")
	}
	if g.Errors != 0 {
		t.Errorf("generator errors: %d", g.Errors)
	}
}

func TestPopularityIsSkewed(t *testing.T) {
	eng, grid, ruc, pan, rng, _ := harness(3, 0)
	g := Start(eng, grid, ruc, pan, rng, Config{InitialDatasets: 100})
	counts := map[string]int{}
	for i := 0; i < 3000; i++ {
		for _, ds := range g.pickDatasets() {
			counts[ds]++
		}
	}
	first := counts[g.DatasetNames()[0]]
	last := counts[g.DatasetNames()[99]]
	if first < 5*last {
		t.Errorf("popularity not Zipf-skewed: first=%d last=%d", first, last)
	}
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	c.fill()
	if c.InitialDatasets != 400 || c.UserTaskInterval != 240 || c.MaxFilesPerJob != 4 {
		t.Errorf("defaults: %+v", c)
	}
}
