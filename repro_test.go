// Acceptance test: the default paper-scale run must pass every qualitative
// shape check against the paper's reported results. This is the same gate
// cmd/repro enforces, wired into `go test ./...` so a release cannot ship
// with a broken reproduction.
package panrucio_test

import (
	"strings"
	"testing"
)

func TestPaperReproductionShapeChecks(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale run skipped in -short mode")
	}
	s := sharedSuite()
	for _, line := range s.ShapeChecks() {
		if strings.HasPrefix(line, "[FAIL]") {
			t.Error(line)
		} else {
			t.Log(line)
		}
	}
	// Headline bands (paper: 1.92 % of task-carrying transfers, 0.82 % of
	// jobs; we accept the same order of magnitude).
	if pct := s.Cmp.Exact.MatchedTransferPct(); pct < 0.5 || pct > 8 {
		t.Errorf("exact matched-transfer pct %.2f outside the plausible band", pct)
	}
	if pct := s.Cmp.Exact.MatchedJobPct(); pct < 0.2 || pct > 5 {
		t.Errorf("exact matched-job pct %.2f outside the plausible band", pct)
	}
}
