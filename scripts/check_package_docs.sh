#!/bin/sh
# Fails if any package under internal/ lacks a package comment in a
# dedicated doc.go, or if the repo root is missing its doc.go. CI runs
# this in the docs job; DESIGN.md states the invariant.
set -eu
cd "$(dirname "$0")/.."

status=0
for dir in internal/*/; do
    pkg=$(basename "$dir")
    doc="$dir/doc.go"
    if [ ! -f "$doc" ]; then
        echo "missing $doc" >&2
        status=1
        continue
    fi
    if ! grep -q "^// Package $pkg " "$doc"; then
        echo "$doc has no '// Package $pkg ...' comment" >&2
        status=1
    fi
done
if ! grep -q "^// Package panrucio " doc.go; then
    echo "root doc.go has no package comment" >&2
    status=1
fi
if [ "$status" -ne 0 ]; then
    echo "package documentation check failed" >&2
fi
exit $status
