#!/bin/sh
# End-to-end smoke of the serving layer: start cmd/serve on the quick
# scenario, replay a short mixed read workload with cmd/loadgen at zero
# error tolerance, and assert the metrics JSON is well-formed. CI runs
# this in the test job; DESIGN.md ("Serving layer") states the contract.
set -eu
cd "$(dirname "$0")/.."

ADDR="127.0.0.1:18321"
OUT="$(mktemp)"
trap 'kill "$SERVE_PID" 2>/dev/null || true; rm -f "$OUT"' EXIT

go build -o /tmp/panrucio-serve ./cmd/serve
go build -o /tmp/panrucio-loadgen ./cmd/loadgen

/tmp/panrucio-serve -quick -addr "$ADDR" &
SERVE_PID=$!

/tmp/panrucio-loadgen -url "http://$ADDR" -seconds 2 -workers 4 \
    -wait 30 -max-error-rate 0 -format json > "$OUT"

cat "$OUT"
for key in requests qps p50_us p95_us p99_us error_pct; do
    if ! grep -q "\"$key\"" "$OUT"; then
        echo "serve smoke: metrics JSON missing \"$key\"" >&2
        exit 1
    fi
done
if grep -q '"requests":0,' "$OUT"; then
    echo "serve smoke: no requests completed" >&2
    exit 1
fi
echo "serve smoke: OK"
