#!/bin/sh
# End-to-end smoke of the serving layer: start cmd/serve on the quick
# scenario, replay a short mixed read workload with cmd/loadgen at zero
# error tolerance, assert the metrics JSON is well-formed, and check the
# live GET /metrics endpoint returns well-formed Prometheus text. CI runs
# this in the test job; DESIGN.md ("Serving layer", "Observability")
# states the contracts.
set -eu
cd "$(dirname "$0")/.."

ADDR="127.0.0.1:18321"
OUT="$(mktemp)"
PROM="$(mktemp)"
trap 'kill "$SERVE_PID" 2>/dev/null || true; rm -f "$OUT" "$PROM"' EXIT

go build -o /tmp/panrucio-serve ./cmd/serve
go build -o /tmp/panrucio-loadgen ./cmd/loadgen

/tmp/panrucio-serve -quick -addr "$ADDR" &
SERVE_PID=$!

/tmp/panrucio-loadgen -url "http://$ADDR" -seconds 2 -workers 4 \
    -wait 30 -max-error-rate 0 -format json -scrape > "$OUT"

cat "$OUT"
for key in requests qps p50_us p95_us p99_us error_pct server_cache_hit_pct; do
    if ! grep -q "\"$key\"" "$OUT"; then
        echo "serve smoke: metrics JSON missing \"$key\"" >&2
        exit 1
    fi
done
if grep -q '"requests":0,' "$OUT"; then
    echo "serve smoke: no requests completed" >&2
    exit 1
fi

curl -fsS "http://$ADDR/metrics" > "$PROM"
if ! [ -s "$PROM" ]; then
    echo "serve smoke: /metrics returned an empty body" >&2
    exit 1
fi
if ! grep -q '^# TYPE serve_request_seconds histogram$' "$PROM"; then
    echo "serve smoke: /metrics missing the serve_request_seconds histogram" >&2
    exit 1
fi
if ! grep -q '^serve_cache_' "$PROM"; then
    echo "serve smoke: /metrics missing the serve_cache_* counters" >&2
    exit 1
fi
# Every sample line must be `name{labels} value` with a numeric value.
if grep -v '^#' "$PROM" | grep -qvE '^[A-Za-z_][A-Za-z0-9_]*(\{[^}]*\})? -?[0-9.e+-]+$'; then
    echo "serve smoke: /metrics has a malformed sample line:" >&2
    grep -v '^#' "$PROM" | grep -vE '^[A-Za-z_][A-Za-z0-9_]*(\{[^}]*\})? -?[0-9.e+-]+$' >&2
    exit 1
fi
echo "serve smoke: OK"
